//! Fault-latency distributions: how long does one page fault take, end to
//! end, under each placement policy? The serial UVM service queue makes
//! the *tail* — not the mean — the interesting number (the reason fault
//! counts correlate with performance in Fig. 18).
//!
//! ```text
//! cargo run --release --example fault_latency [APP]
//! ```

use grit::experiments::PolicyKind;
use grit::prelude::*;

fn main() {
    let app = std::env::args()
        .nth(1)
        .map(|s| {
            App::TABLE2
                .into_iter()
                .find(|a| a.abbr().eq_ignore_ascii_case(&s))
                .unwrap_or_else(|| panic!("unknown app {s}"))
        })
        .unwrap_or(App::Bs);

    println!(
        "Fault-handling latency under each policy — {}\n",
        app.abbr()
    );
    println!(
        "{:<16} {:>8} {:>10} {:>10} {:>10} {:>12}",
        "policy", "faults", "mean", "p50", "p99", "max"
    );
    for policy in [
        PolicyKind::Static(Scheme::OnTouch),
        PolicyKind::Static(Scheme::AccessCounter),
        PolicyKind::Static(Scheme::Duplication),
        PolicyKind::GRIT,
    ] {
        let cfg = SimConfig::default();
        let w = WorkloadBuilder::new(app).scale(0.08).intensity(2.0).seed(5).build();
        let p = policy.build(&cfg, w.footprint_pages);
        let sim = Simulation::try_new(cfg, w, p).expect("valid configuration");
        let out = sim.try_run().expect("run failed");
        let fl = out
            .metrics
            .aux("fault_latency_summary")
            .expect("runner always records the summary")
            .to_vec();
        println!(
            "{:<16} {:>8.0} {:>10.0} {:>10.0} {:>10.0} {:>12.0}",
            policy.label(),
            fl[0],
            fl[1],
            fl[2],
            fl[3],
            fl[4]
        );
    }
    println!("\nA fault's cost is dominated by the serial driver service under");
    println!("fault storms: policies that raise fewer faults (duplication on");
    println!("read-shared data, GRIT once adapted) also see shorter queues.");
}
