//! GPU-count scaling study (the §VI-B2 experiment): run one application on
//! 2, 4, 8 and 16 GPUs and report how each placement scheme and GRIT scale
//! when the input size is held constant.
//!
//! ```text
//! cargo run --release --example scaling_study [APP]
//! ```

use grit::experiments::{run_cell_with, ExpConfig, PolicyKind};
use grit::prelude::*;

fn main() {
    let app = std::env::args()
        .nth(1)
        .map(|s| {
            App::TABLE2
                .into_iter()
                .find(|a| a.abbr().eq_ignore_ascii_case(&s))
                .unwrap_or_else(|| panic!("unknown app {s}"))
        })
        .unwrap_or(App::Gemm);
    let exp = ExpConfig {
        scale: 0.08,
        intensity: 2.0,
        seed: 42,
    };

    println!("=== {} scaling (input held constant) ===\n", app.abbr());
    println!(
        "{:>5}  {:>12} {:>12} {:>12} {:>12}   {:>8}",
        "GPUs", "on-touch", "access-ctr", "duplication", "grit", "grit vs OT"
    );

    for gpus in [2usize, 4, 8, 16] {
        let cfg = SimConfig::with_gpus(gpus);
        let run =
            |p: PolicyKind| run_cell_with(app, p, &exp, cfg.clone(), None).metrics.total_cycles;
        let ot = run(PolicyKind::Static(Scheme::OnTouch));
        let ac = run(PolicyKind::Static(Scheme::AccessCounter));
        let d = run(PolicyKind::Static(Scheme::Duplication));
        let g = run(PolicyKind::GRIT);
        println!(
            "{gpus:>5}  {ot:>12} {ac:>12} {d:>12} {g:>12}   {:>7.2}x",
            ot as f64 / g as f64
        );
    }

    println!("\nSharing intensifies with GPU count (§VI-B2): every page is");
    println!("touched by more GPUs, so migration ping-pong hits on-touch");
    println!("hardest while GRIT keeps the read-shared data replicated and");
    println!("the private data pinned, whatever the node size.");
}
