//! Trace tooling: generate a workload, validate it against its paper
//! characterization band, serialize it to the versioned binary format,
//! load it back, and replay it through the simulator — all bit-identical.
//!
//! ```text
//! cargo run --release --example trace_tooling
//! ```

use grit::experiments::PolicyKind;
use grit::prelude::*;
use grit_workloads::{characterize, read_trace, validate, write_trace};

fn main() {
    let app = App::St;
    let build = || WorkloadBuilder::new(app).scale(0.05).intensity(1.5).seed(99).build();

    // 1. Validate the generated trace against the paper's band for ST.
    let c = validate(app, build()).expect("ST must match its characterization band");
    println!("== generated {} trace ==", app.abbr());
    println!("pages:      {}", c.pages);
    println!("accesses:   {}", c.accesses);
    println!("shared:     {:.1}% of pages", 100.0 * c.shared_pages);
    println!("writes:     {:.1}% of accesses", 100.0 * c.write_accesses);
    println!(
        "shared-RW:  {:.1}% of pages (paper: 99%)",
        100.0 * c.shared_rw_pages
    );

    // 2. Serialize and reload.
    let mut buf = Vec::new();
    write_trace(&build(), &mut buf).expect("in-memory serialization cannot fail");
    println!(
        "\nserialized: {} bytes ({:.1} B/access)",
        buf.len(),
        buf.len() as f64 / c.accesses as f64
    );
    let loaded = read_trace(buf.as_slice()).expect("round trip");
    let c2 = characterize(loaded);
    assert_eq!(c.accesses, c2.accesses);

    // 3. Replay both through the simulator: identical results.
    let cfg = SimConfig::default();
    let run = |w: grit_workloads::MultiGpuWorkload| {
        let p = PolicyKind::GRIT.build(&cfg, w.footprint_pages);
        let sim = Simulation::try_new(cfg.clone(), w, p).expect("valid configuration");
        sim.try_run().expect("run failed").metrics
    };
    let direct = run(build());
    let replayed = run(read_trace(buf.as_slice()).expect("round trip"));
    println!(
        "\ndirect run:   {} cycles, {} faults",
        direct.total_cycles,
        direct.faults.total_faults()
    );
    println!(
        "replayed run: {} cycles, {} faults",
        replayed.total_cycles,
        replayed.faults.total_faults()
    );
    assert_eq!(direct.total_cycles, replayed.total_cycles);
    assert_eq!(direct.faults.total_faults(), replayed.faults.total_faults());
    println!("\nbit-identical: the simulator is a pure function of the trace.");
}
