//! Reproduce the paper's §IV characterization on any workload: page
//! sharing and read/write attributes (Figs. 4 & 9), the per-interval GPU
//! mix of the hottest shared page (Fig. 5), and the neighbor-agreement
//! behind Neighboring-Aware Prediction (Figs. 6–8).
//!
//! ```text
//! cargo run --release --example page_attribute_analysis [APP]
//! ```

use grit::experiments::{run_cell, run_cell_with, ExpConfig, PolicyKind};
use grit::prelude::*;

fn main() {
    let app = std::env::args()
        .nth(1)
        .map(|s| {
            App::TABLE2
                .into_iter()
                .find(|a| a.abbr().eq_ignore_ascii_case(&s))
                .unwrap_or_else(|| {
                    panic!("unknown app {s}; use one of BFS BS C2D FIR GEMM MM SC ST")
                })
        })
        .unwrap_or(App::St);
    let exp = ExpConfig {
        scale: 0.08,
        intensity: 2.0,
        seed: 42,
    };

    // Pass 1: whole-run attributes on the on-touch baseline.
    let scout = run_cell(app, PolicyKind::Static(Scheme::OnTouch), &exp);
    let s = scout.page_attrs;
    println!(
        "=== {} ({}, {} pattern) ===",
        app.abbr(),
        app.full_name(),
        format_args!("{:?}", app.pattern())
    );
    println!("pages touched: {}", s.total_pages);
    println!(
        "private {:>5.1}% | shared {:>5.1}%   (accesses: {:>5.1}% / {:>5.1}%)",
        100.0 * (1.0 - s.shared_page_frac()),
        100.0 * s.shared_page_frac(),
        100.0 * (1.0 - s.shared_access_frac()),
        100.0 * s.shared_access_frac(),
    );
    println!(
        "read    {:>5.1}% | rd-wr  {:>5.1}%   (accesses: {:>5.1}% / {:>5.1}%)",
        100.0 * (1.0 - s.read_write_page_frac()),
        100.0 * s.read_write_page_frac(),
        100.0 * (1.0 - s.read_write_access_frac()),
        100.0 * s.read_write_access_frac(),
    );
    println!(
        "shared read-write: {:.1}%",
        100.0 * s.shared_read_write_frac()
    );

    // Pass 2: track the hottest shared page over time (Fig. 5 style).
    if let Some(page) = scout.attrs.hottest(2) {
        let interval = (scout.metrics.total_cycles / 24).max(1);
        let obs = ObserverConfig {
            track_page: Some(page),
            interval_cycles: interval,
            grid_page_bins: 64,
            grid_intervals: 50,
            scheme_timeline: false,
        };
        let out = run_cell_with(
            app,
            PolicyKind::Static(Scheme::OnTouch),
            &exp,
            SimConfig::default(),
            Some(obs),
        );
        let observer = out.observer.expect("observer configured");

        println!("\nhottest shared page: {page}");
        println!("per-interval access mix (each row: % by GPU0..GPU3):");
        for (i, fr) in observer.page_by_gpu.fractions().iter().enumerate().take(16) {
            let bars: String = fr
                .iter()
                .map(|f| match (f * 4.0).round() as u32 {
                    0 => '.',
                    1 => '-',
                    2 => '+',
                    3 => '*',
                    _ => '#',
                })
                .collect();
            println!(
                "  interval {i:>2}  [{bars}]  {:?}",
                fr.iter().map(|f| (100.0 * f).round() as u32).collect::<Vec<_>>()
            );
        }

        if let Some(grid) = &observer.grid_private_shared {
            println!(
                "\nneighbor-page attribute agreement (the §IV-C observation NAP exploits): {:.1}%",
                100.0 * grid.neighbor_agreement()
            );
        }
    } else {
        println!("\n(no shared page to track — the workload is fully private)");
    }
}
