//! Quickstart: run one multi-GPU workload under GRIT and under the three
//! uniform schemes, then print a small comparison.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use grit::experiments::PolicyKind;
use grit::prelude::*;

fn main() {
    // Table I baseline system: 4 GPUs, 4 KB pages, 70 %-of-footprint
    // memory per GPU, NVLink-v2 + PCIe-v4.
    let cfg = SimConfig::default();

    // GEMM at 10 % of its Table II footprint: the two input matrices are
    // read-shared by every GPU, the output tiles are private read-write.
    let build = || {
        WorkloadBuilder::new(App::Gemm)
            .num_gpus(cfg.num_gpus)
            .scale(0.10)
            .intensity(2.0)
            .seed(42)
            .build()
    };

    println!(
        "GEMM on a {}-GPU node, {} pages footprint\n",
        cfg.num_gpus,
        build().footprint_pages
    );
    println!(
        "{:<16} {:>12} {:>9} {:>8} {:>8} {:>8}",
        "policy", "cycles", "faults", "migr", "dup", "remote"
    );

    let mut baseline = 0u64;
    for policy in [
        PolicyKind::Static(Scheme::OnTouch),
        PolicyKind::Static(Scheme::AccessCounter),
        PolicyKind::Static(Scheme::Duplication),
        PolicyKind::GRIT,
    ] {
        let workload = build();
        let p = policy.build(&cfg, workload.footprint_pages);
        let sim = Simulation::try_new(cfg.clone(), workload, p).expect("valid configuration");
        let out = sim.try_run().expect("run failed");
        let m = &out.metrics;
        if baseline == 0 {
            baseline = m.total_cycles;
        }
        println!(
            "{:<16} {:>12} {:>9} {:>8} {:>8} {:>8}   ({:.2}x vs on-touch)",
            policy.label(),
            m.total_cycles,
            m.faults.total_faults(),
            m.faults.migrations,
            m.faults.duplications,
            m.remote_accesses,
            baseline as f64 / m.total_cycles as f64,
        );
    }

    println!("\nGRIT wins by duplicating the read-shared inputs while keeping");
    println!("the private read-write output tiles under on-touch migration.");
}
