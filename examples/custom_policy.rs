//! Implementing a custom page-placement policy against the UVM driver's
//! `PlacementPolicy` trait — here a "read-duplicate, write-migrate" policy
//! that decides per fault from the access type alone, with no tracking
//! state at all. Compare it to GRIT on a read-heavy and a write-heavy
//! workload.
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```

use grit::experiments::PolicyKind;
use grit::prelude::*;
use grit_uvm::{CentralPageTable, FaultInfo, PageState, PolicyDecision, Resolution};

/// Duplicate on read faults, migrate on write faults. Stateless: the
/// simplest conceivable "fine-grained" policy, and a useful strawman — it
/// reacts to the *current* access instead of the page's history, so it
/// re-duplicates pages that are about to be written and migrates pages
/// that are about to be shared.
struct ReadDupWriteMigrate;

impl PlacementPolicy for ReadDupWriteMigrate {
    fn name(&self) -> String {
        "read-dup/write-migrate".into()
    }

    fn on_fault(
        &mut self,
        fault: &FaultInfo,
        _page: &PageState,
        table: &mut CentralPageTable,
    ) -> PolicyDecision {
        let (scheme, resolution) = if fault.kind.is_write() {
            (Scheme::OnTouch, Resolution::Migrate)
        } else {
            (Scheme::Duplication, Resolution::Duplicate)
        };
        table.set_scheme(fault.vpn, scheme);
        PolicyDecision::plain(resolution)
    }
}

fn run(app: App, policy: Box<dyn PlacementPolicy>) -> u64 {
    let cfg = SimConfig::default();
    let workload = WorkloadBuilder::new(app).scale(0.08).intensity(2.0).seed(7).build();
    let sim = Simulation::try_new(cfg, workload, policy).expect("valid configuration");
    sim.try_run().expect("run failed").metrics.total_cycles
}

fn grit(app: App) -> u64 {
    let cfg = SimConfig::default();
    let workload = WorkloadBuilder::new(app).scale(0.08).intensity(2.0).seed(7).build();
    let p = PolicyKind::GRIT.build(&cfg, workload.footprint_pages);
    let sim = Simulation::try_new(cfg, workload, p).expect("valid configuration");
    sim.try_run().expect("run failed").metrics.total_cycles
}

fn main() {
    println!("Custom policy vs GRIT (cycles, lower is better)\n");
    println!(
        "{:<6} {:>14} {:>14} {:>10}",
        "app", "custom", "grit", "grit wins"
    );
    for app in [App::Bfs, App::Gemm, App::Bs, App::St] {
        let custom = run(app, Box::new(ReadDupWriteMigrate));
        let g = grit(app);
        println!(
            "{:<6} {:>14} {:>14} {:>9.2}x",
            app.abbr(),
            custom,
            g,
            custom as f64 / g as f64
        );
    }
    println!("\nThe stateless policy thrashes on read-write shared pages (BS, ST):");
    println!("every read re-duplicates what the next write collapses. GRIT's");
    println!("fault counting and read/write bit avoid exactly that ping-pong.");
}
