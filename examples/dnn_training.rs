//! Model-parallel DNN training under dynamic page placement (the §VI-F
//! experiment): VGG16 and ResNet18 pipelines where weights are private per
//! stage and activations flow producer→consumer between pipeline-adjacent
//! GPUs.
//!
//! ```text
//! cargo run --release --example dnn_training
//! ```

use grit::experiments::{run_cell, ExpConfig, PolicyKind};
use grit::prelude::*;

fn main() {
    let exp = ExpConfig {
        scale: 0.08,
        intensity: 2.0,
        seed: 42,
    };

    println!("Model-parallel DNN training, 4 GPUs\n");
    for app in App::DNN {
        let ot = run_cell(app, PolicyKind::Static(Scheme::OnTouch), &exp).metrics;
        let grit = run_cell(app, PolicyKind::GRIT, &exp).metrics;
        let attrs = run_cell(app, PolicyKind::Static(Scheme::OnTouch), &exp).page_attrs;

        println!("=== {} ===", app.abbr());
        println!(
            "  pages: {} ({:.0}% private weights, {:.0}% pipeline-shared activations)",
            attrs.total_pages,
            100.0 * (1.0 - attrs.shared_page_frac()),
            100.0 * attrs.shared_page_frac(),
        );
        println!(
            "  on-touch: {:>12} cycles, {:>6} faults, {:>5} migrations",
            ot.total_cycles,
            ot.faults.total_faults(),
            ot.faults.migrations
        );
        println!(
            "  grit:     {:>12} cycles, {:>6} faults, {:>5} migrations  ({:+.1}%)",
            grit.total_cycles,
            grit.faults.total_faults(),
            grit.faults.migrations,
            100.0 * (ot.total_cycles as f64 / grit.total_cycles as f64 - 1.0),
        );
        let (ot_mix, ac_mix, dup_mix) = grit.scheme_mix.fractions();
        println!(
            "  GRIT scheme mix at L2-TLB misses: {:.0}% on-touch, {:.0}% access-counter, {:.0}% duplication\n",
            100.0 * ot_mix,
            100.0 * ac_mix,
            100.0 * dup_mix
        );
    }
    println!("The producer-consumer activation buffers fault only twice per");
    println!("handoff, so GRIT keeps them under on-touch; its gains come from");
    println!("the weight-gradient pages it detects as private read-write.");
}
