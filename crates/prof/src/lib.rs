//! Engine self-profiling: where does *wall-clock* time go inside a cell?
//!
//! The simulator's existing observability is all in the *simulated* cycle
//! domain (trace events, latency breakdowns, histograms). This crate adds
//! the other axis: span-based wall-clock phase timers, speculation
//! telemetry for the sharded engine, and a Chrome trace-event export —
//! the profiling layer the 32–64-GPU scale work needs before it can be
//! driven by data instead of guesses.
//!
//! # Design
//!
//! * **Zero overhead when disabled.** [`span`] loads one relaxed atomic
//!   and returns an inert guard — no clock read, no allocation, no lock.
//!   Every instrumentation site in the engine pays only that load.
//! * **Per-thread lock-free accumulators.** When enabled, each thread
//!   owns a slot of relaxed atomic counters (nanoseconds and
//!   span counts per [`Phase`]). Slots register once in a global list;
//!   [`phase_totals`] merges them on demand. Nothing on the hot path
//!   takes a lock, so the sharded engine's determinism surfaces — which
//!   are all in the cycle domain — are untouched by timing.
//! * **Determinism boundary.** Wall-clock data is inherently
//!   nondeterministic and lives only here and in the report's `wall`
//!   section. Cycle-domain profile data (queue-depth and latency
//!   histograms) is recorded by the simulator structures themselves and
//!   never flows through this crate.
//!
//! Spans nest: a [`Phase::Migration`] span covers its inner
//! [`Phase::FabricTransfer`] spans, so phase totals are *inclusive* and
//! do not sum to the run's wall time.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// One engine phase a wall-clock span can be attributed to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Workload trace generation (or workload-cache materialization).
    TraceBuild,
    /// Address translation: TLB lookups and page-table walks.
    Translate,
    /// UVM driver fault servicing (includes the resolution it applies).
    FaultHandling,
    /// Page migration between memories (nested inside fault handling
    /// when the fault resolves to a migration).
    Migration,
    /// Fabric link booking: GPU↔GPU, host staging and PCIe transfers.
    FabricTransfer,
    /// Sharded engine: finding the cut and merging speculative logs.
    SpecClassify,
    /// Sharded engine: workers speculatively advancing pure accesses.
    SpecExecute,
    /// Sharded engine: rewinding entries past the cut.
    SpecRollback,
    /// Sharded engine: committing surviving entries in canonical order.
    SpecCommit,
}

/// Number of [`Phase`] variants (array sizes).
pub const NUM_PHASES: usize = 9;

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::TraceBuild,
        Phase::Translate,
        Phase::FaultHandling,
        Phase::Migration,
        Phase::FabricTransfer,
        Phase::SpecClassify,
        Phase::SpecExecute,
        Phase::SpecRollback,
        Phase::SpecCommit,
    ];

    /// Stable snake_case name used in reports and trace exports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::TraceBuild => "trace_build",
            Phase::Translate => "translate",
            Phase::FaultHandling => "fault_handling",
            Phase::Migration => "migration",
            Phase::FabricTransfer => "fabric_transfer",
            Phase::SpecClassify => "spec_classify",
            Phase::SpecExecute => "spec_execute",
            Phase::SpecRollback => "spec_rollback",
            Phase::SpecCommit => "spec_commit",
        }
    }

    /// Parses a [`Phase::name`] back to the phase.
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.iter().copied().find(|p| p.name() == name)
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Aggregated wall-clock time of one phase across all threads.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PhaseTotal {
    /// The phase.
    pub phase: Phase,
    /// Total nanoseconds spent inside spans of this phase (inclusive of
    /// nested child phases).
    pub nanos: u64,
    /// Number of spans recorded.
    pub count: u64,
}

/// One captured span, for trace-event export.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpanEvent {
    /// The phase.
    pub phase: Phase,
    /// Start offset in nanoseconds from the process profiling origin.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Registration id of the recording thread (dense, starting at 0).
    pub tid: u64,
}

/// Speculation telemetry for one sharded (`--sim-threads`) run.
///
/// Inherently thread-count-dependent (a serial run has zero rounds), so
/// it lives in the report's `speculation` section, outside the
/// byte-identity comparison surface.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SpecStats {
    /// Optimistic rounds executed.
    pub rounds: u64,
    /// Events speculatively executed by workers.
    pub speculated: u64,
    /// Speculated events that survived the cut and committed.
    pub committed: u64,
    /// Speculated events rewound past the cut.
    pub rewound: u64,
    /// Events executed through the serial path (cuts + degraded bursts).
    pub serial: u64,
    /// Rounds in which at least one shard stopped at the lookahead
    /// horizon with input remaining (rather than at a serial event).
    pub horizon_stalls: u64,
    /// Cycles of speculative headroom lost to the horizon: for each
    /// horizon-stalled shard, how far past the horizon its next event
    /// was ready to run.
    pub horizon_stall_cycles: u64,
    /// Committed speculative events per GPU (load-imbalance view).
    pub per_gpu_committed: Vec<u64>,
}

impl SpecStats {
    /// Fraction of speculated events that were rewound (0 when nothing
    /// was speculated).
    pub fn rollback_rate(&self) -> f64 {
        if self.speculated == 0 {
            0.0
        } else {
            self.rewound as f64 / self.speculated as f64
        }
    }

    /// Ratio of the busiest GPU's committed events to the mean (1.0 when
    /// perfectly balanced or empty).
    pub fn load_imbalance(&self) -> f64 {
        let n = self.per_gpu_committed.len();
        let total: u64 = self.per_gpu_committed.iter().sum();
        if n == 0 || total == 0 {
            return 1.0;
        }
        let max = *self.per_gpu_committed.iter().max().expect("non-empty") as f64;
        max / (total as f64 / n as f64)
    }

    /// Element-wise accumulation of another run's stats.
    pub fn merge(&mut self, other: &SpecStats) {
        self.rounds += other.rounds;
        self.speculated += other.speculated;
        self.committed += other.committed;
        self.rewound += other.rewound;
        self.serial += other.serial;
        self.horizon_stalls += other.horizon_stalls;
        self.horizon_stall_cycles += other.horizon_stall_cycles;
        if self.per_gpu_committed.len() < other.per_gpu_committed.len() {
            self.per_gpu_committed.resize(other.per_gpu_committed.len(), 0);
        }
        for (a, b) in self.per_gpu_committed.iter_mut().zip(&other.per_gpu_committed) {
            *a += b;
        }
    }
}

/// Per-thread lock-free accumulator: relaxed atomics per phase, plus a
/// bounded event buffer used only when capture is on.
struct ThreadSlot {
    nanos: [AtomicU64; NUM_PHASES],
    counts: [AtomicU64; NUM_PHASES],
    events: Mutex<Vec<SpanEvent>>,
    dropped: AtomicU64,
    tid: u64,
}

/// Cap on captured events per thread; beyond it spans still accumulate
/// into the phase totals but are dropped from the trace export.
const EVENT_CAP: usize = 1 << 20;

impl ThreadSlot {
    fn new(tid: u64) -> Self {
        ThreadSlot {
            nanos: std::array::from_fn(|_| AtomicU64::new(0)),
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            events: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            tid,
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static CAPTURE: AtomicBool = AtomicBool::new(false);
static TRACK_PHASE: AtomicBool = AtomicBool::new(false);
/// 0 = idle; otherwise `Phase` index + 1 of the innermost live span.
static CURRENT_PHASE: AtomicUsize = AtomicUsize::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

fn registry() -> &'static Mutex<Vec<Arc<ThreadSlot>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadSlot>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn spec() -> &'static Mutex<SpecStats> {
    static SPEC: OnceLock<Mutex<SpecStats>> = OnceLock::new();
    SPEC.get_or_init(|| Mutex::new(SpecStats::default()))
}

/// Process-wide time origin: all captured span timestamps are offsets
/// from the first profiled instant, so one run's events share one axis.
fn origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

thread_local! {
    static SLOT: Arc<ThreadSlot> = {
        let slot = Arc::new(ThreadSlot::new(NEXT_TID.fetch_add(1, Ordering::Relaxed)));
        registry().lock().expect("prof registry poisoned").push(slot.clone());
        slot
    };
}

/// Turns phase timing on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether phase timing is on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns per-span event capture (for trace export) on or off. Implies
/// nothing about [`set_enabled`]; capture only records when both are on.
pub fn set_capture(on: bool) {
    CAPTURE.store(on, Ordering::Relaxed);
}

/// Turns innermost-live-phase tracking (for progress heartbeats) on or
/// off. Off by default: it adds two extra stores per span.
pub fn set_track_current(on: bool) {
    TRACK_PHASE.store(on, Ordering::Relaxed);
}

/// The innermost phase a live span is currently attributing time to on
/// *any* thread, when [`set_track_current`] is on. Best-effort (races
/// between threads resolve arbitrarily) — suitable for heartbeat lines,
/// nothing else.
pub fn current_phase() -> Option<Phase> {
    match CURRENT_PHASE.load(Ordering::Relaxed) {
        0 => None,
        i => Some(Phase::ALL[i - 1]),
    }
}

/// An RAII span: created by [`span`], attributes its lifetime's
/// wall-clock duration to a phase on drop. Inert when profiling is
/// disabled.
pub struct SpanGuard {
    live: Option<(Phase, Instant, usize)>,
}

/// Opens a wall-clock span attributed to `phase`. When profiling is
/// disabled this is one relaxed atomic load and returns an inert guard.
#[inline]
pub fn span(phase: Phase) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard { live: None };
    }
    let prev = if TRACK_PHASE.load(Ordering::Relaxed) {
        CURRENT_PHASE.swap(phase.index() + 1, Ordering::Relaxed)
    } else {
        0
    };
    SpanGuard {
        live: Some((phase, Instant::now(), prev)),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((phase, start, prev)) = self.live.take() else {
            return;
        };
        let dur = start.elapsed();
        let nanos = dur.as_nanos().min(u128::from(u64::MAX)) as u64;
        SLOT.with(|slot| {
            slot.nanos[phase.index()].fetch_add(nanos, Ordering::Relaxed);
            slot.counts[phase.index()].fetch_add(1, Ordering::Relaxed);
            if CAPTURE.load(Ordering::Relaxed) {
                let start_ns =
                    start.duration_since(origin()).as_nanos().min(u128::from(u64::MAX)) as u64;
                let mut events = slot.events.lock().expect("prof events poisoned");
                if events.len() < EVENT_CAP {
                    events.push(SpanEvent {
                        phase,
                        start_ns,
                        dur_ns: nanos,
                        tid: slot.tid,
                    });
                } else {
                    slot.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        if TRACK_PHASE.load(Ordering::Relaxed) {
            CURRENT_PHASE.store(prev, Ordering::Relaxed);
        }
    }
}

/// Phase totals summed across every thread that ever recorded a span,
/// in [`Phase::ALL`] order. Phases with no spans report zeros.
pub fn phase_totals() -> Vec<PhaseTotal> {
    let slots = registry().lock().expect("prof registry poisoned");
    Phase::ALL
        .iter()
        .map(|&phase| {
            let k = phase.index();
            let (nanos, count) = slots.iter().fold((0u64, 0u64), |(n, c), s| {
                (
                    n + s.nanos[k].load(Ordering::Relaxed),
                    c + s.counts[k].load(Ordering::Relaxed),
                )
            });
            PhaseTotal {
                phase,
                nanos,
                count,
            }
        })
        .collect()
}

/// Drains every thread's captured span events, sorted by start time,
/// plus the number of events dropped to the per-thread cap.
pub fn drain_events() -> (Vec<SpanEvent>, u64) {
    let slots = registry().lock().expect("prof registry poisoned");
    let mut all = Vec::new();
    let mut dropped = 0;
    for slot in slots.iter() {
        all.append(&mut slot.events.lock().expect("prof events poisoned"));
        dropped += slot.dropped.swap(0, Ordering::Relaxed);
    }
    all.sort_by_key(|e| (e.start_ns, e.tid));
    (all, dropped)
}

/// Accumulates one run's speculation telemetry into the process totals.
pub fn record_spec(stats: &SpecStats) {
    spec().lock().expect("prof spec poisoned").merge(stats);
}

/// The accumulated speculation telemetry.
pub fn spec_stats() -> SpecStats {
    spec().lock().expect("prof spec poisoned").clone()
}

/// Zeroes every accumulator: phase totals, captured events, speculation
/// telemetry. Thread registrations survive (slots are reused).
pub fn reset() {
    let slots = registry().lock().expect("prof registry poisoned");
    for slot in slots.iter() {
        for k in 0..NUM_PHASES {
            slot.nanos[k].store(0, Ordering::Relaxed);
            slot.counts[k].store(0, Ordering::Relaxed);
        }
        slot.events.lock().expect("prof events poisoned").clear();
        slot.dropped.store(0, Ordering::Relaxed);
    }
    *spec().lock().expect("prof spec poisoned") = SpecStats::default();
}

/// Renders captured events as a Chrome trace-event (Perfetto-loadable)
/// JSON document: complete (`"ph":"X"`) events with microsecond
/// timestamps, plus thread-name metadata. `dropped` (from
/// [`drain_events`]) is recorded as a document-level field when nonzero.
pub fn chrome_trace_json(events: &[SpanEvent], dropped: u64) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\"displayTimeUnit\":\"ms\",");
    if dropped > 0 {
        let _ = write!(out, "\"droppedSpans\":{dropped},");
    }
    out.push_str("\"traceEvents\":[");
    let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    let mut first = true;
    for tid in &tids {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
             \"args\":{{\"name\":\"sim-{tid}\"}}}}"
        );
    }
    for e in events {
        if !first {
            out.push(',');
        }
        first = false;
        // Chrome trace timestamps are microseconds; keep three decimals
        // so short spans stay visible.
        let ts = e.start_ns as f64 / 1000.0;
        let dur = e.dur_ns as f64 / 1000.0;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"grit\",\"ph\":\"X\",\"ts\":{ts:.3},\
             \"dur\":{dur:.3},\"pid\":0,\"tid\":{}}}",
            e.phase.name(),
            e.tid
        );
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Profiling state is process-global; tests in this binary serialize
    /// on one lock so enable/reset cycles don't interleave.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_span_records_nothing() {
        let _g = guard();
        reset();
        set_enabled(false);
        drop(span(Phase::Translate));
        let t = phase_totals();
        assert!(t.iter().all(|p| p.nanos == 0 && p.count == 0), "{t:?}");
    }

    #[test]
    fn enabled_span_accumulates() {
        let _g = guard();
        reset();
        set_enabled(true);
        {
            let _s = span(Phase::FaultHandling);
            std::hint::black_box(0u64);
        }
        set_enabled(false);
        let t = phase_totals();
        let fh = t.iter().find(|p| p.phase == Phase::FaultHandling).unwrap();
        assert_eq!(fh.count, 1);
        assert!(t.iter().filter(|p| p.phase != Phase::FaultHandling).all(|p| p.count == 0));
    }

    #[test]
    fn capture_produces_sorted_events_and_chrome_json() {
        let _g = guard();
        reset();
        set_enabled(true);
        set_capture(true);
        for phase in [Phase::Migration, Phase::FabricTransfer] {
            let _s = span(phase);
        }
        set_capture(false);
        set_enabled(false);
        let (events, dropped) = drain_events();
        assert_eq!(events.len(), 2);
        assert_eq!(dropped, 0);
        assert!(events.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
        let json = chrome_trace_json(&events, dropped);
        assert!(json.contains("\"traceEvents\":["), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"migration\""), "{json}");
        // A second drain is empty: events move out.
        assert_eq!(drain_events().0.len(), 0);
    }

    #[test]
    fn threads_merge_into_totals() {
        let _g = guard();
        reset();
        set_enabled(true);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let _s = span(Phase::SpecExecute);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        set_enabled(false);
        let t = phase_totals();
        let se = t.iter().find(|p| p.phase == Phase::SpecExecute).unwrap();
        assert_eq!(se.count, 4);
    }

    #[test]
    fn current_phase_tracks_nesting() {
        let _g = guard();
        reset();
        set_enabled(true);
        set_track_current(true);
        assert_eq!(current_phase(), None);
        {
            let _outer = span(Phase::FaultHandling);
            assert_eq!(current_phase(), Some(Phase::FaultHandling));
            {
                let _inner = span(Phase::FabricTransfer);
                assert_eq!(current_phase(), Some(Phase::FabricTransfer));
            }
            assert_eq!(current_phase(), Some(Phase::FaultHandling));
        }
        assert_eq!(current_phase(), None);
        set_track_current(false);
        set_enabled(false);
    }

    #[test]
    fn spec_stats_merge_and_rates() {
        let _g = guard();
        reset();
        let mut s = SpecStats {
            rounds: 10,
            speculated: 100,
            committed: 80,
            rewound: 20,
            serial: 10,
            horizon_stalls: 3,
            horizon_stall_cycles: 900,
            per_gpu_committed: vec![60, 20],
        };
        assert!((s.rollback_rate() - 0.2).abs() < 1e-12);
        assert!((s.load_imbalance() - 1.5).abs() < 1e-12);
        s.merge(&SpecStats {
            rounds: 2,
            per_gpu_committed: vec![0, 0, 5],
            ..Default::default()
        });
        assert_eq!(s.rounds, 12);
        assert_eq!(s.per_gpu_committed, vec![60, 20, 5]);
        record_spec(&s);
        assert_eq!(spec_stats().rounds, 12);
        reset();
        assert_eq!(spec_stats(), SpecStats::default());
    }

    #[test]
    fn phase_names_round_trip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
        assert_eq!(Phase::from_name("nope"), None);
    }
}
