//! Property tests for Neighboring-Aware Prediction invariants.

use proptest::prelude::*;

use grit_core::Nap;
use grit_sim::{GroupSize, PageId, Scheme};
use grit_uvm::CentralPageTable;

const FOOTPRINT: u64 = 2048;

fn scheme_strategy() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::OnTouch),
        Just(Scheme::AccessCounter),
        Just(Scheme::Duplication),
    ]
}

/// Every group-bit marking in the table must sit on a base page aligned to
/// its size, and the covering groups of any two pages in the same aligned
/// window must agree.
fn check_group_alignment(table: &CentralPageTable) -> Result<(), String> {
    for (&vpn, state) in table.iter() {
        let pages = state.group.pages();
        if pages > 1 && vpn.vpn() % pages != 0 {
            return Err(format!(
                "group bits {:?} on unaligned page {}",
                state.group, vpn
            ));
        }
    }
    Ok(())
}

/// No page may be covered by two different promoted groups.
fn check_disjoint_cover(table: &CentralPageTable) -> Result<(), String> {
    for p in 0..FOOTPRINT {
        let mut covers = 0;
        for size in [
            GroupSize::Eight,
            GroupSize::SixtyFour,
            GroupSize::FiveTwelve,
        ] {
            let base = PageId(p).group_base(size.pages());
            if table.group_of(base) == size {
                covers += 1;
            }
        }
        if covers > 1 {
            return Err(format!("page {p} covered by {covers} groups"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_change_sequences_preserve_invariants(
        changes in prop::collection::vec((0u64..FOOTPRINT, scheme_strategy()), 1..60)
    ) {
        let mut table = CentralPageTable::new();
        let mut nap = Nap::new(FOOTPRINT);
        for (vpn, scheme) in changes {
            let prev = table.scheme_of(PageId(vpn));
            if prev == Some(scheme) {
                continue; // the policy skips NAP for unchanged decisions
            }
            table.set_scheme(PageId(vpn), scheme);
            nap.on_scheme_change(&mut table, PageId(vpn), scheme, prev);
            check_group_alignment(&table).map_err(TestCaseError::fail)?;
            check_disjoint_cover(&table).map_err(TestCaseError::fail)?;
        }
    }

    #[test]
    fn promotion_requires_majority(
        base in (0u64..FOOTPRINT / 8).prop_map(|b| b * 8),
        members in prop::collection::vec(any::<bool>(), 8),
    ) {
        // Prepare an 8-page window where `members` marks duplication pages;
        // then change the last matching page and check the promotion
        // decision agrees with the majority rule (> 4 of 8).
        let mut table = CentralPageTable::new();
        let mut nap = Nap::new(FOOTPRINT);
        let matching: Vec<u64> =
            (0..8).filter(|&i| members[i as usize]).collect();
        prop_assume!(!matching.is_empty());
        for &i in &matching {
            table.set_scheme(PageId(base + i), Scheme::Duplication);
        }
        let trigger = PageId(base + *matching.last().unwrap());
        nap.on_scheme_change(&mut table, trigger, Scheme::Duplication, None);
        let promoted = table.group_of(PageId(base)) == GroupSize::Eight;
        prop_assert_eq!(
            promoted,
            matching.len() > 4,
            "promotion with {} matching members",
            matching.len()
        );
        if promoted {
            for i in 0..8 {
                prop_assert_eq!(
                    table.scheme_of(PageId(base + i)),
                    Some(Scheme::Duplication)
                );
            }
        }
    }

    #[test]
    fn degradation_always_removes_the_big_group(
        vpn in 0u64..512,
        old in scheme_strategy(),
    ) {
        let new = match old {
            Scheme::OnTouch => Scheme::AccessCounter,
            _ => Scheme::OnTouch,
        };
        let mut table = CentralPageTable::new();
        for p in 0..512 {
            table.set_scheme(PageId(p), old);
        }
        table.set_group(PageId(0), GroupSize::FiveTwelve);
        let mut nap = Nap::new(FOOTPRINT);
        table.set_scheme(PageId(vpn), new);
        nap.on_scheme_change(&mut table, PageId(vpn), new, Some(old));
        prop_assert!(
            table.group_of(PageId(0)) != GroupSize::FiveTwelve,
            "512-group must degrade after a divergent change"
        );
        check_group_alignment(&table).map_err(TestCaseError::fail)?;
        check_disjoint_cover(&table).map_err(TestCaseError::fail)?;
        // The changed page's own 8-window is dissolved to singles.
        prop_assert_eq!(
            table.group_of(PageId(vpn).group_base(8)),
            GroupSize::One
        );
    }
}
