//! Property tests for the PA-Table + PA-Cache store: regardless of cache
//! geometry, evictions and write-backs, the combined structure must count
//! faults exactly like a plain per-page counter.

use std::collections::HashMap;

use proptest::prelude::*;

use grit_core::{PaEntry, PaStore};
use grit_sim::PageId;

#[derive(Clone, Debug)]
enum Op {
    /// `(vpn, is_write)`
    Fault(u64, bool),
    Delete(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => ((0u64..96), any::<bool>()).prop_map(|(v, w)| Op::Fault(v, w)),
        1 => (0u64..96).prop_map(Op::Delete),
    ]
}

fn check_against_model(mut store: PaStore, ops: Vec<Op>) -> Result<(), TestCaseError> {
    let mut model: HashMap<u64, PaEntry> = HashMap::new();
    for op in ops {
        match op {
            Op::Fault(vpn, is_write) => {
                let (entry, latency) = store.record_fault(PageId(vpn), is_write);
                let m = model.entry(vpn).or_default();
                m.apply_fault(is_write);
                prop_assert_eq!(entry, *m, "page {} diverged", vpn);
                prop_assert!(latency > 0, "every lookup path has a cost");
            }
            Op::Delete(vpn) => {
                store.delete(PageId(vpn));
                model.remove(&vpn);
            }
        }
        // Spot-check a handful of pages through the read path.
        for probe in [0u64, 17, 42, 95] {
            prop_assert_eq!(
                store.get(PageId(probe)),
                model.get(&probe).copied(),
                "probe {} diverged",
                probe
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn paper_geometry_counts_exactly(ops in prop::collection::vec(op_strategy(), 1..300)) {
        check_against_model(PaStore::new(true, 2, 200), ops)?;
    }

    #[test]
    fn tiny_cache_counts_exactly_despite_thrashing(
        ops in prop::collection::vec(op_strategy(), 1..300)
    ) {
        // An 8-entry cache thrashes constantly over 96 pages: every count
        // survives the write-back/refill churn.
        check_against_model(PaStore::with_geometry(Some(8), 2, 200), ops)?;
    }

    #[test]
    fn table_only_counts_exactly(ops in prop::collection::vec(op_strategy(), 1..300)) {
        check_against_model(PaStore::new(false, 2, 200), ops)?;
    }

    #[test]
    fn cached_store_is_never_slower_in_total(
        vpns in prop::collection::vec(0u64..32, 1..200)
    ) {
        let mut cached = PaStore::new(true, 2, 200);
        let mut bare = PaStore::new(false, 2, 200);
        let (mut cached_total, mut bare_total) = (0u64, 0u64);
        for v in vpns {
            cached_total += cached.record_fault(PageId(v), false).1;
            bare_total += bare.record_fault(PageId(v), false).1;
        }
        prop_assert!(
            cached_total <= bare_total,
            "PA-Cache must not add total latency: {} vs {}",
            cached_total,
            bare_total
        );
    }
}
