//! The GRIT placement policy: Fault-Aware Initiator + PA-Table/PA-Cache +
//! scheme decision + Neighboring-Aware Prediction, assembled behind the
//! driver's [`PlacementPolicy`] trait (paper Fig. 16).

use grit_sim::{Cycle, Scheme, SimConfig};
use grit_uvm::{
    CentralPageTable, FaultInfo, PageState, PlacementPolicy, PolicyDecision, Resolution,
};

use crate::decision::decide;
use crate::nap::{Nap, NapStats};
use crate::pa_cache::PaStore;

/// GRIT configuration, including the ablation switches of Fig. 20 and the
/// fault-threshold sensitivity of Fig. 21.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GritConfig {
    /// Local + protection faults before a scheme change fires (default 4,
    /// §V-B; Fig. 21 sweeps 2/4/8/16).
    pub fault_threshold: u8,
    /// Enable the hardware PA-Cache (disabled in the "PA-Table only" and
    /// "PA-Table + NAP" ablations).
    pub pa_cache: bool,
    /// PA-Cache capacity in entries (paper: 64; the geometry ablation
    /// sweeps this).
    pub pa_cache_entries: usize,
    /// Enable Neighboring-Aware Prediction.
    pub nap: bool,
    /// PA-Cache hit latency (from [`grit_sim::LatencyConfig::pa_cache_hit`]).
    pub pa_cache_hit_latency: Cycle,
    /// CPU memory access latency for PA-Table traffic
    /// (from [`grit_sim::LatencyConfig::cpu_mem_access`]).
    pub cpu_mem_latency: Cycle,
}

impl GritConfig {
    /// The full GRIT design with the paper's defaults, taking latencies
    /// from a simulation config.
    pub fn full(cfg: &SimConfig) -> Self {
        GritConfig {
            fault_threshold: 4,
            pa_cache: true,
            pa_cache_entries: crate::pa_cache::PA_CACHE_ENTRIES,
            nap: true,
            pa_cache_hit_latency: cfg.lat.pa_cache_hit,
            cpu_mem_latency: cfg.lat.cpu_mem_access,
        }
    }

    /// Fig. 20 ablation: PA-Table only (no PA-Cache, no NAP).
    pub fn table_only(cfg: &SimConfig) -> Self {
        GritConfig {
            pa_cache: false,
            nap: false,
            ..Self::full(cfg)
        }
    }

    /// Fig. 20 ablation: PA-Table + PA-Cache (no NAP).
    pub fn table_and_cache(cfg: &SimConfig) -> Self {
        GritConfig {
            nap: false,
            ..Self::full(cfg)
        }
    }

    /// Fig. 20 ablation: PA-Table + NAP (no PA-Cache).
    pub fn table_and_nap(cfg: &SimConfig) -> Self {
        GritConfig {
            pa_cache: false,
            ..Self::full(cfg)
        }
    }

    /// Replaces the fault threshold (Fig. 21).
    pub fn with_threshold(mut self, threshold: u8) -> Self {
        self.fault_threshold = threshold;
        self
    }
}

/// The GRIT policy (paper §V).
///
/// Pages start under the baseline on-touch scheme; the Fault-Aware
/// Initiator counts each page's faults in the PA-Table (through the
/// PA-Cache), and at the threshold the page's scheme flips to duplication
/// (all-read) or access-counter migration (written), with NAP propagating
/// the decision to aligned neighbor groups.
///
/// ```
/// use grit_core::{GritConfig, GritPolicy};
/// use grit_sim::SimConfig;
/// use grit_uvm::PlacementPolicy;
///
/// let cfg = SimConfig::default();
/// let p = GritPolicy::new(GritConfig::full(&cfg), 8192);
/// assert_eq!(p.name(), "grit");
/// ```
#[derive(Debug)]
pub struct GritPolicy {
    cfg: GritConfig,
    store: PaStore,
    nap: Nap,
    scheme_changes: u64,
}

impl GritPolicy {
    /// Builds GRIT for an address space of `footprint_pages` pages.
    ///
    /// # Panics
    ///
    /// Panics if the fault threshold is zero or the footprint is zero.
    pub fn new(cfg: GritConfig, footprint_pages: u64) -> Self {
        assert!(cfg.fault_threshold > 0, "fault threshold must be non-zero");
        GritPolicy {
            store: PaStore::with_geometry(
                cfg.pa_cache.then_some(cfg.pa_cache_entries),
                cfg.pa_cache_hit_latency,
                cfg.cpu_mem_latency,
            ),
            nap: Nap::new(footprint_pages),
            cfg,
            scheme_changes: 0,
        }
    }

    /// NAP promotion/degradation counters.
    pub fn nap_stats(&self) -> NapStats {
        self.nap.stats()
    }

    /// PA-Cache hit/miss statistics.
    pub fn pa_cache_stats(&self) -> grit_mem::CacheStats {
        self.store.cache_stats()
    }

    /// Scheme changes decided so far.
    pub fn scheme_changes(&self) -> u64 {
        self.scheme_changes
    }

    /// The active configuration.
    pub fn config(&self) -> GritConfig {
        self.cfg
    }

    fn resolution_for(scheme: Scheme) -> Resolution {
        match scheme {
            Scheme::OnTouch => Resolution::Migrate,
            Scheme::AccessCounter => Resolution::MapRemote,
            Scheme::Duplication => Resolution::Duplicate,
        }
    }
}

impl PlacementPolicy for GritPolicy {
    fn name(&self) -> String {
        if self.cfg.pa_cache && self.cfg.nap {
            "grit".into()
        } else {
            format!(
                "grit(pa-table{}{})",
                if self.cfg.pa_cache { "+pa-cache" } else { "" },
                if self.cfg.nap { "+nap" } else { "" }
            )
        }
    }

    fn on_fault(
        &mut self,
        fault: &FaultInfo,
        _page: &PageState,
        table: &mut CentralPageTable,
    ) -> PolicyDecision {
        // Fault-Aware Initiator: count this fault in the PA structures.
        let (entry, decision_latency) = self.store.record_fault(fault.vpn, fault.kind.is_write());
        let current = table.scheme_of(fault.vpn);

        if entry.faults >= self.cfg.fault_threshold {
            // Threshold reached: the page is demonstrably shared; decide
            // per Table III / Fig. 13 and delete the PA entry.
            let new = decide(entry);
            self.store.delete(fault.vpn);
            let scheme_changed = current != Some(new);
            if scheme_changed {
                self.scheme_changes += 1;
                table.set_scheme(fault.vpn, new);
                if self.cfg.nap {
                    self.nap.on_scheme_change(table, fault.vpn, new, current);
                }
            }
            // When the decision matches the previous scheme (only possible
            // for access-counter pages) no group check runs (§V-D).
            return PolicyDecision {
                resolution: Self::resolution_for(new),
                decision_latency,
                scheme_changed,
            };
        }

        // Below threshold: follow the current scheme bits — which NAP may
        // already have rewritten, letting the page adopt the predicted
        // scheme without reaching the threshold (Fig. 16 step 3, case 1).
        // Unset bits mean the baseline on-touch scheme; record it so the
        // Fig. 19 scheme-mix metric sees the effective scheme.
        let effective = current.unwrap_or(Scheme::OnTouch);
        if current.is_none() {
            table.set_scheme(fault.vpn, effective);
        }
        PolicyDecision {
            resolution: Self::resolution_for(effective),
            decision_latency,
            scheme_changed: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grit_sim::{AccessKind, GpuId, GroupSize, PageId};
    use grit_uvm::FaultKind;

    fn cfg() -> SimConfig {
        SimConfig::default()
    }

    fn fault(gpu: u8, vpn: u64, kind: AccessKind) -> FaultInfo {
        FaultInfo {
            now: 0,
            gpu: GpuId::new(gpu),
            vpn: PageId(vpn),
            kind,
            fault: FaultKind::Local,
        }
    }

    fn fire(
        p: &mut GritPolicy,
        t: &mut CentralPageTable,
        gpu: u8,
        vpn: u64,
        kind: AccessKind,
    ) -> PolicyDecision {
        let f = fault(gpu, vpn, kind);
        let state = t.note_fault(f.gpu, f.vpn, f.kind.is_write());
        p.on_fault(&f, &state, t)
    }

    #[test]
    fn starts_with_on_touch_baseline() {
        let sim = cfg();
        let mut p = GritPolicy::new(GritConfig::full(&sim), 1024);
        let mut t = CentralPageTable::new();
        let d = fire(&mut p, &mut t, 0, 5, AccessKind::Read);
        assert_eq!(d.resolution, Resolution::Migrate);
        assert!(!d.scheme_changed);
        assert_eq!(t.scheme_of(PageId(5)), Some(Scheme::OnTouch));
    }

    #[test]
    fn read_shared_page_flips_to_duplication_at_threshold() {
        let sim = cfg();
        let mut p = GritPolicy::new(GritConfig::full(&sim), 1024);
        let mut t = CentralPageTable::new();
        for gpu in 0..3 {
            let d = fire(&mut p, &mut t, gpu, 7, AccessKind::Read);
            assert!(!d.scheme_changed);
        }
        let d = fire(&mut p, &mut t, 3, 7, AccessKind::Read);
        assert!(d.scheme_changed);
        assert_eq!(d.resolution, Resolution::Duplicate);
        assert_eq!(t.scheme_of(PageId(7)), Some(Scheme::Duplication));
        assert_eq!(p.scheme_changes(), 1);
    }

    #[test]
    fn written_shared_page_flips_to_access_counter() {
        let sim = cfg();
        let mut p = GritPolicy::new(GritConfig::full(&sim), 1024);
        let mut t = CentralPageTable::new();
        fire(&mut p, &mut t, 0, 7, AccessKind::Write);
        fire(&mut p, &mut t, 1, 7, AccessKind::Read);
        fire(&mut p, &mut t, 0, 7, AccessKind::Read);
        let d = fire(&mut p, &mut t, 1, 7, AccessKind::Read);
        assert!(d.scheme_changed);
        assert_eq!(d.resolution, Resolution::MapRemote);
        assert_eq!(t.scheme_of(PageId(7)), Some(Scheme::AccessCounter));
    }

    #[test]
    fn pa_entry_deleted_after_change_and_recounts() {
        let sim = cfg();
        let mut p = GritPolicy::new(GritConfig::full(&sim), 1024);
        let mut t = CentralPageTable::new();
        for _ in 0..4 {
            fire(&mut p, &mut t, 0, 9, AccessKind::Read);
        }
        assert_eq!(t.scheme_of(PageId(9)), Some(Scheme::Duplication));
        // Entry was deleted: the next fault counts from 1 again, and the
        // page keeps duplicating meanwhile.
        let d = fire(&mut p, &mut t, 1, 9, AccessKind::Read);
        assert!(!d.scheme_changed);
        assert_eq!(d.resolution, Resolution::Duplicate);
    }

    #[test]
    fn duplicated_page_with_writes_adapts_to_access_counter() {
        let sim = cfg();
        let mut p = GritPolicy::new(GritConfig::full(&sim), 1024);
        let mut t = CentralPageTable::new();
        for _ in 0..4 {
            fire(&mut p, &mut t, 0, 9, AccessKind::Read);
        }
        assert_eq!(t.scheme_of(PageId(9)), Some(Scheme::Duplication));
        // Write-collapse storms (protection faults) re-register the page
        // and flip it to access-counter migration.
        for _ in 0..4 {
            fire(&mut p, &mut t, 1, 9, AccessKind::Write);
        }
        assert_eq!(t.scheme_of(PageId(9)), Some(Scheme::AccessCounter));
        assert_eq!(p.scheme_changes(), 2);
    }

    #[test]
    fn repeated_ac_decision_skips_nap() {
        let sim = cfg();
        let mut p = GritPolicy::new(GritConfig::full(&sim), 1024);
        let mut t = CentralPageTable::new();
        // Flip page 3 to AC.
        for _ in 0..4 {
            fire(&mut p, &mut t, 0, 3, AccessKind::Write);
        }
        assert_eq!(t.scheme_of(PageId(3)), Some(Scheme::AccessCounter));
        let promotions_before = p.nap_stats().promotions;
        let degradations_before = p.nap_stats().degradations;
        // Four more write faults: decision is AC again -> no group check,
        // no scheme-change flag.
        for _ in 0..3 {
            fire(&mut p, &mut t, 1, 3, AccessKind::Write);
        }
        let d = fire(&mut p, &mut t, 1, 3, AccessKind::Write);
        assert!(!d.scheme_changed);
        assert_eq!(p.nap_stats().promotions, promotions_before);
        assert_eq!(p.nap_stats().degradations, degradations_before);
    }

    #[test]
    fn nap_promotes_neighborhoods() {
        let sim = cfg();
        let mut p = GritPolicy::new(GritConfig::full(&sim), 1024);
        let mut t = CentralPageTable::new();
        // Flip pages 0..5 of the first 8-group to duplication one by one;
        // the fifth change creates a majority and promotes the group.
        for vpn in 0..5u64 {
            for _ in 0..4 {
                fire(&mut p, &mut t, 0, vpn, AccessKind::Read);
            }
        }
        assert_eq!(t.group_of(PageId(0)), GroupSize::Eight);
        // The untouched neighbors inherited duplication...
        assert_eq!(t.scheme_of(PageId(6)), Some(Scheme::Duplication));
        // ...so their very first fault duplicates without any threshold.
        let d = fire(&mut p, &mut t, 2, 6, AccessKind::Read);
        assert_eq!(d.resolution, Resolution::Duplicate);
        assert!(!d.scheme_changed);
    }

    #[test]
    fn ablations_change_decision_latency() {
        let sim = cfg();
        let mut full = GritPolicy::new(GritConfig::full(&sim), 64);
        let mut table_only = GritPolicy::new(GritConfig::table_only(&sim), 64);
        let mut t1 = CentralPageTable::new();
        let mut t2 = CentralPageTable::new();
        fire(&mut full, &mut t1, 0, 1, AccessKind::Read);
        let d_full = fire(&mut full, &mut t1, 0, 1, AccessKind::Read);
        fire(&mut table_only, &mut t2, 0, 1, AccessKind::Read);
        let d_table = fire(&mut table_only, &mut t2, 0, 1, AccessKind::Read);
        assert!(d_full.decision_latency < d_table.decision_latency);
        assert_eq!(d_table.decision_latency, 2 * sim.lat.cpu_mem_access);
    }

    #[test]
    fn threshold_sensitivity() {
        let sim = cfg();
        let mut p = GritPolicy::new(GritConfig::full(&sim).with_threshold(2), 64);
        let mut t = CentralPageTable::new();
        fire(&mut p, &mut t, 0, 1, AccessKind::Read);
        let d = fire(&mut p, &mut t, 1, 1, AccessKind::Read);
        assert!(d.scheme_changed, "threshold 2 fires on the second fault");
    }

    #[test]
    fn names_reflect_ablation() {
        let sim = cfg();
        assert_eq!(GritPolicy::new(GritConfig::full(&sim), 1).name(), "grit");
        assert_eq!(
            GritPolicy::new(GritConfig::table_only(&sim), 1).name(),
            "grit(pa-table)"
        );
        assert_eq!(
            GritPolicy::new(GritConfig::table_and_cache(&sim), 1).name(),
            "grit(pa-table+pa-cache)"
        );
        assert_eq!(
            GritPolicy::new(GritConfig::table_and_nap(&sim), 1).name(),
            "grit(pa-table+nap)"
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_threshold_rejected() {
        let sim = cfg();
        let _ = GritPolicy::new(GritConfig::full(&sim).with_threshold(0), 1);
    }
}
