//! Neighboring-Aware Prediction (paper §V-D, Fig. 15).
//!
//! NAP exploits the attribute similarity of consecutive pages (§IV-C):
//! when a page's scheme changes, the eight-page aligned group around it is
//! checked; if more than half of those pages already use the new scheme,
//! the scheme is propagated to the whole group and the group is *promoted*
//! (group bits `01`), recursively up to 64-page (`10`) and 512-page (`11`)
//! groups. A divergent scheme change inside a promoted group *degrades* it
//! back into eight sub-groups. Group bits live only in each group's base
//! page (Table V); this module maintains that invariant on the centralized
//! page table.
//!
//! The group work happens in the background (§V-D: "does not block GPU
//! execution"), so NAP adds no critical-path latency — only PTE updates.

use grit_sim::{GroupSize, PageId, Scheme};
use grit_uvm::CentralPageTable;

/// Promotion/degradation activity counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct NapStats {
    /// Group promotions performed (any size).
    pub promotions: u64,
    /// Group degradations performed (any size).
    pub degradations: u64,
    /// Scheme bits written by propagation.
    pub pages_propagated: u64,
}

/// The Neighboring-Aware Predictor.
#[derive(Clone, Debug)]
pub struct Nap {
    footprint_pages: u64,
    stats: NapStats,
}

impl Nap {
    /// A predictor for an address space of `footprint_pages` pages.
    ///
    /// # Panics
    ///
    /// Panics if the footprint is zero.
    pub fn new(footprint_pages: u64) -> Self {
        assert!(footprint_pages > 0, "footprint must be non-zero");
        Nap {
            footprint_pages,
            stats: NapStats::default(),
        }
    }

    /// Activity counters.
    pub fn stats(&self) -> NapStats {
        self.stats
    }

    /// The group currently covering `p`, resolved top-down from base-page
    /// group bits: `(base, size)`.
    pub fn covering_group(table: &CentralPageTable, p: PageId) -> (PageId, GroupSize) {
        for size in [
            GroupSize::FiveTwelve,
            GroupSize::SixtyFour,
            GroupSize::Eight,
        ] {
            let base = p.group_base(size.pages());
            if table.group_of(base) == size {
                return (base, size);
            }
        }
        (p, GroupSize::One)
    }

    /// Handles a scheme change of page `p` from `prev` to `new`:
    /// degradation of any covering group, then promotion checks.
    ///
    /// Per §V-D, when the newly determined scheme equals the previous one
    /// (possible only for access-counter pages) the group check is skipped
    /// entirely to avoid promotion/degradation ping-pong — the caller must
    /// not invoke this method in that case; it is asserted here.
    pub fn on_scheme_change(
        &mut self,
        table: &mut CentralPageTable,
        p: PageId,
        new: Scheme,
        prev: Option<Scheme>,
    ) {
        assert!(
            prev != Some(new),
            "NAP must not run when the scheme is unchanged (anti ping-pong rule)"
        );

        // 1. Degrade the covering group, if any: the group no longer shares
        //    one scheme.
        let (base, size) = Self::covering_group(table, p);
        if size != GroupSize::One {
            self.degrade(table, base, size, p);
        }

        // 2. Promotion: check the eight-page neighborhood, then recurse
        //    upward while the majority condition holds.
        self.try_promote(table, p, new);
    }

    /// Splits `(base, size)` into eight sub-groups; the sub-group holding
    /// `p` degrades recursively down to single pages.
    fn degrade(&mut self, table: &mut CentralPageTable, base: PageId, size: GroupSize, p: PageId) {
        self.stats.degradations += 1;
        let sub = size.demote().expect("degrade never called on single pages");
        let sub_pages = sub.pages();
        for i in 0..8 {
            let sub_base = base.offset(i * sub_pages);
            table.set_group(sub_base, sub);
        }
        let p_sub_base = p.group_base(sub_pages);
        if sub == GroupSize::One {
            // Table V has no explicit entry below eight pages: the paper
            // sets the changed page's group bits to "00" and leaves the
            // other seven pages as singles too (an 8-group dissolves).
            table.set_group(p_sub_base, GroupSize::One);
        } else {
            self.degrade(table, p_sub_base, sub, p);
        }
    }

    /// Attempts promotion of the group containing `p`, recursively growing
    /// while more than half of the members already use `new`.
    fn try_promote(&mut self, table: &mut CentralPageTable, p: PageId, new: Scheme) {
        // Level 1: eight single pages -> 8-group.
        let base8 = p.group_base(8);
        let matching = (0..8)
            .filter(|&i| {
                let q = base8.offset(i);
                q.vpn() < self.footprint_pages && table.scheme_of(q) == Some(new)
            })
            .count();
        if matching <= 4 {
            return;
        }
        self.propagate(table, base8, 8, new);
        table.set_group(base8, GroupSize::Eight);
        self.stats.promotions += 1;

        // Level 2: eight 8-groups -> 64-group.
        let base64 = p.group_base(64);
        let matching = (0..8)
            .filter(|&i| {
                let b = base64.offset(i * 8);
                b.vpn() < self.footprint_pages
                    && table.group_of(b) == GroupSize::Eight
                    && table.scheme_of(b) == Some(new)
            })
            .count();
        if matching <= 4 {
            return;
        }
        self.propagate(table, base64, 64, new);
        for i in 0..8 {
            table.set_group(base64.offset(i * 8), GroupSize::One);
        }
        table.set_group(base64, GroupSize::SixtyFour);
        self.stats.promotions += 1;

        // Level 3: eight 64-groups -> 512-group (one 2 MB page-table page).
        let base512 = p.group_base(512);
        let matching = (0..8)
            .filter(|&i| {
                let b = base512.offset(i * 64);
                b.vpn() < self.footprint_pages
                    && table.group_of(b) == GroupSize::SixtyFour
                    && table.scheme_of(b) == Some(new)
            })
            .count();
        if matching <= 4 {
            return;
        }
        self.propagate(table, base512, 512, new);
        for i in 0..8 {
            table.set_group(base512.offset(i * 64), GroupSize::One);
        }
        table.set_group(base512, GroupSize::FiveTwelve);
        self.stats.promotions += 1;
    }

    /// Writes `new` into the scheme bits of every in-footprint page of the
    /// group.
    fn propagate(&mut self, table: &mut CentralPageTable, base: PageId, pages: u64, new: Scheme) {
        for i in 0..pages {
            let q = base.offset(i);
            if q.vpn() >= self.footprint_pages {
                break;
            }
            if table.scheme_of(q) != Some(new) {
                table.set_scheme(q, new);
                self.stats.pages_propagated += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with(schemes: &[(u64, Scheme)]) -> CentralPageTable {
        let mut t = CentralPageTable::new();
        for &(p, s) in schemes {
            t.set_scheme(PageId(p), s);
        }
        t
    }

    #[test]
    fn majority_promotes_to_eight_group() {
        // Pages 0..5 use duplication; page 5 just changed to duplication.
        let mut t = table_with(&[
            (0, Scheme::Duplication),
            (1, Scheme::Duplication),
            (2, Scheme::Duplication),
            (3, Scheme::Duplication),
            (4, Scheme::Duplication),
            (5, Scheme::Duplication),
        ]);
        let mut nap = Nap::new(4096);
        nap.on_scheme_change(&mut t, PageId(5), Scheme::Duplication, None);
        assert_eq!(t.group_of(PageId(0)), GroupSize::Eight);
        // Propagation covered the whole group.
        for p in 0..8 {
            assert_eq!(t.scheme_of(PageId(p)), Some(Scheme::Duplication));
        }
        assert_eq!(nap.stats().promotions, 1);
        assert_eq!(nap.stats().pages_propagated, 2); // pages 6 and 7
    }

    #[test]
    fn minority_does_not_promote() {
        let mut t = table_with(&[
            (0, Scheme::Duplication),
            (1, Scheme::Duplication),
            (2, Scheme::Duplication),
            (3, Scheme::AccessCounter),
        ]);
        let mut nap = Nap::new(4096);
        // Page 3 changed to AC; only 1 of 8 pages uses AC.
        nap.on_scheme_change(
            &mut t,
            PageId(3),
            Scheme::AccessCounter,
            Some(Scheme::Duplication),
        );
        assert_eq!(t.group_of(PageId(0)), GroupSize::One);
        assert_eq!(nap.stats().promotions, 0);
        // Page 5 untouched.
        assert_eq!(t.scheme_of(PageId(5)), None);
    }

    #[test]
    fn recursive_promotion_to_sixty_four() {
        let mut t = CentralPageTable::new();
        // Seven 8-groups (pages 8..64) already promoted with on-touch.
        for p in 8..64 {
            t.set_scheme(PageId(p), Scheme::OnTouch);
        }
        for g in 1..8 {
            t.set_group(PageId(g * 8), GroupSize::Eight);
        }
        // First group's pages mostly on-touch; page 0 now changes to it.
        for p in 0..8 {
            t.set_scheme(PageId(p), Scheme::OnTouch);
        }
        let mut nap = Nap::new(4096);
        nap.on_scheme_change(&mut t, PageId(0), Scheme::OnTouch, None);
        // Promoted twice: to 8-group and then to 64-group.
        assert_eq!(t.group_of(PageId(0)), GroupSize::SixtyFour);
        // Sub-base group bits were folded into the big group.
        for g in 1..8 {
            assert_eq!(t.group_of(PageId(g * 8)), GroupSize::One);
        }
        assert_eq!(nap.stats().promotions, 2);
    }

    #[test]
    fn degradation_splits_sixty_four_group() {
        let mut t = CentralPageTable::new();
        for p in 0..64 {
            t.set_scheme(PageId(p), Scheme::AccessCounter);
        }
        t.set_group(PageId(0), GroupSize::SixtyFour);
        let mut nap = Nap::new(4096);
        // Page 20 (inside sub-group 2, pages 16..24) changes to duplication.
        t.set_scheme(PageId(20), Scheme::Duplication);
        nap.on_scheme_change(
            &mut t,
            PageId(20),
            Scheme::Duplication,
            Some(Scheme::AccessCounter),
        );
        // The seven unaffected 8-groups stay promoted as 8-groups.
        for g in [0u64, 1, 3, 4, 5, 6, 7] {
            assert_eq!(t.group_of(PageId(g * 8)), GroupSize::Eight, "sub-group {g}");
        }
        // The group containing page 20 dissolved.
        assert_eq!(t.group_of(PageId(16)), GroupSize::One);
        assert!(nap.stats().degradations >= 1);
    }

    #[test]
    fn covering_group_resolves_top_down() {
        let mut t = CentralPageTable::new();
        t.set_group(PageId(0), GroupSize::FiveTwelve);
        assert_eq!(
            Nap::covering_group(&t, PageId(300)),
            (PageId(0), GroupSize::FiveTwelve)
        );
        let mut t = CentralPageTable::new();
        t.set_group(PageId(64), GroupSize::SixtyFour);
        assert_eq!(
            Nap::covering_group(&t, PageId(100)),
            (PageId(64), GroupSize::SixtyFour)
        );
        let t = CentralPageTable::new();
        assert_eq!(
            Nap::covering_group(&t, PageId(9)),
            (PageId(9), GroupSize::One)
        );
    }

    #[test]
    fn footprint_bounds_promotion_checks() {
        // Only 6 pages exist; 5 use duplication -> still a majority of the
        // 8-slot window, so promotion happens but propagation stops at the
        // footprint edge.
        let mut t = table_with(&[
            (0, Scheme::Duplication),
            (1, Scheme::Duplication),
            (2, Scheme::Duplication),
            (3, Scheme::Duplication),
            (4, Scheme::Duplication),
        ]);
        let mut nap = Nap::new(6);
        nap.on_scheme_change(&mut t, PageId(4), Scheme::Duplication, None);
        assert_eq!(t.group_of(PageId(0)), GroupSize::Eight);
        assert_eq!(t.scheme_of(PageId(5)), Some(Scheme::Duplication));
        // Pages 6, 7 are beyond the footprint and untouched.
        assert_eq!(t.scheme_of(PageId(6)), None);
        assert_eq!(t.scheme_of(PageId(7)), None);
    }

    #[test]
    #[should_panic(expected = "anti ping-pong")]
    fn unchanged_scheme_is_rejected() {
        let mut t = CentralPageTable::new();
        let mut nap = Nap::new(64);
        nap.on_scheme_change(
            &mut t,
            PageId(0),
            Scheme::AccessCounter,
            Some(Scheme::AccessCounter),
        );
    }
}
