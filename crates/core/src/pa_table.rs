//! The software Page Attribute Table (paper §V-C, Fig. 12).
//!
//! The PA-Table lives in CPU memory and records, per faulting page, a
//! read/write bit and a fault counter (local page faults + page protection
//! faults). Entries are deleted once the fault counter reaches the
//! threshold and the page's placement scheme is updated.

use grit_sim::{FxHashMap, PageId};

/// One PA-Table entry's payload (the VPN is the key).
///
/// The hardware format packs the counter into 2 bits
/// ([`grit_uvm::PaTableEntryBits`]); the simulator widens it so the
/// threshold sensitivity study (§VI-B1, thresholds up to 16) runs on the
/// same structure, saturating at [`PaEntry::MAX_FAULTS`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PaEntry {
    /// Read/write bit: set on the first write and sticky for the entry's
    /// lifetime ("once the read/write bit is set to 1, it remains
    /// unchanged during the current scheme lifetime").
    pub write: bool,
    /// Fault counter (local + protection faults since registration).
    pub faults: u8,
}

impl PaEntry {
    /// Saturation bound of the widened fault counter.
    pub const MAX_FAULTS: u8 = u8::MAX;

    /// Applies one fault to the entry.
    pub fn apply_fault(&mut self, is_write: bool) {
        self.faults = self.faults.saturating_add(1);
        self.write |= is_write;
    }
}

/// The in-memory PA-Table.
///
/// ```
/// use grit_core::PaTable;
/// use grit_sim::PageId;
///
/// let mut t = PaTable::new();
/// let e = t.record_fault(PageId(3), false);
/// assert_eq!(e.faults, 1);
/// let e = t.record_fault(PageId(3), true);
/// assert_eq!(e.faults, 2);
/// assert!(e.write);
/// t.delete(PageId(3));
/// assert!(t.get(PageId(3)).is_none());
/// ```
#[derive(Clone, Debug, Default)]
pub struct PaTable {
    entries: FxHashMap<PageId, PaEntry>,
    reads: u64,
    writes: u64,
}

impl PaTable {
    /// An empty table.
    pub fn new() -> Self {
        PaTable::default()
    }

    /// Registers (or updates) the entry for a faulting page and returns the
    /// updated value. Counts one table read + one table write.
    pub fn record_fault(&mut self, vpn: PageId, is_write: bool) -> PaEntry {
        self.reads += 1;
        self.writes += 1;
        let e = self.entries.entry(vpn).or_default();
        e.apply_fault(is_write);
        *e
    }

    /// Current entry for a page, if registered.
    pub fn get(&self, vpn: PageId) -> Option<PaEntry> {
        self.entries.get(&vpn).copied()
    }

    /// Overwrites an entry (PA-Cache write-back path).
    pub fn store(&mut self, vpn: PageId, entry: PaEntry) {
        self.writes += 1;
        self.entries.insert(vpn, entry);
    }

    /// Loads an entry without modifying it (PA-Cache fill path); counts a
    /// table read.
    pub fn load(&mut self, vpn: PageId) -> Option<PaEntry> {
        self.reads += 1;
        self.entries.get(&vpn).copied()
    }

    /// Deletes an entry (scheme change applied, §V-C).
    pub fn delete(&mut self, vpn: PageId) -> Option<PaEntry> {
        self.entries.remove(&vpn)
    }

    /// Registered entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(reads, writes)` to CPU memory performed by the table.
    pub fn mem_ops(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_increments_and_write_bit_sticks() {
        let mut t = PaTable::new();
        t.record_fault(PageId(1), true);
        let e = t.record_fault(PageId(1), false);
        assert_eq!(e.faults, 2);
        assert!(e.write, "write bit must stay set");
    }

    #[test]
    fn counter_saturates() {
        let mut e = PaEntry {
            write: false,
            faults: PaEntry::MAX_FAULTS,
        };
        e.apply_fault(false);
        assert_eq!(e.faults, PaEntry::MAX_FAULTS);
    }

    #[test]
    fn distinct_pages_are_independent() {
        let mut t = PaTable::new();
        t.record_fault(PageId(1), false);
        t.record_fault(PageId(2), true);
        assert_eq!(t.get(PageId(1)).unwrap().faults, 1);
        assert!(!t.get(PageId(1)).unwrap().write);
        assert!(t.get(PageId(2)).unwrap().write);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn delete_removes_entry() {
        let mut t = PaTable::new();
        t.record_fault(PageId(5), false);
        assert_eq!(t.delete(PageId(5)).unwrap().faults, 1);
        assert!(t.delete(PageId(5)).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn load_store_round_trip_counts_ops() {
        let mut t = PaTable::new();
        assert_eq!(t.load(PageId(9)), None);
        t.store(
            PageId(9),
            PaEntry {
                write: true,
                faults: 3,
            },
        );
        assert_eq!(
            t.load(PageId(9)),
            Some(PaEntry {
                write: true,
                faults: 3
            })
        );
        let (r, w) = t.mem_ops();
        assert_eq!((r, w), (2, 1));
    }
}
