//! The hardware Page Attribute Cache (paper §V-C, Fig. 12): 64 entries,
//! 4-way set-associative, indexed by the low 4 bits of the VPN,
//! write-allocate + write-back, LRU replacement.

use grit_mem::{CacheStats, SetAssocCache};
use grit_sim::{Cycle, PageId};

use crate::pa_table::{PaEntry, PaTable};

/// Fixed PA-Cache geometry from the paper.
pub const PA_CACHE_ENTRIES: usize = 64;
/// Fixed PA-Cache associativity from the paper.
pub const PA_CACHE_WAYS: usize = 4;

/// The PA-Cache plus its backing PA-Table, with the paper's access
/// protocol: check the cache first; on a miss fetch (or register) the entry
/// into the cache (write-allocate); update counters in the cache; write
/// evicted entries back to the table; delete from both once the threshold
/// fires.
///
/// ```
/// use grit_core::PaStore;
/// use grit_sim::PageId;
///
/// let mut s = PaStore::new(true, 2, 250);
/// let (e, lat_miss) = s.record_fault(PageId(7), false);
/// assert_eq!(e.faults, 1);
/// let (_, lat_hit) = s.record_fault(PageId(7), true);
/// assert!(lat_hit < lat_miss, "second fault hits the PA-Cache");
/// ```
#[derive(Clone, Debug)]
pub struct PaStore {
    table: PaTable,
    cache: Option<SetAssocCache<PageId, PaEntry>>,
    cache_hit_latency: Cycle,
    mem_latency: Cycle,
}

impl PaStore {
    /// Builds the store with the paper's 64-entry 4-way PA-Cache.
    /// `with_cache` disables the PA-Cache for the PA-Table-only ablation
    /// (Fig. 20); `cache_hit_latency` and `mem_latency` come from
    /// [`grit_sim::LatencyConfig`] (`pa_cache_hit` / `cpu_mem_access`).
    pub fn new(with_cache: bool, cache_hit_latency: Cycle, mem_latency: Cycle) -> Self {
        Self::with_geometry(
            with_cache.then_some(PA_CACHE_ENTRIES),
            cache_hit_latency,
            mem_latency,
        )
    }

    /// Builds the store with an explicit PA-Cache entry count (`None`
    /// disables the cache) — the geometry-sensitivity ablation beyond the
    /// paper's fixed 64 entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of the associativity.
    pub fn with_geometry(
        entries: Option<usize>,
        cache_hit_latency: Cycle,
        mem_latency: Cycle,
    ) -> Self {
        PaStore {
            table: PaTable::new(),
            cache: entries.map(|n| SetAssocCache::with_entries(n, PA_CACHE_WAYS)),
            cache_hit_latency,
            mem_latency,
        }
    }

    /// Applies one fault for `vpn` and returns the updated entry plus the
    /// latency of the lookup/update path.
    pub fn record_fault(&mut self, vpn: PageId, is_write: bool) -> (PaEntry, Cycle) {
        match &mut self.cache {
            None => {
                // No PA-Cache: every fault reads and updates the table in
                // CPU memory (one read + one write).
                let e = self.table.record_fault(vpn, is_write);
                (e, 2 * self.mem_latency)
            }
            Some(cache) => {
                if let Some(e) = cache.get(&vpn) {
                    e.apply_fault(is_write);
                    return (*e, self.cache_hit_latency);
                }
                // Miss: fetch from the PA-Table (write-allocate); a brand
                // new page registers directly in the cache.
                let mut latency = self.cache_hit_latency + self.mem_latency;
                let mut entry = self.table.load(vpn).unwrap_or_default();
                entry.apply_fault(is_write);
                if let Some((victim_vpn, victim)) = cache.insert(vpn, entry) {
                    // Write-back of the LRU victim.
                    self.table.store(victim_vpn, victim);
                    latency += self.mem_latency;
                }
                (entry, latency)
            }
        }
    }

    /// Deletes the page from both the PA-Cache and the PA-Table (scheme
    /// change applied).
    pub fn delete(&mut self, vpn: PageId) {
        if let Some(cache) = &mut self.cache {
            cache.invalidate(&vpn);
        }
        self.table.delete(vpn);
    }

    /// Entry for a page, preferring the cache's (fresher) copy.
    pub fn get(&self, vpn: PageId) -> Option<PaEntry> {
        if let Some(cache) = &self.cache {
            if let Some(e) = cache.peek(&vpn) {
                return Some(*e);
            }
        }
        self.table.get(vpn)
    }

    /// PA-Cache hit/miss statistics (zeros when the cache is disabled).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.as_ref().map(SetAssocCache::stats).unwrap_or_default()
    }

    /// Whether the PA-Cache is enabled.
    pub fn has_cache(&self) -> bool {
        self.cache.is_some()
    }

    /// The backing PA-Table.
    pub fn table(&self) -> &PaTable {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> PaStore {
        PaStore::new(true, 2, 250)
    }

    #[test]
    fn counts_accumulate_across_cache_and_table() {
        let mut s = store();
        for i in 0..3 {
            let (e, _) = s.record_fault(PageId(1), i == 2);
            assert_eq!(e.faults, i as u8 + 1);
        }
        assert!(s.get(PageId(1)).unwrap().write);
    }

    #[test]
    fn table_only_mode_charges_two_memory_accesses() {
        let mut s = PaStore::new(false, 2, 250);
        let (_, lat) = s.record_fault(PageId(1), false);
        assert_eq!(lat, 500);
        assert!(!s.has_cache());
        let (_, lat2) = s.record_fault(PageId(1), false);
        assert_eq!(lat2, 500, "no cache: every fault pays memory latency");
    }

    #[test]
    fn eviction_writes_back_and_refill_restores_count() {
        let mut s = store();
        // Fill one set: VPNs congruent mod 16 share a set (64/4 = 16 sets).
        for k in 0..4 {
            s.record_fault(PageId(16 * k), false);
        }
        // Fifth insertion into the same set evicts VPN 0 (LRU).
        s.record_fault(PageId(64), false);
        // Entry 0 must have been written back; a refetch sees faults = 1
        // and then increments.
        let (e, lat) = s.record_fault(PageId(0), false);
        assert_eq!(e.faults, 2);
        assert!(lat >= 252, "refill pays the table read");
    }

    #[test]
    fn delete_clears_both_levels() {
        let mut s = store();
        s.record_fault(PageId(5), true);
        s.delete(PageId(5));
        assert!(s.get(PageId(5)).is_none());
        // Re-registering starts fresh.
        let (e, _) = s.record_fault(PageId(5), false);
        assert_eq!(e.faults, 1);
        assert!(!e.write);
    }

    #[test]
    fn cache_stats_track_hits() {
        let mut s = store();
        s.record_fault(PageId(3), false);
        s.record_fault(PageId(3), false);
        let st = s.cache_stats();
        assert_eq!(st.hits, 1);
        assert_eq!(st.misses, 1);
    }

    #[test]
    fn custom_geometry_changes_capacity() {
        let mut s = PaStore::with_geometry(Some(8), 2, 250);
        assert!(s.has_cache());
        // Only 2 sets of 4 ways: five conflicting VPNs overflow a set and
        // the write-back path engages far earlier than with 64 entries.
        for k in 0..5u64 {
            s.record_fault(PageId(2 * k), false);
        }
        assert!(s.cache_stats().evictions >= 1);
    }

    #[test]
    fn geometry_matches_paper() {
        assert_eq!(PA_CACHE_ENTRIES, 64);
        assert_eq!(PA_CACHE_WAYS, 4);
        // 64 entries / 4 ways = 16 sets = low 4 bits of VPN.
        assert_eq!(PA_CACHE_ENTRIES / PA_CACHE_WAYS, 16);
    }
}
