//! The scheme-decision mechanism (paper §V-C, Table III and Fig. 13).
//!
//! Any page whose fault counter reaches the threshold is, by construction,
//! a shared page (a private page faults once, migrates, and never faults
//! again), so the runtime decision reduces to the read/write bit: all-read
//! shared pages go to duplication; written shared pages go to
//! access-counter migration.

use grit_sim::Scheme;

use crate::pa_table::PaEntry;

/// Sharing class of a page as characterized in §IV-B.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SharingClass {
    /// Accessed by one GPU over the whole execution.
    Private,
    /// Producer–consumer shared: one GPU dominates per interval.
    PcShared,
    /// All GPUs access it throughout the execution.
    AllShared,
}

/// Read/write class of a page.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RwClass {
    /// Never written.
    Read,
    /// Written at least once.
    ReadWrite,
}

/// The full Table III preference matrix: candidate schemes per page class.
/// The runtime mechanism ([`decide`]) uses only the read/write bit; this
/// matrix documents and tests the characterization behind it.
pub fn preference(sharing: SharingClass, rw: RwClass) -> &'static [Scheme] {
    use Scheme::{AccessCounter, Duplication, OnTouch};
    match (sharing, rw) {
        (SharingClass::Private, RwClass::Read) => &[OnTouch, Duplication],
        (SharingClass::Private, RwClass::ReadWrite) => &[OnTouch],
        (SharingClass::PcShared, RwClass::Read) => &[OnTouch, Duplication],
        (SharingClass::PcShared, RwClass::ReadWrite) => &[OnTouch, AccessCounter],
        (SharingClass::AllShared, RwClass::Read) => &[Duplication],
        (SharingClass::AllShared, RwClass::ReadWrite) => &[AccessCounter],
    }
}

/// The runtime decision of Fig. 13: the page is shared (it reached the
/// fault threshold), so all-read pages duplicate and written pages migrate
/// by access counter.
pub fn decide(entry: PaEntry) -> Scheme {
    if entry.write {
        Scheme::AccessCounter
    } else {
        Scheme::Duplication
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_decision_follows_rw_bit() {
        assert_eq!(
            decide(PaEntry {
                write: false,
                faults: 4
            }),
            Scheme::Duplication
        );
        assert_eq!(
            decide(PaEntry {
                write: true,
                faults: 4
            }),
            Scheme::AccessCounter
        );
    }

    #[test]
    fn table3_private_prefers_on_touch() {
        assert!(preference(SharingClass::Private, RwClass::Read).contains(&Scheme::OnTouch));
        assert_eq!(
            preference(SharingClass::Private, RwClass::ReadWrite),
            &[Scheme::OnTouch]
        );
    }

    #[test]
    fn table3_all_shared_matches_runtime_decision() {
        // The runtime decision implements exactly the all-shared row of
        // Table III, which is the only reachable row at threshold time.
        assert_eq!(
            preference(SharingClass::AllShared, RwClass::Read),
            &[Scheme::Duplication]
        );
        assert_eq!(
            preference(SharingClass::AllShared, RwClass::ReadWrite),
            &[Scheme::AccessCounter]
        );
        assert_eq!(
            decide(PaEntry {
                write: false,
                faults: 4
            }),
            preference(SharingClass::AllShared, RwClass::Read)[0]
        );
        assert_eq!(
            decide(PaEntry {
                write: true,
                faults: 4
            }),
            preference(SharingClass::AllShared, RwClass::ReadWrite)[0]
        );
    }

    #[test]
    fn table3_pc_shared_rows() {
        assert_eq!(
            preference(SharingClass::PcShared, RwClass::ReadWrite),
            &[Scheme::OnTouch, Scheme::AccessCounter]
        );
        assert!(preference(SharingClass::PcShared, RwClass::Read).contains(&Scheme::Duplication));
    }
}
