//! # grit-core
//!
//! The paper's primary contribution: **GRIT**, fine-GRained dynamIc page
//! placemenT (HPCA 2024). GRIT decides, per page and at runtime, which of
//! the three multi-GPU page placement schemes — on-touch migration,
//! access-counter-based migration, or page duplication — a page should
//! employ, and changes that decision as the page's behaviour changes.
//!
//! Three cooperating components (paper §V):
//!
//! * **Fault-Aware Initiator** — uses the stream of local page faults and
//!   page protection faults arriving at the UVM driver as the trigger
//!   signal; a page that keeps faulting is being shared in a way its
//!   current scheme handles badly.
//! * **PA-Table + PA-Cache** — a software Page Attribute Table in CPU
//!   memory (48-bit entries) tracks each faulting page's read/write bit and
//!   fault counter; a 64-entry 4-way hardware PA-Cache absorbs the table
//!   traffic ([`PaStore`]).
//! * **Neighboring-Aware Prediction** — consecutive pages behave alike
//!   (§IV-C), so a scheme decision propagates to aligned 8/64/512-page
//!   groups via PTE group bits, letting neighbors adopt the right scheme
//!   before ever reaching the fault threshold ([`Nap`]).
//!
//! [`GritPolicy`] plugs all of this into the UVM driver's
//! [`grit_uvm::PlacementPolicy`] trait.
//!
//! # Example
//!
//! ```
//! use grit_core::{GritConfig, GritPolicy};
//! use grit_sim::SimConfig;
//! use grit_uvm::UvmDriver;
//!
//! let cfg = SimConfig::default();
//! let policy = GritPolicy::new(GritConfig::full(&cfg), 8192);
//! let driver = UvmDriver::new(cfg, 8192, Box::new(policy));
//! assert_eq!(driver.policy_name(), "grit");
//! ```

#![warn(missing_docs)]

pub mod decision;
pub mod nap;
pub mod pa_cache;
pub mod pa_table;
pub mod policy;

pub use decision::{decide, preference, RwClass, SharingClass};
pub use nap::{Nap, NapStats};
pub use pa_cache::{PaStore, PA_CACHE_ENTRIES, PA_CACHE_WAYS};
pub use pa_table::{PaEntry, PaTable};
pub use policy::{GritConfig, GritPolicy};
