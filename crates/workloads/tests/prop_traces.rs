//! Property tests over every workload generator: traces must stay within
//! the footprint, keep aligned kernel boundaries, and reproduce exactly
//! from their seed regardless of scale, GPU count or page size.

use proptest::prelude::*;

use grit_sim::AccessStream;
use grit_workloads::{App, WorkloadBuilder};

fn app_strategy() -> impl Strategy<Value = App> {
    prop_oneof![
        Just(App::Bfs),
        Just(App::Bs),
        Just(App::C2d),
        Just(App::Fir),
        Just(App::Gemm),
        Just(App::Mm),
        Just(App::Sc),
        Just(App::St),
        Just(App::Vgg16),
        Just(App::Resnet18),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn traces_stay_in_footprint_for_any_shape(
        app in app_strategy(),
        gpus in 1usize..=8,
        seed in any::<u64>(),
    ) {
        let w = WorkloadBuilder::new(app)
            .num_gpus(gpus)
            .scale(0.015)
            .intensity(0.5)
            .seed(seed)
            .build();
        prop_assert_eq!(w.streams.len(), gpus);
        for mut s in w.streams {
            while let Some(a) = s.next_access() {
                prop_assert!(a.vpn.vpn() < w.footprint_pages);
                prop_assert!(a.think > 0);
                prop_assert!((a.line as u64) < 4096 / 64);
            }
        }
    }

    #[test]
    fn barriers_are_aligned_and_monotone(
        app in app_strategy(),
        gpus in 2usize..=8,
        seed in any::<u64>(),
    ) {
        let w = WorkloadBuilder::new(app)
            .num_gpus(gpus)
            .scale(0.015)
            .intensity(0.5)
            .seed(seed)
            .build();
        let phases = w.barriers[0].len();
        prop_assert!(phases > 0, "{app}: every workload has kernel boundaries");
        for (g, (bars, stream)) in w.barriers.iter().zip(&w.streams).enumerate() {
            prop_assert_eq!(bars.len(), phases, "GPU{} barrier count", g);
            let mut prev = 0usize;
            for &b in bars {
                prop_assert!(b >= prev, "barriers must be monotone");
                prop_assert!(b <= stream.remaining(), "barrier beyond stream end");
                prev = b;
            }
        }
    }

    #[test]
    fn traces_reproduce_from_seed(app in app_strategy(), seed in any::<u64>()) {
        let build = || {
            WorkloadBuilder::new(app).scale(0.015).intensity(0.5).seed(seed).build()
        };
        let (a, b) = (build(), build());
        prop_assert_eq!(a.footprint_pages, b.footprint_pages);
        for (mut x, mut y) in a.streams.into_iter().zip(b.streams) {
            loop {
                let (ax, ay) = (x.next_access(), y.next_access());
                prop_assert_eq!(ax, ay);
                if ax.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn footprint_scales_monotonically(app in app_strategy()) {
        let small = WorkloadBuilder::new(app).scale(0.01).build().footprint_pages;
        let large = WorkloadBuilder::new(app).scale(0.03).build().footprint_pages;
        prop_assert!(large >= small);
    }

    #[test]
    fn intensity_lengthens_traces(app in app_strategy(), seed in any::<u64>()) {
        let short = WorkloadBuilder::new(app)
            .scale(0.015)
            .intensity(0.5)
            .seed(seed)
            .build()
            .total_accesses();
        let long = WorkloadBuilder::new(app)
            .scale(0.015)
            .intensity(2.0)
            .seed(seed)
            .build()
            .total_accesses();
        prop_assert!(long >= short, "{app}: intensity must not shorten traces");
    }
}
