//! Binary serialization of generated workload traces.
//!
//! Generated traces are deterministic, but regenerating a full-scale trace
//! costs more than streaming it from disk, and serialized traces can be
//! exchanged between machines or checked into artifact storage. The format
//! is a simple little-endian layout, versioned and self-describing:
//!
//! ```text
//! magic   b"GRTR"
//! version u32            (currently 1)
//! app     u8             (index into the App roster)
//! gpus    u32
//! pages   u64            (footprint)
//! per GPU:
//!   barriers  u64 count, then u64 positions
//!   accesses  u64 count, then per access:
//!     vpn   u64
//!     line  u16
//!     kind  u8           (0 = read, 1 = write)
//!     think u32
//! ```

use std::io::{self, Read, Write};

use grit_sim::{Access, AccessKind, PageId, SliceStream};

use crate::builder::MultiGpuWorkload;
use crate::spec::App;

const MAGIC: &[u8; 4] = b"GRTR";
const VERSION: u32 = 1;

/// The full application roster in serialization order (append-only:
/// indices are part of the on-disk format).
const ROSTER: [App; 12] = [
    App::Bfs,
    App::Bs,
    App::C2d,
    App::Fir,
    App::Gemm,
    App::Mm,
    App::Sc,
    App::St,
    App::Vgg16,
    App::Resnet18,
    App::Spmv,
    App::Pagerank,
];

/// What went wrong while (de)serializing a trace.
///
/// Every decode failure is a typed variant rather than a stringly
/// `InvalidData`, so tools can distinguish "file got truncated" from
/// "file is from a newer build" from "file is not a trace at all" —
/// and a corrupt byte can never panic the reader.
#[derive(Debug)]
pub enum TraceIoError {
    /// The first four bytes are not `b"GRTR"`.
    BadMagic([u8; 4]),
    /// The version field names a format this build does not speak.
    UnsupportedVersion(u32),
    /// The app byte does not index the serialization roster. Carries the
    /// offending byte; the reader cannot know which app it meant.
    UnknownApp(u8),
    /// The app being *written* is missing from the append-only roster —
    /// a build bug (a variant was added without a roster entry).
    AppNotInRoster(App),
    /// The GPU count is zero or implausibly large.
    GpuCountOutOfRange(u32),
    /// An access names a page at or beyond the declared footprint.
    PageBeyondFootprint {
        /// The out-of-range virtual page number.
        vpn: u64,
        /// The declared footprint, in pages.
        footprint: u64,
    },
    /// The access-kind byte is neither read (0) nor write (1).
    BadAccessKind(u8),
    /// A barrier position points past the end of its access stream.
    BarrierBeyondStream {
        /// The barrier position.
        barrier: u64,
        /// The stream length it must not exceed.
        stream_len: u64,
    },
    /// The payload ended before the declared structure did.
    Truncated,
    /// The underlying reader or writer failed.
    Io(io::Error),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::BadMagic(m) => {
                write!(
                    f,
                    "not a GRIT trace (magic {m:02x?}, expected {MAGIC:02x?})"
                )
            }
            TraceIoError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace version {v} (this build reads {VERSION})"
                )
            }
            TraceIoError::UnknownApp(b) => write!(f, "unknown app index {b}"),
            TraceIoError::AppNotInRoster(app) => {
                write!(f, "app {app} missing from the serialization roster")
            }
            TraceIoError::GpuCountOutOfRange(n) => write!(f, "GPU count {n} out of range"),
            TraceIoError::PageBeyondFootprint { vpn, footprint } => {
                write!(
                    f,
                    "access to page {vpn} beyond footprint of {footprint} pages"
                )
            }
            TraceIoError::BadAccessKind(k) => write!(f, "bad access kind {k}"),
            TraceIoError::BarrierBeyondStream {
                barrier,
                stream_len,
            } => {
                write!(
                    f,
                    "barrier at {barrier} beyond stream of {stream_len} accesses"
                )
            }
            TraceIoError::Truncated => write!(f, "trace truncated mid-structure"),
            TraceIoError::Io(e) => write!(f, "trace I/O failed: {e}"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        // A reader hitting EOF mid-field means the file was cut short:
        // surface that as the structural fact it is.
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceIoError::Truncated
        } else {
            TraceIoError::Io(e)
        }
    }
}

fn app_index(app: App) -> Result<u8, TraceIoError> {
    ROSTER
        .iter()
        .position(|a| *a == app)
        .map(|i| i as u8)
        .ok_or(TraceIoError::AppNotInRoster(app))
}

/// Writes a workload to any [`Write`] sink (pass `&mut writer` to keep
/// ownership).
///
/// # Errors
///
/// Returns [`TraceIoError::AppNotInRoster`] if the workload's app has no
/// serialization index; wraps I/O errors from the sink.
pub fn write_trace<W: Write>(workload: &MultiGpuWorkload, mut w: W) -> Result<(), TraceIoError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&[app_index(workload.app)?])?;
    w.write_all(&(workload.streams.len() as u32).to_le_bytes())?;
    w.write_all(&workload.footprint_pages.to_le_bytes())?;
    for (stream, barriers) in workload.streams.iter().zip(&workload.barriers) {
        w.write_all(&(barriers.len() as u64).to_le_bytes())?;
        for &b in barriers {
            w.write_all(&(b as u64).to_le_bytes())?;
        }
        let mut s = stream.clone();
        w.write_all(&(s.remaining() as u64).to_le_bytes())?;
        while let Some(a) = grit_sim::AccessStream::next_access(&mut s) {
            w.write_all(&a.vpn.vpn().to_le_bytes())?;
            w.write_all(&a.line.to_le_bytes())?;
            w.write_all(&[u8::from(a.is_write())])?;
            w.write_all(&a.think.to_le_bytes())?;
        }
    }
    Ok(())
}

fn read_exact<const N: usize, R: Read>(r: &mut R) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Reads a workload previously written with [`write_trace`] (pass
/// `&mut reader` to keep ownership).
///
/// # Errors
///
/// Returns a typed [`TraceIoError`] describing exactly what was wrong:
/// bad magic, unknown version or app, malformed payload, truncation, or
/// an underlying I/O failure. Never panics, whatever the input bytes.
pub fn read_trace<R: Read>(mut r: R) -> Result<MultiGpuWorkload, TraceIoError> {
    let magic = read_exact::<4, _>(&mut r)?;
    if &magic != MAGIC {
        return Err(TraceIoError::BadMagic(magic));
    }
    let version = u32::from_le_bytes(read_exact(&mut r)?);
    if version != VERSION {
        return Err(TraceIoError::UnsupportedVersion(version));
    }
    let [app_idx] = read_exact::<1, _>(&mut r)?;
    let app = *ROSTER.get(app_idx as usize).ok_or(TraceIoError::UnknownApp(app_idx))?;
    let gpus_raw = u32::from_le_bytes(read_exact(&mut r)?);
    if gpus_raw == 0 || gpus_raw > 16 {
        return Err(TraceIoError::GpuCountOutOfRange(gpus_raw));
    }
    let gpus = gpus_raw as usize;
    let footprint_pages = u64::from_le_bytes(read_exact(&mut r)?);

    let mut streams = Vec::with_capacity(gpus);
    let mut barriers = Vec::with_capacity(gpus);
    for _ in 0..gpus {
        // Declared counts are untrusted: cap the preallocation so a
        // corrupt length cannot abort on an absurd reservation — the
        // per-element reads below hit `Truncated` long before any real
        // memory pressure.
        let nbar = u64::from_le_bytes(read_exact(&mut r)?) as usize;
        let mut bars = Vec::with_capacity(nbar.min(1 << 16));
        for _ in 0..nbar {
            bars.push(u64::from_le_bytes(read_exact(&mut r)?) as usize);
        }
        let nacc = u64::from_le_bytes(read_exact(&mut r)?) as usize;
        let mut acc = Vec::with_capacity(nacc.min(1 << 20));
        for _ in 0..nacc {
            let vpn = u64::from_le_bytes(read_exact(&mut r)?);
            if vpn >= footprint_pages {
                return Err(TraceIoError::PageBeyondFootprint {
                    vpn,
                    footprint: footprint_pages,
                });
            }
            let line = u16::from_le_bytes(read_exact(&mut r)?);
            let [kind] = read_exact::<1, _>(&mut r)?;
            let think = u32::from_le_bytes(read_exact(&mut r)?);
            let kind = match kind {
                0 => AccessKind::Read,
                1 => AccessKind::Write,
                k => return Err(TraceIoError::BadAccessKind(k)),
            };
            acc.push(Access {
                vpn: PageId(vpn),
                line,
                kind,
                think,
            });
        }
        if let Some(&last) = bars.last() {
            if last > acc.len() {
                return Err(TraceIoError::BarrierBeyondStream {
                    barrier: last as u64,
                    stream_len: acc.len() as u64,
                });
            }
        }
        streams.push(SliceStream::new(acc));
        barriers.push(bars);
    }
    Ok(MultiGpuWorkload {
        app,
        footprint_pages,
        streams,
        barriers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::WorkloadBuilder;
    use grit_sim::AccessStream;

    fn sample(app: App) -> MultiGpuWorkload {
        WorkloadBuilder::new(app).scale(0.015).intensity(0.5).seed(3).build()
    }

    #[test]
    fn round_trips_every_app() {
        for app in ROSTER {
            let original = sample(app);
            let mut buf = Vec::new();
            write_trace(&original, &mut buf).unwrap();
            let loaded = read_trace(buf.as_slice()).unwrap();
            assert_eq!(loaded.app, original.app);
            assert_eq!(loaded.footprint_pages, original.footprint_pages);
            assert_eq!(loaded.barriers, original.barriers);
            for (mut a, mut b) in loaded.streams.into_iter().zip(original.streams) {
                loop {
                    let (x, y) = (a.next_access(), b.next_access());
                    assert_eq!(x, y, "{app}");
                    if x.is_none() {
                        break;
                    }
                }
            }
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let e = read_trace(&b"NOPE...."[..]).unwrap_err();
        assert!(
            matches!(e, TraceIoError::BadMagic(m) if &m == b"NOPE"),
            "{e:?}"
        );
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        write_trace(&sample(App::Gemm), &mut buf).unwrap();
        buf[4] = 99; // bump version
        let e = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(e, TraceIoError::UnsupportedVersion(99)), "{e:?}");
    }

    #[test]
    fn rejects_unknown_app_byte() {
        let mut buf = Vec::new();
        write_trace(&sample(App::Fir), &mut buf).unwrap();
        buf[8] = 200; // app byte lives after magic + version
        let e = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(e, TraceIoError::UnknownApp(200)), "{e:?}");
    }

    #[test]
    fn rejects_truncation_as_truncated() {
        let mut buf = Vec::new();
        write_trace(&sample(App::Bfs), &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let e = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(e, TraceIoError::Truncated), "{e:?}");
    }

    #[test]
    fn rejects_out_of_footprint_access() {
        let mut buf = Vec::new();
        write_trace(&sample(App::St), &mut buf).unwrap();
        // Footprint field lives at offset 4+4+1+4 = 13; shrink it to 1 so
        // every recorded access lands beyond it.
        buf[13..21].copy_from_slice(&1u64.to_le_bytes());
        let e = read_trace(buf.as_slice()).unwrap_err();
        assert!(
            matches!(e, TraceIoError::PageBeyondFootprint { footprint: 1, .. }),
            "{e:?}"
        );
    }

    #[test]
    fn every_truncation_point_errors_without_panic() {
        // Deterministic truncation fuzz: cutting the trace at *any* byte
        // must produce a structured error, never a panic. Cover every
        // header prefix and a stride through the payload.
        let mut buf = Vec::new();
        write_trace(&sample(App::C2d), &mut buf).unwrap();
        let cut_points = (0..64.min(buf.len())).chain((64..buf.len()).step_by(97));
        for cut in cut_points {
            let e = read_trace(&buf[..cut]).unwrap_err();
            assert!(matches!(e, TraceIoError::Truncated), "cut at {cut}: {e:?}");
        }
    }

    #[test]
    fn every_single_byte_header_corruption_errors_or_stays_valid() {
        // Deterministic corruption fuzz over the whole header and the
        // first stream's length fields: flip each byte through several
        // values; the reader must either reject the bytes with a typed
        // error or parse a (different but) structurally valid trace —
        // and never panic. Payload-only corruptions that keep the
        // structure valid are legitimately accepted.
        let mut buf = Vec::new();
        write_trace(&sample(App::Bs), &mut buf).unwrap();
        let header_len = 37.min(buf.len()); // magic..footprint + barrier count + a few positions
        for offset in 0..header_len {
            for flip in [0x01u8, 0x80, 0xff] {
                let mut corrupt = buf.clone();
                corrupt[offset] ^= flip;
                match read_trace(corrupt.as_slice()) {
                    Ok(w) => {
                        // Whatever parsed must uphold the format's own
                        // promises.
                        assert!(!w.streams.is_empty());
                        assert!(w.footprint_pages > 0);
                    }
                    Err(e) => {
                        assert!(
                            !matches!(e, TraceIoError::Io(_)),
                            "byte {offset} flip {flip:#x}: in-memory read cannot fail I/O: {e:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn loaded_trace_preserves_volume() {
        // Full access-level equality is covered by round_trips_every_app;
        // the end-to-end "same simulation result" guarantee lives in the
        // root crate's integration tests where the runner is available.
        let original = sample(App::Mm);
        let mut buf = Vec::new();
        write_trace(&original, &mut buf).unwrap();
        let loaded = read_trace(buf.as_slice()).unwrap();
        assert_eq!(loaded.total_accesses(), original.total_accesses());
        assert_eq!(loaded.footprint_pages, original.footprint_pages);
    }
}
