//! Binary serialization of generated workload traces.
//!
//! Generated traces are deterministic, but regenerating a full-scale trace
//! costs more than streaming it from disk, and serialized traces can be
//! exchanged between machines or checked into artifact storage. The format
//! is a simple little-endian layout, versioned and self-describing:
//!
//! ```text
//! magic   b"GRTR"
//! version u32            (currently 1)
//! app     u8             (index into the App roster)
//! gpus    u32
//! pages   u64            (footprint)
//! per GPU:
//!   barriers  u64 count, then u64 positions
//!   accesses  u64 count, then per access:
//!     vpn   u64
//!     line  u16
//!     kind  u8           (0 = read, 1 = write)
//!     think u32
//! ```

use std::io::{self, Read, Write};

use grit_sim::{Access, AccessKind, PageId, SliceStream};

use crate::builder::MultiGpuWorkload;
use crate::spec::App;

const MAGIC: &[u8; 4] = b"GRTR";
const VERSION: u32 = 1;

/// The full application roster in serialization order (append-only:
/// indices are part of the on-disk format).
const ROSTER: [App; 12] = [
    App::Bfs,
    App::Bs,
    App::C2d,
    App::Fir,
    App::Gemm,
    App::Mm,
    App::Sc,
    App::St,
    App::Vgg16,
    App::Resnet18,
    App::Spmv,
    App::Pagerank,
];

fn app_index(app: App) -> u8 {
    ROSTER.iter().position(|a| *a == app).expect("app in roster") as u8
}

fn err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Writes a workload to any [`Write`] sink (pass `&mut writer` to keep
/// ownership).
///
/// # Errors
///
/// Propagates I/O errors from the sink.
pub fn write_trace<W: Write>(workload: &MultiGpuWorkload, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&[app_index(workload.app)])?;
    w.write_all(&(workload.streams.len() as u32).to_le_bytes())?;
    w.write_all(&workload.footprint_pages.to_le_bytes())?;
    for (stream, barriers) in workload.streams.iter().zip(&workload.barriers) {
        w.write_all(&(barriers.len() as u64).to_le_bytes())?;
        for &b in barriers {
            w.write_all(&(b as u64).to_le_bytes())?;
        }
        let mut s = stream.clone();
        w.write_all(&(s.remaining() as u64).to_le_bytes())?;
        while let Some(a) = grit_sim::AccessStream::next_access(&mut s) {
            w.write_all(&a.vpn.vpn().to_le_bytes())?;
            w.write_all(&a.line.to_le_bytes())?;
            w.write_all(&[u8::from(a.is_write())])?;
            w.write_all(&a.think.to_le_bytes())?;
        }
    }
    Ok(())
}

fn read_exact<const N: usize, R: Read>(r: &mut R) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Reads a workload previously written with [`write_trace`] (pass
/// `&mut reader` to keep ownership).
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic, unknown version, unknown app or
/// malformed payload; propagates I/O errors otherwise.
pub fn read_trace<R: Read>(mut r: R) -> io::Result<MultiGpuWorkload> {
    if &read_exact::<4, _>(&mut r)? != MAGIC {
        return Err(err("not a GRIT trace (bad magic)"));
    }
    let version = u32::from_le_bytes(read_exact(&mut r)?);
    if version != VERSION {
        return Err(err(format!("unsupported trace version {version}")));
    }
    let [app_idx] = read_exact::<1, _>(&mut r)?;
    let app = *ROSTER
        .get(app_idx as usize)
        .ok_or_else(|| err(format!("unknown app index {app_idx}")))?;
    let gpus = u32::from_le_bytes(read_exact(&mut r)?) as usize;
    if gpus == 0 || gpus > 16 {
        return Err(err(format!("GPU count {gpus} out of range")));
    }
    let footprint_pages = u64::from_le_bytes(read_exact(&mut r)?);

    let mut streams = Vec::with_capacity(gpus);
    let mut barriers = Vec::with_capacity(gpus);
    for _ in 0..gpus {
        let nbar = u64::from_le_bytes(read_exact(&mut r)?) as usize;
        let mut bars = Vec::with_capacity(nbar);
        for _ in 0..nbar {
            bars.push(u64::from_le_bytes(read_exact(&mut r)?) as usize);
        }
        let nacc = u64::from_le_bytes(read_exact(&mut r)?) as usize;
        let mut acc = Vec::with_capacity(nacc);
        for _ in 0..nacc {
            let vpn = u64::from_le_bytes(read_exact(&mut r)?);
            if vpn >= footprint_pages {
                return Err(err(format!("access to page {vpn} beyond footprint")));
            }
            let line = u16::from_le_bytes(read_exact(&mut r)?);
            let [kind] = read_exact::<1, _>(&mut r)?;
            let think = u32::from_le_bytes(read_exact(&mut r)?);
            let kind = match kind {
                0 => AccessKind::Read,
                1 => AccessKind::Write,
                k => return Err(err(format!("bad access kind {k}"))),
            };
            acc.push(Access {
                vpn: PageId(vpn),
                line,
                kind,
                think,
            });
        }
        if let Some(&last) = bars.last() {
            if last > acc.len() {
                return Err(err("barrier beyond stream end"));
            }
        }
        streams.push(SliceStream::new(acc));
        barriers.push(bars);
    }
    Ok(MultiGpuWorkload {
        app,
        footprint_pages,
        streams,
        barriers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::WorkloadBuilder;
    use grit_sim::AccessStream;

    fn sample(app: App) -> MultiGpuWorkload {
        WorkloadBuilder::new(app).scale(0.015).intensity(0.5).seed(3).build()
    }

    #[test]
    fn round_trips_every_app() {
        for app in ROSTER {
            let original = sample(app);
            let mut buf = Vec::new();
            write_trace(&original, &mut buf).unwrap();
            let loaded = read_trace(buf.as_slice()).unwrap();
            assert_eq!(loaded.app, original.app);
            assert_eq!(loaded.footprint_pages, original.footprint_pages);
            assert_eq!(loaded.barriers, original.barriers);
            for (mut a, mut b) in loaded.streams.into_iter().zip(original.streams) {
                loop {
                    let (x, y) = (a.next_access(), b.next_access());
                    assert_eq!(x, y, "{app}");
                    if x.is_none() {
                        break;
                    }
                }
            }
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let e = read_trace(&b"NOPE...."[..]).unwrap_err();
        assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        write_trace(&sample(App::Gemm), &mut buf).unwrap();
        buf[4] = 99; // bump version
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let mut buf = Vec::new();
        write_trace(&sample(App::Bfs), &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_out_of_footprint_access() {
        let mut buf = Vec::new();
        write_trace(&sample(App::St), &mut buf).unwrap();
        // Footprint field lives at offset 4+4+1+4 = 13; shrink it to 1 so
        // every recorded access lands beyond it.
        buf[13..21].copy_from_slice(&1u64.to_le_bytes());
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn loaded_trace_preserves_volume() {
        // Full access-level equality is covered by round_trips_every_app;
        // the end-to-end "same simulation result" guarantee lives in the
        // root crate's integration tests where the runner is available.
        let original = sample(App::Mm);
        let mut buf = Vec::new();
        write_trace(&original, &mut buf).unwrap();
        let loaded = read_trace(buf.as_slice()).unwrap();
        assert_eq!(loaded.total_accesses(), original.total_accesses());
        assert_eq!(loaded.footprint_pages, original.footprint_pages);
    }
}
