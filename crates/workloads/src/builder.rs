//! Workload construction: turns an [`App`] into per-GPU access streams.

use grit_sim::{ConfigError, SimRng, SliceStream};

use crate::apps;
use crate::common::GpuTrace;
use crate::spec::App;

/// Generation context handed to the per-app generators.
#[derive(Clone, Debug)]
pub struct GenCtx {
    /// GPUs in the node.
    pub num_gpus: usize,
    /// Footprint in pages.
    pub pages: u64,
    /// Cache lines per page.
    pub lines_per_page: u16,
    /// Multiplies iteration/pass counts (trace length knob).
    pub intensity: f64,
    /// Deterministic random source.
    pub rng: SimRng,
}

impl GenCtx {
    /// `n` scaled by the intensity, at least 1.
    pub fn reps(&self, n: u64) -> u64 {
        ((n as f64 * self.intensity).round() as u64).max(1)
    }

    /// Per-GPU trace sinks with the given think time.
    pub fn sinks(&mut self, think: u32) -> Vec<GpuTrace> {
        crate::common::make_sinks(&mut self.rng, self.num_gpus, self.lines_per_page, think)
    }
}

/// Builder for a multi-GPU workload trace.
///
/// ```
/// use grit_workloads::{App, WorkloadBuilder};
///
/// let w = WorkloadBuilder::new(App::Gemm)
///     .num_gpus(4)
///     .scale(0.05)
///     .seed(7)
///     .build();
/// assert!(w.footprint_pages > 0);
/// assert_eq!(w.streams.len(), 4);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct WorkloadBuilder {
    app: App,
    num_gpus: usize,
    scale: f64,
    intensity: f64,
    seed: u64,
    page_size: u64,
}

impl WorkloadBuilder {
    /// A builder for `app` with the paper's defaults: 4 GPUs, 4 KB pages,
    /// full-scale footprint.
    pub fn new(app: App) -> Self {
        WorkloadBuilder {
            app,
            num_gpus: 4,
            scale: 1.0,
            intensity: 1.0,
            seed: 0xBEEF,
            page_size: grit_sim::PAGE_SIZE_4K,
        }
    }

    /// Sets the GPU count (Figs. 22–24 sweep 2/8/16).
    pub fn num_gpus(mut self, n: usize) -> Self {
        self.num_gpus = n;
        self
    }

    /// Scales the memory footprint (fraction of Table II's size). The
    /// large-page study (§VI-B3) *enlarges* inputs with `scale > 1`.
    pub fn scale(mut self, s: f64) -> Self {
        self.scale = s;
        self
    }

    /// Scales trace length (iterations/passes) independently of footprint.
    pub fn intensity(mut self, i: f64) -> Self {
        self.intensity = i;
        self
    }

    /// Sets the deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the page size (4 KB baseline, 2 MB in §VI-B3).
    pub fn page_size(mut self, bytes: u64) -> Self {
        self.page_size = bytes;
        self
    }

    /// Generates the workload.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero GPUs, more than 16
    /// GPUs, non-positive scale, or a page size [`try_build`] rejects).
    ///
    /// [`try_build`]: WorkloadBuilder::try_build
    pub fn build(self) -> MultiGpuWorkload {
        assert!(
            self.num_gpus > 0 && self.num_gpus <= 16,
            "GPU count out of range"
        );
        match self.try_build() {
            Ok(w) => w,
            Err(e) => panic!("invalid workload configuration: {e}"),
        }
    }

    /// Generates the workload, reporting degenerate configurations as a
    /// [`ConfigError`] instead of panicking: GPU count outside 1–16,
    /// non-positive scale or intensity, a non-power-of-two page size, a
    /// page size whose line count overflows the simulator's 16-bit line
    /// indices, or a page size larger than the scaled footprint (the
    /// whole working set must span at least one page).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field.
    pub fn try_build(self) -> Result<MultiGpuWorkload, ConfigError> {
        if self.num_gpus == 0 || self.num_gpus > 16 {
            return Err(ConfigError::new(
                "num_gpus",
                format!("{} out of range 1..=16", self.num_gpus),
            ));
        }
        if self.scale.is_nan() || self.scale <= 0.0 {
            return Err(ConfigError::new("scale", "must be positive"));
        }
        if self.intensity.is_nan() || self.intensity <= 0.0 {
            return Err(ConfigError::new("intensity", "must be positive"));
        }
        let lines_per_page = grit_sim::lines_per_page_checked(self.page_size)?;
        let footprint_bytes = (self.app.footprint_bytes() as f64 * self.scale).ceil() as u64;
        if self.page_size > footprint_bytes {
            return Err(ConfigError::new(
                "page_size",
                format!(
                    "{} exceeds the scaled footprint of {footprint_bytes} bytes \
                     ({} at scale {})",
                    self.page_size,
                    self.app.abbr(),
                    self.scale
                ),
            ));
        }
        let pages = (((self.app.footprint_bytes() as f64 * self.scale) / self.page_size as f64)
            .ceil() as u64)
            .max(64);
        let mut ctx = GenCtx {
            num_gpus: self.num_gpus,
            pages,
            lines_per_page,
            intensity: self.intensity,
            rng: SimRng::seeded(self.seed ^ (self.app.abbr().len() as u64) << 32 ^ pages),
        };
        let sinks = apps::generate(self.app, &mut ctx);
        assert_eq!(sinks.len(), self.num_gpus, "generator must fill every GPU");
        let mut streams = Vec::with_capacity(sinks.len());
        let mut barriers = Vec::with_capacity(sinks.len());
        for s in sinks {
            let (acc, bars) = s.into_parts();
            streams.push(SliceStream::new(acc));
            barriers.push(bars);
        }
        let phases = barriers[0].len();
        assert!(
            barriers.iter().all(|b| b.len() == phases),
            "every GPU must see the same kernel-boundary count"
        );
        Ok(MultiGpuWorkload {
            app: self.app,
            footprint_pages: pages,
            streams,
            barriers,
        })
    }
}

/// A generated multi-GPU trace.
#[derive(Clone, Debug)]
pub struct MultiGpuWorkload {
    /// The generating application.
    pub app: App,
    /// Virtual pages in the footprint.
    pub footprint_pages: u64,
    /// One access stream per GPU.
    pub streams: Vec<SliceStream>,
    /// Kernel boundaries per GPU (positions within each stream); all GPUs
    /// carry the same number of boundaries and the runner synchronizes the
    /// node at each one.
    pub barriers: Vec<Vec<usize>>,
}

impl MultiGpuWorkload {
    /// Total accesses across all GPUs.
    pub fn total_accesses(&self) -> u64 {
        self.streams.iter().map(|s| s.remaining() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grit_sim::AccessStream;

    #[test]
    fn every_app_generates_for_every_gpu() {
        for app in App::TABLE2.iter().chain(App::DNN.iter()).chain(App::EXTRA.iter()) {
            let w = WorkloadBuilder::new(*app).scale(0.02).intensity(0.5).build();
            assert_eq!(w.streams.len(), 4, "{app}");
            assert!(w.total_accesses() > 0, "{app}");
            for (g, s) in w.streams.iter().enumerate() {
                assert!(s.remaining() > 0, "{app} GPU{g} got no work");
            }
        }
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let a = WorkloadBuilder::new(App::Bfs).scale(0.02).seed(5).build();
        let b = WorkloadBuilder::new(App::Bfs).scale(0.02).seed(5).build();
        let (mut sa, mut sb) = (a.streams, b.streams);
        for (x, y) in sa.iter_mut().zip(sb.iter_mut()) {
            loop {
                let (ax, ay) = (x.next_access(), y.next_access());
                assert_eq!(ax, ay);
                if ax.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = WorkloadBuilder::new(App::Bfs).scale(0.02).seed(5).build().streams;
        let mut b = WorkloadBuilder::new(App::Bfs).scale(0.02).seed(6).build().streams;
        let mut same = true;
        for _ in 0..200 {
            if a[0].next_access() != b[0].next_access() {
                same = false;
                break;
            }
        }
        assert!(!same);
    }

    #[test]
    fn accesses_stay_in_footprint() {
        for app in App::TABLE2 {
            let w = WorkloadBuilder::new(app).scale(0.02).intensity(0.5).build();
            for mut s in w.streams {
                while let Some(a) = s.next_access() {
                    assert!(
                        a.vpn.vpn() < w.footprint_pages,
                        "{app}: page {} out of {}",
                        a.vpn,
                        w.footprint_pages
                    );
                }
            }
        }
    }

    #[test]
    fn scale_changes_footprint() {
        let small = WorkloadBuilder::new(App::Fir).scale(0.01).build();
        let large = WorkloadBuilder::new(App::Fir).scale(0.05).build();
        assert!(large.footprint_pages > small.footprint_pages);
    }

    #[test]
    fn large_pages_shrink_page_count() {
        let w4k = WorkloadBuilder::new(App::St).scale(0.5).build();
        let w2m = WorkloadBuilder::new(App::St)
            .scale(0.5)
            .page_size(grit_sim::PAGE_SIZE_2M)
            .build();
        assert!(w2m.footprint_pages < w4k.footprint_pages);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_gpus_rejected() {
        let _ = WorkloadBuilder::new(App::Bfs).num_gpus(0).build();
    }

    #[test]
    fn try_build_rejects_degenerate_page_sizes() {
        // Non-power-of-two.
        let err = WorkloadBuilder::new(App::Bfs).page_size(3000).try_build().unwrap_err();
        assert_eq!(err.field, "page_size");
        // Line count would overflow u16 (the old `as u16` cast truncated
        // 4 MB pages to zero lines).
        let err = WorkloadBuilder::new(App::Bfs)
            .page_size(4 * 1024 * 1024)
            .try_build()
            .unwrap_err();
        assert_eq!(err.field, "page_size");
        assert!(err.reason.contains("overflows"), "{}", err.reason);
        // Page larger than the scaled footprint.
        let err = WorkloadBuilder::new(App::Bfs)
            .scale(1e-6)
            .page_size(grit_sim::PAGE_SIZE_2M)
            .try_build()
            .unwrap_err();
        assert_eq!(err.field, "page_size");
        assert!(err.reason.contains("footprint"), "{}", err.reason);
        // Scale and intensity must be positive, GPU count in range.
        assert_eq!(
            WorkloadBuilder::new(App::Bfs).scale(0.0).try_build().unwrap_err().field,
            "scale"
        );
        assert_eq!(
            WorkloadBuilder::new(App::Bfs).intensity(0.0).try_build().unwrap_err().field,
            "intensity"
        );
        assert_eq!(
            WorkloadBuilder::new(App::Bfs).num_gpus(17).try_build().unwrap_err().field,
            "num_gpus"
        );
        // A valid configuration still builds.
        let w = WorkloadBuilder::new(App::Bfs).scale(0.02).try_build().unwrap();
        assert!(w.total_accesses() > 0);
    }

    #[test]
    #[should_panic(expected = "invalid workload configuration")]
    fn build_panics_on_truncating_page_size() {
        let _ = WorkloadBuilder::new(App::Bfs).page_size(4 * 1024 * 1024).build();
    }
}
