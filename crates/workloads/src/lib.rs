//! # grit-workloads
//!
//! Synthetic multi-GPU workload trace generators for the GRIT reproduction:
//! the eight Table II benchmarks (BFS, BS, C2D, FIR, GEMM, MM, SC, ST) and
//! the two §VI-F DNN workloads (VGG16, ResNet18), each reproducing its
//! benchmark's characterized page-sharing and read/write pattern — the
//! behavioural dimension along which the paper's entire evaluation varies.
//!
//! The substitution rationale is recorded in the repository `DESIGN.md`:
//! the original OpenCL binaries and the MGPUSim frontend are not available
//! in a Rust environment, so the generators emit traces with the same
//! *distribution of page behaviours* (private/shared mix, PC-shared vs
//! all-shared phases, read vs read-write intervals, staging by GPU 0 under
//! the §III-B round-robin-fill TB scheduler).
//!
//! # Example
//!
//! ```
//! use grit_workloads::{App, WorkloadBuilder};
//!
//! let w = WorkloadBuilder::new(App::St).scale(0.05).build();
//! assert_eq!(w.app, App::St);
//! assert_eq!(w.streams.len(), 4);
//! assert!(w.total_accesses() > 0);
//! ```

#![warn(missing_docs)]

mod apps;
pub mod builder;
pub mod common;
pub mod spec;
pub mod trace_io;
pub mod validate;

pub use builder::{GenCtx, MultiGpuWorkload, WorkloadBuilder};
pub use common::{tb_to_gpu, GpuTrace, Segment};
pub use spec::{AccessPattern, App};
pub use trace_io::{read_trace, write_trace, TraceIoError};
pub use validate::{characterize, validate, Characterization, Expectation};
