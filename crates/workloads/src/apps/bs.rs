//! BS — Bitonic Sort (AMDAPPSDK, 30 MB, *random*): compare-and-swap stages
//! whose partner distance changes every stage, so each GPU reads *and
//! writes* ever-different remote partitions — the all-shared read-write
//! pattern for which access-counter migration is the best uniform scheme
//! (Fig. 19) and on-touch ping-pongs catastrophically.

use crate::builder::GenCtx;
use crate::common::{barrier_all, GpuTrace, Segment};

/// Generates BS: log²-style stage sweep; at each stage GPU `g` touches its
/// own blocks and the partner blocks at the stage's distance, half of the
/// touches being writes (compare-and-swap).
pub fn generate(ctx: &mut GenCtx) -> Vec<GpuTrace> {
    let mut sinks = ctx.sinks(10);
    let array = Segment::new(0, ctx.pages);
    let g = ctx.num_gpus;

    // The unsorted input arrives from the host (CPU-initialized UVM
    // pages); sorting kernels then read and write it in place.
    let stages = ctx.reps(18);
    // Use 2*G logical blocks so partners can live on other GPUs.
    let blocks = (2 * g as u64).next_power_of_two();
    let log2_blocks = blocks.trailing_zeros() as u64;
    for stage in 0..stages {
        let dist = 1u64 << (stage % log2_blocks.max(1));
        for gpu in 0..g {
            for b in 0..2u64 {
                let my_block = (gpu as u64 * 2 + b) % blocks;
                let partner = my_block ^ dist;
                for block in [my_block, partner] {
                    let seg = array.partition(block as usize, blocks as usize);
                    // Sample half the block per stage, 50 % writes.
                    for _ in 0..(seg.len / 2).max(1) {
                        let p = seg.page(sinks[gpu].rng().below(seg.len));
                        sinks[gpu].burst(p, 6, 0.5);
                    }
                }
            }
        }
        barrier_all(&mut sinks);
    }
    sinks
}

#[cfg(test)]
mod tests {
    use super::*;
    use grit_sim::SimRng;

    fn run() -> (Vec<GpuTrace>, u64) {
        let pages = 800;
        let mut c = GenCtx {
            num_gpus: 4,
            pages,
            lines_per_page: 64,
            intensity: 1.0,
            rng: SimRng::seeded(6),
        };
        (generate(&mut c), pages)
    }

    #[test]
    fn heavily_read_write_shared() {
        let (sinks, pages) = run();
        let mut accessors: Vec<std::collections::HashSet<usize>> =
            vec![Default::default(); pages as usize];
        let mut written = vec![false; pages as usize];
        for (g, s) in sinks.iter().enumerate() {
            for a in s.clone().into_accesses() {
                accessors[a.vpn.vpn() as usize].insert(g);
                written[a.vpn.vpn() as usize] |= a.is_write();
            }
        }
        let shared_rw = accessors.iter().zip(&written).filter(|(s, &w)| s.len() > 1 && w).count();
        assert!(
            shared_rw as f64 > 0.5 * pages as f64,
            "BS must have majority shared-RW pages, got {shared_rw}/{pages}"
        );
    }

    #[test]
    fn balanced_read_write_mix() {
        let (sinks, _pages) = run();
        let (mut reads, mut writes) = (0u64, 0u64);
        for s in sinks.iter() {
            for a in s.clone().into_accesses() {
                if a.is_write() {
                    writes += 1;
                } else {
                    reads += 1;
                }
            }
        }
        let ratio = writes as f64 / (reads + writes) as f64;
        assert!(
            (0.35..=0.65).contains(&ratio),
            "write ratio {ratio} not ~0.5"
        );
    }

    #[test]
    fn partners_change_across_stages() {
        // With 8 blocks, distances cycle 1,2,4: block 0 partners with
        // blocks 1, 2 and 4 across stages.
        let blocks = 8u64;
        let log2 = blocks.trailing_zeros() as u64;
        let partners: std::collections::HashSet<u64> = (0..6).map(|s| 1u64 << (s % log2)).collect();
        assert_eq!(partners.len(), 3);
    }
}
