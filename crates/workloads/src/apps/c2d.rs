//! C2D — Convolution 2D (DNN-Mark, 94 MB, *adjacent*): a layer pipeline
//! whose activation buffers are handed from one GPU to the next — the
//! producer–consumer sharing of Fig. 5(a). A PC-shared page faults only
//! twice (producer, then consumer), staying below GRIT's fault threshold,
//! which is why on-touch remains C2D's dominant scheme (Fig. 19).

use crate::builder::GenCtx;
use crate::common::{barrier_all, GpuTrace, Segment};

/// Number of pipelined layer buffers (single feed-forward pass: each
/// activation buffer is produced once and consumed once, so a PC-shared
/// page faults exactly twice — the §VI-A characterization that keeps C2D
/// under on-touch).
const LAYERS: usize = 24;

/// Generates C2D: 15 % private weights per GPU, 85 % activation buffers
/// written by layer `l`'s GPU and read by layer `l+1`'s GPU.
pub fn generate(ctx: &mut GenCtx) -> Vec<GpuTrace> {
    let mut sinks = ctx.sinks(12);
    let g = ctx.num_gpus;
    let weights = Segment::new(0, (ctx.pages * 40 / 100).max(1));
    // Intensity deepens the network (more layers over the same activation
    // space) rather than repeating epochs: each buffer is still produced
    // once and consumed once, preserving the two-fault PC pattern.
    let layers = (ctx.reps(LAYERS as u64) as usize).max(8);
    let acts = Segment::new(
        weights.end(),
        (ctx.pages - weights.end()).max(layers as u64),
    );

    {
        for layer in 0..layers {
            let producer = layer % g;
            let consumer = (layer + 1) % g;
            let buf = acts.partition(layer, layers);
            // This layer's filter weights: read only by its producer, so
            // the whole weights segment stays private.
            let w = weights.partition(layer, layers);
            for i in 0..w.len {
                sinks[producer].burst_read(w.page(i), 6);
            }
            for i in 0..buf.len {
                // Convolution accumulates: read-modify-write.
                sinks[producer].burst_read(buf.page(i), 2);
                sinks[producer].burst_write(buf.page(i), 8);
            }
            barrier_all(&mut sinks);
            // The consuming GPU reads the buffer in the next phase,
            // line-densely (activations are consumed in full).
            for i in 0..buf.len {
                sinks[consumer].burst_read(buf.page(i), 16);
            }
            barrier_all(&mut sinks);
        }
    }
    sinks
}

#[cfg(test)]
mod tests {
    use super::*;
    use grit_sim::SimRng;

    fn run() -> Vec<GpuTrace> {
        let mut c = GenCtx {
            num_gpus: 4,
            pages: 2000,
            lines_per_page: 64,
            intensity: 1.0,
            rng: SimRng::seeded(3),
        };
        generate(&mut c)
    }

    #[test]
    fn activation_pages_shared_by_exactly_two_gpus() {
        let sinks = run();
        let mut accessors: std::collections::HashMap<u64, std::collections::HashSet<usize>> =
            Default::default();
        for (g, s) in sinks.iter().enumerate() {
            for a in s.clone().into_accesses() {
                if a.vpn.vpn() >= 800 {
                    accessors.entry(a.vpn.vpn()).or_default().insert(g);
                }
            }
        }
        // Producer-consumer: the dominant sharing degree is 2.
        let two = accessors.values().filter(|s| s.len() == 2).count();
        assert!(
            two * 2 > accessors.len(),
            "most activation pages must be PC-shared, got {two}/{}",
            accessors.len()
        );
    }

    #[test]
    fn weights_stay_private() {
        let sinks = run();
        let mut accessors: std::collections::HashMap<u64, std::collections::HashSet<usize>> =
            Default::default();
        for (g, s) in sinks.iter().enumerate() {
            for a in s.clone().into_accesses() {
                if a.vpn.vpn() < 800 {
                    accessors.entry(a.vpn.vpn()).or_default().insert(g);
                }
            }
        }
        assert!(accessors.values().all(|s| s.len() == 1));
    }

    #[test]
    fn buffers_are_written_then_read() {
        let sinks = run();
        // Some pages must see both writes (producer) and reads (consumer).
        let mut wrote = std::collections::HashSet::new();
        let mut read = std::collections::HashSet::new();
        for s in &sinks {
            for a in s.clone().into_accesses() {
                if a.is_write() {
                    wrote.insert(a.vpn.vpn());
                } else if a.vpn.vpn() >= 800 {
                    read.insert(a.vpn.vpn());
                }
            }
        }
        assert!(wrote.intersection(&read).count() > 100);
    }
}
