//! GEMM / MM (AMDAPPSDK, *scatter-gather*): `C = A × B` with the output
//! row-partitioned across GPUs. The input matrices are read-shared by every
//! GPU; the output partition is private read-write (§IV-C walks through
//! exactly this structure for GEMM). Duplication is the best uniform scheme
//! (inputs replicate), but GRIT beats it by keeping the private read-write
//! output under on-touch — avoiding duplication's extra protection fault
//! per output page and its capacity pressure (§VI-A: +17 % GEMM, +9 % MM).
//!
//! MM shares the generator with different segment ratios and pass counts.

use crate::builder::GenCtx;
use crate::common::{barrier_all, GpuTrace, Segment};

/// Generates GEMM-like traffic. `a_frac`/`b_frac` set the input matrix
/// sizes as fractions of the footprint; the remainder is the output C.
pub fn generate(ctx: &mut GenCtx, a_frac: f64, b_frac: f64, passes: u64) -> Vec<GpuTrace> {
    assert!(
        a_frac + b_frac < 1.0,
        "inputs must leave room for the output"
    );
    let mut sinks = ctx.sinks(12);
    let a_len = ((ctx.pages as f64 * a_frac) as u64).max(1);
    let b_len = ((ctx.pages as f64 * b_frac) as u64).max(1);
    let a = Segment::new(0, a_len);
    let b = Segment::new(a.end(), b_len);
    let c = Segment::new(b.end(), (ctx.pages - b.end()).max(1));
    let g = ctx.num_gpus;

    // The input matrices are initialized by the CPU (host-resident UVM
    // pages); no GPU staging kernel runs, so the first GPU touch is a read.

    let passes = ctx.reps(passes);
    for _pass in 0..passes {
        for gpu in 0..g {
            let my_c = c.partition(gpu, g);
            let my_a = a.partition(gpu, g);
            // C = A x B with C row-partitioned: each GPU reads only its
            // own row block of A (private) but gathers the whole of B
            // (read-shared by every GPU).
            for i in 0..my_a.len {
                sinks[gpu].burst_read(my_a.page(i), 20);
            }
            for i in 0..b.len {
                sinks[gpu].burst_read(b.page(i), 20);
            }
            for i in 0..my_c.len {
                let p = my_c.page(i);
                // Read-modify-write accumulation of the private tile.
                sinks[gpu].burst_read(p, 6);
                sinks[gpu].burst_write(p, 10);
            }
        }
        barrier_all(&mut sinks);
    }
    sinks
}

#[cfg(test)]
mod tests {
    use super::*;
    use grit_sim::SimRng;

    /// A = pages 0..150 (row-partitioned, private), B = 150..600 (shared by
    /// every GPU), C = 600..1000 (private read-write tiles).
    fn run() -> Vec<GpuTrace> {
        let mut c = GenCtx {
            num_gpus: 4,
            pages: 1000,
            lines_per_page: 64,
            intensity: 1.0,
            rng: SimRng::seeded(7),
        };
        generate(&mut c, 0.15, 0.45, 4)
    }

    #[test]
    fn b_is_all_shared_read_a_and_c_private() {
        let sinks = run();
        let mut accessors: std::collections::HashMap<u64, std::collections::HashSet<usize>> =
            Default::default();
        let mut writers: std::collections::HashMap<u64, std::collections::HashSet<usize>> =
            Default::default();
        for (g, s) in sinks.iter().enumerate() {
            for a in s.clone().into_accesses() {
                accessors.entry(a.vpn.vpn()).or_default().insert(g);
                if a.is_write() {
                    writers.entry(a.vpn.vpn()).or_default().insert(g);
                }
            }
        }
        for (p, acc) in &accessors {
            if (150..600).contains(p) {
                assert_eq!(acc.len(), 4, "B page {p} must be all-shared");
                assert!(!writers.contains_key(p), "B page {p} written");
            } else {
                assert_eq!(acc.len(), 1, "A/C page {p} must be private");
            }
        }
        // Output tiles are written by exactly one GPU each.
        for (p, w) in &writers {
            assert!(*p >= 600, "writes must land in C");
            assert_eq!(w.len(), 1);
        }
    }

    #[test]
    fn roughly_half_shared_half_private() {
        let sinks = run();
        let mut accessors: std::collections::HashMap<u64, std::collections::HashSet<usize>> =
            Default::default();
        for (g, s) in sinks.iter().enumerate() {
            for a in s.clone().into_accesses() {
                accessors.entry(a.vpn.vpn()).or_default().insert(g);
            }
        }
        let shared = accessors.values().filter(|s| s.len() > 1).count() as f64;
        let frac = shared / accessors.len() as f64;
        assert!(
            (0.35..=0.65).contains(&frac),
            "GEMM shared fraction {frac} not ~0.5"
        );
    }

    #[test]
    #[should_panic(expected = "room for the output")]
    fn input_fractions_validated() {
        let mut c = GenCtx {
            num_gpus: 2,
            pages: 100,
            lines_per_page: 64,
            intensity: 1.0,
            rng: SimRng::seeded(8),
        };
        let _ = generate(&mut c, 0.6, 0.6, 1);
    }
}
