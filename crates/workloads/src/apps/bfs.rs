//! BFS — Breadth-first Search (SHOC, 32 MB, *random*): frontier expansion
//! over a CSR graph. The adjacency structure is read by every GPU at
//! unpredictable offsets (all pages shared, Fig. 4), accesses are heavily
//! read-dominated (Fig. 9), and page duplication wins (Fig. 1) because each
//! GPU can then expand its frontier out of local replicas.

use crate::builder::GenCtx;
use crate::common::{barrier_all, GpuTrace, Segment};

/// Generates BFS: 80 % read-only adjacency scanned randomly (Zipf-skewed
/// hot vertices) by all GPUs; 20 % visited/frontier arrays with sparse
/// random writes.
pub fn generate(ctx: &mut GenCtx) -> Vec<GpuTrace> {
    let mut sinks = ctx.sinks(14);
    let adjacency = Segment::new(0, (ctx.pages * 8 / 10).max(1));
    let visited = Segment::new(adjacency.end(), (ctx.pages - adjacency.end()).max(1));

    // The graph is loaded by the CPU (host-resident UVM pages); the GPUs
    // only ever read the CSR arrays.
    let levels = ctx.reps(8);
    let reads_per_level = (adjacency.len * 6).max(64);
    for _level in 0..levels {
        for gpu in 0..ctx.num_gpus {
            for _ in 0..reads_per_level / ctx.num_gpus as u64 {
                // Neighbour list lookup: random, hot-skewed, whole graph.
                let v = sinks[gpu].rng().zipf(adjacency.len, 1.2);
                sinks[gpu].burst_read(adjacency.page(v), 4);
                // A few expansions mark vertices visited; each GPU owns a
                // partition of the visited bitmap and writes only there
                // (remote marks are queued and applied by the owner).
                if sinks[gpu].rng().chance(0.04) {
                    let mine = visited.partition(gpu, ctx.num_gpus);
                    let w = sinks[gpu].rng().below(mine.len);
                    sinks[gpu].write(mine.page(w));
                } else if sinks[gpu].rng().chance(0.10) {
                    let w = sinks[gpu].rng().below(visited.len);
                    sinks[gpu].read(visited.page(w));
                }
            }
        }
        barrier_all(&mut sinks);
    }
    sinks
}

#[cfg(test)]
mod tests {
    use super::*;
    use grit_sim::SimRng;

    fn run() -> Vec<GpuTrace> {
        let mut c = GenCtx {
            num_gpus: 4,
            pages: 1000,
            lines_per_page: 64,
            intensity: 1.0,
            rng: SimRng::seeded(5),
        };
        generate(&mut c)
    }

    #[test]
    fn read_dominated() {
        let sinks = run();
        let (mut reads, mut writes) = (0u64, 0u64);
        for s in sinks.iter() {
            for a in s.clone().into_accesses().iter() {
                if a.is_write() {
                    writes += 1;
                } else {
                    reads += 1;
                }
            }
        }
        assert!(
            reads > writes * 10,
            "BFS must be read-dominated: {reads} vs {writes}"
        );
    }

    #[test]
    fn adjacency_is_all_shared() {
        let sinks = run();
        let mut accessors: std::collections::HashMap<u64, std::collections::HashSet<usize>> =
            Default::default();
        for (g, s) in sinks.iter().enumerate() {
            for a in s.clone().into_accesses() {
                if a.vpn.vpn() < 800 {
                    accessors.entry(a.vpn.vpn()).or_default().insert(g);
                }
            }
        }
        let shared = accessors.values().filter(|s| s.len() > 1).count();
        assert!(
            shared * 10 > accessors.len() * 8,
            "adjacency must be mostly shared: {shared}/{}",
            accessors.len()
        );
    }

    #[test]
    fn adjacency_never_written() {
        let sinks = run();
        for s in sinks.iter() {
            for a in s.clone().into_accesses() {
                if a.vpn.vpn() < 800 {
                    assert!(!a.is_write());
                }
            }
        }
    }
}
