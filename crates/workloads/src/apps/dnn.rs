//! Model-parallel DNN training (paper §VI-F: VGG16 and ResNet18): layers
//! are placed on GPUs in pipeline order; weights are private to the owning
//! GPU, activations flow producer→consumer between pipeline-adjacent GPUs
//! on the forward pass, and gradients flow back on the backward pass.

use crate::builder::GenCtx;
use crate::common::{barrier_all, tb_to_gpu, GpuTrace, Segment};

/// Relative per-layer parameter counts for VGG16's 13 convolution layers
/// plus its 3 classifier layers (in units of ~10k parameters, from the
/// standard architecture: 3->64, 64->64, 64->128, ... 512->512 conv
/// kernels, then the giant fully connected layers).
pub const VGG16_LAYER_WEIGHTS: [u64; 16] = [
    1, 4, 8, 15, 30, 59, 59, 118, 236, 236, 236, 236, 236, 10276, 1678, 410,
];

/// Relative per-layer parameter counts for ResNet18's 17 convolution
/// layers plus the classifier (3x3 kernels across the 64/128/256/512
/// stages; downsample projections folded into their stage).
pub const RESNET18_LAYER_WEIGHTS: [u64; 18] = [
    1, 4, 4, 4, 4, 8, 15, 15, 15, 29, 59, 59, 59, 118, 236, 236, 236, 5,
];

/// Per-layer relative weight sizes for the model with `layers` layers
/// (uniform for models without a published table).
fn layer_weights(layers: usize) -> Vec<u64> {
    match layers {
        16 => VGG16_LAYER_WEIGHTS.to_vec(),
        18 => RESNET18_LAYER_WEIGHTS.to_vec(),
        n => vec![1; n],
    }
}

/// Generates a model-parallel training trace with `layers` layers.
pub fn generate(ctx: &mut GenCtx, layers: usize) -> Vec<GpuTrace> {
    assert!(layers >= 2, "a pipeline needs at least two layers");
    let lw = layer_weights(layers);
    let mut sinks = ctx.sinks(12);
    let g = ctx.num_gpus;
    // Per-layer weights are private to the owning stage; a replicated
    // parameter block (embedding/classifier tables, normalization
    // statistics) is read by every stage each step.
    let weights = Segment::new(0, (ctx.pages * 45 / 100).max(1));
    let shared_params = Segment::new(weights.end(), (ctx.pages * 15 / 100).max(1));
    let acts = Segment::new(
        shared_params.end(),
        (ctx.pages - shared_params.end()).max(layers as u64),
    );

    // Pipeline stages fill GPUs in contiguous ranges — the same
    // round-robin-fill order the §III-B TB scheduler uses.
    let layer_gpu = |l: usize| tb_to_gpu(l as u64, layers as u64, g);

    // Weight initialization: each GPU writes its own layers' weights,
    // sized by the real per-layer parameter counts.
    for l in 0..layers {
        let w = weights.partition_weighted(l, &lw);
        let gpu = layer_gpu(l);
        for i in 0..w.len {
            sinks[gpu].write(w.page(i));
        }
    }
    barrier_all(&mut sinks);

    let epochs = ctx.reps(2);
    for _epoch in 0..epochs {
        // Forward: read weights + replicated parameters + previous
        // activations, write activations.
        for l in 0..layers {
            let gpu = layer_gpu(l);
            let w = weights.partition_weighted(l, &lw);
            let out = acts.partition(l, layers);
            for i in 0..w.len {
                sinks[gpu].burst_read(w.page(i), 8);
            }
            // Replicated parameters: every stage reads a strided sample
            // of the shared block each step.
            for i in 0..shared_params.len / 4 {
                sinks[gpu].burst_read(shared_params.page(i * 4), 4);
            }
            if l > 0 {
                let input = acts.partition(l - 1, layers);
                for i in 0..input.len {
                    sinks[gpu].burst_read(input.page(i), 10);
                }
            }
            for i in 0..out.len {
                sinks[gpu].burst_write(out.page(i), 6);
            }
            barrier_all(&mut sinks);
        }
        // Backward: read activations of the layer below, update weights.
        for l in (0..layers).rev() {
            let gpu = layer_gpu(l);
            let w = weights.partition_weighted(l, &lw);
            let out = acts.partition(l, layers);
            for i in 0..out.len {
                sinks[gpu].burst_read(out.page(i), 6);
            }
            if l + 1 < layers {
                // Gradient from the next layer's GPU.
                let grad = acts.partition(l + 1, layers);
                for i in 0..(grad.len / 2).max(1) {
                    sinks[gpu].burst_read(grad.page(i), 6);
                }
            }
            for i in 0..w.len {
                sinks[gpu].burst_write(w.page(i), 6); // weight update
            }
            barrier_all(&mut sinks);
        }
    }
    sinks
}

#[cfg(test)]
mod tests {
    use super::*;
    use grit_sim::SimRng;

    fn run(layers: usize) -> Vec<GpuTrace> {
        let mut c = GenCtx {
            num_gpus: 4,
            pages: 2000,
            lines_per_page: 64,
            intensity: 1.0,
            rng: SimRng::seeded(9),
        };
        generate(&mut c, layers)
    }

    #[test]
    fn weights_private_to_layer_owner() {
        let sinks = run(16);
        let mut accessors: std::collections::HashMap<u64, std::collections::HashSet<usize>> =
            Default::default();
        for (g, s) in sinks.iter().enumerate() {
            for a in s.clone().into_accesses() {
                if a.vpn.vpn() < 900 {
                    accessors.entry(a.vpn.vpn()).or_default().insert(g);
                }
            }
        }
        assert!(
            accessors.values().all(|s| s.len() == 1),
            "weights must be private"
        );
    }

    #[test]
    fn replicated_parameters_are_read_shared_by_all() {
        let sinks = run(16);
        let mut accessors: std::collections::HashMap<u64, std::collections::HashSet<usize>> =
            Default::default();
        for (g, s) in sinks.iter().enumerate() {
            for a in s.clone().into_accesses() {
                if (900..1200).contains(&a.vpn.vpn()) {
                    assert!(!a.is_write(), "shared parameters are read-only");
                    accessors.entry(a.vpn.vpn()).or_default().insert(g);
                }
            }
        }
        let all_shared = accessors.values().filter(|s| s.len() == 4).count();
        assert!(
            all_shared > 0,
            "some parameter pages must be read by all stages"
        );
    }

    #[test]
    fn activations_cross_pipeline_boundaries() {
        let sinks = run(16);
        let mut accessors: std::collections::HashMap<u64, std::collections::HashSet<usize>> =
            Default::default();
        for (g, s) in sinks.iter().enumerate() {
            for a in s.clone().into_accesses() {
                if a.vpn.vpn() >= 1200 {
                    accessors.entry(a.vpn.vpn()).or_default().insert(g);
                }
            }
        }
        let shared = accessors.values().filter(|s| s.len() > 1).count();
        assert!(shared > 0, "boundary activations must be shared");
        // Sharing degree stays 2 (pipeline-adjacent GPUs only).
        assert!(accessors.values().all(|s| s.len() <= 2));
    }

    #[test]
    fn every_gpu_participates() {
        for layers in [16, 18] {
            let sinks = run(layers);
            assert!(sinks.iter().all(|s| !s.is_empty()));
        }
    }

    #[test]
    fn vgg_layer_loads_are_imbalanced() {
        // The classifier stage (last GPU) owns far more weight pages than
        // the first conv stage — the real VGG16 imbalance.
        let sinks = run(16);
        let pages_touched = |g: usize| -> usize {
            let mut set = std::collections::HashSet::new();
            for a in sinks[g].clone().into_accesses() {
                if a.vpn.vpn() < 900 {
                    set.insert(a.vpn.vpn());
                }
            }
            set.len()
        };
        let first = pages_touched(0);
        let last = pages_touched(3);
        assert!(
            last > 3 * first,
            "classifier stage must dominate the weights: {first} vs {last}"
        );
    }

    #[test]
    #[should_panic(expected = "two layers")]
    fn single_layer_rejected() {
        let mut c = GenCtx {
            num_gpus: 2,
            pages: 100,
            lines_per_page: 64,
            intensity: 1.0,
            rng: SimRng::seeded(9),
        };
        let _ = generate(&mut c, 1);
    }
}
