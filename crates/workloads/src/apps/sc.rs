//! SC — Simple Convolution (AMDAPPSDK, 131 MB, *adjacent*): 2-D
//! convolution over a row-partitioned image. Like FIR, almost all pages are
//! private (Fig. 4) with a small read-shared halo at partition boundaries;
//! on-touch migration wins (Fig. 1).

use crate::builder::GenCtx;
use crate::common::{barrier_all, GpuTrace, Segment};

/// Generates SC: input image 70 % / output 30 %, staged by GPU 0, then
/// per-GPU convolution passes with a boundary-row halo.
pub fn generate(ctx: &mut GenCtx) -> Vec<GpuTrace> {
    let mut sinks = ctx.sinks(12);
    let input = Segment::new(0, (ctx.pages * 7 / 10).max(1));
    let output = Segment::new(input.end(), (ctx.pages - input.end()).max(1));
    let g = ctx.num_gpus;

    // The image arrives from the host (CPU-filled UVM pages); the kernels
    // only read it.

    let passes = ctx.reps(3);
    for _ in 0..passes {
        for gpu in 0..g {
            let my_in = input.partition(gpu, g);
            let my_out = output.partition(gpu, g);
            for i in 0..my_in.len {
                let p = my_in.page(i);
                // 3x3 stencil: line-dense reads of the row page plus its
                // vertical neighbours, then an output write burst.
                sinks[gpu].burst_read(p, 8);
                sinks[gpu].burst_read(my_in.page(i.saturating_sub(1)), 3);
                sinks[gpu].burst_read(my_in.page((i + 1) % my_in.len), 3);
                let out_page = my_out.page(i * my_out.len / my_in.len.max(1));
                // Output accumulation is read-modify-write.
                sinks[gpu].burst_read(out_page, 2);
                sinks[gpu].burst_write(out_page, 6);
            }
            // Halo rows from both neighbours (~1 % of the partition).
            let halo = (my_in.len / 100).max(1);
            if gpu + 1 < g {
                let next = input.partition(gpu + 1, g);
                for i in 0..halo.min(next.len) {
                    sinks[gpu].burst_read(next.page(i), 4);
                }
            }
            if gpu > 0 {
                let prev = input.partition(gpu - 1, g);
                for i in 0..halo.min(prev.len) {
                    sinks[gpu].burst_read(prev.page(prev.len - 1 - i), 4);
                }
            }
        }
        barrier_all(&mut sinks);
    }
    sinks
}

#[cfg(test)]
mod tests {
    use super::*;
    use grit_sim::SimRng;

    #[test]
    fn halo_pages_are_read_shared_only() {
        let mut c = GenCtx {
            num_gpus: 4,
            pages: 2000,
            lines_per_page: 64,
            intensity: 1.0,
            rng: SimRng::seeded(2),
        };
        let sinks = generate(&mut c);
        // Writes must target the output segment only: the input image is
        // read-only.
        let input_end = 1400u64;
        for s in sinks.iter() {
            for a in s.clone().into_accesses() {
                if a.is_write() {
                    assert!(a.vpn.vpn() >= input_end);
                }
            }
        }
    }

    #[test]
    fn output_partitions_disjoint_across_gpus() {
        let mut c = GenCtx {
            num_gpus: 4,
            pages: 2000,
            lines_per_page: 64,
            intensity: 1.0,
            rng: SimRng::seeded(2),
        };
        let sinks = generate(&mut c);
        let mut writers: std::collections::HashMap<u64, usize> = Default::default();
        for (g, s) in sinks.iter().enumerate() {
            for a in s.clone().into_accesses() {
                if a.is_write() {
                    let w = writers.entry(a.vpn.vpn()).or_insert(g);
                    assert_eq!(*w, g, "output page written by two GPUs");
                }
            }
        }
    }
}
