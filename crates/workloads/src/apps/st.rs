//! ST — Stencil 2D (SHOC, 33 MB, *adjacent*): iterative Jacobi relaxation
//! over a row-partitioned grid. 99 % of pages end up shared read-write
//! (§VI-A): halo rows are exchanged every iteration and the TB scheduler's
//! fill order drifts the partition boundary across iterations, so pages
//! migrate through every GPU's working set over time — the all-shared
//! pattern of Fig. 5(b) with the read-only-then-read-write phases of
//! Fig. 10.

use crate::builder::GenCtx;
use crate::common::{barrier_all, GpuTrace, Segment};

/// Generates ST: a read-only residual phase, then drifting read-write
/// relaxation iterations with halo exchange.
pub fn generate(ctx: &mut GenCtx) -> Vec<GpuTrace> {
    let mut sinks = ctx.sinks(12);
    let grid = Segment::new(0, ctx.pages);
    let g = ctx.num_gpus as u64;
    let iters = ctx.reps(10);
    // Drift a quarter partition per iteration: pages cycle through every
    // GPU's working set over the run (all-shared over time, Fig. 5b).
    let drift_step = (grid.len / (g * 4)).max(1);

    // Phase 1 (intervals 0..N_read, Fig. 10's read-only prefix): residual
    // norms read each GPU's own rows plus the full neighbouring partition,
    // so interior pages collect read faults from several GPUs.
    let read_phases = ctx.reps(3);
    for _ in 0..read_phases {
        for gpu in 0..ctx.num_gpus {
            let part = grid.partition(gpu, ctx.num_gpus);
            let next = grid.partition((gpu + 1) % ctx.num_gpus, ctx.num_gpus);
            for i in 0..part.len {
                sinks[gpu].burst_read(part.page(i), 5);
            }
            for i in 0..next.len {
                sinks[gpu].burst_read(next.page(i), 3);
            }
        }
        barrier_all(&mut sinks);
    }

    // Phase 2: relaxation sweeps with boundary drift and two-sided halo
    // exchange (each boundary region is read by both neighbours and
    // written by its drifting owner).
    for iter in 0..iters {
        let offset = iter * drift_step;
        for gpu in 0..ctx.num_gpus {
            let part = grid.partition(gpu, ctx.num_gpus);
            for i in 0..part.len {
                let p = grid.page(part.start - grid.start + i + offset);
                sinks[gpu].burst_read(p, 6);
                sinks[gpu].burst_write(p, 4);
            }
            let halo = (part.len / 4).max(1);
            for i in 0..halo {
                let ahead = grid.page(part.end() - grid.start + i + offset);
                sinks[gpu].burst_read(ahead, 4);
                let behind = grid.page(part.start - grid.start + grid.len - 1 - i + offset);
                sinks[gpu].burst_read(behind, 4);
            }
        }
        barrier_all(&mut sinks);
    }
    sinks
}

#[cfg(test)]
mod tests {
    use super::*;
    use grit_sim::SimRng;

    fn run() -> (Vec<GpuTrace>, u64) {
        let pages = 1024;
        let mut c = GenCtx {
            num_gpus: 4,
            pages,
            lines_per_page: 64,
            intensity: 1.0,
            rng: SimRng::seeded(4),
        };
        (generate(&mut c), pages)
    }

    #[test]
    fn nearly_all_pages_shared_and_written() {
        let (sinks, pages) = run();
        let mut accessors: Vec<std::collections::HashSet<usize>> =
            vec![Default::default(); pages as usize];
        let mut written = vec![false; pages as usize];
        for (g, s) in sinks.iter().enumerate() {
            for a in s.clone().into_accesses() {
                accessors[a.vpn.vpn() as usize].insert(g);
                written[a.vpn.vpn() as usize] |= a.is_write();
            }
        }
        let shared_rw = accessors.iter().zip(&written).filter(|(s, &w)| s.len() > 1 && w).count();
        assert!(
            shared_rw as f64 > 0.9 * pages as f64,
            "ST must be ~all shared read-write, got {shared_rw}/{pages}"
        );
    }

    #[test]
    fn early_phase_is_read_only() {
        let (sinks, _) = run();
        for s in &sinks {
            let acc = s.clone().into_accesses();
            // The first half-partition's worth of accesses are the norm
            // phase: all reads.
            assert!(acc[..100].iter().all(|a| !a.is_write()));
        }
    }

    #[test]
    fn drift_spreads_ownership() {
        let (sinks, pages) = run();
        // Some single page must be written by at least 2 different GPUs.
        let mut writers: Vec<std::collections::HashSet<usize>> =
            vec![Default::default(); pages as usize];
        for (g, s) in sinks.iter().enumerate() {
            for a in s.clone().into_accesses() {
                if a.is_write() {
                    writers[a.vpn.vpn() as usize].insert(g);
                }
            }
        }
        let multi = writers.iter().filter(|w| w.len() >= 2).count();
        assert!(
            multi > pages as usize / 4,
            "drift must move writers, got {multi}"
        );
    }
}
