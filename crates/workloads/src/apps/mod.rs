//! Per-application trace generators.
//!
//! Each generator reproduces the *page-sharing and read/write pattern* the
//! paper characterizes for its benchmark (§IV, Figs. 4–10) — private vs
//! shared mixes, producer–consumer vs all-shared phases, read vs read-write
//! intervals — on a synthetic address space. The absolute instruction
//! streams of the original OpenCL kernels are irrelevant to page placement;
//! the fault/sharing behaviour is what exercises every mechanism.

// Generators index `sinks[gpu]` by GPU id on purpose: `gpu` doubles as the
// device identifier fed to `partition`/seeding, so an enumerate rewrite
// would just reintroduce the same index under another name.
#![allow(clippy::needless_range_loop)]

mod bfs;
mod bs;
mod c2d;
mod dnn;
mod extra;
mod fir;
mod gemm;
mod sc;
mod st;

use crate::builder::GenCtx;
use crate::common::GpuTrace;
use crate::spec::App;

/// Dispatches to the generator for `app`.
pub fn generate(app: App, ctx: &mut GenCtx) -> Vec<GpuTrace> {
    match app {
        App::Bfs => bfs::generate(ctx),
        App::Bs => bs::generate(ctx),
        App::C2d => c2d::generate(ctx),
        App::Fir => fir::generate(ctx),
        App::Gemm => gemm::generate(ctx, 0.15, 0.45, 4),
        App::Mm => gemm::generate(ctx, 0.20, 0.40, 3),
        App::Sc => sc::generate(ctx),
        App::St => st::generate(ctx),
        App::Vgg16 => dnn::generate(ctx, 16),
        App::Resnet18 => dnn::generate(ctx, 18),
        App::Spmv => extra::generate_spmv(ctx),
        App::Pagerank => extra::generate_pagerank(ctx),
    }
}
