//! FIR (Hetero-Mark, 155 MB, *adjacent*): streaming filter over a batched
//! signal. Almost every page is private (Fig. 4): each GPU filters its own
//! contiguous batch. The input is staged by GPU 0 first (the §III-B TB
//! scheduler fills GPU 0 before spilling), which is what makes uniform
//! access-counter placement pay: the other GPUs' "private" partitions start
//! out resident on GPU 0 and never reach the 256-access migration threshold.

use crate::builder::GenCtx;
use crate::common::{barrier_all, GpuTrace, Segment};

/// Generates FIR: input 60 % / output 40 %, staged by GPU 0, then three
/// filtered passes per GPU over its own partition with a two-page halo.
pub fn generate(ctx: &mut GenCtx) -> Vec<GpuTrace> {
    let mut sinks = ctx.sinks(12);
    let input = Segment::new(0, (ctx.pages * 6 / 10).max(1));
    let output = Segment::new(input.end(), (ctx.pages - input.end()).max(1));
    let g = ctx.num_gpus;

    // The signal batch arrives from the host (CPU-filled UVM pages); the
    // filter kernels only read it.

    let passes = ctx.reps(4);
    for _pass in 0..passes {
        for gpu in 0..g {
            let my_in = input.partition(gpu, g);
            let my_out = output.partition(gpu, g);
            for i in 0..my_in.len {
                let p = my_in.page(i);
                // Filter taps: a line-dense read burst per input page and
                // a write burst to the output page.
                sinks[gpu].burst_read(p, 12);
                // Output accumulation is read-modify-write.
                sinks[gpu].burst_read(my_out.page(i), 2);
                sinks[gpu].burst_write(my_out.page(i), 6);
            }
            // Filter halo: taps reach two pages into the next batch.
            if gpu + 1 < g {
                let next = input.partition(gpu + 1, g);
                for i in 0..2.min(next.len) {
                    sinks[gpu].burst_read(next.page(i), 4);
                }
            }
        }
        barrier_all(&mut sinks);
    }
    sinks
}

#[cfg(test)]
mod tests {
    use super::*;
    use grit_sim::SimRng;

    fn ctx() -> GenCtx {
        GenCtx {
            num_gpus: 4,
            pages: 1000,
            lines_per_page: 64,
            intensity: 1.0,
            rng: SimRng::seeded(1),
        }
    }

    #[test]
    fn mostly_private_pages() {
        let mut c = ctx();
        let sinks = generate(&mut c);
        let mut accessors: std::collections::HashMap<u64, std::collections::HashSet<usize>> =
            Default::default();
        for (g, s) in sinks.iter().enumerate() {
            for a in s.clone().into_accesses() {
                accessors.entry(a.vpn.vpn()).or_default().insert(g);
            }
        }
        let shared = accessors.values().filter(|s| s.len() > 1).count();
        let frac = shared as f64 / accessors.len() as f64;
        assert!(frac < 0.05, "FIR must be ~all private, got {frac}");
    }

    #[test]
    fn input_pages_never_written() {
        let mut c = ctx();
        let sinks = generate(&mut c);
        for s in &sinks {
            for a in s.clone().into_accesses() {
                if a.vpn.vpn() < 600 {
                    assert!(!a.is_write(), "FIR input is read-only");
                }
            }
        }
    }

    #[test]
    fn output_pages_are_read_modify_write() {
        let mut c = ctx();
        let sinks = generate(&mut c);
        let (mut reads, mut writes) = (0u64, 0u64);
        for s in &sinks {
            for a in s.clone().into_accesses() {
                if a.vpn.vpn() >= 600 {
                    if a.is_write() {
                        writes += 1;
                    } else {
                        reads += 1;
                    }
                }
            }
        }
        assert!(writes > reads, "output accumulation is write-dominated");
        assert!(reads > 0, "accumulation reads the previous value");
    }

    #[test]
    fn barriers_align_across_gpus() {
        let mut c = ctx();
        let sinks = generate(&mut c);
        let counts: Vec<usize> = sinks.iter().map(|s| s.barriers().len()).collect();
        assert!(counts.iter().all(|&n| n == counts[0] && n > 0));
    }
}
