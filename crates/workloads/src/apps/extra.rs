//! Extension workloads beyond the paper's Table II roster: SpMV and
//! PageRank, two classic irregular multi-GPU kernels. They exercise the
//! same mechanism space (read-shared structure data, private partials,
//! iterative re-sharing) from different angles and make the suite more
//! useful as a general page-placement testbed.

use crate::builder::GenCtx;
use crate::common::{barrier_all, GpuTrace, Segment};

/// Sparse matrix-vector multiply, `y = A·x` row-partitioned:
/// the matrix rows are private to their GPU (streamed once per iteration),
/// the dense vector `x` is gathered randomly by every GPU (read-shared),
/// and each GPU writes its own slice of `y`.
pub fn generate_spmv(ctx: &mut GenCtx) -> Vec<GpuTrace> {
    let mut sinks = ctx.sinks(10);
    let g = ctx.num_gpus;
    let matrix = Segment::new(0, (ctx.pages * 55 / 100).max(1));
    let x = Segment::new(matrix.end(), (ctx.pages * 30 / 100).max(1));
    let y = Segment::new(x.end(), (ctx.pages - x.end()).max(1));

    let iters = ctx.reps(4);
    for _ in 0..iters {
        for gpu in 0..g {
            let my_rows = matrix.partition(gpu, g);
            let my_y = y.partition(gpu, g);
            for i in 0..my_rows.len {
                // Stream the row block (private)...
                sinks[gpu].burst_read(my_rows.page(i), 10);
                // ...gather x at the row's column indices (shared, random).
                for _ in 0..3 {
                    let col = sinks[gpu].rng().below(x.len);
                    sinks[gpu].burst_read(x.page(col), 2);
                }
                // ...accumulate into the private output slice.
                let out = my_y.page(i * my_y.len / my_rows.len.max(1));
                sinks[gpu].burst_read(out, 1);
                sinks[gpu].burst_write(out, 3);
            }
        }
        barrier_all(&mut sinks);
    }
    sinks
}

/// PageRank push-style iterations: ranks are double-buffered; every GPU
/// reads the full previous-rank vector (all-shared read) and scatters
/// updates into its own partition of the next-rank vector, with the edge
/// structure private per GPU.
pub fn generate_pagerank(ctx: &mut GenCtx) -> Vec<GpuTrace> {
    let mut sinks = ctx.sinks(10);
    let g = ctx.num_gpus;
    let edges = Segment::new(0, (ctx.pages * 50 / 100).max(1));
    let rank_a = Segment::new(edges.end(), (ctx.pages * 25 / 100).max(1));
    let rank_b = Segment::new(rank_a.end(), (ctx.pages - rank_a.end()).max(1));

    let iters = ctx.reps(5);
    for iter in 0..iters {
        let (src, dst) = if iter % 2 == 0 {
            (rank_a, rank_b)
        } else {
            (rank_b, rank_a)
        };
        for gpu in 0..g {
            let my_edges = edges.partition(gpu, g);
            let my_dst = dst.partition(gpu, g);
            for i in 0..my_edges.len {
                sinks[gpu].burst_read(my_edges.page(i), 8);
                // Pull neighbour ranks: random reads over the whole shared
                // source vector.
                for _ in 0..2 {
                    let v = sinks[gpu].rng().zipf(src.len, 0.8);
                    sinks[gpu].burst_read(src.page(v), 2);
                }
                // Scatter into the private destination partition.
                let out = my_dst.page(i * my_dst.len / my_edges.len.max(1));
                sinks[gpu].burst_write(out, 2);
            }
        }
        barrier_all(&mut sinks);
    }
    sinks
}

#[cfg(test)]
mod tests {
    use super::*;
    use grit_sim::SimRng;

    fn ctx() -> GenCtx {
        GenCtx {
            num_gpus: 4,
            pages: 1000,
            lines_per_page: 64,
            intensity: 1.0,
            rng: SimRng::seeded(21),
        }
    }

    fn sharing(sinks: &[GpuTrace], lo: u64, hi: u64) -> (usize, usize) {
        let mut accessors: std::collections::HashMap<u64, std::collections::HashSet<usize>> =
            Default::default();
        for (g, s) in sinks.iter().enumerate() {
            for a in s.clone().into_accesses() {
                if (lo..hi).contains(&a.vpn.vpn()) {
                    accessors.entry(a.vpn.vpn()).or_default().insert(g);
                }
            }
        }
        let shared = accessors.values().filter(|s| s.len() > 1).count();
        (shared, accessors.len())
    }

    #[test]
    fn spmv_vector_shared_matrix_private() {
        let mut c = ctx();
        let sinks = generate_spmv(&mut c);
        // Matrix pages 0..550: private.
        let (shared_m, total_m) = sharing(&sinks, 0, 550);
        assert!(
            shared_m == 0,
            "matrix rows must be private: {shared_m}/{total_m}"
        );
        // Vector pages 550..850: heavily shared.
        let (shared_x, total_x) = sharing(&sinks, 550, 850);
        assert!(
            shared_x * 10 > total_x * 7,
            "x must be gathered by many GPUs: {shared_x}/{total_x}"
        );
    }

    #[test]
    fn spmv_writes_stay_in_own_slice() {
        let mut c = ctx();
        let sinks = generate_spmv(&mut c);
        let mut writers: std::collections::HashMap<u64, usize> = Default::default();
        for (g, s) in sinks.iter().enumerate() {
            for a in s.clone().into_accesses() {
                if a.is_write() {
                    assert!(a.vpn.vpn() >= 850, "writes must land in y");
                    let w = writers.entry(a.vpn.vpn()).or_insert(g);
                    assert_eq!(*w, g);
                }
            }
        }
    }

    #[test]
    fn pagerank_double_buffers_alternate() {
        let mut c = ctx();
        let sinks = generate_pagerank(&mut c);
        // Both rank buffers (500..750 and 750..1000) end up read-shared and
        // written by partition owners across iterations.
        for (lo, hi) in [(500u64, 750u64), (750, 1000)] {
            let (shared, total) = sharing(&sinks, lo, hi);
            assert!(
                shared * 2 > total,
                "rank buffer {lo}..{hi}: {shared}/{total}"
            );
        }
    }

    #[test]
    fn pagerank_edges_private() {
        let mut c = ctx();
        let sinks = generate_pagerank(&mut c);
        let (shared, total) = sharing(&sinks, 0, 500);
        assert_eq!(shared, 0, "edge partitions must be private ({total} pages)");
    }
}
