//! Shared building blocks for the trace generators.

use grit_sim::{Access, PageId, SimRng};

/// A contiguous range of virtual pages (one logical allocation, e.g. an
/// input matrix). The paper's §IV-C analysis leans on allocations being
/// "separately consecutive memory segments" — neighbor-page similarity
/// comes from exactly this layout.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Segment {
    /// First page of the segment.
    pub start: u64,
    /// Number of pages.
    pub len: u64,
}

impl Segment {
    /// A segment spanning `[start, start + len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(start: u64, len: u64) -> Self {
        assert!(len > 0, "segment must be non-empty");
        Segment { start, len }
    }

    /// The `i`-th page of the segment (wrapping around its length).
    pub fn page(&self, i: u64) -> PageId {
        PageId(self.start + i % self.len)
    }

    /// The contiguous sub-segment owned by GPU `g` of `n` when the segment
    /// is block-partitioned.
    pub fn partition(&self, g: usize, n: usize) -> Segment {
        assert!(n > 0 && g < n, "invalid partition");
        let base = self.len * g as u64 / n as u64;
        let end = self.len * (g as u64 + 1) / n as u64;
        Segment {
            start: self.start + base,
            len: (end - base).max(1),
        }
    }

    /// One past the last page.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }

    /// The sub-segment for slot `i` when the segment is partitioned in
    /// proportion to `weights` (e.g. per-layer parameter counts). Every
    /// slot receives at least one page and the slots tile the segment
    /// without overlap, so heavily skewed weights stay disjoint.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, `i` is out of range, the weights sum
    /// to zero, or the segment has fewer pages than slots.
    pub fn partition_weighted(&self, i: usize, weights: &[u64]) -> Segment {
        let n = weights.len();
        assert!(n > 0 && i < n, "invalid weighted partition");
        assert!(self.len >= n as u64, "segment smaller than the slot count");
        let total: u64 = weights.iter().sum();
        assert!(total > 0, "weights must not all be zero");
        // Monotone boundaries: proportional targets pushed apart so every
        // slot keeps at least one page, clamped so the tail still fits.
        let mut lo = 0u64;
        let mut cum = 0u64;
        for (k, &w) in weights.iter().enumerate() {
            cum += w;
            let remaining_slots = (n - k - 1) as u64;
            let hi = (self.len * cum / total).max(lo + 1).min(self.len - remaining_slots);
            if k == i {
                return Segment {
                    start: self.start + lo,
                    len: hi - lo,
                };
            }
            lo = hi;
        }
        unreachable!("slot index checked above");
    }
}

/// Accumulates one GPU's access trace with its own deterministic RNG.
///
/// Kernel launches are global synchronization points in the paper's
/// benchmarks (§III-B schedules each kernel's thread blocks across all
/// GPUs); [`GpuTrace::barrier`] records those boundaries so the runner can
/// hold GPUs at phase ends — without them a staging kernel would overlap
/// the compute kernels and fabricate sharing that does not exist.
#[derive(Clone, Debug)]
pub struct GpuTrace {
    accesses: Vec<Access>,
    barriers: Vec<usize>,
    rng: SimRng,
    lines_per_page: u16,
    think: u32,
}

impl GpuTrace {
    /// A trace sink for a GPU with `lines_per_page` cache lines per page.
    pub fn new(rng: SimRng, lines_per_page: u16, think: u32) -> Self {
        GpuTrace {
            accesses: Vec::new(),
            barriers: Vec::new(),
            rng,
            lines_per_page,
            think,
        }
    }

    /// Marks a kernel boundary at the current position. Repeated positions
    /// are legal and mean this GPU is idle for a whole phase (e.g. a
    /// pipeline stage owned by another GPU).
    pub fn barrier(&mut self) {
        self.barriers.push(self.accesses.len());
    }

    /// Recorded kernel boundaries (positions in the access vector).
    pub fn barriers(&self) -> &[usize] {
        &self.barriers
    }

    /// Consumes the sink, returning the trace and its kernel boundaries.
    pub fn into_parts(self) -> (Vec<Access>, Vec<usize>) {
        (self.accesses, self.barriers)
    }

    /// Appends a read of a random line of `page`.
    pub fn read(&mut self, page: PageId) {
        let line = self.rng.below(self.lines_per_page as u64) as u16;
        self.accesses.push(Access::read(page, line).with_think(self.think));
    }

    /// Appends a write of a random line of `page`.
    pub fn write(&mut self, page: PageId) {
        let line = self.rng.below(self.lines_per_page as u64) as u16;
        self.accesses.push(Access::write(page, line).with_think(self.think));
    }

    /// Appends a read that is a write with probability `p_write`.
    pub fn touch(&mut self, page: PageId, p_write: f64) {
        if self.rng.chance(p_write) {
            self.write(page);
        } else {
            self.read(page);
        }
    }

    /// Appends `n` reads to sequential lines of `page` (streaming access).
    pub fn stream_read(&mut self, page: PageId, n: u16) {
        for l in 0..n.min(self.lines_per_page) {
            self.accesses.push(Access::read(page, l).with_think(self.think));
        }
    }

    /// Appends a burst of `n` accesses to consecutive lines of `page`
    /// starting at a random line (wrapping), each a write with probability
    /// `p_write`. Real kernels touch most lines of every page they use —
    /// this line-level density is what lets a single migration amortize
    /// over many subsequent local accesses.
    pub fn burst(&mut self, page: PageId, n: u16, p_write: f64) {
        let start = self.rng.below(self.lines_per_page as u64) as u16;
        for k in 0..n {
            let line = (start + k) % self.lines_per_page;
            let a = if p_write > 0.0 && self.rng.chance(p_write) {
                Access::write(page, line)
            } else {
                Access::read(page, line)
            };
            self.accesses.push(a.with_think(self.think));
        }
    }

    /// A burst of `n` reads.
    pub fn burst_read(&mut self, page: PageId, n: u16) {
        self.burst(page, n, 0.0);
    }

    /// A burst of `n` writes.
    pub fn burst_write(&mut self, page: PageId, n: u16) {
        self.burst(page, n, 1.0);
    }

    /// The sink's RNG, for pattern decisions.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Consumes the sink, returning the trace.
    pub fn into_accesses(self) -> Vec<Access> {
        self.accesses
    }

    /// Accesses recorded so far.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether no accesses were recorded.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }
}

/// Per-GPU trace sinks for one workload.
pub fn make_sinks(
    rng: &mut SimRng,
    num_gpus: usize,
    lines_per_page: u16,
    think: u32,
) -> Vec<GpuTrace> {
    (0..num_gpus)
        .map(|g| GpuTrace::new(rng.fork(g as u64 + 1), lines_per_page, think))
        .collect()
}

/// Marks a kernel boundary on every GPU's trace (end of one phase).
pub fn barrier_all(sinks: &mut [GpuTrace]) {
    for s in sinks {
        s.barrier();
    }
}

/// The round-robin-fill thread-block scheduler of §III-B: TBs fill GPU 0's
/// CUs first, then spill to GPU 1, and so on — so a grid of `tbs` thread
/// blocks maps block `i` to a GPU by contiguous ranges.
///
/// ```
/// use grit_workloads::tb_to_gpu;
/// // 8 TBs on 4 GPUs: blocks 0-1 -> GPU0, 2-3 -> GPU1, ...
/// assert_eq!(tb_to_gpu(0, 8, 4), 0);
/// assert_eq!(tb_to_gpu(3, 8, 4), 1);
/// assert_eq!(tb_to_gpu(7, 8, 4), 3);
/// ```
pub fn tb_to_gpu(tb: u64, tbs: u64, num_gpus: usize) -> usize {
    assert!(tbs > 0 && num_gpus > 0 && tb < tbs, "invalid TB mapping");
    ((tb * num_gpus as u64) / tbs) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_segment_without_overlap() {
        let s = Segment::new(100, 37);
        let mut covered = 0;
        for g in 0..4 {
            let p = s.partition(g, 4);
            covered += p.len;
            assert!(p.start >= 100 && p.end() <= 137);
        }
        assert_eq!(covered, 37);
    }

    #[test]
    fn weighted_partition_tiles_proportionally() {
        let s = Segment::new(0, 100);
        let w = [1u64, 3, 6];
        let parts: Vec<Segment> = (0..3).map(|i| s.partition_weighted(i, &w)).collect();
        assert_eq!(parts[0].len, 10);
        assert_eq!(parts[1].len, 30);
        assert_eq!(parts[2].len, 60);
        assert_eq!(parts[0].end(), parts[1].start);
        assert_eq!(parts[1].end(), parts[2].start);
        assert_eq!(parts[2].end(), 100);
    }

    #[test]
    fn weighted_partition_never_overlaps_under_extreme_skew() {
        let s = Segment::new(0, 20);
        // Slots 0..8 round to zero pages proportionally; each must still
        // get a disjoint page.
        let w = [1u64, 1, 1, 1, 1, 1, 1, 1, 10_000];
        let parts: Vec<Segment> = (0..9).map(|i| s.partition_weighted(i, &w)).collect();
        let mut cursor = 0;
        for p in &parts {
            assert_eq!(p.start, cursor, "slots must tile");
            assert!(p.len >= 1);
            cursor = p.end();
        }
        assert_eq!(cursor, 20);
        assert!(parts[8].len > 10, "the heavy slot takes the remainder");
    }

    #[test]
    fn page_wraps() {
        let s = Segment::new(10, 5);
        assert_eq!(s.page(0), PageId(10));
        assert_eq!(s.page(7), PageId(12));
    }

    #[test]
    fn trace_records_reads_and_writes() {
        let mut t = GpuTrace::new(SimRng::seeded(1), 64, 4);
        t.read(PageId(1));
        t.write(PageId(2));
        t.touch(PageId(3), 1.0);
        let acc = t.into_accesses();
        assert_eq!(acc.len(), 3);
        assert!(!acc[0].is_write());
        assert!(acc[1].is_write());
        assert!(acc[2].is_write());
        assert!(acc.iter().all(|a| a.line < 64));
    }

    #[test]
    fn stream_read_is_sequential() {
        let mut t = GpuTrace::new(SimRng::seeded(1), 64, 4);
        t.stream_read(PageId(5), 4);
        let acc = t.into_accesses();
        assert_eq!(acc.len(), 4);
        assert!(acc.iter().enumerate().all(|(i, a)| a.line == i as u16));
    }

    #[test]
    fn sinks_are_deterministic_per_gpu() {
        let mut r1 = SimRng::seeded(9);
        let mut r2 = SimRng::seeded(9);
        let mut a = make_sinks(&mut r1, 2, 64, 4);
        let mut b = make_sinks(&mut r2, 2, 64, 4);
        a[0].read(PageId(0));
        b[0].read(PageId(0));
        assert_eq!(a[0].accesses, b[0].accesses);
    }

    #[test]
    fn barriers_record_positions_including_empty_phases() {
        let mut t = GpuTrace::new(SimRng::seeded(1), 64, 4);
        t.barrier();
        t.read(PageId(1));
        t.barrier();
        t.barrier(); // empty phase: this GPU idles for one kernel
        t.write(PageId(2));
        t.barrier();
        let (acc, bars) = t.into_parts();
        assert_eq!(acc.len(), 2);
        assert_eq!(bars, vec![0, 1, 1, 2]);
    }

    #[test]
    fn tb_mapping_is_contiguous_fill() {
        let gpus: Vec<usize> = (0..8).map(|tb| tb_to_gpu(tb, 8, 4)).collect();
        assert_eq!(gpus, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "invalid TB mapping")]
    fn tb_mapping_bounds_checked() {
        let _ = tb_to_gpu(8, 8, 4);
    }
}
