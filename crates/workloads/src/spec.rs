//! The application roster of Table II, plus the DNN workloads of §VI-F.

use std::fmt;

/// Multi-GPU memory access pattern class (Table II).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessPattern {
    /// Unpredictable cross-GPU reads and writes (BFS, BS).
    Random,
    /// Batched input shared with neighboring GPUs (C2D, FIR, SC, ST).
    Adjacent,
    /// Reads/writes gathered from local and remote GPUs (GEMM, MM).
    ScatterGather,
    /// Model-parallel DNN layer pipeline (VGG16, ResNet18).
    LayerPipeline,
}

/// One benchmark of the evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum App {
    /// Breadth-first search (SHOC).
    Bfs,
    /// Bitonic sort (AMDAPPSDK).
    Bs,
    /// Convolution 2D (DNN-Mark).
    C2d,
    /// Finite impulse response (Hetero-Mark).
    Fir,
    /// General matrix multiplication (AMDAPPSDK).
    Gemm,
    /// Matrix multiplication (AMDAPPSDK).
    Mm,
    /// Simple convolution (AMDAPPSDK).
    Sc,
    /// Stencil 2D (SHOC).
    St,
    /// VGG16 model-parallel training (§VI-F).
    Vgg16,
    /// ResNet18 model-parallel training (§VI-F).
    Resnet18,
    /// Sparse matrix-vector multiply (extension workload, not in the
    /// paper: private row blocks, all-shared gathered vector).
    Spmv,
    /// PageRank push iterations (extension workload, not in the paper:
    /// private edges, double-buffered shared rank vectors).
    Pagerank,
}

impl App {
    /// The eight Table II applications, in the paper's order.
    pub const TABLE2: [App; 8] = [
        App::Bfs,
        App::Bs,
        App::C2d,
        App::Fir,
        App::Gemm,
        App::Mm,
        App::Sc,
        App::St,
    ];

    /// The DNN workloads of §VI-F.
    pub const DNN: [App; 2] = [App::Vgg16, App::Resnet18];

    /// Extension workloads beyond the paper's roster.
    pub const EXTRA: [App; 2] = [App::Spmv, App::Pagerank];

    /// Abbreviation used in every figure.
    pub fn abbr(self) -> &'static str {
        match self {
            App::Bfs => "BFS",
            App::Bs => "BS",
            App::C2d => "C2D",
            App::Fir => "FIR",
            App::Gemm => "GEMM",
            App::Mm => "MM",
            App::Sc => "SC",
            App::St => "ST",
            App::Vgg16 => "VGG16",
            App::Resnet18 => "ResNet18",
            App::Spmv => "SPMV",
            App::Pagerank => "PR",
        }
    }

    /// Every workload the generator knows: Table II, the DNNs, and the
    /// extension roster, in that order.
    pub fn all() -> impl Iterator<Item = App> {
        App::TABLE2.into_iter().chain(App::DNN).chain(App::EXTRA)
    }

    /// Resolves a figure abbreviation (case-insensitive) back to the
    /// workload, the inverse of [`App::abbr`]. `None` for unknown names.
    pub fn parse(name: &str) -> Option<App> {
        App::all().find(|a| a.abbr().eq_ignore_ascii_case(name))
    }

    /// Full application name (Table II).
    pub fn full_name(self) -> &'static str {
        match self {
            App::Bfs => "Breadth-first Search",
            App::Bs => "Bitonic Sort",
            App::C2d => "Convolution 2D",
            App::Fir => "Finite Impulse Resp.",
            App::Gemm => "General Matrix Multiplication",
            App::Mm => "Matrix Multiplication",
            App::Sc => "Simple Convolution",
            App::St => "Stencil 2D",
            App::Vgg16 => "VGG16 (model parallel)",
            App::Resnet18 => "ResNet18 (model parallel)",
            App::Spmv => "Sparse Matrix-Vector Multiply",
            App::Pagerank => "PageRank",
        }
    }

    /// Benchmark suite of origin (Table II).
    pub fn suite(self) -> &'static str {
        match self {
            App::Bfs | App::St => "SHOC",
            App::Bs | App::Gemm | App::Mm | App::Sc => "AMDAPPSDK",
            App::C2d => "DNN-Mark",
            App::Fir => "Hetero-Mark",
            App::Vgg16 | App::Resnet18 => "DNN",
            App::Spmv | App::Pagerank => "extension",
        }
    }

    /// Access-pattern class (Table II).
    pub fn pattern(self) -> AccessPattern {
        match self {
            App::Bfs | App::Bs => AccessPattern::Random,
            App::C2d | App::Fir | App::Sc | App::St => AccessPattern::Adjacent,
            App::Gemm | App::Mm => AccessPattern::ScatterGather,
            App::Vgg16 | App::Resnet18 => AccessPattern::LayerPipeline,
            App::Spmv | App::Pagerank => AccessPattern::ScatterGather,
        }
    }

    /// Memory footprint in bytes at scale 1.0 (Table II; DNNs sized to the
    /// §VI-F model-parallel working sets).
    pub fn footprint_bytes(self) -> u64 {
        const MB: u64 = 1024 * 1024;
        match self {
            App::Bfs => 32 * MB,
            App::Bs => 30 * MB,
            App::C2d => 94 * MB,
            App::Fir => 155 * MB,
            App::Gemm => 16 * MB,
            App::Mm => 33 * MB,
            App::Sc => 131 * MB,
            App::St => 33 * MB,
            App::Vgg16 => 120 * MB,
            App::Resnet18 => 64 * MB,
            App::Spmv => 96 * MB,
            App::Pagerank => 80 * MB,
        }
    }
}

impl fmt::Display for App {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        assert_eq!(App::TABLE2.len(), 8);
        assert_eq!(App::Fir.footprint_bytes(), 155 * 1024 * 1024);
        assert_eq!(App::Gemm.footprint_bytes(), 16 * 1024 * 1024);
        assert_eq!(App::Bfs.suite(), "SHOC");
        assert_eq!(App::Fir.suite(), "Hetero-Mark");
        assert_eq!(App::C2d.suite(), "DNN-Mark");
        assert_eq!(App::Bfs.pattern(), AccessPattern::Random);
        assert_eq!(App::Fir.pattern(), AccessPattern::Adjacent);
        assert_eq!(App::Gemm.pattern(), AccessPattern::ScatterGather);
    }

    #[test]
    fn abbreviations_unique() {
        let mut seen = std::collections::HashSet::new();
        for a in App::TABLE2.iter().chain(App::DNN.iter()).chain(App::EXTRA.iter()) {
            assert!(seen.insert(a.abbr()));
            assert!(!a.full_name().is_empty());
        }
    }

    #[test]
    fn parse_inverts_abbr_case_insensitively() {
        for a in App::all() {
            assert_eq!(App::parse(a.abbr()), Some(a));
            assert_eq!(App::parse(&a.abbr().to_lowercase()), Some(a));
            assert_eq!(App::parse(&a.abbr().to_uppercase()), Some(a));
        }
        assert_eq!(App::parse("quake"), None);
        assert_eq!(App::all().count(), 12);
    }
}
