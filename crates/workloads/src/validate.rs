//! Workload validation: checks a generated trace against the paper's
//! documented characterization of its benchmark (Table II access pattern,
//! Fig. 4 sharing mix, Fig. 9 read/write mix, §VI-A shared-RW shares).
//!
//! Used by the test suite and the `repro` tooling to guard the trace
//! generators against drift: a refactor that silently turns FIR into a
//! shared workload would invalidate half the evaluation.

use std::collections::HashMap;

use grit_sim::AccessStream;

use crate::builder::MultiGpuWorkload;
use crate::spec::App;

/// Expected characterization band for one application.
#[derive(Clone, Copy, Debug)]
pub struct Expectation {
    /// Inclusive band for the fraction of pages shared by >1 GPU.
    pub shared_pages: (f64, f64),
    /// Inclusive band for the fraction of accesses that are writes.
    pub write_accesses: (f64, f64),
    /// Inclusive band for the fraction of pages that are shared *and*
    /// written (§VI-A's hard class).
    pub shared_rw_pages: (f64, f64),
}

impl Expectation {
    /// The paper-derived band for `app`.
    pub fn for_app(app: App) -> Expectation {
        match app {
            // Almost all pages shared, read-dominated (Figs. 4/9).
            App::Bfs => Expectation {
                shared_pages: (0.80, 1.0),
                write_accesses: (0.0, 0.15),
                shared_rw_pages: (0.0, 0.5),
            },
            // All-shared, ~50/50 reads and writes.
            App::Bs => Expectation {
                shared_pages: (0.80, 1.0),
                write_accesses: (0.35, 0.65),
                shared_rw_pages: (0.45, 1.0),
            },
            // Mixed private weights / PC-shared activations (§VI-A: 42 %).
            App::C2d => Expectation {
                shared_pages: (0.30, 0.92),
                write_accesses: (0.10, 0.60),
                shared_rw_pages: (0.25, 0.95),
            },
            // Almost all private.
            App::Fir | App::Sc => Expectation {
                shared_pages: (0.0, 0.05),
                write_accesses: (0.10, 0.55),
                shared_rw_pages: (0.0, 0.05),
            },
            // Roughly half shared (read-only inputs), private RW outputs.
            App::Gemm | App::Mm => Expectation {
                shared_pages: (0.30, 0.70),
                write_accesses: (0.05, 0.40),
                shared_rw_pages: (0.0, 0.10),
            },
            // Practically everything shared read-write (§VI-A: 99 %).
            App::St => Expectation {
                shared_pages: (0.90, 1.0),
                write_accesses: (0.15, 0.55),
                shared_rw_pages: (0.85, 1.0),
            },
            // Model parallel: private weights dominate; activations +
            // replicated parameters shared.
            App::Vgg16 | App::Resnet18 => Expectation {
                shared_pages: (0.05, 0.60),
                write_accesses: (0.15, 0.70),
                shared_rw_pages: (0.0, 0.30),
            },
            // Extension: private structure, shared gathered vectors.
            App::Spmv => Expectation {
                shared_pages: (0.15, 0.50),
                write_accesses: (0.02, 0.30),
                shared_rw_pages: (0.0, 0.10),
            },
            App::Pagerank => Expectation {
                shared_pages: (0.25, 0.65),
                write_accesses: (0.02, 0.30),
                shared_rw_pages: (0.10, 0.65),
            },
        }
    }
}

/// Measured characterization of a generated workload.
#[derive(Clone, Copy, Debug)]
pub struct Characterization {
    /// Distinct pages touched.
    pub pages: u64,
    /// Total accesses.
    pub accesses: u64,
    /// Fraction of pages shared by more than one GPU.
    pub shared_pages: f64,
    /// Fraction of accesses that are writes.
    pub write_accesses: f64,
    /// Fraction of pages both shared and written.
    pub shared_rw_pages: f64,
}

/// Measures a workload's sharing/write characterization (consumes the
/// streams; clone the workload if it is still needed).
pub fn characterize(workload: MultiGpuWorkload) -> Characterization {
    let mut sharers: HashMap<u64, u16> = HashMap::new();
    let mut written: HashMap<u64, bool> = HashMap::new();
    let mut accesses = 0u64;
    let mut writes = 0u64;
    for (g, mut stream) in workload.streams.into_iter().enumerate() {
        let bit = 1u16 << g;
        while let Some(a) = stream.next_access() {
            accesses += 1;
            *sharers.entry(a.vpn.vpn()).or_insert(0) |= bit;
            *written.entry(a.vpn.vpn()).or_insert(false) |= a.is_write();
            if a.is_write() {
                writes += 1;
            }
        }
    }
    let pages = sharers.len() as u64;
    let shared = sharers.values().filter(|m| m.count_ones() > 1).count() as u64;
    let shared_rw =
        sharers.iter().filter(|(p, m)| m.count_ones() > 1 && written[*p]).count() as u64;
    Characterization {
        pages,
        accesses,
        shared_pages: ratio(shared, pages),
        write_accesses: ratio(writes, accesses),
        shared_rw_pages: ratio(shared_rw, pages),
    }
}

fn ratio(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64
    }
}

/// Validates a workload against its application's expected band.
///
/// # Errors
///
/// Returns a description of the first band violated.
pub fn validate(app: App, workload: MultiGpuWorkload) -> Result<Characterization, String> {
    let c = characterize(workload);
    let e = Expectation::for_app(app);
    let check = |name: &str, v: f64, (lo, hi): (f64, f64)| {
        if v < lo || v > hi {
            Err(format!("{app}: {name} {v:.3} outside [{lo:.2}, {hi:.2}]"))
        } else {
            Ok(())
        }
    };
    check("shared-page fraction", c.shared_pages, e.shared_pages)?;
    check("write-access fraction", c.write_accesses, e.write_accesses)?;
    check(
        "shared-RW-page fraction",
        c.shared_rw_pages,
        e.shared_rw_pages,
    )?;
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::WorkloadBuilder;

    fn build(app: App) -> MultiGpuWorkload {
        WorkloadBuilder::new(app).scale(0.04).intensity(1.5).seed(0xBEEF).build()
    }

    #[test]
    fn every_app_passes_its_own_band() {
        for app in App::TABLE2.iter().chain(App::DNN.iter()).chain(App::EXTRA.iter()) {
            let c = validate(*app, build(*app))
                .unwrap_or_else(|e| panic!("characterization drifted: {e}"));
            assert!(c.pages > 0 && c.accesses > 0);
        }
    }

    #[test]
    fn bands_discriminate_between_apps() {
        // ST's trace must *fail* FIR's band (and vice versa): the bands are
        // tight enough to catch a generator mix-up.
        assert!(validate(App::Fir, build(App::St)).is_err());
        assert!(validate(App::St, build(App::Fir)).is_err());
        assert!(validate(App::Bfs, build(App::Bs)).is_err());
    }

    #[test]
    fn characterize_counts_exactly() {
        use crate::common::GpuTrace;
        use grit_sim::{PageId, SimRng, SliceStream};
        let mut t0 = GpuTrace::new(SimRng::seeded(1), 64, 4);
        t0.read(PageId(0));
        t0.write(PageId(1));
        let mut t1 = GpuTrace::new(SimRng::seeded(2), 64, 4);
        t1.read(PageId(1));
        let w = MultiGpuWorkload {
            app: App::Bfs,
            footprint_pages: 2,
            streams: vec![
                SliceStream::new(t0.into_accesses()),
                SliceStream::new(t1.into_accesses()),
            ],
            barriers: vec![vec![], vec![]],
        };
        let c = characterize(w);
        assert_eq!(c.pages, 2);
        assert_eq!(c.accesses, 3);
        assert!((c.shared_pages - 0.5).abs() < 1e-12); // page 1 only
        assert!((c.write_accesses - 1.0 / 3.0).abs() < 1e-12);
        assert!((c.shared_rw_pages - 0.5).abs() < 1e-12);
    }
}
