//! Golden-file test freezing the JSONL event schema.
//!
//! `golden_events.jsonl` holds one exemplar line per event shape. If this
//! test fails, the wire format changed: every consumer of `--trace` output
//! breaks, so either fix the regression or consciously update the golden
//! file (and bump the schema note in DESIGN.md §10).

use grit_sim::{GpuId, MemLoc, PageId, Scheme};
use grit_trace::{events_to_jsonl, FaultClass, Json, LinkKind, TraceEvent};

fn golden_events() -> Vec<TraceEvent> {
    let g = GpuId::new;
    vec![
        TraceEvent::Fault {
            cycle: 100,
            gpu: g(0),
            vpn: PageId(7),
            kind: FaultClass::Local,
            write: false,
        },
        TraceEvent::Fault {
            cycle: 150,
            gpu: g(1),
            vpn: PageId(7),
            kind: FaultClass::Protection,
            write: true,
        },
        TraceEvent::Migration {
            cycle: 200,
            gpu: g(1),
            vpn: PageId(7),
            from: MemLoc::Host,
        },
        TraceEvent::Duplication {
            cycle: 300,
            gpu: g(2),
            vpn: PageId(8),
            from: MemLoc::Gpu(g(0)),
        },
        TraceEvent::Collapse {
            cycle: 400,
            gpu: g(3),
            vpn: PageId(8),
            holders: 2,
        },
        TraceEvent::Eviction {
            cycle: 500,
            gpu: g(0),
            vpn: PageId(9),
        },
        TraceEvent::SchemeChange {
            cycle: 600,
            gpu: g(1),
            vpn: PageId(10),
            scheme: Scheme::AccessCounter,
        },
        TraceEvent::LinkTransfer {
            cycle: 700,
            link: LinkKind::Nvlink,
            src: MemLoc::Gpu(g(0)),
            dst: MemLoc::Gpu(g(1)),
            bytes: 4096,
            delivered: 950,
            hop: 0,
            hops: 1,
        },
        TraceEvent::LinkTransfer {
            cycle: 800,
            link: LinkKind::Pcie,
            src: MemLoc::Gpu(g(2)),
            dst: MemLoc::Host,
            bytes: 64,
            delivered: 1312,
            hop: 0,
            hops: 1,
        },
        TraceEvent::LinkTransfer {
            cycle: 900,
            link: LinkKind::PcieCtrl,
            src: MemLoc::Host,
            dst: MemLoc::Gpu(g(3)),
            bytes: 64,
            delivered: 1960,
            hop: 0,
            hops: 1,
        },
        // grit-trace/v2: routed multi-hop transfers carry hop/route info.
        TraceEvent::LinkTransfer {
            cycle: 1000,
            link: LinkKind::Switch,
            src: MemLoc::Gpu(g(0)),
            dst: MemLoc::Gpu(g(5)),
            bytes: 4096,
            delivered: 1200,
            hop: 0,
            hops: 2,
        },
        TraceEvent::LinkTransfer {
            cycle: 1100,
            link: LinkKind::InterNode,
            src: MemLoc::Gpu(g(1)),
            dst: MemLoc::Gpu(g(6)),
            bytes: 4096,
            delivered: 1900,
            hop: 1,
            hops: 3,
        },
    ]
}

const GOLDEN: &str = include_str!("golden_events.jsonl");

#[test]
fn serialization_matches_golden_file_byte_for_byte() {
    assert_eq!(
        events_to_jsonl(&golden_events()),
        GOLDEN,
        "JSONL event schema drifted from golden_events.jsonl"
    );
}

#[test]
fn golden_lines_parse_back_to_the_same_events() {
    let parsed: Vec<TraceEvent> = GOLDEN
        .lines()
        .map(|line| TraceEvent::from_json(&Json::parse(line).unwrap()).unwrap())
        .collect();
    assert_eq!(parsed, golden_events());
}
