//! The event taxonomy: one enum variant per virtual-memory action, plus
//! category names and filter masks.
//!
//! Events are emitted at the exact sites the corresponding
//! `grit_metrics::FaultCounters` fields increment, so with an unfiltered,
//! unsampled tracer the per-category event counts equal the printed
//! counters. The JSONL encoding is one compact object per line with a
//! `"type"` discriminant; see `tests/golden_jsonl.rs` for the frozen schema.

use crate::json::Json;
use grit_pagesize::SplinterCause;
use grit_sim::{Cycle, GpuId, InjectedKind, MemLoc, PageId, Scheme};

/// Version tag of the JSONL event schema.
///
/// `v1` (implicit, pre-topology) had single-hop link transfers only.
/// `v2` adds the optional `hop`/`hops` route fields on `link-transfer`
/// lines and the `switch`/`inter-node` link classes; both are emitted only
/// for multi-hop routed fabrics, so a default all-to-all trace is
/// byte-identical to `v1` and `v1` readers keep working on it.
/// `v3` adds four fault-injection event types (`fault-injected`,
/// `recovered`, `migration-retried`, `fallback-remote`), emitted only when
/// a fault plan is installed; no pre-existing line shape changes, so `v2`
/// readers keep working on every uninjected trace.
/// `v4` adds two multi-page-size event types (`page-coalesced`,
/// `page-splintered`), emitted only when large pages are enabled
/// (`page_size_mode` other than `uniform4k`); no pre-existing line shape
/// changes, so `v3` readers keep working on every uniform-4 KB trace.
pub const TRACE_SCHEMA: &str = "grit-trace/v4";

/// One structured, cycle-stamped simulator event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A GPU took a far-fault (local) or protection fault on `vpn`.
    Fault {
        /// Cycle the fault reached the UVM driver.
        cycle: Cycle,
        /// Faulting GPU.
        gpu: GpuId,
        /// Faulting virtual page.
        vpn: PageId,
        /// Local (far) fault vs. write-protection fault.
        kind: FaultClass,
        /// Whether the faulting access was a write.
        write: bool,
    },
    /// `vpn` migrated into `gpu`'s memory from `from`.
    Migration {
        /// Cycle the migration was initiated.
        cycle: Cycle,
        /// Destination GPU.
        gpu: GpuId,
        /// Migrated page.
        vpn: PageId,
        /// Previous owner (a GPU or the host).
        from: MemLoc,
    },
    /// A read-shared replica of `vpn` was created in `gpu`'s memory.
    Duplication {
        /// Cycle the duplication was initiated.
        cycle: Cycle,
        /// GPU receiving the replica.
        gpu: GpuId,
        /// Duplicated page.
        vpn: PageId,
        /// Source copy the replica was filled from.
        from: MemLoc,
    },
    /// A write collapsed `vpn`'s replicas back to a single exclusive copy.
    Collapse {
        /// Cycle of the collapsing write fault.
        cycle: Cycle,
        /// GPU that keeps the exclusive copy.
        gpu: GpuId,
        /// Collapsed page.
        vpn: PageId,
        /// Number of replica holders invalidated (excluding the writer).
        holders: u8,
    },
    /// Inserting a page evicted a victim from `gpu`'s memory.
    Eviction {
        /// Cycle of the insertion that caused the eviction.
        cycle: Cycle,
        /// GPU whose memory overflowed.
        gpu: GpuId,
        /// Evicted victim page.
        vpn: PageId,
    },
    /// GRIT re-classified `vpn` under a different placement scheme.
    SchemeChange {
        /// Cycle of the fault that triggered the change.
        cycle: Cycle,
        /// Faulting GPU that triggered the re-classification.
        gpu: GpuId,
        /// Re-classified page.
        vpn: PageId,
        /// The scheme now in effect for the page.
        scheme: Scheme,
    },
    /// `bytes` moved over an interconnect link — one event per hop of the
    /// route (a direct transfer is a single hop).
    LinkTransfer {
        /// Cycle this hop was submitted to its wire (for hop 0, the cycle
        /// the transfer was requested).
        cycle: Cycle,
        /// Which link class carried this hop.
        link: LinkKind,
        /// Source endpoint of the whole transfer.
        src: MemLoc,
        /// Destination endpoint of the whole transfer.
        dst: MemLoc,
        /// Payload size in bytes.
        bytes: u64,
        /// Cycle the last byte arrives at this hop's far end (after
        /// queueing + serialization).
        delivered: Cycle,
        /// Zero-based hop index within the route (`0` for direct links).
        hop: u8,
        /// Total hops in the route (`1` for direct links). The JSON form
        /// omits `hop`/`hops` when `hops == 1`, keeping single-hop lines
        /// identical to the pre-topology schema.
        hops: u8,
    },
    /// An injected hardware fault window began (v3, emitted only when a
    /// fault plan is installed).
    FaultInjected {
        /// Cycle the fault became active.
        cycle: Cycle,
        /// What kind of fault was injected.
        kind: InjectedKind,
        /// Affected wire (link id), for link-level faults.
        wire: Option<u32>,
        /// Affected GPU, for GPU-level faults (retirement, storms).
        gpu: Option<GpuId>,
    },
    /// An injected fault window ended and the component recovered (v3).
    Recovered {
        /// Cycle the fault window closed.
        cycle: Cycle,
        /// What kind of fault recovered.
        kind: InjectedKind,
        /// Affected wire (link id), for link-level faults.
        wire: Option<u32>,
        /// Affected GPU, for GPU-level faults.
        gpu: Option<GpuId>,
    },
    /// A migration blocked by an injected outage retried after backoff
    /// (v3).
    MigrationRetried {
        /// Cycle the retry was scheduled.
        cycle: Cycle,
        /// GPU whose migration was blocked.
        gpu: GpuId,
        /// Page whose migration was blocked.
        vpn: PageId,
        /// One-based retry attempt number.
        attempt: u8,
    },
    /// A blocked migration exhausted its retries and fell back: the page
    /// stayed remote, or was staged through host memory (v3).
    FallbackRemote {
        /// Cycle of the fallback decision.
        cycle: Cycle,
        /// GPU that gave up migrating the page in.
        gpu: GpuId,
        /// Page left remote or host-staged.
        vpn: PageId,
        /// `true` if the page was staged through host memory (dirty
        /// pages), `false` if it stayed with the remote owner.
        staged: bool,
    },
    /// A fully-private, fully-resident 2 MB frame was coalesced into one
    /// large mapping (v4, emitted only when large pages are enabled).
    PageCoalesced {
        /// Cycle the driver promoted the frame.
        cycle: Cycle,
        /// GPU owning the coalesced frame.
        gpu: GpuId,
        /// First base page of the frame.
        vpn: PageId,
    },
    /// A coalesced 2 MB frame was splintered back to base pages (v4).
    PageSplintered {
        /// Cycle the driver demoted the frame.
        cycle: Cycle,
        /// GPU that owned the frame before the split.
        gpu: GpuId,
        /// First base page of the frame.
        vpn: PageId,
        /// Why the frame splintered.
        cause: SplinterCause,
    },
}

/// Fault classification mirroring `grit_uvm::FaultKind`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultClass {
    /// Far fault: the page was not mapped locally.
    Local,
    /// Write-protection fault on a read-duplicated page.
    Protection,
}

impl FaultClass {
    /// Stable JSON name.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::Local => "local",
            FaultClass::Protection => "protection",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "local" => Some(FaultClass::Local),
            "protection" => Some(FaultClass::Protection),
            _ => None,
        }
    }
}

/// Which interconnect link class carried a transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkKind {
    /// GPU↔GPU NVLink.
    Nvlink,
    /// GPU↔switch uplink or switch↔switch trunk of a routed fabric.
    Switch,
    /// Inter-node bottleneck link of a hierarchical fabric.
    InterNode,
    /// GPU↔host PCIe data path.
    Pcie,
    /// GPU↔host PCIe control path (fault messages, invalidations).
    PcieCtrl,
}

impl LinkKind {
    /// Stable JSON name.
    pub fn name(self) -> &'static str {
        match self {
            LinkKind::Nvlink => "nvlink",
            LinkKind::Switch => "switch",
            LinkKind::InterNode => "inter-node",
            LinkKind::Pcie => "pcie",
            LinkKind::PcieCtrl => "pcie-ctrl",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "nvlink" => Some(LinkKind::Nvlink),
            "switch" => Some(LinkKind::Switch),
            "inter-node" => Some(LinkKind::InterNode),
            "pcie" => Some(LinkKind::Pcie),
            "pcie-ctrl" => Some(LinkKind::PcieCtrl),
            _ => None,
        }
    }
}

/// Event category, used for filtering and as the JSON `"type"` value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventCategory {
    /// [`TraceEvent::Fault`].
    Fault,
    /// [`TraceEvent::Migration`].
    Migration,
    /// [`TraceEvent::Duplication`].
    Duplication,
    /// [`TraceEvent::Collapse`].
    Collapse,
    /// [`TraceEvent::Eviction`].
    Eviction,
    /// [`TraceEvent::SchemeChange`].
    SchemeChange,
    /// [`TraceEvent::LinkTransfer`].
    LinkTransfer,
    /// [`TraceEvent::FaultInjected`].
    FaultInjected,
    /// [`TraceEvent::Recovered`].
    Recovered,
    /// [`TraceEvent::MigrationRetried`].
    MigrationRetried,
    /// [`TraceEvent::FallbackRemote`].
    FallbackRemote,
    /// [`TraceEvent::PageCoalesced`].
    PageCoalesced,
    /// [`TraceEvent::PageSplintered`].
    PageSplintered,
}

impl EventCategory {
    /// All categories, in bit order.
    pub const ALL: [EventCategory; 13] = [
        EventCategory::Fault,
        EventCategory::Migration,
        EventCategory::Duplication,
        EventCategory::Collapse,
        EventCategory::Eviction,
        EventCategory::SchemeChange,
        EventCategory::LinkTransfer,
        EventCategory::FaultInjected,
        EventCategory::Recovered,
        EventCategory::MigrationRetried,
        EventCategory::FallbackRemote,
        EventCategory::PageCoalesced,
        EventCategory::PageSplintered,
    ];

    /// Stable name used in JSON `"type"` fields and `--trace-filter` lists.
    pub fn name(self) -> &'static str {
        match self {
            EventCategory::Fault => "fault",
            EventCategory::Migration => "migration",
            EventCategory::Duplication => "duplication",
            EventCategory::Collapse => "collapse",
            EventCategory::Eviction => "eviction",
            EventCategory::SchemeChange => "scheme-change",
            EventCategory::LinkTransfer => "link-transfer",
            EventCategory::FaultInjected => "fault-injected",
            EventCategory::Recovered => "recovered",
            EventCategory::MigrationRetried => "migration-retried",
            EventCategory::FallbackRemote => "fallback-remote",
            EventCategory::PageCoalesced => "page-coalesced",
            EventCategory::PageSplintered => "page-splintered",
        }
    }

    /// Parses a category name (the inverse of [`EventCategory::name`]).
    pub fn parse(s: &str) -> Option<Self> {
        EventCategory::ALL.into_iter().find(|c| c.name() == s)
    }

    /// Index of this category's bit in a [`CategoryMask`] (also the slot in
    /// per-category counter arrays).
    pub fn bit(self) -> usize {
        EventCategory::ALL.iter().position(|c| *c == self).expect("category in ALL")
    }
}

/// A set of [`EventCategory`] values, used to filter emission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CategoryMask(u16);

impl CategoryMask {
    /// Every category enabled.
    pub const ALL: CategoryMask = CategoryMask(0x1fff);
    /// No category enabled.
    pub const NONE: CategoryMask = CategoryMask(0);

    /// This mask with `cat` also enabled.
    pub fn with(self, cat: EventCategory) -> CategoryMask {
        CategoryMask(self.0 | 1 << cat.bit())
    }

    /// Whether `cat` is enabled.
    pub fn contains(self, cat: EventCategory) -> bool {
        self.0 & (1 << cat.bit()) != 0
    }

    /// Parses a comma-separated category list, e.g.
    /// `"fault,migration,link-transfer"`.
    ///
    /// # Errors
    ///
    /// Returns the first unknown name.
    pub fn parse(list: &str) -> Result<CategoryMask, String> {
        let mut mask = CategoryMask::NONE;
        for part in list.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let cat = EventCategory::parse(part)
                .ok_or_else(|| format!("unknown trace category: {part:?}"))?;
            mask = mask.with(cat);
        }
        Ok(mask)
    }
}

impl Default for CategoryMask {
    fn default() -> Self {
        CategoryMask::ALL
    }
}

fn loc_to_json(loc: MemLoc) -> Json {
    match loc {
        MemLoc::Gpu(g) => Json::UInt(g.index() as u64),
        MemLoc::Host => Json::Str("host".into()),
    }
}

fn loc_from_json(v: &Json) -> Result<MemLoc, String> {
    if let Some(g) = v.as_u64() {
        Ok(MemLoc::Gpu(GpuId::new(g as u8)))
    } else if v.as_str() == Some("host") {
        Ok(MemLoc::Host)
    } else {
        Err(format!("invalid memory location: {v}"))
    }
}

fn scheme_from_json(s: &str) -> Result<Scheme, String> {
    Scheme::ALL
        .into_iter()
        .find(|sch| sch.to_string() == s)
        .ok_or_else(|| format!("unknown scheme: {s:?}"))
}

impl TraceEvent {
    /// The category this event belongs to.
    pub fn category(&self) -> EventCategory {
        match self {
            TraceEvent::Fault { .. } => EventCategory::Fault,
            TraceEvent::Migration { .. } => EventCategory::Migration,
            TraceEvent::Duplication { .. } => EventCategory::Duplication,
            TraceEvent::Collapse { .. } => EventCategory::Collapse,
            TraceEvent::Eviction { .. } => EventCategory::Eviction,
            TraceEvent::SchemeChange { .. } => EventCategory::SchemeChange,
            TraceEvent::LinkTransfer { .. } => EventCategory::LinkTransfer,
            TraceEvent::FaultInjected { .. } => EventCategory::FaultInjected,
            TraceEvent::Recovered { .. } => EventCategory::Recovered,
            TraceEvent::MigrationRetried { .. } => EventCategory::MigrationRetried,
            TraceEvent::FallbackRemote { .. } => EventCategory::FallbackRemote,
            TraceEvent::PageCoalesced { .. } => EventCategory::PageCoalesced,
            TraceEvent::PageSplintered { .. } => EventCategory::PageSplintered,
        }
    }

    /// The event's cycle stamp.
    pub fn cycle(&self) -> Cycle {
        match *self {
            TraceEvent::Fault { cycle, .. }
            | TraceEvent::Migration { cycle, .. }
            | TraceEvent::Duplication { cycle, .. }
            | TraceEvent::Collapse { cycle, .. }
            | TraceEvent::Eviction { cycle, .. }
            | TraceEvent::SchemeChange { cycle, .. }
            | TraceEvent::LinkTransfer { cycle, .. }
            | TraceEvent::FaultInjected { cycle, .. }
            | TraceEvent::Recovered { cycle, .. }
            | TraceEvent::MigrationRetried { cycle, .. }
            | TraceEvent::FallbackRemote { cycle, .. }
            | TraceEvent::PageCoalesced { cycle, .. }
            | TraceEvent::PageSplintered { cycle, .. } => cycle,
        }
    }

    /// Encodes the event as one compact JSON object (the JSONL line format).
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = vec![
            ("type".into(), Json::Str(self.category().name().into())),
            ("cycle".into(), Json::UInt(self.cycle())),
        ];
        match *self {
            TraceEvent::Fault {
                gpu,
                vpn,
                kind,
                write,
                ..
            } => {
                fields.push(("gpu".into(), Json::UInt(gpu.index() as u64)));
                fields.push(("vpn".into(), Json::UInt(vpn.vpn())));
                fields.push(("kind".into(), Json::Str(kind.name().into())));
                fields.push(("write".into(), Json::Bool(write)));
            }
            TraceEvent::Migration { gpu, vpn, from, .. } => {
                fields.push(("gpu".into(), Json::UInt(gpu.index() as u64)));
                fields.push(("vpn".into(), Json::UInt(vpn.vpn())));
                fields.push(("from".into(), loc_to_json(from)));
            }
            TraceEvent::Duplication { gpu, vpn, from, .. } => {
                fields.push(("gpu".into(), Json::UInt(gpu.index() as u64)));
                fields.push(("vpn".into(), Json::UInt(vpn.vpn())));
                fields.push(("from".into(), loc_to_json(from)));
            }
            TraceEvent::Collapse {
                gpu, vpn, holders, ..
            } => {
                fields.push(("gpu".into(), Json::UInt(gpu.index() as u64)));
                fields.push(("vpn".into(), Json::UInt(vpn.vpn())));
                fields.push(("holders".into(), Json::UInt(u64::from(holders))));
            }
            TraceEvent::Eviction { gpu, vpn, .. } => {
                fields.push(("gpu".into(), Json::UInt(gpu.index() as u64)));
                fields.push(("vpn".into(), Json::UInt(vpn.vpn())));
            }
            TraceEvent::SchemeChange {
                gpu, vpn, scheme, ..
            } => {
                fields.push(("gpu".into(), Json::UInt(gpu.index() as u64)));
                fields.push(("vpn".into(), Json::UInt(vpn.vpn())));
                fields.push(("scheme".into(), Json::Str(scheme.to_string())));
            }
            TraceEvent::LinkTransfer {
                link,
                src,
                dst,
                bytes,
                delivered,
                hop,
                hops,
                ..
            } => {
                fields.push(("link".into(), Json::Str(link.name().into())));
                fields.push(("src".into(), loc_to_json(src)));
                fields.push(("dst".into(), loc_to_json(dst)));
                fields.push(("bytes".into(), Json::UInt(bytes)));
                fields.push(("delivered".into(), Json::UInt(delivered)));
                // Route fields appear only on multi-hop fabrics so the
                // default single-hop schema stays byte-identical to v1.
                if hops > 1 {
                    fields.push(("hop".into(), Json::UInt(u64::from(hop))));
                    fields.push(("hops".into(), Json::UInt(u64::from(hops))));
                }
            }
            TraceEvent::FaultInjected {
                kind, wire, gpu, ..
            }
            | TraceEvent::Recovered {
                kind, wire, gpu, ..
            } => {
                fields.push(("kind".into(), Json::Str(kind.name().into())));
                if let Some(w) = wire {
                    fields.push(("wire".into(), Json::UInt(u64::from(w))));
                }
                if let Some(g) = gpu {
                    fields.push(("gpu".into(), Json::UInt(g.index() as u64)));
                }
            }
            TraceEvent::MigrationRetried {
                gpu, vpn, attempt, ..
            } => {
                fields.push(("gpu".into(), Json::UInt(gpu.index() as u64)));
                fields.push(("vpn".into(), Json::UInt(vpn.vpn())));
                fields.push(("attempt".into(), Json::UInt(u64::from(attempt))));
            }
            TraceEvent::FallbackRemote {
                gpu, vpn, staged, ..
            } => {
                fields.push(("gpu".into(), Json::UInt(gpu.index() as u64)));
                fields.push(("vpn".into(), Json::UInt(vpn.vpn())));
                fields.push(("staged".into(), Json::Bool(staged)));
            }
            TraceEvent::PageCoalesced { gpu, vpn, .. } => {
                fields.push(("gpu".into(), Json::UInt(gpu.index() as u64)));
                fields.push(("vpn".into(), Json::UInt(vpn.vpn())));
            }
            TraceEvent::PageSplintered {
                gpu, vpn, cause, ..
            } => {
                fields.push(("gpu".into(), Json::UInt(gpu.index() as u64)));
                fields.push(("vpn".into(), Json::UInt(vpn.vpn())));
                fields.push(("cause".into(), Json::Str(cause.name().into())));
            }
        }
        Json::Obj(fields)
    }

    /// Decodes an event from its JSON object form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(v: &Json) -> Result<TraceEvent, String> {
        let ty = v.get("type").and_then(Json::as_str).ok_or("event missing \"type\"")?;
        let cat = EventCategory::parse(ty).ok_or_else(|| format!("unknown event type: {ty:?}"))?;
        let u = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{ty} event missing integer {key:?}"))
        };
        let cycle = u("cycle")?;
        let gpu = || u("gpu").map(|g| GpuId::new(g as u8));
        Ok(match cat {
            EventCategory::Fault => TraceEvent::Fault {
                cycle,
                gpu: gpu()?,
                vpn: PageId(u("vpn")?),
                kind: v
                    .get("kind")
                    .and_then(Json::as_str)
                    .and_then(FaultClass::parse)
                    .ok_or("fault event missing \"kind\"")?,
                write: v
                    .get("write")
                    .and_then(Json::as_bool)
                    .ok_or("fault event missing \"write\"")?,
            },
            EventCategory::Migration => TraceEvent::Migration {
                cycle,
                gpu: gpu()?,
                vpn: PageId(u("vpn")?),
                from: loc_from_json(v.get("from").ok_or("migration event missing \"from\"")?)?,
            },
            EventCategory::Duplication => TraceEvent::Duplication {
                cycle,
                gpu: gpu()?,
                vpn: PageId(u("vpn")?),
                from: loc_from_json(v.get("from").ok_or("duplication event missing \"from\"")?)?,
            },
            EventCategory::Collapse => TraceEvent::Collapse {
                cycle,
                gpu: gpu()?,
                vpn: PageId(u("vpn")?),
                holders: u("holders")? as u8,
            },
            EventCategory::Eviction => TraceEvent::Eviction {
                cycle,
                gpu: gpu()?,
                vpn: PageId(u("vpn")?),
            },
            EventCategory::SchemeChange => TraceEvent::SchemeChange {
                cycle,
                gpu: gpu()?,
                vpn: PageId(u("vpn")?),
                scheme: scheme_from_json(
                    v.get("scheme")
                        .and_then(Json::as_str)
                        .ok_or("scheme-change event missing \"scheme\"")?,
                )?,
            },
            EventCategory::LinkTransfer => TraceEvent::LinkTransfer {
                cycle,
                link: v
                    .get("link")
                    .and_then(Json::as_str)
                    .and_then(LinkKind::parse)
                    .ok_or("link-transfer event missing \"link\"")?,
                src: loc_from_json(v.get("src").ok_or("link-transfer event missing \"src\"")?)?,
                dst: loc_from_json(v.get("dst").ok_or("link-transfer event missing \"dst\"")?)?,
                bytes: u("bytes")?,
                delivered: u("delivered")?,
                // Optional v2 route fields; v1 lines are single-hop.
                hop: v.get("hop").and_then(Json::as_u64).unwrap_or(0) as u8,
                hops: v.get("hops").and_then(Json::as_u64).unwrap_or(1) as u8,
            },
            EventCategory::FaultInjected | EventCategory::Recovered => {
                let kind = v
                    .get("kind")
                    .and_then(Json::as_str)
                    .and_then(InjectedKind::parse)
                    .ok_or_else(|| format!("{ty} event missing \"kind\""))?;
                let wire = v.get("wire").and_then(Json::as_u64).map(|w| w as u32);
                let gpu = v.get("gpu").and_then(Json::as_u64).map(|g| GpuId::new(g as u8));
                if cat == EventCategory::FaultInjected {
                    TraceEvent::FaultInjected {
                        cycle,
                        kind,
                        wire,
                        gpu,
                    }
                } else {
                    TraceEvent::Recovered {
                        cycle,
                        kind,
                        wire,
                        gpu,
                    }
                }
            }
            EventCategory::MigrationRetried => TraceEvent::MigrationRetried {
                cycle,
                gpu: gpu()?,
                vpn: PageId(u("vpn")?),
                attempt: u("attempt")? as u8,
            },
            EventCategory::FallbackRemote => TraceEvent::FallbackRemote {
                cycle,
                gpu: gpu()?,
                vpn: PageId(u("vpn")?),
                staged: v
                    .get("staged")
                    .and_then(Json::as_bool)
                    .ok_or("fallback-remote event missing \"staged\"")?,
            },
            EventCategory::PageCoalesced => TraceEvent::PageCoalesced {
                cycle,
                gpu: gpu()?,
                vpn: PageId(u("vpn")?),
            },
            EventCategory::PageSplintered => TraceEvent::PageSplintered {
                cycle,
                gpu: gpu()?,
                vpn: PageId(u("vpn")?),
                cause: v
                    .get("cause")
                    .and_then(Json::as_str)
                    .and_then(SplinterCause::parse)
                    .ok_or("page-splintered event missing \"cause\"")?,
            },
        })
    }
}

/// Renders events as JSONL: one compact object per line, trailing newline.
pub fn events_to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&ev.to_json().to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_names_round_trip() {
        for cat in EventCategory::ALL {
            assert_eq!(EventCategory::parse(cat.name()), Some(cat));
        }
        assert_eq!(EventCategory::parse("bogus"), None);
    }

    #[test]
    fn mask_parse_and_contains() {
        let m = CategoryMask::parse("fault, link-transfer").unwrap();
        assert!(m.contains(EventCategory::Fault));
        assert!(m.contains(EventCategory::LinkTransfer));
        assert!(!m.contains(EventCategory::Migration));
        assert!(CategoryMask::parse("fault,nope").is_err());
        assert_eq!(CategoryMask::parse("").unwrap(), CategoryMask::NONE);
        for cat in EventCategory::ALL {
            assert!(CategoryMask::ALL.contains(cat));
            assert!(!CategoryMask::NONE.contains(cat));
        }
    }

    #[test]
    fn events_round_trip_through_json() {
        let events = [
            TraceEvent::Fault {
                cycle: 1,
                gpu: GpuId::new(0),
                vpn: PageId(7),
                kind: FaultClass::Protection,
                write: true,
            },
            TraceEvent::Migration {
                cycle: 2,
                gpu: GpuId::new(1),
                vpn: PageId(8),
                from: MemLoc::Host,
            },
            TraceEvent::Duplication {
                cycle: 3,
                gpu: GpuId::new(2),
                vpn: PageId(9),
                from: MemLoc::Gpu(GpuId::new(0)),
            },
            TraceEvent::Collapse {
                cycle: 4,
                gpu: GpuId::new(3),
                vpn: PageId(10),
                holders: 2,
            },
            TraceEvent::Eviction {
                cycle: 5,
                gpu: GpuId::new(0),
                vpn: PageId(11),
            },
            TraceEvent::SchemeChange {
                cycle: 6,
                gpu: GpuId::new(1),
                vpn: PageId(12),
                scheme: Scheme::Duplication,
            },
            TraceEvent::LinkTransfer {
                cycle: 7,
                link: LinkKind::PcieCtrl,
                src: MemLoc::Host,
                dst: MemLoc::Gpu(GpuId::new(3)),
                bytes: 64,
                delivered: 99,
                hop: 0,
                hops: 1,
            },
            TraceEvent::LinkTransfer {
                cycle: 8,
                link: LinkKind::Switch,
                src: MemLoc::Gpu(GpuId::new(0)),
                dst: MemLoc::Gpu(GpuId::new(5)),
                bytes: 4096,
                delivered: 120,
                hop: 1,
                hops: 3,
            },
            TraceEvent::LinkTransfer {
                cycle: 9,
                link: LinkKind::InterNode,
                src: MemLoc::Gpu(GpuId::new(1)),
                dst: MemLoc::Gpu(GpuId::new(6)),
                bytes: 4096,
                delivered: 300,
                hop: 1,
                hops: 3,
            },
            TraceEvent::FaultInjected {
                cycle: 10,
                kind: InjectedKind::Outage,
                wire: Some(3),
                gpu: None,
            },
            TraceEvent::FaultInjected {
                cycle: 11,
                kind: InjectedKind::Storm,
                wire: None,
                gpu: Some(GpuId::new(2)),
            },
            TraceEvent::Recovered {
                cycle: 12,
                kind: InjectedKind::Degrade,
                wire: Some(0),
                gpu: None,
            },
            TraceEvent::MigrationRetried {
                cycle: 13,
                gpu: GpuId::new(1),
                vpn: PageId(77),
                attempt: 2,
            },
            TraceEvent::FallbackRemote {
                cycle: 14,
                gpu: GpuId::new(0),
                vpn: PageId(78),
                staged: true,
            },
            TraceEvent::PageCoalesced {
                cycle: 15,
                gpu: GpuId::new(2),
                vpn: PageId(512),
            },
            TraceEvent::PageSplintered {
                cycle: 16,
                gpu: GpuId::new(2),
                vpn: PageId(512),
                cause: SplinterCause::FalseSharing,
            },
        ];
        for ev in events {
            let back = TraceEvent::from_json(&ev.to_json()).unwrap();
            assert_eq!(back, ev);
        }
    }

    #[test]
    fn single_hop_link_transfer_omits_route_fields() {
        let ev = TraceEvent::LinkTransfer {
            cycle: 7,
            link: LinkKind::Nvlink,
            src: MemLoc::Gpu(GpuId::new(0)),
            dst: MemLoc::Gpu(GpuId::new(1)),
            bytes: 64,
            delivered: 99,
            hop: 0,
            hops: 1,
        };
        let text = ev.to_json().to_string();
        assert!(!text.contains("\"hop\""), "v1 compatibility broken: {text}");
        // And a v1 line (no hop/hops) parses back to the same event.
        assert_eq!(
            TraceEvent::from_json(&Json::parse(&text).unwrap()).unwrap(),
            ev
        );
    }

    #[test]
    fn jsonl_has_one_line_per_event() {
        let events = [TraceEvent::Eviction {
            cycle: 5,
            gpu: GpuId::new(0),
            vpn: PageId(11),
        }; 3];
        let text = events_to_jsonl(&events);
        assert_eq!(text.lines().count(), 3);
        assert!(text.ends_with('\n'));
        for line in text.lines() {
            TraceEvent::from_json(&Json::parse(line).unwrap()).unwrap();
        }
    }
}
