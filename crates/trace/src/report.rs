//! Machine-readable run reports.
//!
//! Two artifacts: [`RunReport`] (`run_report.json`, the full per-cell
//! record — metrics, timing, interval series) and [`BenchSummary`]
//! (`BENCH_run.json`, the compact perf/fidelity baseline: per-target
//! wall-clock, headline geomean speedups, fault totals). Both serialize to
//! and parse from [`Json`] with exact round-tripping, so regressions can be
//! diffed across commits.

use grit_metrics::{
    FaultCounters, IntervalSeries, LatencyBreakdown, LatencyClass, RunMetrics, SchemeMix,
};
use grit_sim::Cycle;

use crate::json::Json;

/// Schema tag written into every [`RunReport`]. Bumped to v2 when cells
/// gained `status` / `error` fields (resilient batch execution), to v3
/// when cell metrics gained the per-class `fabric` traffic object
/// (topology-driven interconnect), to v4 when injected-fault runs
/// gained the `resilience` counter object (emitted only when fault
/// injection ran, so uninjected documents stay v3-shaped), and to v5
/// when profiled runs gained the top-level `profile` object (emitted
/// only when self-profiling ran, so unprofiled documents stay
/// v4-shaped), and to v6 when cells gained the optional canonical
/// `spec` string (the serialized `RunSpec` the cell ran under, also the
/// result-store key), and to v7 when multi-page-size runs gained the
/// `pagesize` counter object (emitted only when large pages are enabled,
/// so uniform-4 KB documents stay v6-shaped), and to v8 when runs that
/// touch a result store gained the top-level `store` counter object
/// (hits / misses / quarantined files; emitted only when a store was in
/// play, so store-less documents stay v7-shaped). Older documents still
/// parse: absent objects default to zeros or `None`.
pub const RUN_REPORT_SCHEMA: &str = "grit-run-report/v8";
/// v7 run-report schema tag, still accepted by [`RunReport::from_json`].
pub const RUN_REPORT_SCHEMA_V7: &str = "grit-run-report/v7";
/// v6 run-report schema tag, still accepted by [`RunReport::from_json`].
pub const RUN_REPORT_SCHEMA_V6: &str = "grit-run-report/v6";
/// v5 run-report schema tag, still accepted by [`RunReport::from_json`].
pub const RUN_REPORT_SCHEMA_V5: &str = "grit-run-report/v5";
/// v4 run-report schema tag, still accepted by [`RunReport::from_json`].
pub const RUN_REPORT_SCHEMA_V4: &str = "grit-run-report/v4";
/// v3 run-report schema tag, still accepted by [`RunReport::from_json`].
pub const RUN_REPORT_SCHEMA_V3: &str = "grit-run-report/v3";
/// v2 run-report schema tag, still accepted by [`RunReport::from_json`].
pub const RUN_REPORT_SCHEMA_V2: &str = "grit-run-report/v2";
/// Schema tag written into every [`BenchSummary`].
pub const BENCH_SCHEMA: &str = "grit-bench/v1";

fn req<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
    req(v, key)?.as_u64().ok_or_else(|| format!("field {key:?} is not an integer"))
}

fn req_f64(v: &Json, key: &str) -> Result<f64, String> {
    req(v, key)?.as_f64().ok_or_else(|| format!("field {key:?} is not a number"))
}

/// Integer field that older documents may lack entirely.
fn opt_u64(v: &Json, key: &str) -> Option<u64> {
    req(v, key).ok().and_then(Json::as_u64)
}

fn req_str(v: &Json, key: &str) -> Result<String, String> {
    Ok(req(v, key)?
        .as_str()
        .ok_or_else(|| format!("field {key:?} is not a string"))?
        .to_string())
}

fn req_bool(v: &Json, key: &str) -> Result<bool, String> {
    req(v, key)?.as_bool().ok_or_else(|| format!("field {key:?} is not a bool"))
}

fn req_arr<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], String> {
    req(v, key)?.as_arr().ok_or_else(|| format!("field {key:?} is not an array"))
}

fn faults_to_json(f: &FaultCounters) -> Json {
    Json::Obj(vec![
        ("local_faults".into(), Json::UInt(f.local_faults)),
        ("protection_faults".into(), Json::UInt(f.protection_faults)),
        ("migrations".into(), Json::UInt(f.migrations)),
        ("duplications".into(), Json::UInt(f.duplications)),
        ("collapses".into(), Json::UInt(f.collapses)),
        ("evictions".into(), Json::UInt(f.evictions)),
        ("scheme_changes".into(), Json::UInt(f.scheme_changes)),
        // Derived, for human readers; ignored when parsing.
        ("total_faults".into(), Json::UInt(f.total_faults())),
    ])
}

fn faults_from_json(v: &Json) -> Result<FaultCounters, String> {
    Ok(FaultCounters {
        local_faults: req_u64(v, "local_faults")?,
        protection_faults: req_u64(v, "protection_faults")?,
        migrations: req_u64(v, "migrations")?,
        duplications: req_u64(v, "duplications")?,
        collapses: req_u64(v, "collapses")?,
        evictions: req_u64(v, "evictions")?,
        scheme_changes: req_u64(v, "scheme_changes")?,
    })
}

/// Wall-clock timing of one cell, split into workload build and simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CellTiming {
    /// Seconds spent obtaining the workload (≈0 on a cache hit).
    pub build_seconds: f64,
    /// Seconds spent inside `Simulation::run`.
    pub sim_seconds: f64,
    /// Whether the workload came from the process-wide cache.
    pub workload_cache_hit: bool,
    /// Whether the cell was loaded from an on-disk resume store rather
    /// than simulated in this process.
    pub resumed: bool,
}

/// Per-class fabric traffic of one cell (grit-run-report/v3): how many
/// payload bytes crossed each wire class and how long transfers queued
/// behind busy wires, accumulated hop by hop on routed topologies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FabricReport {
    /// Bytes over direct GPU↔GPU NVLinks.
    pub nvlink_bytes: u64,
    /// Bytes over switch uplinks/trunks (NvSwitch, hierarchical routers).
    pub switch_bytes: u64,
    /// Bytes over the hierarchical inter-node bottleneck.
    pub inter_node_bytes: u64,
    /// Bytes over host PCIe (data + control).
    pub pcie_bytes: u64,
    /// Queueing cycles on NVLink hops.
    pub nvlink_queue_cycles: u64,
    /// Queueing cycles on switch hops.
    pub switch_queue_cycles: u64,
    /// Queueing cycles on inter-node hops.
    pub inter_node_queue_cycles: u64,
    /// Queueing cycles on PCIe links.
    pub pcie_queue_cycles: u64,
}

impl FabricReport {
    /// Extracts the snapshot from the `fabric_class_bytes` /
    /// `fabric_queue_cycles` aux series the runner records (class order:
    /// nvlink, switch, inter-node, pcie); zeros when the series are absent
    /// (e.g. pre-topology reports or synthetic metrics).
    pub fn from_aux(aux: &[(String, Vec<f64>)]) -> Self {
        let series = |name: &str| -> [u64; 4] {
            let mut out = [0u64; 4];
            if let Some((_, vs)) = aux.iter().find(|(k, _)| k == name) {
                for (slot, v) in out.iter_mut().zip(vs) {
                    *slot = *v as u64;
                }
            }
            out
        };
        let bytes = series("fabric_class_bytes");
        let queue = series("fabric_queue_cycles");
        FabricReport {
            nvlink_bytes: bytes[0],
            switch_bytes: bytes[1],
            inter_node_bytes: bytes[2],
            pcie_bytes: bytes[3],
            nvlink_queue_cycles: queue[0],
            switch_queue_cycles: queue[1],
            inter_node_queue_cycles: queue[2],
            pcie_queue_cycles: queue[3],
        }
    }

    /// Total queueing cycles across every wire class.
    pub fn total_queue_cycles(&self) -> u64 {
        self.nvlink_queue_cycles
            + self.switch_queue_cycles
            + self.inter_node_queue_cycles
            + self.pcie_queue_cycles
    }

    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("nvlink_bytes".into(), Json::UInt(self.nvlink_bytes)),
            ("switch_bytes".into(), Json::UInt(self.switch_bytes)),
            ("inter_node_bytes".into(), Json::UInt(self.inter_node_bytes)),
            ("pcie_bytes".into(), Json::UInt(self.pcie_bytes)),
            (
                "nvlink_queue_cycles".into(),
                Json::UInt(self.nvlink_queue_cycles),
            ),
            (
                "switch_queue_cycles".into(),
                Json::UInt(self.switch_queue_cycles),
            ),
            (
                "inter_node_queue_cycles".into(),
                Json::UInt(self.inter_node_queue_cycles),
            ),
            (
                "pcie_queue_cycles".into(),
                Json::UInt(self.pcie_queue_cycles),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(FabricReport {
            nvlink_bytes: req_u64(v, "nvlink_bytes")?,
            switch_bytes: req_u64(v, "switch_bytes")?,
            inter_node_bytes: req_u64(v, "inter_node_bytes")?,
            pcie_bytes: req_u64(v, "pcie_bytes")?,
            nvlink_queue_cycles: req_u64(v, "nvlink_queue_cycles")?,
            switch_queue_cycles: req_u64(v, "switch_queue_cycles")?,
            inter_node_queue_cycles: req_u64(v, "inter_node_queue_cycles")?,
            pcie_queue_cycles: req_u64(v, "pcie_queue_cycles")?,
        })
    }
}

/// Fault-injection outcome counters of one cell (grit-run-report/v4):
/// what was injected, how the system degraded, and that every blocked
/// operation resolved. Zeros — and omitted from the JSON — when the run
/// had no fault plan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResilienceReport {
    /// Fault windows that became active.
    pub faults_injected: u64,
    /// Fault windows that closed (component recovered).
    pub recoveries: u64,
    /// DRAM page frames retired by injected ECC faults.
    pub frames_retired: u64,
    /// Resident pages force-evicted by frame retirement.
    pub pages_force_evicted: u64,
    /// Faults serviced while a handler stall storm was active.
    pub storm_stalled_faults: u64,
    /// Migrations that found their route down on first attempt.
    pub migrations_blocked: u64,
    /// Backoff retries scheduled for blocked migrations.
    pub migration_retries: u64,
    /// Blocked migrations that eventually succeeded over a recovered or
    /// rerouted path.
    pub retry_successes: u64,
    /// Blocked migrations that gave up and left the page remote.
    pub fallback_remote: u64,
    /// Blocked transfers staged through host memory.
    pub host_staged: u64,
    /// Invariant sweeps run (epoch boundaries + post-fault checks).
    pub invariant_checks: u64,
}

impl ResilienceReport {
    /// Extracts the snapshot from the `resilience_counters` aux series the
    /// runner records (field order above); zeros when the series is absent
    /// (uninjected runs, older reports).
    pub fn from_aux(aux: &[(String, Vec<f64>)]) -> Self {
        let mut out = [0u64; 11];
        if let Some((_, vs)) = aux.iter().find(|(k, _)| k == "resilience_counters") {
            for (slot, v) in out.iter_mut().zip(vs) {
                *slot = *v as u64;
            }
        }
        ResilienceReport {
            faults_injected: out[0],
            recoveries: out[1],
            frames_retired: out[2],
            pages_force_evicted: out[3],
            storm_stalled_faults: out[4],
            migrations_blocked: out[5],
            migration_retries: out[6],
            retry_successes: out[7],
            fallback_remote: out[8],
            host_staged: out[9],
            invariant_checks: out[10],
        }
    }

    /// Whether every blocked migration resolved: retried to success, fell
    /// back to remote access, or was staged through the host.
    pub fn all_blocked_resolved(&self) -> bool {
        self.migrations_blocked <= self.retry_successes + self.fallback_remote + self.host_staged
    }

    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("faults_injected".into(), Json::UInt(self.faults_injected)),
            ("recoveries".into(), Json::UInt(self.recoveries)),
            ("frames_retired".into(), Json::UInt(self.frames_retired)),
            (
                "pages_force_evicted".into(),
                Json::UInt(self.pages_force_evicted),
            ),
            (
                "storm_stalled_faults".into(),
                Json::UInt(self.storm_stalled_faults),
            ),
            (
                "migrations_blocked".into(),
                Json::UInt(self.migrations_blocked),
            ),
            (
                "migration_retries".into(),
                Json::UInt(self.migration_retries),
            ),
            ("retry_successes".into(), Json::UInt(self.retry_successes)),
            ("fallback_remote".into(), Json::UInt(self.fallback_remote)),
            ("host_staged".into(), Json::UInt(self.host_staged)),
            ("invariant_checks".into(), Json::UInt(self.invariant_checks)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(ResilienceReport {
            faults_injected: req_u64(v, "faults_injected")?,
            recoveries: req_u64(v, "recoveries")?,
            frames_retired: req_u64(v, "frames_retired")?,
            pages_force_evicted: req_u64(v, "pages_force_evicted")?,
            storm_stalled_faults: req_u64(v, "storm_stalled_faults")?,
            migrations_blocked: req_u64(v, "migrations_blocked")?,
            migration_retries: req_u64(v, "migration_retries")?,
            retry_successes: req_u64(v, "retry_successes")?,
            fallback_remote: req_u64(v, "fallback_remote")?,
            host_staged: req_u64(v, "host_staged")?,
            invariant_checks: req_u64(v, "invariant_checks")?,
        })
    }
}

/// Multi-page-size activity counters of one cell (grit-run-report/v7):
/// how often 2 MB frames coalesced and splintered, why they splintered,
/// and what coalescing did to access-counter granularity. Zeros — and
/// omitted from the JSON — when the run managed uniform 4 KB pages.
///
/// The field order mirrors the `pagesize_counters` aux series recorded
/// by the runner (`grit_pagesize::PageSizeCounters::to_series`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PagesizeReport {
    /// Frames coalesced into a 2 MB mapping.
    pub coalesces: u64,
    /// Frames splintered because a peer GPU started sharing the range.
    pub splinters_false_sharing: u64,
    /// Frames splintered by partial capacity eviction / host staging.
    pub splinters_eviction: u64,
    /// Frames splintered by ECC frame retirement.
    pub splinters_retirement: u64,
    /// Access-counter trips on ordinary 64 KB groups.
    pub counter_trips_base: u64,
    /// Access-counter trips on coalesced frame-granularity groups.
    pub counter_trips_large: u64,
    /// Total 64 KB groups aliased into tripped frame groups.
    pub counter_groups_aliased: u64,
    /// Highest number of simultaneously coalesced frames observed.
    pub coalesced_peak: u64,
    /// Frames still coalesced when the run finished.
    pub coalesced_final: u64,
}

impl PagesizeReport {
    /// Extracts the snapshot from the `pagesize_counters` aux series the
    /// runner records (field order above); zeros when the series is
    /// absent (uniform-4 KB runs, older reports).
    pub fn from_aux(aux: &[(String, Vec<f64>)]) -> Self {
        let mut out = [0u64; 9];
        if let Some((_, vs)) = aux.iter().find(|(k, _)| k == "pagesize_counters") {
            for (slot, v) in out.iter_mut().zip(vs) {
                *slot = *v as u64;
            }
        }
        PagesizeReport {
            coalesces: out[0],
            splinters_false_sharing: out[1],
            splinters_eviction: out[2],
            splinters_retirement: out[3],
            counter_trips_base: out[4],
            counter_trips_large: out[5],
            counter_groups_aliased: out[6],
            coalesced_peak: out[7],
            coalesced_final: out[8],
        }
    }

    /// Total splinters across every cause.
    pub fn splinters(&self) -> u64 {
        self.splinters_false_sharing + self.splinters_eviction + self.splinters_retirement
    }

    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("coalesces".into(), Json::UInt(self.coalesces)),
            (
                "splinters_false_sharing".into(),
                Json::UInt(self.splinters_false_sharing),
            ),
            (
                "splinters_eviction".into(),
                Json::UInt(self.splinters_eviction),
            ),
            (
                "splinters_retirement".into(),
                Json::UInt(self.splinters_retirement),
            ),
            (
                "counter_trips_base".into(),
                Json::UInt(self.counter_trips_base),
            ),
            (
                "counter_trips_large".into(),
                Json::UInt(self.counter_trips_large),
            ),
            (
                "counter_groups_aliased".into(),
                Json::UInt(self.counter_groups_aliased),
            ),
            ("coalesced_peak".into(), Json::UInt(self.coalesced_peak)),
            ("coalesced_final".into(), Json::UInt(self.coalesced_final)),
            // Derived, for human readers; ignored when parsing.
            ("splinters_total".into(), Json::UInt(self.splinters())),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(PagesizeReport {
            coalesces: req_u64(v, "coalesces")?,
            splinters_false_sharing: req_u64(v, "splinters_false_sharing")?,
            splinters_eviction: req_u64(v, "splinters_eviction")?,
            splinters_retirement: req_u64(v, "splinters_retirement")?,
            counter_trips_base: req_u64(v, "counter_trips_base")?,
            counter_trips_large: req_u64(v, "counter_trips_large")?,
            counter_groups_aliased: req_u64(v, "counter_groups_aliased")?,
            coalesced_peak: req_u64(v, "coalesced_peak")?,
            coalesced_final: req_u64(v, "coalesced_final")?,
        })
    }
}

/// A `RunMetrics` snapshot in plain-data form.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsReport {
    /// Simulated execution time in cycles.
    pub total_cycles: u64,
    /// Total accesses replayed.
    pub accesses: u64,
    /// Accesses satisfied locally.
    pub local_accesses: u64,
    /// Accesses that crossed to a peer.
    pub remote_accesses: u64,
    /// Latency attribution in [`LatencyClass::ALL`] order.
    pub breakdown: [u64; 6],
    /// Fault/event counters.
    pub faults: FaultCounters,
    /// Scheme usage at L2 TLB misses: `[on_touch, access_counter,
    /// duplication]`.
    pub scheme_mix: [u64; 3],
    /// NVLink payload bytes.
    pub nvlink_bytes: u64,
    /// PCIe payload bytes.
    pub pcie_bytes: u64,
    /// Peak page-oversubscription ratio.
    pub oversubscription_rate: f64,
    /// Per-class fabric traffic (v3; zeros when absent from older reports).
    pub fabric: FabricReport,
    /// Fault-injection outcomes (v4; zeros when the run was uninjected or
    /// the report predates v4).
    pub resilience: ResilienceReport,
    /// Multi-page-size activity (v7; zeros when the run managed uniform
    /// 4 KB pages or the report predates v7).
    pub pagesize: PagesizeReport,
    /// Auxiliary named series, sorted by name for deterministic output.
    pub aux: Vec<(String, Vec<f64>)>,
}

impl MetricsReport {
    /// Snapshots live run metrics (aux series are sorted by name so two
    /// identical runs serialize identically).
    pub fn from_metrics(m: &RunMetrics) -> Self {
        let mut breakdown = [0u64; 6];
        for (slot, class) in breakdown.iter_mut().zip(LatencyClass::ALL) {
            *slot = m.breakdown.get(class);
        }
        let mut aux: Vec<(String, Vec<f64>)> =
            m.aux.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        aux.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsReport {
            total_cycles: m.total_cycles,
            accesses: m.accesses,
            local_accesses: m.local_accesses,
            remote_accesses: m.remote_accesses,
            breakdown,
            faults: m.faults,
            scheme_mix: [
                m.scheme_mix.on_touch,
                m.scheme_mix.access_counter,
                m.scheme_mix.duplication,
            ],
            nvlink_bytes: m.nvlink_bytes,
            pcie_bytes: m.pcie_bytes,
            oversubscription_rate: m.oversubscription_rate,
            fabric: FabricReport::from_aux(&aux),
            resilience: ResilienceReport::from_aux(&aux),
            pagesize: PagesizeReport::from_aux(&aux),
            aux,
        }
    }

    /// Serializes to a JSON object.
    pub fn to_json(&self) -> Json {
        let breakdown = Json::Obj(
            LatencyClass::ALL
                .iter()
                .zip(self.breakdown)
                .map(|(c, v)| (c.label().to_string(), Json::UInt(v)))
                .collect(),
        );
        let scheme_mix = Json::Obj(vec![
            ("on_touch".into(), Json::UInt(self.scheme_mix[0])),
            ("access_counter".into(), Json::UInt(self.scheme_mix[1])),
            ("duplication".into(), Json::UInt(self.scheme_mix[2])),
        ]);
        let aux = Json::Obj(
            self.aux
                .iter()
                .map(|(k, vs)| {
                    (
                        k.clone(),
                        Json::Arr(vs.iter().map(|&v| Json::Float(v)).collect()),
                    )
                })
                .collect(),
        );
        let mut obj = Json::Obj(vec![
            ("total_cycles".into(), Json::UInt(self.total_cycles)),
            ("accesses".into(), Json::UInt(self.accesses)),
            ("local_accesses".into(), Json::UInt(self.local_accesses)),
            ("remote_accesses".into(), Json::UInt(self.remote_accesses)),
            ("breakdown".into(), breakdown),
            ("faults".into(), faults_to_json(&self.faults)),
            ("scheme_mix".into(), scheme_mix),
            ("nvlink_bytes".into(), Json::UInt(self.nvlink_bytes)),
            ("pcie_bytes".into(), Json::UInt(self.pcie_bytes)),
            (
                "oversubscription_rate".into(),
                Json::Float(self.oversubscription_rate),
            ),
            ("fabric".into(), self.fabric.to_json()),
            ("aux".into(), aux),
        ]);
        // The resilience object appears only on injected runs, keeping
        // uninjected documents v3-shaped for older consumers.
        if self.resilience != ResilienceReport::default() {
            if let Json::Obj(fields) = &mut obj {
                let at = fields.len() - 1; // before "aux"
                fields.insert(at, ("resilience".into(), self.resilience.to_json()));
            }
        }
        // Likewise, the pagesize object appears only on runs that
        // managed large pages, keeping uniform-4 KB documents v6-shaped.
        if self.pagesize != PagesizeReport::default() {
            if let Json::Obj(fields) = &mut obj {
                let at = fields.len() - 1; // before "aux"
                fields.insert(at, ("pagesize".into(), self.pagesize.to_json()));
            }
        }
        obj
    }

    /// Parses the object form produced by [`MetricsReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let bd = req(v, "breakdown")?;
        let mut breakdown = [0u64; 6];
        for (slot, class) in breakdown.iter_mut().zip(LatencyClass::ALL) {
            *slot = req_u64(bd, class.label())?;
        }
        let sm = req(v, "scheme_mix")?;
        let aux_obj = req(v, "aux")?.as_obj().ok_or("field \"aux\" is not an object")?;
        let mut aux = Vec::with_capacity(aux_obj.len());
        for (k, vs) in aux_obj {
            let vs = vs.as_arr().ok_or_else(|| format!("aux series {k:?} is not an array"))?;
            let series: Result<Vec<f64>, String> = vs
                .iter()
                .map(|x| x.as_f64().ok_or_else(|| format!("aux series {k:?} has a non-number")))
                .collect();
            aux.push((k.clone(), series?));
        }
        Ok(MetricsReport {
            total_cycles: req_u64(v, "total_cycles")?,
            accesses: req_u64(v, "accesses")?,
            local_accesses: req_u64(v, "local_accesses")?,
            remote_accesses: req_u64(v, "remote_accesses")?,
            breakdown,
            faults: faults_from_json(req(v, "faults")?)?,
            scheme_mix: [
                req_u64(sm, "on_touch")?,
                req_u64(sm, "access_counter")?,
                req_u64(sm, "duplication")?,
            ],
            nvlink_bytes: req_u64(v, "nvlink_bytes")?,
            pcie_bytes: req_u64(v, "pcie_bytes")?,
            oversubscription_rate: req_f64(v, "oversubscription_rate")?,
            // v2 documents predate the fabric object; default to zeros.
            fabric: match v.get("fabric") {
                Some(f) => FabricReport::from_json(f)?,
                None => FabricReport::default(),
            },
            // Present only on injected v4 runs; default to zeros.
            resilience: match v.get("resilience") {
                Some(r) => ResilienceReport::from_json(r)?,
                None => ResilienceReport::default(),
            },
            // Present only on large-page v7 runs; default to zeros.
            pagesize: match v.get("pagesize") {
                Some(p) => PagesizeReport::from_json(p)?,
                None => PagesizeReport::default(),
            },
            aux,
        })
    }

    /// Rebuilds a live [`RunMetrics`] from the snapshot — the exact
    /// inverse of [`MetricsReport::from_metrics`] up to aux-map ordering
    /// (which `from_metrics` canonicalizes by sorting).
    pub fn to_metrics(&self) -> RunMetrics {
        RunMetrics {
            total_cycles: self.total_cycles,
            accesses: self.accesses,
            local_accesses: self.local_accesses,
            remote_accesses: self.remote_accesses,
            breakdown: self.breakdown_struct(),
            faults: self.faults,
            scheme_mix: SchemeMix {
                on_touch: self.scheme_mix[0],
                access_counter: self.scheme_mix[1],
                duplication: self.scheme_mix[2],
            },
            nvlink_bytes: self.nvlink_bytes,
            pcie_bytes: self.pcie_bytes,
            oversubscription_rate: self.oversubscription_rate,
            aux: self.aux.iter().cloned().collect(),
        }
    }

    /// Rebuilds the latency breakdown accumulator from the snapshot.
    pub fn breakdown_struct(&self) -> LatencyBreakdown {
        let mut b = LatencyBreakdown::default();
        for (class, &v) in LatencyClass::ALL.iter().zip(&self.breakdown) {
            b.record(*class, v);
        }
        b
    }
}

/// A named interval time series in plain-data form.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesReport {
    /// Series name, e.g. `"page_by_gpu"`.
    pub name: String,
    /// Interval length in cycles.
    pub interval_cycles: Cycle,
    /// One row of bucket counters per interval.
    pub rows: Vec<Vec<u64>>,
}

impl SeriesReport {
    /// Snapshots a live [`IntervalSeries`] under `name`.
    pub fn from_series(name: &str, s: &IntervalSeries) -> Self {
        SeriesReport {
            name: name.to_string(),
            interval_cycles: s.interval_cycles(),
            rows: s.iter().map(|(_, row)| row.to_vec()).collect(),
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("interval_cycles".into(), Json::UInt(self.interval_cycles)),
            (
                "rows".into(),
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| Json::Arr(r.iter().map(|&v| Json::UInt(v)).collect()))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let mut rows = Vec::new();
        for row in req_arr(v, "rows")? {
            let row = row.as_arr().ok_or("series row is not an array")?;
            let counts: Result<Vec<u64>, String> = row
                .iter()
                .map(|x| x.as_u64().ok_or_else(|| "series row has a non-integer".to_string()))
                .collect();
            rows.push(counts?);
        }
        Ok(SeriesReport {
            name: req_str(v, "name")?,
            interval_cycles: req_u64(v, "interval_cycles")?,
            rows,
        })
    }
}

/// Everything recorded about one executed cell.
#[derive(Clone, Debug, PartialEq)]
pub struct CellReport {
    /// Position in batch declaration order (also the trace `"seq"`).
    pub seq: u64,
    /// Application name.
    pub app: String,
    /// Policy label.
    pub policy: String,
    /// GPUs simulated.
    pub num_gpus: u64,
    /// Page size in bytes.
    pub page_size: u64,
    /// Workload scale factor.
    pub scale: f64,
    /// Workload intensity factor.
    pub intensity: f64,
    /// Workload RNG seed.
    pub seed: u64,
    /// Seconds spent obtaining the workload.
    pub build_seconds: f64,
    /// Seconds spent simulating.
    pub sim_seconds: f64,
    /// Whether the workload came from the cache.
    pub workload_cache_hit: bool,
    /// Events captured by the tracer for this cell (0 when tracing is off).
    pub events_recorded: u64,
    /// Cell outcome: `"ok"`, `"resumed"`, or a [`CellError`] status label
    /// (`"panicked"`, `"timed-out"`, `"cancelled"`, ...).
    ///
    /// [`CellError`]: grit_sim::CellError
    pub status: String,
    /// Human-readable failure description when the cell failed.
    pub error: Option<String>,
    /// Canonical `RunSpec` string the cell ran under (v6; also the
    /// result-store cache key). `None` in pre-v6 documents and for
    /// producers that do not know the spec.
    pub spec: Option<String>,
    /// Full metrics snapshot (all-zero for failed cells).
    pub metrics: MetricsReport,
    /// Observer time series, when an observer was attached.
    pub series: Vec<SeriesReport>,
}

impl CellReport {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("seq".into(), Json::UInt(self.seq)),
            ("app".into(), Json::Str(self.app.clone())),
            ("policy".into(), Json::Str(self.policy.clone())),
            ("num_gpus".into(), Json::UInt(self.num_gpus)),
            ("page_size".into(), Json::UInt(self.page_size)),
            ("scale".into(), Json::Float(self.scale)),
            ("intensity".into(), Json::Float(self.intensity)),
            ("seed".into(), Json::UInt(self.seed)),
            ("build_seconds".into(), Json::Float(self.build_seconds)),
            ("sim_seconds".into(), Json::Float(self.sim_seconds)),
            (
                "workload_cache_hit".into(),
                Json::Bool(self.workload_cache_hit),
            ),
            ("events_recorded".into(), Json::UInt(self.events_recorded)),
            ("status".into(), Json::Str(self.status.clone())),
            (
                "error".into(),
                match &self.error {
                    Some(e) => Json::Str(e.clone()),
                    None => Json::Null,
                },
            ),
            ("metrics".into(), self.metrics.to_json()),
            (
                "series".into(),
                Json::Arr(self.series.iter().map(SeriesReport::to_json).collect()),
            ),
        ];
        // Like `profile`: the key exists only when known, so v5
        // consumers never see it on documents that predate specs.
        if let Some(spec) = &self.spec {
            fields.push(("spec".into(), Json::Str(spec.clone())));
        }
        Json::Obj(fields)
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let series: Result<Vec<SeriesReport>, String> =
            req_arr(v, "series")?.iter().map(SeriesReport::from_json).collect();
        Ok(CellReport {
            seq: req_u64(v, "seq")?,
            app: req_str(v, "app")?,
            policy: req_str(v, "policy")?,
            num_gpus: req_u64(v, "num_gpus")?,
            page_size: req_u64(v, "page_size")?,
            scale: req_f64(v, "scale")?,
            intensity: req_f64(v, "intensity")?,
            seed: req_u64(v, "seed")?,
            build_seconds: req_f64(v, "build_seconds")?,
            sim_seconds: req_f64(v, "sim_seconds")?,
            workload_cache_hit: req_bool(v, "workload_cache_hit")?,
            events_recorded: req_u64(v, "events_recorded")?,
            status: req_str(v, "status")?,
            error: match req(v, "error")? {
                Json::Null => None,
                e => Some(e.as_str().ok_or("field \"error\" is not a string or null")?.to_string()),
            },
            spec: v.get("spec").and_then(Json::as_str).map(String::from),
            metrics: MetricsReport::from_json(req(v, "metrics")?)?,
            series: series?,
        })
    }
}

/// Profile of one `run_batch` invocation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BatchProfile {
    /// Cells the batch executed.
    pub cells: u64,
    /// Worker threads used.
    pub jobs: u64,
    /// Event-loop threads sharding each cell (`--sim-threads`).
    pub sim_threads: u64,
    /// Wall-clock seconds for the whole batch.
    pub wall_seconds: f64,
    /// Workload-cache hits during the batch.
    pub workload_cache_hits: u64,
    /// Workload-cache misses (builds) during the batch.
    pub workload_cache_misses: u64,
}

impl BatchProfile {
    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("cells".into(), Json::UInt(self.cells)),
            ("jobs".into(), Json::UInt(self.jobs)),
            ("sim_threads".into(), Json::UInt(self.sim_threads)),
            ("wall_seconds".into(), Json::Float(self.wall_seconds)),
            (
                "workload_cache_hits".into(),
                Json::UInt(self.workload_cache_hits),
            ),
            (
                "workload_cache_misses".into(),
                Json::UInt(self.workload_cache_misses),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(BatchProfile {
            cells: req_u64(v, "cells")?,
            jobs: req_u64(v, "jobs")?,
            // Tolerant default: profiles written before event-loop
            // sharding landed carry no field and mean serial cells.
            sim_threads: opt_u64(v, "sim_threads").unwrap_or(1),
            wall_seconds: req_f64(v, "wall_seconds")?,
            workload_cache_hits: req_u64(v, "workload_cache_hits")?,
            workload_cache_misses: req_u64(v, "workload_cache_misses")?,
        })
    }
}

/// Wall-clock of one `repro` target (the `time:` lines, made durable).
#[derive(Clone, Debug, PartialEq)]
pub struct TargetTiming {
    /// Target name, e.g. `"fig18"`.
    pub name: String,
    /// Wall-clock seconds.
    pub seconds: f64,
}

impl TargetTiming {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("seconds".into(), Json::Float(self.seconds)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(TargetTiming {
            name: req_str(v, "name")?,
            seconds: req_f64(v, "seconds")?,
        })
    }
}

/// Wall-clock totals of one profiled phase, summed across every thread
/// that entered it; nested spans count inclusively toward their phase.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseEntry {
    /// Phase name (`grit-prof` snake_case, e.g. `"fault_handling"`).
    pub phase: String,
    /// Total nanoseconds spent inside the phase.
    pub nanos: u64,
    /// Spans recorded.
    pub count: u64,
}

impl PhaseEntry {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("phase".into(), Json::Str(self.phase.clone())),
            ("nanos".into(), Json::UInt(self.nanos)),
            ("count".into(), Json::UInt(self.count)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(PhaseEntry {
            phase: req_str(v, "phase")?,
            nanos: req_u64(v, "nanos")?,
            count: req_u64(v, "count")?,
        })
    }
}

/// Speculation telemetry of the sharded event loop (`--sim-threads`):
/// how the optimistic rounds spent their work. Thread-count-dependent by
/// nature, so it lives outside the byte-identity comparison surface.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpeculationReport {
    /// Optimistic rounds executed.
    pub rounds: u64,
    /// Events speculatively executed.
    pub speculated: u64,
    /// Speculated events that survived to commit.
    pub committed: u64,
    /// GPU shards rolled back past the cut.
    pub rewound: u64,
    /// Serial-burst steps taken when rounds committed nothing.
    pub serial_burst_steps: u64,
    /// Speculative advances stopped by the lookahead horizon with input
    /// remaining.
    pub horizon_stalls: u64,
    /// Cycles of runnable work left unexecuted at horizon stops.
    pub horizon_stall_cycles: u64,
    /// Fraction of speculated events thrown away (`1 - committed /
    /// speculated`).
    pub rollback_rate: f64,
    /// Max-over-mean of per-GPU committed work (1.0 = perfectly even).
    pub load_imbalance: f64,
    /// Committed events per GPU.
    pub per_gpu_committed: Vec<u64>,
}

impl SpeculationReport {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("rounds".into(), Json::UInt(self.rounds)),
            ("speculated".into(), Json::UInt(self.speculated)),
            ("committed".into(), Json::UInt(self.committed)),
            ("rewound".into(), Json::UInt(self.rewound)),
            (
                "serial_burst_steps".into(),
                Json::UInt(self.serial_burst_steps),
            ),
            ("horizon_stalls".into(), Json::UInt(self.horizon_stalls)),
            (
                "horizon_stall_cycles".into(),
                Json::UInt(self.horizon_stall_cycles),
            ),
            ("rollback_rate".into(), Json::Float(self.rollback_rate)),
            ("load_imbalance".into(), Json::Float(self.load_imbalance)),
            (
                "per_gpu_committed".into(),
                Json::Arr(self.per_gpu_committed.iter().map(|&v| Json::UInt(v)).collect()),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let per_gpu: Result<Vec<u64>, String> = req_arr(v, "per_gpu_committed")?
            .iter()
            .map(|x| x.as_u64().ok_or_else(|| "per_gpu_committed has a non-integer".to_string()))
            .collect();
        Ok(SpeculationReport {
            rounds: req_u64(v, "rounds")?,
            speculated: req_u64(v, "speculated")?,
            committed: req_u64(v, "committed")?,
            rewound: req_u64(v, "rewound")?,
            serial_burst_steps: req_u64(v, "serial_burst_steps")?,
            horizon_stalls: req_u64(v, "horizon_stalls")?,
            horizon_stall_cycles: req_u64(v, "horizon_stall_cycles")?,
            rollback_rate: req_f64(v, "rollback_rate")?,
            load_imbalance: req_f64(v, "load_imbalance")?,
            per_gpu_committed: per_gpu?,
        })
    }
}

/// One cycle-domain histogram in report form: sample statistics plus
/// the non-empty power-of-two buckets as `(lower_bound, count)` pairs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistReport {
    /// Values recorded.
    pub samples: u64,
    /// Arithmetic mean of recorded values.
    pub mean: f64,
    /// Largest recorded value.
    pub max: u64,
    /// Non-empty buckets: `(lower_bound_cycles, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistReport {
    /// Decodes the flattened aux form the runner records:
    /// `[samples, mean, max, lb0, c0, lb1, c1, ...]`.
    pub fn from_flat(vs: &[f64]) -> Self {
        if vs.len() < 3 {
            return HistReport::default();
        }
        HistReport {
            samples: vs[0] as u64,
            mean: vs[1],
            max: vs[2] as u64,
            buckets: vs[3..].chunks_exact(2).map(|p| (p[0] as u64, p[1] as u64)).collect(),
        }
    }

    /// Accumulates another histogram with the same bucket geometry.
    pub fn merge(&mut self, other: &HistReport) {
        let total = self.mean * self.samples as f64 + other.mean * other.samples as f64;
        self.samples += other.samples;
        self.mean = if self.samples == 0 {
            0.0
        } else {
            total / self.samples as f64
        };
        self.max = self.max.max(other.max);
        for &(lb, c) in &other.buckets {
            match self.buckets.iter_mut().find(|(b, _)| *b == lb) {
                Some((_, n)) => *n += c,
                None => self.buckets.push((lb, c)),
            }
        }
        self.buckets.sort_unstable_by_key(|&(lb, _)| lb);
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("samples".into(), Json::UInt(self.samples)),
            ("mean".into(), Json::Float(self.mean)),
            ("max".into(), Json::UInt(self.max)),
            (
                "buckets".into(),
                Json::Arr(
                    self.buckets
                        .iter()
                        .map(|&(lb, c)| Json::Arr(vec![Json::UInt(lb), Json::UInt(c)]))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let mut buckets = Vec::new();
        for pair in req_arr(v, "buckets")? {
            let pair = pair.as_arr().ok_or("histogram bucket is not an array")?;
            match pair {
                [lb, c] => buckets.push((
                    lb.as_u64().ok_or("bucket bound is not an integer")?,
                    c.as_u64().ok_or("bucket count is not an integer")?,
                )),
                _ => return Err("histogram bucket is not a pair".into()),
            }
        }
        Ok(HistReport {
            samples: req_u64(v, "samples")?,
            mean: req_f64(v, "mean")?,
            max: req_u64(v, "max")?,
            buckets,
        })
    }
}

/// Deterministic cycle-domain profile sections, accumulated over every
/// successful cell's `prof_*` aux series. Everything here is measured in
/// simulated cycles, so the object is byte-identical at any `--jobs` /
/// `--sim-threads` combination.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CycleProfile {
    /// Per-fault queue wait behind the serial fault handler.
    pub fault_occupancy: HistReport,
    /// Per-migration dispatch-to-done latency.
    pub migration_latency: HistReport,
    /// Per-hop queue wait behind busy fabric wires.
    pub fabric_queue: HistReport,
    /// MLP-window stall cycles summed over every GPU of every cell.
    pub mlp_stall_cycles: u64,
}

impl CycleProfile {
    /// Accumulates one cell's `prof_*` aux series (sorted-aux form).
    pub fn absorb_aux(&mut self, aux: &[(String, Vec<f64>)]) {
        let find = |name: &str| aux.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_slice());
        if let Some(vs) = find("prof_fault_occupancy_hist") {
            self.fault_occupancy.merge(&HistReport::from_flat(vs));
        }
        if let Some(vs) = find("prof_migration_latency_hist") {
            self.migration_latency.merge(&HistReport::from_flat(vs));
        }
        if let Some(vs) = find("prof_fabric_queue_hist") {
            self.fabric_queue.merge(&HistReport::from_flat(vs));
        }
        if let Some(vs) = find("prof_mlp_stall_cycles") {
            self.mlp_stall_cycles += vs.iter().map(|&v| v as u64).sum::<u64>();
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("fault_occupancy".into(), self.fault_occupancy.to_json()),
            ("migration_latency".into(), self.migration_latency.to_json()),
            ("fabric_queue".into(), self.fabric_queue.to_json()),
            ("mlp_stall_cycles".into(), Json::UInt(self.mlp_stall_cycles)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(CycleProfile {
            fault_occupancy: HistReport::from_json(req(v, "fault_occupancy")?)?,
            migration_latency: HistReport::from_json(req(v, "migration_latency")?)?,
            fabric_queue: HistReport::from_json(req(v, "fabric_queue")?)?,
            mlp_stall_cycles: req_u64(v, "mlp_stall_cycles")?,
        })
    }
}

/// The run's self-profile (grit-run-report/v5), emitted only when
/// profiling was enabled. `wall` and `speculation` are wall-clock /
/// thread-count-dependent; `cycle` is the deterministic comparison
/// surface.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileReport {
    /// Wall-clock phase totals, phases with at least one span.
    pub wall: Vec<PhaseEntry>,
    /// Sharded-engine telemetry, when any cell ran with `sim_threads > 1`.
    pub speculation: Option<SpeculationReport>,
    /// Deterministic cycle-domain sections.
    pub cycle: CycleProfile,
}

impl ProfileReport {
    /// Serializes to the report's `profile` object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "wall".into(),
                Json::Arr(self.wall.iter().map(PhaseEntry::to_json).collect()),
            ),
            (
                "speculation".into(),
                match &self.speculation {
                    Some(s) => s.to_json(),
                    None => Json::Null,
                },
            ),
            ("cycle".into(), self.cycle.to_json()),
        ])
    }

    /// Parses the object form produced by [`ProfileReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let wall: Result<Vec<PhaseEntry>, String> =
            req_arr(v, "wall")?.iter().map(PhaseEntry::from_json).collect();
        let speculation = match req(v, "speculation")? {
            Json::Null => None,
            s => Some(SpeculationReport::from_json(s)?),
        };
        Ok(ProfileReport {
            wall: wall?,
            speculation,
            cycle: CycleProfile::from_json(req(v, "cycle")?)?,
        })
    }
}

/// Aggregated result-store traffic of one run (v8): how often cells
/// were answered from the store, how often they had to simulate, and
/// how many store files failed integrity checks and were quarantined.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Cells answered from the store.
    pub hits: u64,
    /// Cells that had to run because the store had no (valid) entry.
    pub misses: u64,
    /// Store files that failed an integrity check (bad JSON, bad
    /// checksum, schema or key mismatch) and were moved to the
    /// `quarantine/` subdirectory.
    pub quarantined: u64,
}

impl StoreCounters {
    /// Whether any traffic was recorded at all.
    pub fn any(&self) -> bool {
        self.hits != 0 || self.misses != 0 || self.quarantined != 0
    }

    /// Field-wise sum, for aggregating per-batch counters into a run.
    pub fn absorb(&mut self, other: StoreCounters) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.quarantined += other.quarantined;
    }

    /// Serializes the `store` object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("hits".into(), Json::UInt(self.hits)),
            ("misses".into(), Json::UInt(self.misses)),
            ("quarantined".into(), Json::UInt(self.quarantined)),
        ])
    }

    /// Parses the `store` object.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        Ok(StoreCounters {
            hits: req_u64(v, "hits")?,
            misses: req_u64(v, "misses")?,
            quarantined: req_u64(v, "quarantined")?,
        })
    }
}

/// The full machine-readable record of one `repro` invocation
/// (`run_report.json`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// Workload scale factor of the run.
    pub scale: f64,
    /// Workload intensity factor of the run.
    pub intensity: f64,
    /// Workload RNG seed.
    pub seed: u64,
    /// Worker threads (`--jobs`).
    pub jobs: u64,
    /// Event-loop threads sharding each cell (`--sim-threads`).
    pub sim_threads: u64,
    /// Total wall-clock seconds across all targets.
    pub total_seconds: f64,
    /// Simulated-system configuration as `(name, value)` pairs.
    pub system: Vec<(String, f64)>,
    /// Per-target wall-clock timings.
    pub targets: Vec<TargetTiming>,
    /// Per-batch execution profiles.
    pub batches: Vec<BatchProfile>,
    /// Every cell executed, in execution order.
    pub cells: Vec<CellReport>,
    /// Self-profile of the run (v5), present only when profiling ran.
    pub profile: Option<ProfileReport>,
    /// Result-store traffic (v8), present only when a store was in play.
    pub store: Option<StoreCounters>,
}

impl RunReport {
    /// Serializes to the `run_report.json` document.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::Obj(vec![
            ("schema".into(), Json::Str(RUN_REPORT_SCHEMA.into())),
            ("scale".into(), Json::Float(self.scale)),
            ("intensity".into(), Json::Float(self.intensity)),
            ("seed".into(), Json::UInt(self.seed)),
            ("jobs".into(), Json::UInt(self.jobs)),
            ("sim_threads".into(), Json::UInt(self.sim_threads)),
            ("total_seconds".into(), Json::Float(self.total_seconds)),
            (
                "system".into(),
                Json::Obj(self.system.iter().map(|(k, v)| (k.clone(), Json::Float(*v))).collect()),
            ),
            (
                "targets".into(),
                Json::Arr(self.targets.iter().map(TargetTiming::to_json).collect()),
            ),
            (
                "batches".into(),
                Json::Arr(self.batches.iter().map(|b| b.to_json()).collect()),
            ),
            (
                "cells".into(),
                Json::Arr(self.cells.iter().map(CellReport::to_json).collect()),
            ),
        ]);
        // Unprofiled runs stay v4-shaped (no `profile` key) for older
        // consumers that iterate object fields exhaustively.
        if let Some(p) = &self.profile {
            if let Json::Obj(fields) = &mut obj {
                fields.push(("profile".into(), p.to_json()));
            }
        }
        // Likewise, store-less runs stay v7-shaped (no `store` key).
        if let Some(s) = &self.store {
            if let Json::Obj(fields) = &mut obj {
                fields.push(("store".into(), s.to_json()));
            }
        }
        obj
    }

    /// Parses a `run_report.json` document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first schema violation.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let schema = req_str(v, "schema")?;
        if schema != RUN_REPORT_SCHEMA
            && schema != RUN_REPORT_SCHEMA_V7
            && schema != RUN_REPORT_SCHEMA_V6
            && schema != RUN_REPORT_SCHEMA_V5
            && schema != RUN_REPORT_SCHEMA_V4
            && schema != RUN_REPORT_SCHEMA_V3
            && schema != RUN_REPORT_SCHEMA_V2
        {
            return Err(format!("unsupported run-report schema: {schema:?}"));
        }
        let system_obj = req(v, "system")?.as_obj().ok_or("field \"system\" is not an object")?;
        let mut system = Vec::with_capacity(system_obj.len());
        for (k, val) in system_obj {
            let val = val.as_f64().ok_or_else(|| format!("system entry {k:?} is not a number"))?;
            system.push((k.clone(), val));
        }
        let targets: Result<Vec<TargetTiming>, String> =
            req_arr(v, "targets")?.iter().map(TargetTiming::from_json).collect();
        let batches: Result<Vec<BatchProfile>, String> =
            req_arr(v, "batches")?.iter().map(BatchProfile::from_json).collect();
        let cells: Result<Vec<CellReport>, String> =
            req_arr(v, "cells")?.iter().map(CellReport::from_json).collect();
        Ok(RunReport {
            scale: req_f64(v, "scale")?,
            intensity: req_f64(v, "intensity")?,
            seed: req_u64(v, "seed")?,
            jobs: req_u64(v, "jobs")?,
            // Tolerant default: reports written before event-loop
            // sharding landed mean serial cells.
            sim_threads: opt_u64(v, "sim_threads").unwrap_or(1),
            total_seconds: req_f64(v, "total_seconds")?,
            system,
            targets: targets?,
            batches: batches?,
            cells: cells?,
            // Absent on unprofiled runs and every pre-v5 document.
            profile: match v.get("profile") {
                Some(p) => Some(ProfileReport::from_json(p)?),
                None => None,
            },
            // Absent on store-less runs and every pre-v8 document.
            store: match v.get("store") {
                Some(s) => Some(StoreCounters::from_json(s)?),
                None => None,
            },
        })
    }
}

/// The Fig. 17 headline speedups of GRIT over the three static schemes.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HeadlineSpeedups {
    /// Geomean speedup vs. on-touch migration.
    pub vs_on_touch: f64,
    /// Geomean speedup vs. access-counter migration.
    pub vs_access_counter: f64,
    /// Geomean speedup vs. duplication.
    pub vs_duplication: f64,
}

impl HeadlineSpeedups {
    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("vs_on_touch".into(), Json::Float(self.vs_on_touch)),
            (
                "vs_access_counter".into(),
                Json::Float(self.vs_access_counter),
            ),
            ("vs_duplication".into(), Json::Float(self.vs_duplication)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(HeadlineSpeedups {
            vs_on_touch: req_f64(v, "vs_on_touch")?,
            vs_access_counter: req_f64(v, "vs_access_counter")?,
            vs_duplication: req_f64(v, "vs_duplication")?,
        })
    }
}

/// The compact perf/fidelity baseline (`BENCH_run.json`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchSummary {
    /// Workload scale factor of the run.
    pub scale: f64,
    /// Workload intensity factor of the run.
    pub intensity: f64,
    /// Workload RNG seed.
    pub seed: u64,
    /// Worker threads (`--jobs`).
    pub jobs: u64,
    /// Event-loop threads sharding each cell (`--sim-threads`).
    pub sim_threads: u64,
    /// Total wall-clock seconds across all targets.
    pub total_seconds: f64,
    /// Cells executed across all targets.
    pub cells_run: u64,
    /// Fault counters summed over every executed cell.
    pub fault_totals: FaultCounters,
    /// Per-target wall-clock timings.
    pub targets: Vec<TargetTiming>,
    /// Fig. 17 geomean speedups, when fig17 (or `run_summary`) ran.
    pub headline: Option<HeadlineSpeedups>,
    /// Fig. 18 geomean of GRIT's normalized fault count, when fig18 ran.
    pub fig18_fault_geomean: Option<f64>,
}

impl BenchSummary {
    /// Serializes to the `BENCH_run.json` document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str(BENCH_SCHEMA.into())),
            ("scale".into(), Json::Float(self.scale)),
            ("intensity".into(), Json::Float(self.intensity)),
            ("seed".into(), Json::UInt(self.seed)),
            ("jobs".into(), Json::UInt(self.jobs)),
            ("sim_threads".into(), Json::UInt(self.sim_threads)),
            ("total_seconds".into(), Json::Float(self.total_seconds)),
            ("cells_run".into(), Json::UInt(self.cells_run)),
            ("fault_totals".into(), faults_to_json(&self.fault_totals)),
            (
                "targets".into(),
                Json::Arr(self.targets.iter().map(TargetTiming::to_json).collect()),
            ),
            (
                "headline".into(),
                match &self.headline {
                    Some(h) => h.to_json(),
                    None => Json::Null,
                },
            ),
            (
                "fig18_fault_geomean".into(),
                match self.fig18_fault_geomean {
                    Some(g) => Json::Float(g),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// Parses a `BENCH_run.json` document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first schema violation.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let schema = req_str(v, "schema")?;
        if schema != BENCH_SCHEMA {
            return Err(format!("unsupported bench schema: {schema:?}"));
        }
        let targets: Result<Vec<TargetTiming>, String> =
            req_arr(v, "targets")?.iter().map(TargetTiming::from_json).collect();
        let headline = match req(v, "headline")? {
            Json::Null => None,
            h => Some(HeadlineSpeedups::from_json(h)?),
        };
        let fig18 = match req(v, "fig18_fault_geomean")? {
            Json::Null => None,
            g => Some(g.as_f64().ok_or("field \"fig18_fault_geomean\" is not a number")?),
        };
        Ok(BenchSummary {
            scale: req_f64(v, "scale")?,
            intensity: req_f64(v, "intensity")?,
            seed: req_u64(v, "seed")?,
            jobs: req_u64(v, "jobs")?,
            // Tolerant default: baselines written before event-loop
            // sharding landed mean serial cells.
            sim_threads: opt_u64(v, "sim_threads").unwrap_or(1),
            total_seconds: req_f64(v, "total_seconds")?,
            cells_run: req_u64(v, "cells_run")?,
            fault_totals: faults_from_json(req(v, "fault_totals")?)?,
            targets: targets?,
            headline,
            fig18_fault_geomean: fig18,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grit_metrics::SchemeMix;

    fn sample_metrics() -> RunMetrics {
        let mut m = RunMetrics {
            total_cycles: 1000,
            accesses: 500,
            local_accesses: 400,
            remote_accesses: 100,
            faults: FaultCounters {
                local_faults: 10,
                protection_faults: 2,
                migrations: 6,
                duplications: 3,
                collapses: 1,
                evictions: 4,
                scheme_changes: 5,
            },
            scheme_mix: SchemeMix {
                on_touch: 7,
                access_counter: 8,
                duplication: 9,
            },
            nvlink_bytes: 4096,
            pcie_bytes: 64,
            oversubscription_rate: 1.25,
            ..Default::default()
        };
        m.breakdown.record(LatencyClass::Host, 123);
        m.breakdown.record(LatencyClass::PageMigration, 45);
        m.set_aux("per_gpu_faults", vec![3.0, 7.0]);
        m.set_aux("a_sorted_first", vec![1.5]);
        m.set_aux("fabric_class_bytes", vec![4096.0, 512.0, 128.0, 64.0]);
        m.set_aux("fabric_queue_cycles", vec![20.0, 9.0, 3.0, 1.0]);
        m
    }

    fn sample_cell(seq: u64) -> CellReport {
        CellReport {
            seq,
            app: "BFS".into(),
            policy: "grit".into(),
            num_gpus: 4,
            page_size: 4096,
            scale: 0.04,
            intensity: 1.5,
            seed: 0xBEEF,
            build_seconds: 0.25,
            sim_seconds: 1.75,
            workload_cache_hit: seq > 0,
            events_recorded: 31,
            status: "ok".into(),
            error: None,
            spec: Some(format!("app=BFS;policy=grit;seq={seq}")),
            metrics: MetricsReport::from_metrics(&sample_metrics()),
            series: vec![SeriesReport {
                name: "page_by_gpu".into(),
                interval_cycles: 1_000_000,
                rows: vec![vec![1, 2], vec![0, 3]],
            }],
        }
    }

    #[test]
    fn metrics_snapshot_sorts_aux_and_keeps_breakdown_order() {
        let r = MetricsReport::from_metrics(&sample_metrics());
        assert_eq!(r.aux[0].0, "a_sorted_first");
        assert_eq!(r.breakdown[1], 123); // Host is slot 1 in ALL order
        assert_eq!(r.breakdown_struct().get(LatencyClass::PageMigration), 45);
    }

    #[test]
    fn metrics_report_round_trips() {
        let r = MetricsReport::from_metrics(&sample_metrics());
        let back = MetricsReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn metrics_report_inverts_to_live_metrics() {
        let m = sample_metrics();
        let r = MetricsReport::from_metrics(&m);
        let live = r.to_metrics();
        assert_eq!(live.total_cycles, m.total_cycles);
        assert_eq!(live.faults, m.faults);
        assert_eq!(live.scheme_mix, m.scheme_mix);
        assert_eq!(live.aux.len(), m.aux.len());
        assert_eq!(live.aux.get("per_gpu_faults"), m.aux.get("per_gpu_faults"));
        // Snapshotting the rebuilt metrics is a fixed point.
        assert_eq!(MetricsReport::from_metrics(&live), r);
    }

    #[test]
    fn failed_cell_report_round_trips() {
        let mut c = sample_cell(3);
        c.status = "panicked".into();
        c.error = Some("cell panicked: boom".into());
        let back = CellReport::from_json(&Json::parse(&c.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn run_report_round_trips() {
        let report = RunReport {
            scale: 0.04,
            intensity: 1.5,
            seed: 0xBEEF,
            jobs: 4,
            sim_threads: 2,
            total_seconds: 12.5,
            system: vec![("num_gpus".into(), 4.0), ("page_size".into(), 4096.0)],
            targets: vec![
                TargetTiming {
                    name: "fig17".into(),
                    seconds: 5.5,
                },
                TargetTiming {
                    name: "fig18".into(),
                    seconds: 7.0,
                },
            ],
            batches: vec![BatchProfile {
                cells: 12,
                jobs: 4,
                sim_threads: 2,
                wall_seconds: 5.25,
                workload_cache_hits: 9,
                workload_cache_misses: 3,
            }],
            cells: vec![sample_cell(0), sample_cell(1)],
            profile: None,
            store: None,
        };
        let text = report.to_json().to_string();
        let back = RunReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn bench_summary_round_trips_with_and_without_options() {
        let mut bench = BenchSummary {
            scale: 1.0,
            intensity: 1.0,
            seed: 1,
            jobs: 2,
            sim_threads: 4,
            total_seconds: 3.5,
            cells_run: 24,
            fault_totals: FaultCounters {
                local_faults: 100,
                migrations: 40,
                ..Default::default()
            },
            targets: vec![TargetTiming {
                name: "fig18".into(),
                seconds: 3.5,
            }],
            headline: Some(HeadlineSpeedups {
                vs_on_touch: 2.27,
                vs_access_counter: 1.34,
                vs_duplication: 1.86,
            }),
            fig18_fault_geomean: Some(0.45),
        };
        let back =
            BenchSummary::from_json(&Json::parse(&bench.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, bench);

        bench.headline = None;
        bench.fig18_fault_geomean = None;
        let back =
            BenchSummary::from_json(&Json::parse(&bench.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, bench);
    }

    #[test]
    fn pre_sharding_documents_parse_as_serial() {
        // Documents written before `sim_threads` existed carry no such
        // field; every codec must default it to 1 (serial cells).
        let bench = BenchSummary::default();
        let text = bench.to_json().to_string().replace(",\"sim_threads\":0", "");
        assert!(!text.contains("sim_threads"));
        let back = BenchSummary::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.sim_threads, 1);

        let report = RunReport {
            batches: vec![BatchProfile::default()],
            ..RunReport::default()
        };
        let text = report.to_json().to_string().replace(",\"sim_threads\":0", "");
        assert!(!text.contains("sim_threads"));
        let back = RunReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.sim_threads, 1);
        assert_eq!(back.batches[0].sim_threads, 1);
    }

    #[test]
    fn fabric_report_is_extracted_from_aux_series() {
        let r = MetricsReport::from_metrics(&sample_metrics());
        assert_eq!(
            r.fabric,
            FabricReport {
                nvlink_bytes: 4096,
                switch_bytes: 512,
                inter_node_bytes: 128,
                pcie_bytes: 64,
                nvlink_queue_cycles: 20,
                switch_queue_cycles: 9,
                inter_node_queue_cycles: 3,
                pcie_queue_cycles: 1,
            }
        );
        assert_eq!(r.fabric.total_queue_cycles(), 33);
    }

    #[test]
    fn resilience_report_round_trips_and_is_omitted_when_zero() {
        // An uninjected run: no resilience_counters series, no JSON object.
        let plain = MetricsReport::from_metrics(&sample_metrics());
        assert_eq!(plain.resilience, ResilienceReport::default());
        let text = plain.to_json().to_string();
        assert!(
            !text.contains("\"resilience\""),
            "zero object leaked: {text}"
        );

        // An injected run: the aux series populates the object, it is
        // serialized, and it parses back identically.
        let mut m = sample_metrics();
        m.aux.insert(
            "resilience_counters".into(),
            vec![4.0, 3.0, 2.0, 5.0, 7.0, 6.0, 9.0, 4.0, 1.0, 1.0, 12.0],
        );
        let r = MetricsReport::from_metrics(&m);
        assert_eq!(
            r.resilience,
            ResilienceReport {
                faults_injected: 4,
                recoveries: 3,
                frames_retired: 2,
                pages_force_evicted: 5,
                storm_stalled_faults: 7,
                migrations_blocked: 6,
                migration_retries: 9,
                retry_successes: 4,
                fallback_remote: 1,
                host_staged: 1,
                invariant_checks: 12,
            }
        );
        assert!(r.resilience.all_blocked_resolved());
        let back =
            MetricsReport::from_json(&Json::parse(&r.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn pagesize_report_round_trips_and_is_omitted_when_zero() {
        // A uniform-4 KB run: no pagesize_counters series, no JSON object.
        let plain = MetricsReport::from_metrics(&sample_metrics());
        assert_eq!(plain.pagesize, PagesizeReport::default());
        let text = plain.to_json().to_string();
        assert!(!text.contains("\"pagesize\""), "zero object leaked: {text}");

        // A large-page run: the aux series populates the object, it is
        // serialized, and it parses back identically.
        let mut m = sample_metrics();
        m.aux.insert(
            "pagesize_counters".into(),
            vec![8.0, 3.0, 2.0, 1.0, 40.0, 5.0, 160.0, 6.0, 2.0],
        );
        let r = MetricsReport::from_metrics(&m);
        assert_eq!(
            r.pagesize,
            PagesizeReport {
                coalesces: 8,
                splinters_false_sharing: 3,
                splinters_eviction: 2,
                splinters_retirement: 1,
                counter_trips_base: 40,
                counter_trips_large: 5,
                counter_groups_aliased: 160,
                coalesced_peak: 6,
                coalesced_final: 2,
            }
        );
        assert_eq!(r.pagesize.splinters(), 6);
        let back =
            MetricsReport::from_json(&Json::parse(&r.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn store_counters_round_trip_and_are_omitted_when_absent() {
        // A store-less run: no `store` key, and documents without one
        // parse back to `None`.
        let plain = RunReport::default();
        let text = plain.to_json().to_string();
        assert!(!text.contains("\"store\""));
        assert_eq!(
            RunReport::from_json(&Json::parse(&text).unwrap()).unwrap().store,
            None
        );

        // A stored run round-trips exactly.
        let report = RunReport {
            cells: vec![sample_cell(0)],
            store: Some(StoreCounters {
                hits: 7,
                misses: 3,
                quarantined: 1,
            }),
            ..RunReport::default()
        };
        let text = report.to_json().to_string();
        assert!(text.contains("\"store\""));
        let back = RunReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, report);
        assert!(back.store.unwrap().any());
    }

    #[test]
    fn v7_run_report_schema_tag_still_parses() {
        let report = RunReport {
            cells: vec![sample_cell(0)],
            ..RunReport::default()
        };
        let mut j = report.to_json();
        if let Json::Obj(fields) = &mut j {
            fields[0].1 = Json::Str(RUN_REPORT_SCHEMA_V7.into());
        }
        let back = RunReport::from_json(&j).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn v6_run_report_schema_tag_still_parses() {
        let report = RunReport {
            cells: vec![sample_cell(0)],
            ..RunReport::default()
        };
        let mut j = report.to_json();
        if let Json::Obj(fields) = &mut j {
            fields[0].1 = Json::Str(RUN_REPORT_SCHEMA_V6.into());
        }
        let back = RunReport::from_json(&j).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn unresolved_blocked_migrations_are_detected() {
        let r = ResilienceReport {
            migrations_blocked: 5,
            retry_successes: 2,
            fallback_remote: 1,
            host_staged: 1,
            ..Default::default()
        };
        assert!(!r.all_blocked_resolved());
    }

    fn sample_profile() -> ProfileReport {
        let mut cycle = CycleProfile::default();
        cycle.absorb_aux(&[
            (
                "prof_fault_occupancy_hist".into(),
                vec![3.0, 10.0, 16.0, 8.0, 2.0, 16.0, 1.0],
            ),
            ("prof_mlp_stall_cycles".into(), vec![100.0, 50.0]),
        ]);
        ProfileReport {
            wall: vec![PhaseEntry {
                phase: "fault_handling".into(),
                nanos: 123_456,
                count: 42,
            }],
            speculation: Some(SpeculationReport {
                rounds: 10,
                speculated: 1000,
                committed: 900,
                rewound: 3,
                serial_burst_steps: 512,
                horizon_stalls: 4,
                horizon_stall_cycles: 888,
                rollback_rate: 0.1,
                load_imbalance: 1.2,
                per_gpu_committed: vec![500, 400],
            }),
            cycle,
        }
    }

    #[test]
    fn profile_report_round_trips() {
        let p = sample_profile();
        assert_eq!(p.cycle.fault_occupancy.samples, 3);
        assert_eq!(p.cycle.fault_occupancy.buckets, vec![(8, 2), (16, 1)]);
        assert_eq!(p.cycle.mlp_stall_cycles, 150);
        let report = RunReport {
            cells: vec![sample_cell(0)],
            profile: Some(p),
            ..RunReport::default()
        };
        let text = report.to_json().to_string();
        assert!(text.contains("\"profile\""));
        let back = RunReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, report);

        // Unprofiled runs omit the object entirely.
        let plain = RunReport::default();
        let text = plain.to_json().to_string();
        assert!(!text.contains("\"profile\""));
        let back = RunReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.profile, None);
    }

    #[test]
    fn hist_report_merge_combines_samples_and_buckets() {
        let mut a = HistReport::from_flat(&[2.0, 10.0, 16.0, 8.0, 2.0]);
        let b = HistReport::from_flat(&[2.0, 40.0, 64.0, 8.0, 1.0, 64.0, 1.0]);
        a.merge(&b);
        assert_eq!(a.samples, 4);
        assert_eq!(a.max, 64);
        assert!((a.mean - 25.0).abs() < 1e-9);
        assert_eq!(a.buckets, vec![(8, 3), (64, 1)]);
    }

    #[test]
    fn v4_run_report_schema_tag_still_parses() {
        let report = RunReport {
            cells: vec![sample_cell(0)],
            ..RunReport::default()
        };
        let mut j = report.to_json();
        if let Json::Obj(fields) = &mut j {
            fields[0].1 = Json::Str(RUN_REPORT_SCHEMA_V4.into());
        }
        let back = RunReport::from_json(&j).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn v3_run_report_schema_tag_still_parses() {
        let report = RunReport {
            cells: vec![sample_cell(0)],
            ..RunReport::default()
        };
        let mut j = report.to_json();
        if let Json::Obj(fields) = &mut j {
            fields[0].1 = Json::Str(RUN_REPORT_SCHEMA_V3.into());
        }
        let back = RunReport::from_json(&j).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn v2_run_report_without_fabric_still_parses() {
        // Replay a v2 document: v2 schema tag, and no `fabric` object on
        // any cell metrics. Both differences must be tolerated.
        let mut report = RunReport {
            cells: vec![sample_cell(0)],
            ..RunReport::default()
        };
        let mut j = report.to_json();
        if let Json::Obj(fields) = &mut j {
            fields[0].1 = Json::Str(RUN_REPORT_SCHEMA_V2.into());
        }
        let mut text = j.to_string();
        let needle = "\"fabric\":";
        let start = text.find(needle).unwrap();
        let end = text[start..].find(",\"aux\"").unwrap() + start;
        text.replace_range(start..end + 1, "");
        assert!(!text.contains(needle));
        let back = RunReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        // The absent fabric object parses as zeros; everything else matches.
        report.cells[0].metrics.fabric = FabricReport::default();
        assert_eq!(back, report);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let mut j = RunReport::default().to_json();
        if let Json::Obj(fields) = &mut j {
            fields[0].1 = Json::Str("grit-run-report/v999".into());
        }
        assert!(RunReport::from_json(&j).unwrap_err().contains("schema"));
    }

    #[test]
    fn fault_counters_ignore_derived_total_on_parse() {
        let f = FaultCounters {
            local_faults: 1,
            protection_faults: 2,
            ..Default::default()
        };
        let j = faults_to_json(&f);
        assert_eq!(j.get("total_faults").unwrap().as_u64(), Some(3));
        assert_eq!(faults_from_json(&j).unwrap(), f);
    }
}
