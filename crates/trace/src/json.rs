//! Minimal JSON value type, compact writer and parser.
//!
//! The workspace is fully offline (no serde); this module covers exactly
//! what the trace/report formats need. Objects preserve insertion order so
//! the writer's output is deterministic, and floats are written in Rust's
//! shortest round-trip form (integral floats keep one decimal so they parse
//! back as floats, not integers).

use std::fmt;

/// A JSON value. Numbers keep their original flavour (`UInt`/`Int`/`Float`)
/// so integer counters survive a serialize→parse round trip bit-exactly.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number (anything with a `.` or exponent).
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        if v >= 0 {
            Json::UInt(v as u64)
        } else {
            Json::Int(v)
        }
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl Json {
    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(v) => Some(v),
            Json::Int(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as a float (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(v) => Some(v as f64),
            Json::Int(v) => Some(v as f64),
            Json::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object fields.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns the byte position and description of the first syntax error,
    /// including trailing non-whitespace after the value.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::UInt(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Json::Int(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Json::Float(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    /// Compact (single-line) rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Floats print in Rust's shortest exact form; integral values keep one
/// decimal (`2` would parse back as an integer and break round-tripping),
/// and non-finite values — which valid JSON cannot carry — become `null`.
fn write_f64(out: &mut String, v: f64) {
    use fmt::Write;
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{v:.1}");
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error with its byte position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub pos: usize,
    /// Description of the problem.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: a \uXXXX low half must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                cp
                            };
                            let Some(c) = char::from_u32(c) else {
                                return Err(self.err("invalid unicode escape"));
                            };
                            s.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                // Multi-byte UTF-8: copy the remaining bytes of the char.
                b if b < 0x20 => return Err(self.err("control character in string")),
                b if b < 0x80 => s.push(b as char),
                b => {
                    let extra = if b >= 0xF0 {
                        3
                    } else if b >= 0xE0 {
                        2
                    } else {
                        1
                    };
                    let start = self.pos - 1;
                    let end = start + 1 + extra;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    let Ok(chunk) = std::str::from_utf8(&self.bytes[start..end]) else {
                        return Err(self.err("invalid UTF-8 sequence"));
                    };
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated unicode escape"));
            };
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if is_float {
            text.parse::<f64>().map(Json::Float).map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Json::Int).map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<u64>().map(Json::UInt).map_err(|_| self.err("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_compact_with_stable_key_order() {
        let v = Json::Obj(vec![
            ("b".into(), Json::UInt(1)),
            ("a".into(), Json::Arr(vec![Json::Null, Json::Bool(true)])),
        ]);
        assert_eq!(v.to_string(), r#"{"b":1,"a":[null,true]}"#);
    }

    #[test]
    fn floats_round_trip_including_integral() {
        for v in [2.0, 0.5, 1.0 / 3.0, -1234.75, 1e-9, 0.0] {
            let text = Json::Float(v).to_string();
            let back = Json::parse(&text).unwrap();
            assert_eq!(back, Json::Float(v), "via {text}");
        }
        assert_eq!(Json::Float(2.0).to_string(), "2.0");
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
    }

    #[test]
    fn integers_keep_their_flavour() {
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("42.5").unwrap(), Json::Float(42.5));
    }

    #[test]
    fn strings_escape_and_parse_back() {
        let s = "quote \" backslash \\ newline \n tab \t unicode \u{00e9}\u{1F600} ctrl \u{0001}";
        let text = Json::Str(s.into()).to_string();
        assert_eq!(Json::parse(&text).unwrap(), Json::Str(s.into()));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("\u{1F600}".into())
        );
        assert!(Json::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn nested_document_round_trips() {
        let text = r#"{"a":[1,2.5,{"b":null},"x"],"c":{"d":false},"e":-7}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
        assert_eq!(v.get("e"), Some(&Json::Int(-7)));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 4);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1 2",
            "\"\\q\"",
            "{\"a\":1,}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n":3,"f":1.5,"s":"x","b":true,"a":[]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert!(v.get("a").unwrap().as_arr().unwrap().is_empty());
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get("f").unwrap().as_u64(), None);
    }
}
