//! # grit-trace
//!
//! Observability layer of the GRIT reproduction: structured, cycle-stamped
//! events for every virtual-memory action the simulator takes (faults,
//! migrations, duplications, collapses, evictions, scheme changes, link
//! transfers), plus machine-readable run reports.
//!
//! The workspace builds fully offline with no serde, so this crate carries
//! its own minimal JSON value type ([`Json`]) with a compact writer and a
//! recursive-descent parser — enough for JSONL traces, `run_report.json`
//! and `BENCH_run.json`, and their round-trip tests.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disabled.** A disabled [`Tracer`] is a `None`; every
//!    emission site pays one branch and never constructs the event.
//! 2. **Deterministic output.** Events are buffered per cell and submitted
//!    to the global JSONL writer in cell declaration order, so a trace is
//!    byte-identical at any worker count.
//! 3. **Counters and events never drift.** Events are emitted at the exact
//!    sites the `FaultCounters` fields increment, so per-category event
//!    counts equal the printed counters (modulo explicit sampling).

#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod report;
pub mod sink;
pub mod writer;

pub use event::{
    events_to_jsonl, CategoryMask, EventCategory, FaultClass, LinkKind, TraceEvent, TRACE_SCHEMA,
};
pub use json::Json;
pub use report::{
    BatchProfile, BenchSummary, CellReport, CellTiming, CycleProfile, FabricReport,
    HeadlineSpeedups, HistReport, MetricsReport, PagesizeReport, PhaseEntry, ProfileReport,
    ResilienceReport, RunReport, SeriesReport, SpeculationReport, StoreCounters, TargetTiming,
};
pub use sink::{TraceConfig, Tracer};
pub use writer::CellMeta;
