//! The event sink: a cloneable [`Tracer`] handle that is free when disabled.
//!
//! A disabled tracer is literally `None`; every emission site pays one
//! branch and never constructs the event (the constructor is an `FnOnce`
//! that only runs when the event will be kept). An enabled tracer shares a
//! buffer behind `Arc<Mutex<..>>` so the simulator stays `Send` and the
//! driver, fabric and runner can all hold clones of one sink.

use std::fmt;
use std::sync::{Arc, Mutex};

use crate::event::{CategoryMask, EventCategory, TraceEvent};

/// What to record: which categories, and how densely.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Categories to keep; events outside the mask are never constructed.
    pub categories: CategoryMask,
    /// Keep every Nth event of each category (1 = keep all). The first
    /// event of a category is always kept so short runs stay visible.
    pub sample_every: u64,
}

impl Default for TraceConfig {
    /// All categories, no sampling.
    fn default() -> Self {
        TraceConfig {
            categories: CategoryMask::ALL,
            sample_every: 1,
        }
    }
}

impl TraceConfig {
    /// Config keeping only the given categories.
    pub fn filtered(categories: CategoryMask) -> Self {
        TraceConfig {
            categories,
            ..TraceConfig::default()
        }
    }

    /// This config downsampled to every Nth event per category (0 is
    /// treated as 1).
    pub fn sampled(self, sample_every: u64) -> Self {
        TraceConfig {
            sample_every: sample_every.max(1),
            ..self
        }
    }
}

struct TraceBuffer {
    cfg: TraceConfig,
    events: Vec<TraceEvent>,
    /// Per-category counts of events *offered* (pre-sampling), indexed by
    /// [`EventCategory::bit`].
    seen: [u64; EventCategory::ALL.len()],
}

impl TraceBuffer {
    fn accepts(&mut self, cat: EventCategory) -> bool {
        if !self.cfg.categories.contains(cat) {
            return false;
        }
        let slot = &mut self.seen[cat.bit()];
        *slot += 1;
        (*slot - 1).is_multiple_of(self.cfg.sample_every)
    }
}

/// A cloneable handle to an event sink; `Default` is disabled.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Mutex<TraceBuffer>>>,
}

impl Tracer {
    /// A tracer that drops everything at the cost of one branch per site.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// A tracer recording into a fresh buffer under `cfg`.
    pub fn new(cfg: TraceConfig) -> Self {
        Tracer {
            inner: Some(Arc::new(Mutex::new(TraceBuffer {
                cfg,
                events: Vec::new(),
                seen: [0; EventCategory::ALL.len()],
            }))),
        }
    }

    /// Whether events are being recorded.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records an event of category `cat`. `make` runs only when the
    /// tracer is enabled and the filter/sampler accept the event, so
    /// emission sites never pay for constructing a dropped event.
    #[inline]
    pub fn emit(&self, cat: EventCategory, make: impl FnOnce() -> TraceEvent) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut buf = inner.lock().expect("trace buffer poisoned");
        if buf.accepts(cat) {
            let ev = make();
            debug_assert_eq!(ev.category(), cat);
            buf.events.push(ev);
        }
    }

    /// Drains and returns everything recorded so far (empty when disabled).
    pub fn take_events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(inner) => std::mem::take(&mut inner.lock().expect("trace buffer poisoned").events),
            None => Vec::new(),
        }
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some(inner) => {
                let buf = inner.lock().expect("trace buffer poisoned");
                f.debug_struct("Tracer")
                    .field("cfg", &buf.cfg)
                    .field("events", &buf.events.len())
                    .finish()
            }
            None => f.write_str("Tracer(disabled)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grit_sim::{GpuId, PageId};

    fn eviction(cycle: u64) -> TraceEvent {
        TraceEvent::Eviction {
            cycle,
            gpu: GpuId::new(0),
            vpn: PageId(1),
        }
    }

    #[test]
    fn disabled_tracer_never_constructs_events() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        let mut constructed = false;
        t.emit(EventCategory::Eviction, || {
            constructed = true;
            eviction(1)
        });
        assert!(!constructed);
        assert!(t.take_events().is_empty());
    }

    #[test]
    fn clones_share_one_buffer() {
        let t = Tracer::new(TraceConfig::default());
        let t2 = t.clone();
        t.emit(EventCategory::Eviction, || eviction(1));
        t2.emit(EventCategory::Eviction, || eviction(2));
        assert_eq!(t.take_events().len(), 2);
        assert!(t2.take_events().is_empty());
    }

    #[test]
    fn category_filter_drops_without_constructing() {
        let cfg = TraceConfig::filtered(CategoryMask::NONE.with(EventCategory::Fault));
        let t = Tracer::new(cfg);
        let mut constructed = false;
        t.emit(EventCategory::Eviction, || {
            constructed = true;
            eviction(1)
        });
        assert!(!constructed);
        assert!(t.take_events().is_empty());
    }

    #[test]
    fn sampling_keeps_first_then_every_nth() {
        let t = Tracer::new(TraceConfig::default().sampled(3));
        for c in 0..7 {
            t.emit(EventCategory::Eviction, || eviction(c));
        }
        let cycles: Vec<u64> = t.take_events().iter().map(TraceEvent::cycle).collect();
        assert_eq!(cycles, vec![0, 3, 6]);
    }

    #[test]
    fn every_category_has_a_sampler_slot() {
        // Regression: the `seen` array was once hard-sized to 7 while the
        // category list had grown to 11, so emitting any resilience event
        // (bit >= 7) on a traced run panicked with an index out of bounds.
        let t = Tracer::new(TraceConfig::default());
        t.emit(EventCategory::FaultInjected, || TraceEvent::FaultInjected {
            cycle: 1,
            kind: grit_sim::InjectedKind::Outage,
            wire: Some(0),
            gpu: None,
        });
        assert_eq!(t.take_events().len(), 1);
    }

    #[test]
    fn sample_every_zero_is_treated_as_one() {
        let t = Tracer::new(TraceConfig::default().sampled(0));
        t.emit(EventCategory::Eviction, || eviction(1));
        t.emit(EventCategory::Eviction, || eviction(2));
        assert_eq!(t.take_events().len(), 2);
    }
}
