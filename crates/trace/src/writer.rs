//! Process-global JSONL trace writer.
//!
//! The `repro` binary installs one writer for the whole run; the batch
//! executor submits each cell's buffered events *in cell declaration
//! order* after its (possibly parallel) execution finishes, so the file is
//! byte-identical at any `--jobs` level. Each cell contributes one
//! `{"type":"cell",...}` header line followed by its event lines.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::event::TraceEvent;
use crate::json::Json;
use crate::sink::TraceConfig;

/// Identity of the cell a block of trace events belongs to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellMeta {
    /// Application name, e.g. `"BFS"`.
    pub app: String,
    /// Policy label, e.g. `"grit"` or `"on-touch"`.
    pub policy: String,
    /// Number of GPUs the cell simulated.
    pub gpus: usize,
}

struct GlobalTrace {
    cfg: TraceConfig,
    out: BufWriter<File>,
    seq: u64,
}

static GLOBAL: Mutex<Option<GlobalTrace>> = Mutex::new(None);

/// Installs the process-global JSONL writer, creating (truncating) `path`.
/// Subsequent batch runs record with `cfg` and append to this file.
///
/// # Errors
///
/// Returns the underlying I/O error if the file cannot be created.
pub fn install_global(cfg: TraceConfig, path: &Path) -> io::Result<()> {
    let file = File::create(path)?;
    *GLOBAL.lock().expect("trace writer poisoned") = Some(GlobalTrace {
        cfg,
        out: BufWriter::new(file),
        seq: 0,
    });
    Ok(())
}

/// The installed writer's capture config, or `None` when tracing is off.
pub fn global_config() -> Option<TraceConfig> {
    GLOBAL.lock().expect("trace writer poisoned").as_ref().map(|g| g.cfg)
}

/// Writes one cell's header plus events to the global trace, returning
/// `false` (and writing nothing) when no writer is installed.
///
/// # Errors
///
/// Propagates I/O errors from the underlying file.
pub fn submit_global(meta: &CellMeta, events: &[TraceEvent]) -> io::Result<bool> {
    let mut guard = GLOBAL.lock().expect("trace writer poisoned");
    let Some(global) = guard.as_mut() else {
        return Ok(false);
    };
    let header = Json::Obj(vec![
        ("type".into(), Json::Str("cell".into())),
        ("seq".into(), Json::UInt(global.seq)),
        ("app".into(), Json::Str(meta.app.clone())),
        ("policy".into(), Json::Str(meta.policy.clone())),
        ("gpus".into(), Json::UInt(meta.gpus as u64)),
        ("events".into(), Json::UInt(events.len() as u64)),
    ]);
    global.seq += 1;
    writeln!(global.out, "{header}")?;
    for ev in events {
        writeln!(global.out, "{}", ev.to_json())?;
    }
    Ok(true)
}

/// Flushes the global writer, if any.
///
/// # Errors
///
/// Propagates I/O errors from the underlying file.
pub fn flush_global() -> io::Result<()> {
    match GLOBAL.lock().expect("trace writer poisoned").as_mut() {
        Some(global) => global.out.flush(),
        None => Ok(()),
    }
}

/// Removes the global writer (flushing first); later submissions are
/// dropped again. Primarily for tests.
pub fn uninstall_global() {
    let mut guard = GLOBAL.lock().expect("trace writer poisoned");
    if let Some(global) = guard.as_mut() {
        let _ = global.out.flush();
    }
    *guard = None;
}

#[cfg(test)]
mod tests {
    use super::*;
    use grit_sim::{GpuId, PageId};

    #[test]
    fn writes_header_then_events_in_submission_order() {
        let dir = std::env::temp_dir().join(format!("grit_trace_writer_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");

        install_global(TraceConfig::default(), &path).unwrap();
        assert_eq!(global_config(), Some(TraceConfig::default()));
        let meta = CellMeta {
            app: "BFS".into(),
            policy: "grit".into(),
            gpus: 4,
        };
        let ev = TraceEvent::Eviction {
            cycle: 5,
            gpu: GpuId::new(0),
            vpn: PageId(9),
        };
        assert!(submit_global(&meta, &[ev]).unwrap());
        assert!(submit_global(&meta, &[]).unwrap());
        uninstall_global();
        assert_eq!(global_config(), None);
        assert!(!submit_global(&meta, &[ev]).unwrap());

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let h0 = Json::parse(lines[0]).unwrap();
        assert_eq!(h0.get("type").unwrap().as_str(), Some("cell"));
        assert_eq!(h0.get("seq").unwrap().as_u64(), Some(0));
        assert_eq!(h0.get("events").unwrap().as_u64(), Some(1));
        assert_eq!(
            TraceEvent::from_json(&Json::parse(lines[1]).unwrap()).unwrap(),
            ev
        );
        let h1 = Json::parse(lines[2]).unwrap();
        assert_eq!(h1.get("seq").unwrap().as_u64(), Some(1));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
