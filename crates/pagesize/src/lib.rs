//! # grit-pagesize
//!
//! Mosaic-style multi-page-size page state for the GRIT reproduction:
//! a two-level model in which 4 KB base pages live inside 2 MB
//! large-page *frames*. A frame whose base pages are all resident on one
//! GPU, unreplicated and (in mixed mode) all touched can be
//! transparently **coalesced** into a single large mapping — one TLB
//! entry covers the whole frame and the access counters track the frame
//! as one group. Any event that breaks the frame's privacy or residency
//! — a remote writer taking exclusive ownership, a duplication, a base
//! page migrating away, a capacity eviction, an ECC retirement —
//! **splinters** the frame back to base pages.
//!
//! The crate deliberately owns no driver state: the UVM driver (in
//! `grit-uvm`) remains the single authority on residency and replication
//! and consults [`LargePageTable`] on its serial paths only, so the
//! sharded runner's speculation rounds always observe frozen large-page
//! state. Eligibility is decided by *re-scanning* the affected frame
//! against the authoritative page table (via a caller-supplied lookup)
//! rather than by mirroring every residency delta — slower per check,
//! but impossible to drift out of sync.

#![warn(missing_docs)]

use grit_sim::{FxHashMap, GpuId, PageId, PageSizeMode, PAGE_SIZE_2M};

/// Why a large page splintered back to base pages.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SplinterCause {
    /// Another GPU began sharing the frame: a remote writer collapsed a
    /// page to exclusive ownership, a page was duplicated to a peer, or
    /// a base page migrated away from the frame's owner.
    FalseSharing,
    /// Capacity pressure evicted part of the frame (or staged it to the
    /// host), leaving the range partially resident.
    Eviction,
    /// ECC frame retirement force-evicted part of the range.
    Retirement,
}

impl SplinterCause {
    /// Stable label used in trace events and reports.
    pub fn name(self) -> &'static str {
        match self {
            SplinterCause::FalseSharing => "false-sharing",
            SplinterCause::Eviction => "eviction",
            SplinterCause::Retirement => "retirement",
        }
    }

    /// Parses a stable label back into a cause.
    pub fn parse(s: &str) -> Option<Self> {
        [
            SplinterCause::FalseSharing,
            SplinterCause::Eviction,
            SplinterCause::Retirement,
        ]
        .into_iter()
        .find(|c| c.name() == s)
    }
}

/// The authoritative state of one base page, as seen by the central page
/// table, flattened to exactly what coalescing eligibility needs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BasePageView {
    /// The GPU owning the page, `None` when the page is host-resident
    /// (or was never populated).
    pub owner: Option<GpuId>,
    /// Whether any replica of the page exists on another GPU.
    pub replicated: bool,
    /// Whether the page has ever been touched by compute.
    pub touched: bool,
}

/// Cumulative multi-page-size activity counters, reported through the
/// `pagesize_counters` aux series and the run report's `pagesize`
/// object.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PageSizeCounters {
    /// Frames coalesced into a large mapping.
    pub coalesces: u64,
    /// Frames splintered because a peer GPU started sharing the range.
    pub splinters_false_sharing: u64,
    /// Frames splintered by partial capacity eviction / host staging.
    pub splinters_eviction: u64,
    /// Frames splintered by ECC frame retirement.
    pub splinters_retirement: u64,
    /// Access-counter trips on ordinary 64 KB groups.
    pub counter_trips_base: u64,
    /// Access-counter trips on coalesced frames (one counter group per
    /// 2 MB frame).
    pub counter_trips_large: u64,
    /// Total 64 KB groups aliased into tripped frame-granularity groups
    /// (the migration-granularity cost of coalescing: one trip moves the
    /// whole frame).
    pub counter_groups_aliased: u64,
    /// Highest number of simultaneously coalesced frames observed.
    pub coalesced_peak: u64,
}

impl PageSizeCounters {
    /// Flattens the counters to the fixed-order `pagesize_counters` aux
    /// series: `[coalesces, splinters_false_sharing, splinters_eviction,
    /// splinters_retirement, counter_trips_base, counter_trips_large,
    /// counter_groups_aliased, coalesced_peak, coalesced_now]`. The
    /// report parser in `grit-trace` depends on this order.
    pub fn to_series(&self, coalesced_now: u64) -> Vec<f64> {
        vec![
            self.coalesces as f64,
            self.splinters_false_sharing as f64,
            self.splinters_eviction as f64,
            self.splinters_retirement as f64,
            self.counter_trips_base as f64,
            self.counter_trips_large as f64,
            self.counter_groups_aliased as f64,
            self.coalesced_peak as f64,
            coalesced_now as f64,
        ]
    }

    /// Total splinters across all causes.
    pub fn splinters(&self) -> u64 {
        self.splinters_false_sharing + self.splinters_eviction + self.splinters_retirement
    }
}

/// Tracks which 2 MB frames are currently coalesced, who owns each, and
/// the cumulative coalesce/splinter/aliasing counters.
///
/// Frames are identified by their index (`vpn / pages_per_frame`); a
/// coalesced frame maps every base page `frame * pages_per_frame ..
/// (frame + 1) * pages_per_frame` through one large translation owned by
/// a single GPU.
///
/// ```
/// use grit_pagesize::{BasePageView, LargePageTable, SplinterCause};
/// use grit_sim::{GpuId, PageId, PageSizeMode};
///
/// let mut lpt = LargePageTable::new(PageSizeMode::Uniform2m, 4);
/// let g = GpuId::new(1);
/// let view = |_vpn: PageId| Some(BasePageView { owner: Some(g), replicated: false, touched: true });
/// let (base, owner) = lpt.coalesce_candidate(PageId(5), 64, view).unwrap();
/// assert_eq!((base, owner), (PageId(4), g));
/// lpt.coalesce(base, owner);
/// assert_eq!(lpt.coalesced_frame(PageId(7)), Some(PageId(4)));
/// let (split_base, split_owner) = lpt.splinter(PageId(6), SplinterCause::Eviction).unwrap();
/// assert_eq!((split_base, split_owner), (PageId(4), g));
/// assert_eq!(lpt.coalesced_frame(PageId(5)), None);
/// ```
#[derive(Clone, Debug)]
pub struct LargePageTable {
    mode: PageSizeMode,
    pages_per_frame: u64,
    /// Currently coalesced frames (frame index → owning GPU).
    frames: FxHashMap<u64, GpuId>,
    counters: PageSizeCounters,
}

impl LargePageTable {
    /// A table for the given mode with `pages_per_frame` base pages per
    /// 2 MB frame. The table is inert (never coalesces) under
    /// [`PageSizeMode::Uniform4k`] or when a frame holds fewer than two
    /// base pages.
    pub fn new(mode: PageSizeMode, pages_per_frame: u64) -> Self {
        LargePageTable {
            mode,
            pages_per_frame: pages_per_frame.max(1),
            frames: FxHashMap::default(),
            counters: PageSizeCounters::default(),
        }
    }

    /// A table derived from a full configuration (frame size from the
    /// base page size).
    pub fn from_config(mode: PageSizeMode, page_size: u64) -> Self {
        LargePageTable::new(mode, (PAGE_SIZE_2M / page_size.max(1)).max(1))
    }

    /// Whether large pages are managed at all.
    pub fn enabled(&self) -> bool {
        self.mode.large_pages_enabled() && self.pages_per_frame > 1
    }

    /// The configured management mode.
    pub fn mode(&self) -> PageSizeMode {
        self.mode
    }

    /// Base pages per 2 MB frame.
    pub fn pages_per_frame(&self) -> u64 {
        self.pages_per_frame
    }

    /// First base page of the frame containing `vpn`.
    pub fn frame_base(&self, vpn: PageId) -> PageId {
        PageId(vpn.vpn() / self.pages_per_frame * self.pages_per_frame)
    }

    /// The frame base when `vpn` lies inside a coalesced frame — also
    /// the key under which the large translation lives in the 2 MB TLBs.
    pub fn coalesced_frame(&self, vpn: PageId) -> Option<PageId> {
        if self.frames.is_empty() {
            return None;
        }
        let frame = vpn.vpn() / self.pages_per_frame;
        self.frames.contains_key(&frame).then(|| PageId(frame * self.pages_per_frame))
    }

    /// The GPU owning the coalesced frame containing `vpn`, if any.
    pub fn frame_owner(&self, vpn: PageId) -> Option<GpuId> {
        self.frames.get(&(vpn.vpn() / self.pages_per_frame)).copied()
    }

    /// Number of frames currently coalesced.
    pub fn coalesced_now(&self) -> u64 {
        self.frames.len() as u64
    }

    /// Cumulative activity counters.
    pub fn counters(&self) -> &PageSizeCounters {
        &self.counters
    }

    /// Checks whether the frame containing `vpn` is eligible for
    /// coalescing, consulting `lookup` for the authoritative state of
    /// each base page. Eligible means: the table is enabled, the frame
    /// is not already coalesced, it lies entirely inside the footprint,
    /// and every base page is owned by the same GPU with no replicas —
    /// plus, under [`PageSizeMode::Mixed`], every page has been touched
    /// (eagerly-migrated cold pages hold coalescing back until compute
    /// actually reaches them).
    ///
    /// Returns the frame base and owning GPU when eligible.
    pub fn coalesce_candidate(
        &self,
        vpn: PageId,
        footprint_pages: u64,
        mut lookup: impl FnMut(PageId) -> Option<BasePageView>,
    ) -> Option<(PageId, GpuId)> {
        if !self.enabled() {
            return None;
        }
        let frame = vpn.vpn() / self.pages_per_frame;
        if self.frames.contains_key(&frame) {
            return None;
        }
        let base = frame * self.pages_per_frame;
        if base + self.pages_per_frame > footprint_pages {
            // A frame straddling the end of the footprint can never be
            // fully resident; real systems would not back it with a
            // large page either.
            return None;
        }
        let require_touched = self.mode == PageSizeMode::Mixed;
        let mut owner: Option<GpuId> = None;
        for i in 0..self.pages_per_frame {
            let view = lookup(PageId(base + i))?;
            let page_owner = view.owner?;
            if view.replicated || (require_touched && !view.touched) {
                return None;
            }
            match owner {
                None => owner = Some(page_owner),
                Some(o) if o != page_owner => return None,
                Some(_) => {}
            }
        }
        owner.map(|o| (PageId(base), o))
    }

    /// Records the frame at `frame_base` as coalesced under `owner`.
    /// Idempotent for an already-coalesced frame (the counters only move
    /// on a real transition).
    pub fn coalesce(&mut self, frame_base: PageId, owner: GpuId) {
        if !self.enabled() {
            return;
        }
        let frame = frame_base.vpn() / self.pages_per_frame;
        if self.frames.insert(frame, owner).is_none() {
            self.counters.coalesces += 1;
            self.counters.coalesced_peak =
                self.counters.coalesced_peak.max(self.frames.len() as u64);
        }
    }

    /// Splinters the frame containing `vpn`, if coalesced, recording
    /// `cause`; returns the frame base and the owner the frame had (for
    /// trace events and the owner's large-TLB shootdown). A no-op
    /// returning `None` when the frame was not coalesced, so callers hook
    /// every sharing/eviction path unconditionally.
    pub fn splinter(&mut self, vpn: PageId, cause: SplinterCause) -> Option<(PageId, GpuId)> {
        if self.frames.is_empty() {
            return None;
        }
        let frame = vpn.vpn() / self.pages_per_frame;
        let owner = self.frames.remove(&frame)?;
        match cause {
            SplinterCause::FalseSharing => self.counters.splinters_false_sharing += 1,
            SplinterCause::Eviction => self.counters.splinters_eviction += 1,
            SplinterCause::Retirement => self.counters.splinters_retirement += 1,
        }
        Some((PageId(frame * self.pages_per_frame), owner))
    }

    /// Records an access-counter trip: `aliased_groups` is zero for a
    /// trip on an ordinary 64 KB group and the number of base 64 KB
    /// groups folded into the frame group for a trip on a coalesced
    /// frame.
    pub fn note_counter_trip(&mut self, aliased_groups: u64) {
        if aliased_groups == 0 {
            self.counters.counter_trips_base += 1;
        } else {
            self.counters.counter_trips_large += 1;
            self.counters.counter_groups_aliased += aliased_groups;
        }
    }

    /// The fixed-order `pagesize_counters` aux series for this table's
    /// current state (see [`PageSizeCounters::to_series`]).
    pub fn counter_series(&self) -> Vec<f64> {
        self.counters.to_series(self.coalesced_now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn private(owner: GpuId) -> impl FnMut(PageId) -> Option<BasePageView> {
        move |_| {
            Some(BasePageView {
                owner: Some(owner),
                replicated: false,
                touched: true,
            })
        }
    }

    #[test]
    fn uniform4k_is_inert() {
        let mut t = LargePageTable::new(PageSizeMode::Uniform4k, 512);
        assert!(!t.enabled());
        assert!(t.coalesce_candidate(PageId(0), 1 << 20, private(GpuId::new(0))).is_none());
        t.coalesce(PageId(0), GpuId::new(0));
        assert_eq!(t.coalesced_now(), 0);
        assert_eq!(t.coalesced_frame(PageId(0)), None);
    }

    #[test]
    fn coalesce_requires_single_unreplicated_owner() {
        let t = LargePageTable::new(PageSizeMode::Uniform2m, 4);
        let g0 = GpuId::new(0);
        // Fully private: eligible.
        assert_eq!(
            t.coalesce_candidate(PageId(6), 64, private(g0)),
            Some((PageId(4), g0))
        );
        // One page on another GPU: not eligible.
        let mixed_owner = |vpn: PageId| {
            Some(BasePageView {
                owner: Some(GpuId::new((vpn.vpn() == 5) as u8)),
                replicated: false,
                touched: true,
            })
        };
        assert_eq!(t.coalesce_candidate(PageId(6), 64, mixed_owner), None);
        // One page replicated: not eligible.
        let replicated = |vpn: PageId| {
            Some(BasePageView {
                owner: Some(g0),
                replicated: vpn.vpn() == 7,
                touched: true,
            })
        };
        assert_eq!(t.coalesce_candidate(PageId(6), 64, replicated), None);
        // One page host-resident (no owner): not eligible.
        let host = |vpn: PageId| {
            Some(BasePageView {
                owner: (vpn.vpn() != 4).then_some(g0),
                replicated: false,
                touched: true,
            })
        };
        assert_eq!(t.coalesce_candidate(PageId(6), 64, host), None);
    }

    #[test]
    fn mixed_mode_requires_touch_uniform2m_does_not() {
        let cold_tail = |vpn: PageId| {
            Some(BasePageView {
                owner: Some(GpuId::new(2)),
                replicated: false,
                touched: vpn.vpn() != 7,
            })
        };
        let eager = LargePageTable::new(PageSizeMode::Uniform2m, 4);
        assert!(eager.coalesce_candidate(PageId(4), 64, cold_tail).is_some());
        let mixed = LargePageTable::new(PageSizeMode::Mixed, 4);
        assert_eq!(mixed.coalesce_candidate(PageId(4), 64, cold_tail), None);
        assert!(mixed.coalesce_candidate(PageId(4), 64, private(GpuId::new(2))).is_some());
    }

    #[test]
    fn footprint_tail_frames_never_coalesce() {
        let t = LargePageTable::new(PageSizeMode::Uniform2m, 4);
        // Footprint of 6 pages: frame 1 (pages 4..8) sticks out past it.
        assert_eq!(
            t.coalesce_candidate(PageId(5), 6, private(GpuId::new(0))),
            None
        );
        assert!(t.coalesce_candidate(PageId(1), 6, private(GpuId::new(0))).is_some());
    }

    #[test]
    fn splinter_undoes_coalesce_and_counts_causes() {
        let mut t = LargePageTable::new(PageSizeMode::Mixed, 4);
        let g = GpuId::new(3);
        t.coalesce(PageId(8), g);
        t.coalesce(PageId(8), g); // idempotent
        assert_eq!(t.counters().coalesces, 1);
        assert_eq!(t.coalesced_frame(PageId(11)), Some(PageId(8)));
        assert_eq!(t.frame_owner(PageId(9)), Some(g));
        assert_eq!(
            t.splinter(PageId(10), SplinterCause::FalseSharing),
            Some((PageId(8), g))
        );
        // Already splintered: no-op.
        assert_eq!(t.splinter(PageId(10), SplinterCause::Eviction), None);
        assert_eq!(t.counters().splinters_false_sharing, 1);
        assert_eq!(t.counters().splinters_eviction, 0);
        assert_eq!(t.counters().splinters(), 1);
        assert_eq!(t.coalesced_now(), 0);
        assert_eq!(t.counters().coalesced_peak, 1);
    }

    #[test]
    fn counter_trips_track_aliasing() {
        let mut t = LargePageTable::new(PageSizeMode::Mixed, 512);
        t.note_counter_trip(0);
        t.note_counter_trip(32);
        t.note_counter_trip(32);
        let c = t.counters();
        assert_eq!(c.counter_trips_base, 1);
        assert_eq!(c.counter_trips_large, 2);
        assert_eq!(c.counter_groups_aliased, 64);
        let series = t.counter_series();
        assert_eq!(series.len(), 9);
        assert_eq!(series[4], 1.0);
        assert_eq!(series[5], 2.0);
        assert_eq!(series[6], 64.0);
    }

    #[test]
    fn splinter_cause_labels_round_trip() {
        for c in [
            SplinterCause::FalseSharing,
            SplinterCause::Eviction,
            SplinterCause::Retirement,
        ] {
            assert_eq!(SplinterCause::parse(c.name()), Some(c));
        }
        assert_eq!(SplinterCause::parse("cosmic-ray"), None);
    }
}
