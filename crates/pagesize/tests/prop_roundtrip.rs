//! Property tests for the large-page table: splintering must be the
//! exact inverse of coalescing — for any frame geometry, owner, mode and
//! cause, `splinter(coalesce(range))` returns the table to its prior
//! state (same eligibility, empty coalesced set, counters moved exactly
//! once) — and arbitrary operation interleavings must agree with a
//! trivial shadow model.

use proptest::prelude::*;

use grit_pagesize::{BasePageView, LargePageTable, SplinterCause};
use grit_sim::{GpuId, PageId, PageSizeMode};

fn mode_strategy() -> impl Strategy<Value = PageSizeMode> {
    prop_oneof![Just(PageSizeMode::Uniform2m), Just(PageSizeMode::Mixed)]
}

fn cause_strategy() -> impl Strategy<Value = SplinterCause> {
    prop_oneof![
        Just(SplinterCause::FalseSharing),
        Just(SplinterCause::Eviction),
        Just(SplinterCause::Retirement),
    ]
}

fn private(owner: GpuId) -> impl FnMut(PageId) -> Option<BasePageView> {
    move |_| {
        Some(BasePageView {
            owner: Some(owner),
            replicated: false,
            touched: true,
        })
    }
}

proptest! {
    #[test]
    fn splinter_is_the_exact_inverse_of_coalesce(
        ppf in 2u64..=512,
        frame in 0u64..64,
        owner in 0u8..8,
        mode in mode_strategy(),
        cause in cause_strategy(),
        probe in 0u64..512,
    ) {
        let mut t = LargePageTable::new(mode, ppf);
        let owner = GpuId::new(owner);
        let base = PageId(frame * ppf);
        let inside = PageId(base.vpn() + probe % ppf);
        let footprint = (frame + 1) * ppf;

        // A fully-private frame is eligible from any of its pages.
        prop_assert_eq!(
            t.coalesce_candidate(inside, footprint, private(owner)),
            Some((base, owner))
        );
        t.coalesce(base, owner);
        prop_assert_eq!(t.coalesced_frame(inside), Some(base));
        prop_assert_eq!(t.frame_owner(inside), Some(owner));
        prop_assert_eq!(t.coalesced_now(), 1);
        // Coalesced frames are not candidates again.
        prop_assert_eq!(t.coalesce_candidate(inside, footprint, private(owner)), None);

        // Splintering from any page of the frame reports the frame base
        // and prior owner, and restores the pre-coalesce state exactly.
        prop_assert_eq!(t.splinter(inside, cause), Some((base, owner)));
        prop_assert_eq!(t.coalesced_now(), 0);
        prop_assert_eq!(t.coalesced_frame(inside), None);
        prop_assert_eq!(t.frame_owner(inside), None);
        prop_assert_eq!(
            t.coalesce_candidate(inside, footprint, private(owner)),
            Some((base, owner))
        );
        // A second splinter is a no-op.
        prop_assert_eq!(t.splinter(inside, cause), None);

        // The round trip moved each counter exactly once.
        prop_assert_eq!(t.counters().coalesces, 1);
        prop_assert_eq!(t.counters().splinters(), 1);
        prop_assert_eq!(t.counters().coalesced_peak, 1);
    }

    #[test]
    fn arbitrary_interleavings_match_a_shadow_set(
        ppf in 2u64..=64,
        ops in prop::collection::vec((any::<bool>(), 0u64..16, 0u8..4), 0..64),
    ) {
        let mut t = LargePageTable::new(PageSizeMode::Uniform2m, ppf);
        let mut shadow: std::collections::HashMap<u64, GpuId> = Default::default();
        let (mut coalesces, mut splinters) = (0u64, 0u64);
        let mut peak = 0u64;
        for (do_coalesce, frame, owner) in ops {
            let base = PageId(frame * ppf);
            if do_coalesce {
                let owner = GpuId::new(owner);
                t.coalesce(base, owner);
                if shadow.insert(frame, owner).is_none() {
                    coalesces += 1;
                }
                peak = peak.max(shadow.len() as u64);
            } else {
                let got = t.splinter(base, SplinterCause::FalseSharing);
                let want = shadow.remove(&frame).map(|o| (base, o));
                prop_assert_eq!(got, want);
                if want.is_some() {
                    splinters += 1;
                }
            }
        }
        prop_assert_eq!(t.coalesced_now(), shadow.len() as u64);
        for (frame, owner) in &shadow {
            let base = PageId(frame * ppf);
            prop_assert_eq!(t.coalesced_frame(base), Some(base));
            prop_assert_eq!(t.frame_owner(base), Some(*owner));
        }
        prop_assert_eq!(t.counters().coalesces, coalesces);
        prop_assert_eq!(t.counters().splinters(), splinters);
        prop_assert_eq!(t.counters().coalesced_peak, peak);
    }
}
