//! # grit-topo
//!
//! Pluggable interconnect topologies for the GRIT multi-GPU simulator.
//!
//! The crate turns a [`grit_sim::TopologyConfig`] descriptor into a routed
//! link graph: concrete [`Topology`] shapes ([`AllToAll`], [`NvSwitch`],
//! [`Ring`], [`Mesh2d`], [`Hierarchical`]) lay out duplex [`LinkSpec`]
//! wires — including internal switch/router nodes — and [`Routing`]
//! precomputes deterministic shortest paths between every GPU pair. The
//! fabric in `grit-interconnect` books multi-hop transfers hop-by-hop on
//! per-link occupancy, so congestion composes across hops.
//!
//! ```
//! use grit_sim::{LinkConfig, TopologyConfig, TopologyKind};
//! use grit_topo::{build_topology, Routing};
//!
//! let topo = build_topology(
//!     8,
//!     LinkConfig::default(),
//!     TopologyConfig::of(TopologyKind::Ring),
//! );
//! let routing = Routing::compute(&topo.graph());
//! assert_eq!(routing.hops(0, 4), 4); // antipodal pair on an 8-ring
//! assert!(routing.diameter() <= topo.diameter_bound());
//! ```

#![warn(missing_docs)]

pub mod graph;
pub mod routing;

pub use graph::{
    build_topology, mesh_dims, AllToAll, Hierarchical, HopClass, LinkSpec, Mesh2d, NvSwitch, Ring,
    TopoGraph, Topology,
};
pub use routing::Routing;
