//! Shortest-path routing tables, computed once when a fabric is built.
//!
//! Routes are stored per *unordered* GPU pair as the link-id sequence from
//! the lower-numbered GPU to the higher one; the reverse direction walks
//! the same links backwards. Storing one path per pair (instead of two
//! independent BFS trees) makes routes symmetric by construction, which
//! the contention model relies on: both directions of a transfer book the
//! same duplex wires, exactly like the pre-topology per-pair NVLinks.

use crate::graph::TopoGraph;

/// Precomputed shortest-path routes between every GPU pair.
#[derive(Clone, Debug)]
pub struct Routing {
    num_gpus: usize,
    /// Triangular table: pair `(lo, hi)` at `pair_index(lo, hi)`, each a
    /// link-id path ordered from `lo` to `hi`.
    routes: Vec<Vec<u32>>,
    /// Longest route in the table (hops between the farthest GPU pair).
    diameter: usize,
}

impl Routing {
    /// Index of pair `(a, b)` (distinct GPUs, either order) in the
    /// triangular table — the same layout the legacy fabric used for its
    /// pair links.
    pub fn pair_index(num_gpus: usize, a: usize, b: usize) -> usize {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        debug_assert!(lo < hi && hi < num_gpus, "pair requires distinct GPUs");
        lo * num_gpus - lo * (lo + 1) / 2 + (hi - lo - 1)
    }

    /// Computes shortest paths over `graph` with breadth-first search from
    /// each GPU. Deterministic: adjacency is visited in (node, link-id)
    /// order, so equal-length paths tie-break identically on every run.
    ///
    /// # Panics
    ///
    /// Panics if some GPU pair is disconnected (every topology descriptor
    /// in this crate yields a connected graph).
    pub fn compute(graph: &TopoGraph) -> Routing {
        let r = Routing::compute_avoiding(graph, &[]);
        for lo in 0..r.num_gpus {
            for hi in (lo + 1)..r.num_gpus {
                assert!(
                    r.has_route(lo, hi),
                    "topology leaves GPUs {lo} and {hi} disconnected"
                );
            }
        }
        r
    }

    /// Like [`Routing::compute`], but treats every link in `down` (sorted
    /// or not) as absent — the failover table used while an injected
    /// outage window is active. Pairs that the down-set disconnects get an
    /// **empty** route ([`Routing::has_route`] returns `false`); callers
    /// decide how to degrade (the fabric stages such transfers through
    /// host memory).
    pub fn compute_avoiding(graph: &TopoGraph, down: &[u32]) -> Routing {
        let n = graph.num_gpus;
        let nodes = graph.num_nodes;
        // Adjacency: node -> [(neighbor, link id)], sorted for determinism.
        let mut adj: Vec<Vec<(usize, u32)>> = vec![Vec::new(); nodes];
        for (id, l) in graph.links.iter().enumerate() {
            if down.contains(&(id as u32)) {
                continue;
            }
            adj[l.a].push((l.b, id as u32));
            adj[l.b].push((l.a, id as u32));
        }
        for list in &mut adj {
            list.sort_unstable();
        }

        let pairs = n * n.saturating_sub(1) / 2;
        let mut routes = vec![Vec::new(); pairs];
        let mut diameter = 0;
        let mut parent: Vec<Option<(usize, u32)>> = vec![None; nodes];
        let mut queue = std::collections::VecDeque::new();
        for lo in 0..n {
            parent.iter_mut().for_each(|p| *p = None);
            parent[lo] = Some((lo, u32::MAX)); // sentinel: visited root
            queue.clear();
            queue.push_back(lo);
            while let Some(node) = queue.pop_front() {
                for &(next, link) in &adj[node] {
                    if parent[next].is_none() {
                        parent[next] = Some((node, link));
                        queue.push_back(next);
                    }
                }
            }
            for hi in (lo + 1)..n {
                if parent[hi].is_none() {
                    continue; // disconnected by the down-set: empty route
                }
                let mut path = Vec::new();
                let mut node = hi;
                while node != lo {
                    let (prev, link) = parent[node].expect("walked past the BFS root");
                    path.push(link);
                    node = prev;
                }
                path.reverse();
                diameter = diameter.max(path.len());
                routes[Routing::pair_index(n, lo, hi)] = path;
            }
        }
        Routing {
            num_gpus: n,
            routes,
            diameter,
        }
    }

    /// Whether the table holds a live path between distinct GPUs `a` and
    /// `b` (always true for tables from [`Routing::compute`]; false when a
    /// [`Routing::compute_avoiding`] down-set disconnected the pair).
    pub fn has_route(&self, a: usize, b: usize) -> bool {
        !self.route(a, b).is_empty()
    }

    /// Number of GPUs routed.
    pub fn num_gpus(&self) -> usize {
        self.num_gpus
    }

    /// The link-id path for the pair containing `a` and `b`, ordered from
    /// `min(a, b)` to `max(a, b)`. Walk it reversed when `a > b`.
    pub fn route(&self, a: usize, b: usize) -> &[u32] {
        &self.routes[Routing::pair_index(self.num_gpus, a, b)]
    }

    /// Hop count between `a` and `b`.
    pub fn hops(&self, a: usize, b: usize) -> usize {
        self.route(a, b).len()
    }

    /// Longest route between any GPU pair.
    pub fn diameter(&self) -> usize {
        self.diameter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{build_topology, Topology};
    use grit_sim::{LinkConfig, TopologyConfig, TopologyKind};

    fn routing(kind: TopologyKind, n: usize) -> (Routing, Box<dyn Topology>) {
        let t = build_topology(n, LinkConfig::default(), TopologyConfig::of(kind));
        (Routing::compute(&t.graph()), t)
    }

    #[test]
    fn all_to_all_routes_are_the_legacy_pair_links() {
        let (r, _) = routing(TopologyKind::AllToAll, 8);
        for a in 0..8 {
            for b in (a + 1)..8 {
                let route = r.route(a, b);
                assert_eq!(route.len(), 1);
                assert_eq!(route[0] as usize, Routing::pair_index(8, a, b));
            }
        }
        assert_eq!(r.diameter(), 1);
    }

    #[test]
    fn ring_takes_the_short_arc() {
        let (r, _) = routing(TopologyKind::Ring, 8);
        assert_eq!(r.hops(0, 1), 1);
        assert_eq!(r.hops(0, 7), 1); // wraparound link
        assert_eq!(r.hops(0, 4), 4); // antipodal
        assert_eq!(r.hops(1, 3), 2);
        assert_eq!(r.diameter(), 4);
    }

    #[test]
    fn nvswitch_routes_cross_the_plane() {
        let (r, t) = routing(TopologyKind::NvSwitch, 8);
        // Default radix 8: single plane, every pair is gpu-switch-gpu.
        for a in 0..8 {
            for b in (a + 1)..8 {
                assert_eq!(r.hops(a, b), 2);
            }
        }
        assert!(r.diameter() <= t.diameter_bound());
    }

    #[test]
    fn hierarchical_crosses_the_bottleneck_only_between_nodes() {
        let (r, _) = routing(TopologyKind::Hierarchical, 8);
        assert_eq!(r.hops(0, 3), 1); // intra-node direct NVLink
        assert_eq!(r.hops(4, 7), 1);
        assert_eq!(r.hops(0, 4), 3); // gpu -> router -> router -> gpu
        assert_eq!(r.diameter(), 3);
    }

    #[test]
    fn avoiding_a_wire_reroutes_multi_hop() {
        // All-to-all over 4 GPUs: killing the direct (0,1) wire forces a
        // two-hop detour through another GPU.
        let t = build_topology(
            4,
            LinkConfig::default(),
            TopologyConfig::of(TopologyKind::AllToAll),
        );
        let direct = Routing::pair_index(4, 0, 1) as u32;
        let r = Routing::compute_avoiding(&t.graph(), &[direct]);
        assert!(r.has_route(0, 1));
        assert_eq!(r.hops(0, 1), 2);
        assert!(!r.route(0, 1).contains(&direct));
        // Other pairs keep their direct wires.
        assert_eq!(r.hops(2, 3), 1);
    }

    #[test]
    fn avoiding_all_wires_disconnects_every_pair() {
        let t = build_topology(
            4,
            LinkConfig::default(),
            TopologyConfig::of(TopologyKind::AllToAll),
        );
        let all: Vec<u32> = (0..t.graph().links.len() as u32).collect();
        let r = Routing::compute_avoiding(&t.graph(), &all);
        for a in 0..4 {
            for b in (a + 1)..4 {
                assert!(!r.has_route(a, b));
            }
        }
        assert_eq!(r.diameter(), 0);
    }

    #[test]
    fn ring_cut_takes_the_long_way_round() {
        let t = build_topology(
            8,
            LinkConfig::default(),
            TopologyConfig::of(TopologyKind::Ring),
        );
        // Healthy ring: 0 -> 7 crosses the single wraparound wire. Cut it
        // and the route must walk all seven links the other way.
        let healthy = Routing::compute(&t.graph());
        assert_eq!(healthy.hops(0, 7), 1);
        let cut = healthy.route(0, 7)[0];
        let r = Routing::compute_avoiding(&t.graph(), &[cut]);
        assert!(r.has_route(0, 7));
        assert_eq!(r.hops(0, 7), 7);
    }

    #[test]
    fn every_topology_stays_within_its_diameter_bound() {
        for kind in TopologyKind::ALL {
            for n in 1..=16 {
                let (r, t) = routing(kind, n);
                assert!(
                    r.diameter() <= t.diameter_bound(),
                    "{kind:?} n={n}: diameter {} > bound {}",
                    r.diameter(),
                    t.diameter_bound()
                );
            }
        }
    }
}
