//! Topology descriptors: each concrete topology knows how to lay out its
//! link graph (GPUs plus, for switched fabrics, internal router nodes).
//!
//! Nodes are plain `usize` ids: `0..num_gpus` are the GPUs, any ids above
//! that are internal nodes (NvSwitch planes, hierarchical node routers)
//! that never source or sink traffic themselves. Every link is duplex and
//! shared between both directions, exactly like the pre-topology per-pair
//! NVLinks.

use grit_sim::{LinkConfig, TopologyConfig, TopologyKind};

/// Which class of wire a fabric hop crosses (used for per-class stats and
/// trace labels; PCIe host links are modelled outside the topology graph).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HopClass {
    /// Direct GPU↔GPU NVLink.
    Nvlink,
    /// GPU↔switch uplink or switch↔switch trunk.
    Switch,
    /// The hierarchical fabric's node↔node bottleneck link.
    InterNode,
}

/// One duplex link of the topology graph.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LinkSpec {
    /// One endpoint (node id).
    pub a: usize,
    /// The other endpoint (node id).
    pub b: usize,
    /// Wire class, for stats attribution and trace labels.
    pub class: HopClass,
    /// Serial bandwidth in bytes per cycle.
    pub bytes_per_cycle: f64,
    /// One-way latency in cycles.
    pub latency: u64,
}

/// A fully laid-out topology: node count plus every link.
#[derive(Clone, Debug)]
pub struct TopoGraph {
    /// GPUs occupy node ids `0..num_gpus`.
    pub num_gpus: usize,
    /// Total nodes including internal switches/routers.
    pub num_nodes: usize,
    /// Every duplex link (index = link id).
    pub links: Vec<LinkSpec>,
}

impl TopoGraph {
    /// Smallest one-way latency of any link in the graph, or `None` for a
    /// wireless graph (single GPU). This bounds how soon any cross-GPU
    /// interaction can become visible: no packet reaches another GPU in
    /// fewer cycles than the cheapest wire.
    pub fn min_latency(&self) -> Option<u64> {
        self.links.iter().map(|l| l.latency).min()
    }
}

/// A topology shape that can lay out its link graph and bound its routes.
pub trait Topology {
    /// Stable display name (matches [`TopologyKind::name`]).
    fn name(&self) -> &'static str;

    /// Number of GPUs the fabric connects.
    fn num_gpus(&self) -> usize;

    /// Lays out the link graph.
    fn graph(&self) -> TopoGraph;

    /// Upper bound on the hop count of any GPU-pair route (the topology
    /// diameter over GPU endpoints). Routing must never exceed it.
    fn diameter_bound(&self) -> usize;
}

/// Dedicated duplex NVLink per GPU pair (the pre-topology default).
#[derive(Clone, Copy, Debug)]
pub struct AllToAll {
    num_gpus: usize,
    links: LinkConfig,
}

impl AllToAll {
    /// Builds the descriptor for `num_gpus` GPUs.
    pub fn new(num_gpus: usize, links: LinkConfig) -> Self {
        AllToAll { num_gpus, links }
    }
}

impl Topology for AllToAll {
    fn name(&self) -> &'static str {
        TopologyKind::AllToAll.name()
    }

    fn num_gpus(&self) -> usize {
        self.num_gpus
    }

    fn graph(&self) -> TopoGraph {
        let n = self.num_gpus;
        let mut links = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        // Triangular order (lo ascending, then hi): link id for pair
        // (lo, hi) equals the pre-topology `pair_index` formula.
        for lo in 0..n {
            for hi in (lo + 1)..n {
                links.push(LinkSpec {
                    a: lo,
                    b: hi,
                    class: HopClass::Nvlink,
                    bytes_per_cycle: self.links.nvlink_bytes_per_cycle,
                    latency: self.links.nvlink_latency,
                });
            }
        }
        TopoGraph {
            num_gpus: n,
            num_nodes: n,
            links,
        }
    }

    fn diameter_bound(&self) -> usize {
        usize::from(self.num_gpus > 1)
    }
}

/// Switched fabric: GPUs uplink to `ceil(n / radix)` NvSwitch planes;
/// planes are fully interconnected by trunk links of the same class.
#[derive(Clone, Copy, Debug)]
pub struct NvSwitch {
    num_gpus: usize,
    topo: TopologyConfig,
}

impl NvSwitch {
    /// Builds the descriptor for `num_gpus` GPUs with `topo`'s switch
    /// radix, bandwidth and latency.
    pub fn new(num_gpus: usize, topo: TopologyConfig) -> Self {
        NvSwitch { num_gpus, topo }
    }

    fn num_switches(&self) -> usize {
        self.num_gpus.div_ceil(self.topo.switch_radix).max(1)
    }
}

impl Topology for NvSwitch {
    fn name(&self) -> &'static str {
        TopologyKind::NvSwitch.name()
    }

    fn num_gpus(&self) -> usize {
        self.num_gpus
    }

    fn graph(&self) -> TopoGraph {
        let n = self.num_gpus;
        let switches = self.num_switches();
        let mut links = Vec::new();
        for g in 0..n {
            links.push(LinkSpec {
                a: g,
                b: n + g / self.topo.switch_radix,
                class: HopClass::Switch,
                bytes_per_cycle: self.topo.switch_bytes_per_cycle,
                latency: self.topo.switch_latency,
            });
        }
        for lo in 0..switches {
            for hi in (lo + 1)..switches {
                links.push(LinkSpec {
                    a: n + lo,
                    b: n + hi,
                    class: HopClass::Switch,
                    bytes_per_cycle: self.topo.switch_bytes_per_cycle,
                    latency: self.topo.switch_latency,
                });
            }
        }
        TopoGraph {
            num_gpus: n,
            num_nodes: n + switches,
            links,
        }
    }

    fn diameter_bound(&self) -> usize {
        match (self.num_gpus, self.num_switches()) {
            (0 | 1, _) => 0,
            (_, 1) => 2, // gpu -> switch -> gpu
            (_, _) => 3, // gpu -> switch -> switch -> gpu
        }
    }
}

/// Neighbour ring: GPU `i` links to `(i + 1) % n`; routes take the shorter
/// arc.
#[derive(Clone, Copy, Debug)]
pub struct Ring {
    num_gpus: usize,
    links: LinkConfig,
}

impl Ring {
    /// Builds the descriptor for `num_gpus` GPUs.
    pub fn new(num_gpus: usize, links: LinkConfig) -> Self {
        Ring { num_gpus, links }
    }
}

impl Topology for Ring {
    fn name(&self) -> &'static str {
        TopologyKind::Ring.name()
    }

    fn num_gpus(&self) -> usize {
        self.num_gpus
    }

    fn graph(&self) -> TopoGraph {
        let n = self.num_gpus;
        let mut links = Vec::new();
        for i in 0..n.saturating_sub(1) {
            links.push(LinkSpec {
                a: i,
                b: i + 1,
                class: HopClass::Nvlink,
                bytes_per_cycle: self.links.nvlink_bytes_per_cycle,
                latency: self.links.nvlink_latency,
            });
        }
        // Close the ring (n == 2 is a single shared link, not two).
        if n > 2 {
            links.push(LinkSpec {
                a: 0,
                b: n - 1,
                class: HopClass::Nvlink,
                bytes_per_cycle: self.links.nvlink_bytes_per_cycle,
                latency: self.links.nvlink_latency,
            });
        }
        TopoGraph {
            num_gpus: n,
            num_nodes: n,
            links,
        }
    }

    fn diameter_bound(&self) -> usize {
        self.num_gpus / 2
    }
}

/// Near-square factorization `n = rows * cols` with `rows <= cols`,
/// maximizing `rows` (16 → 4×4, 8 → 2×4, 7 → 1×7).
pub fn mesh_dims(n: usize) -> (usize, usize) {
    if n == 0 {
        return (0, 0);
    }
    let mut rows = 1;
    let mut r = 1;
    while r * r <= n {
        if n.is_multiple_of(r) {
            rows = r;
        }
        r += 1;
    }
    (rows, n / rows)
}

/// 2-D mesh without wraparound over the near-square factorization of the
/// GPU count; prime counts degrade to a line.
#[derive(Clone, Copy, Debug)]
pub struct Mesh2d {
    num_gpus: usize,
    links: LinkConfig,
}

impl Mesh2d {
    /// Builds the descriptor for `num_gpus` GPUs.
    pub fn new(num_gpus: usize, links: LinkConfig) -> Self {
        Mesh2d { num_gpus, links }
    }
}

impl Topology for Mesh2d {
    fn name(&self) -> &'static str {
        TopologyKind::Mesh2d.name()
    }

    fn num_gpus(&self) -> usize {
        self.num_gpus
    }

    fn graph(&self) -> TopoGraph {
        let n = self.num_gpus;
        let (rows, cols) = mesh_dims(n);
        let id = |r: usize, c: usize| r * cols + c;
        let mut links = Vec::new();
        let spec = |a: usize, b: usize| LinkSpec {
            a,
            b,
            class: HopClass::Nvlink,
            bytes_per_cycle: self.links.nvlink_bytes_per_cycle,
            latency: self.links.nvlink_latency,
        };
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    links.push(spec(id(r, c), id(r, c + 1)));
                }
                if r + 1 < rows {
                    links.push(spec(id(r, c), id(r + 1, c)));
                }
            }
        }
        TopoGraph {
            num_gpus: n,
            num_nodes: n,
            links,
        }
    }

    fn diameter_bound(&self) -> usize {
        let (rows, cols) = mesh_dims(self.num_gpus);
        rows.saturating_sub(1) + cols.saturating_sub(1)
    }
}

/// Two-node hierarchical fabric: all-to-all NVLink inside each half, each
/// GPU uplinked to its node router, and one inter-node bottleneck link
/// between the two routers.
#[derive(Clone, Copy, Debug)]
pub struct Hierarchical {
    num_gpus: usize,
    links: LinkConfig,
    topo: TopologyConfig,
}

impl Hierarchical {
    /// Builds the descriptor; GPUs `0..ceil(n/2)` form node 0.
    pub fn new(num_gpus: usize, links: LinkConfig, topo: TopologyConfig) -> Self {
        Hierarchical {
            num_gpus,
            links,
            topo,
        }
    }

    fn split(&self) -> usize {
        self.num_gpus.div_ceil(2)
    }
}

impl Topology for Hierarchical {
    fn name(&self) -> &'static str {
        TopologyKind::Hierarchical.name()
    }

    fn num_gpus(&self) -> usize {
        self.num_gpus
    }

    fn graph(&self) -> TopoGraph {
        let n = self.num_gpus;
        let split = self.split();
        let router = |node: usize| n + node;
        let mut links = Vec::new();
        // Intra-node all-to-all NVLink.
        for lo in 0..n {
            for hi in (lo + 1)..n {
                if (lo < split) == (hi < split) {
                    links.push(LinkSpec {
                        a: lo,
                        b: hi,
                        class: HopClass::Nvlink,
                        bytes_per_cycle: self.links.nvlink_bytes_per_cycle,
                        latency: self.links.nvlink_latency,
                    });
                }
            }
        }
        // GPU → node-router uplinks (only crossed by inter-node traffic).
        for g in 0..n {
            links.push(LinkSpec {
                a: g,
                b: router(usize::from(g >= split)),
                class: HopClass::Switch,
                bytes_per_cycle: self.topo.switch_bytes_per_cycle,
                latency: self.topo.switch_latency,
            });
        }
        // The inter-node bottleneck.
        links.push(LinkSpec {
            a: router(0),
            b: router(1),
            class: HopClass::InterNode,
            bytes_per_cycle: self.topo.inter_node_bytes_per_cycle,
            latency: self.topo.inter_node_latency,
        });
        TopoGraph {
            num_gpus: n,
            num_nodes: n + 2,
            links,
        }
    }

    fn diameter_bound(&self) -> usize {
        match self.num_gpus {
            0 | 1 => 0,
            _ => 3, // gpu -> router -> router -> gpu
        }
    }
}

/// Instantiates the descriptor named by `topo.kind`.
pub fn build_topology(
    num_gpus: usize,
    links: LinkConfig,
    topo: TopologyConfig,
) -> Box<dyn Topology> {
    match topo.kind {
        TopologyKind::AllToAll => Box::new(AllToAll::new(num_gpus, links)),
        TopologyKind::NvSwitch => Box::new(NvSwitch::new(num_gpus, topo)),
        TopologyKind::Ring => Box::new(Ring::new(num_gpus, links)),
        TopologyKind::Mesh2d => Box::new(Mesh2d::new(num_gpus, links)),
        TopologyKind::Hierarchical => Box::new(Hierarchical::new(num_gpus, links, topo)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(kind: TopologyKind, n: usize) -> TopoGraph {
        build_topology(n, LinkConfig::default(), TopologyConfig::of(kind)).graph()
    }

    #[test]
    fn all_to_all_matches_legacy_pair_layout() {
        let g = graph_of(TopologyKind::AllToAll, 4);
        assert_eq!(g.links.len(), 6);
        assert_eq!(g.num_nodes, 4);
        // Pair (lo, hi) must sit at the legacy triangular index.
        let legacy = |lo: usize, hi: usize| lo * 4 - lo * (lo + 1) / 2 + (hi - lo - 1);
        for (id, l) in g.links.iter().enumerate() {
            assert_eq!(legacy(l.a, l.b), id);
            assert_eq!(l.class, HopClass::Nvlink);
        }
    }

    #[test]
    fn min_latency_is_the_cheapest_wire_of_any_class() {
        let links = LinkConfig::default();
        // All-to-all has only NVLinks, so the minimum is the NVLink latency.
        let g = graph_of(TopologyKind::AllToAll, 4);
        assert_eq!(g.min_latency(), Some(links.nvlink_latency));
        // Switched fabrics bottom out at the cheaper uplink hop.
        let g = graph_of(TopologyKind::NvSwitch, 8);
        let expected = g.links.iter().map(|l| l.latency).min().unwrap();
        assert_eq!(g.min_latency(), Some(expected));
        // A single GPU has no wires at all.
        assert_eq!(graph_of(TopologyKind::AllToAll, 1).min_latency(), None);
    }

    #[test]
    fn single_gpu_topologies_have_no_gpu_pair_links() {
        for kind in TopologyKind::ALL {
            let g = graph_of(kind, 1);
            assert!(
                g.links.iter().all(|l| l.a >= 1 || l.b >= 1),
                "{kind:?} has a GPU-pair link at n=1"
            );
        }
        assert!(graph_of(TopologyKind::AllToAll, 1).links.is_empty());
        assert!(graph_of(TopologyKind::Ring, 1).links.is_empty());
    }

    #[test]
    fn ring_of_two_is_one_shared_link() {
        let g = graph_of(TopologyKind::Ring, 2);
        assert_eq!(g.links.len(), 1);
        let g = graph_of(TopologyKind::Ring, 8);
        assert_eq!(g.links.len(), 8);
    }

    #[test]
    fn mesh_dims_near_square() {
        assert_eq!(mesh_dims(16), (4, 4));
        assert_eq!(mesh_dims(8), (2, 4));
        assert_eq!(mesh_dims(7), (1, 7));
        assert_eq!(mesh_dims(12), (3, 4));
        assert_eq!(mesh_dims(1), (1, 1));
    }

    #[test]
    fn nvswitch_splits_planes_by_radix() {
        let mut topo = TopologyConfig::of(TopologyKind::NvSwitch);
        topo.switch_radix = 4;
        let g = build_topology(8, LinkConfig::default(), topo).graph();
        // 8 uplinks + 1 trunk between the two planes.
        assert_eq!(g.num_nodes, 10);
        assert_eq!(g.links.len(), 9);
        assert!(g.links.iter().all(|l| l.class == HopClass::Switch));
    }

    #[test]
    fn hierarchical_has_exactly_one_inter_node_link() {
        let g = graph_of(TopologyKind::Hierarchical, 8);
        let bottlenecks: Vec<&LinkSpec> =
            g.links.iter().filter(|l| l.class == HopClass::InterNode).collect();
        assert_eq!(bottlenecks.len(), 1);
        // Intra-node NVLink pairs: 2 * C(4,2) = 12; uplinks: 8.
        assert_eq!(g.links.len(), 12 + 8 + 1);
    }
}
