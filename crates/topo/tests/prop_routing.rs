//! Property tests for the routing invariants every topology must uphold:
//! routes are valid walks between their endpoints, symmetric between
//! directions, and never longer than the topology's diameter bound.

use proptest::prelude::*;

use grit_sim::{LinkConfig, TopologyConfig, TopologyKind};
use grit_topo::{build_topology, Routing, TopoGraph, Topology};

fn kind_strategy() -> impl Strategy<Value = TopologyKind> {
    (0usize..TopologyKind::ALL.len()).prop_map(|i| TopologyKind::ALL[i])
}

fn built(kind: TopologyKind, n: usize) -> (TopoGraph, Box<dyn Topology>) {
    let t = build_topology(n, LinkConfig::default(), TopologyConfig::of(kind));
    (t.graph(), t)
}

/// Walks `path` from `start`, requiring each link to continue where the
/// previous one ended; returns the final node.
fn walk(graph: &TopoGraph, start: usize, path: &[u32]) -> usize {
    let mut at = start;
    for &id in path {
        let l = &graph.links[id as usize];
        at = if l.a == at {
            l.b
        } else {
            assert_eq!(l.b, at, "link {id} does not touch node {at}");
            l.a
        };
    }
    at
}

proptest! {
    #[test]
    fn routes_are_valid_walks_between_their_endpoints(
        kind in kind_strategy(),
        n in 1usize..=16,
    ) {
        let (graph, _) = built(kind, n);
        let routing = Routing::compute(&graph);
        for a in 0..n {
            for b in (a + 1)..n {
                let path = routing.route(a, b);
                prop_assert_eq!(walk(&graph, a, path), b, "{:?} n={} pair ({a},{b})", kind, n);
            }
        }
    }

    #[test]
    fn routes_are_symmetric_between_directions(
        kind in kind_strategy(),
        n in 2usize..=16,
        x in 0usize..16,
        y in 0usize..16,
    ) {
        prop_assume!(x < n && y < n && x != y);
        let (graph, _) = built(kind, n);
        let routing = Routing::compute(&graph);
        // Both directions resolve to the same stored path...
        prop_assert_eq!(routing.route(x, y), routing.route(y, x));
        // ...and walking it reversed from the higher endpoint reaches the
        // lower one over the very same wires.
        let (lo, hi) = (x.min(y), x.max(y));
        let reversed: Vec<u32> = routing.route(lo, hi).iter().rev().copied().collect();
        prop_assert_eq!(walk(&graph, hi, &reversed), lo);
    }

    #[test]
    fn hop_counts_stay_within_the_diameter_bound(
        kind in kind_strategy(),
        n in 1usize..=16,
    ) {
        let (graph, topo) = built(kind, n);
        let routing = Routing::compute(&graph);
        for a in 0..n {
            for b in (a + 1)..n {
                prop_assert!(
                    routing.hops(a, b) >= 1,
                    "{:?} n={}: distinct GPUs need at least one hop", kind, n
                );
                prop_assert!(
                    routing.hops(a, b) <= topo.diameter_bound(),
                    "{:?} n={} pair ({a},{b}): {} hops > bound {}",
                    kind, n, routing.hops(a, b), topo.diameter_bound()
                );
            }
        }
        prop_assert_eq!(
            routing.diameter(),
            (0..n)
                .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
                .map(|(a, b)| routing.hops(a, b))
                .max()
                .unwrap_or(0)
        );
    }

    #[test]
    fn pair_index_is_a_bijection_onto_the_triangle(n in 2usize..=16) {
        let pairs = n * (n - 1) / 2;
        let mut seen = vec![false; pairs];
        for a in 0..n {
            for b in (a + 1)..n {
                let i = Routing::pair_index(n, a, b);
                prop_assert_eq!(i, Routing::pair_index(n, b, a), "order must not matter");
                prop_assert!(i < pairs);
                prop_assert!(!seen[i], "index {i} hit twice");
                seen[i] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }
}
