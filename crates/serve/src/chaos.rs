//! A deterministic fault-injecting TCP proxy for chaos-testing the
//! campaign service.
//!
//! [`ChaosProxy`] listens on an ephemeral localhost port and forwards
//! each accepted connection to a target server, applying one
//! [`ChaosFault`] from a fixed per-connection schedule. Faults are
//! keyed on exact byte/line counts — never timers or randomness — so a
//! chaos scenario replays identically on every run and at any worker
//! count: the same bytes always flow before the same fault fires.
//!
//! This is the service-layer twin of `grit-inject`'s hardware fault
//! schedule (PR 5): the simulated machine and the machinery serving it
//! are both exercised under deterministic, reproducible failure.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// One connection's scripted misbehaviour. Request faults act on the
/// client→server byte stream, response faults on server→client; the
/// untouched direction keeps forwarding transparently.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
#[non_exhaustive]
pub enum ChaosFault {
    /// Forward everything faithfully.
    #[default]
    Transparent,
    /// Abruptly sever the connection (both directions, no FIN
    /// courtesy) once `n` request bytes have been forwarded — a crash
    /// or network partition mid-campaign.
    CloseAfterRequestBytes(usize),
    /// Forward exactly `n` request bytes — ending mid-line when `n`
    /// says so — then half-close the server-bound direction, so the
    /// server reads a truncated final line followed by EOF. Responses
    /// keep flowing: the client still sees the server's reaction.
    TruncateRequestAfterBytes(usize),
    /// Forward `after_bytes` response bytes, then stall the
    /// server→client direction for `millis` before resuming — a
    /// reader that stops draining for a while.
    StallResponsesAfterBytes {
        /// Response bytes forwarded before the stall.
        after_bytes: usize,
        /// Stall length in milliseconds.
        millis: u64,
    },
    /// Deliver every complete response line twice. Exercises client
    /// idempotence: duplicated `result` lines must not corrupt a
    /// campaign.
    DuplicateResponseLines,
}

/// A fault-injecting localhost TCP proxy. The `i`-th accepted
/// connection gets the `i`-th fault of the schedule; connections past
/// the end are forwarded transparently.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts the proxy in front of `target` with a per-connection
    /// fault schedule.
    ///
    /// # Errors
    ///
    /// Propagates listener-setup failures.
    pub fn start(target: SocketAddr, schedule: Vec<ChaosFault>) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let plan = Arc::new(Mutex::new(schedule.into_iter()));
        let accept_thread = thread::spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(client) = conn else { continue };
                let fault = plan.lock().unwrap().next().unwrap_or_default();
                let Ok(server) = TcpStream::connect(target) else {
                    // Target gone (e.g. between kill and restart in a
                    // chaos scenario): drop the client, which sees a
                    // reset/EOF and retries.
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                };
                spawn_pumps(client, server, fault);
            }
        });
        Ok(ChaosProxy {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listening address — point clients here.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop so it observes the flag. Pump threads
        // are detached; they exit when their sockets close.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Wires up the two forwarding threads for one proxied connection.
fn spawn_pumps(client: TcpStream, server: TcpStream, fault: ChaosFault) {
    let (Ok(client2), Ok(server2)) = (client.try_clone(), server.try_clone()) else {
        return;
    };
    let up_fault = fault.clone();
    // client → server
    thread::spawn(move || pump_requests(client, server, &up_fault));
    // server → client
    thread::spawn(move || pump_responses(server2, client2, &fault));
}

/// Forwards `limit` bytes from `from` into `to`, honoring partial
/// chunks exactly at the boundary. Returns `false` on EOF/error before
/// the limit.
fn copy_exact(from: &mut TcpStream, to: &mut TcpStream, limit: usize) -> bool {
    let mut remaining = limit;
    let mut chunk = [0u8; 4096];
    while remaining > 0 {
        let want = remaining.min(chunk.len());
        match from.read(&mut chunk[..want]) {
            Ok(0) => return false,
            Ok(n) => {
                if to.write_all(&chunk[..n]).is_err() {
                    return false;
                }
                remaining -= n;
            }
            Err(_) => return false,
        }
    }
    true
}

/// Forwards until EOF/error with no byte limit.
fn copy_all(from: &mut TcpStream, to: &mut TcpStream) {
    let mut chunk = [0u8; 4096];
    loop {
        match from.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&chunk[..n]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = to.shutdown(Shutdown::Write);
}

fn pump_requests(mut client: TcpStream, mut server: TcpStream, fault: &ChaosFault) {
    match fault {
        ChaosFault::CloseAfterRequestBytes(n) => {
            let _ = copy_exact(&mut client, &mut server, *n);
            // Abrupt: both sockets, both directions — the response pump
            // dies with its socket.
            let _ = server.shutdown(Shutdown::Both);
            let _ = client.shutdown(Shutdown::Both);
        }
        ChaosFault::TruncateRequestAfterBytes(n) => {
            let _ = copy_exact(&mut client, &mut server, *n);
            // Half-close only: the server sees a torn final line + EOF,
            // and its answers still reach the client.
            let _ = server.shutdown(Shutdown::Write);
        }
        _ => copy_all(&mut client, &mut server),
    }
}

fn pump_responses(mut server: TcpStream, mut client: TcpStream, fault: &ChaosFault) {
    match fault {
        ChaosFault::StallResponsesAfterBytes {
            after_bytes,
            millis,
        } => {
            if copy_exact(&mut server, &mut client, *after_bytes) {
                thread::sleep(Duration::from_millis(*millis));
                copy_all(&mut server, &mut client);
            } else {
                let _ = client.shutdown(Shutdown::Write);
            }
        }
        ChaosFault::DuplicateResponseLines => {
            // Line-buffered forwarding: each complete line is written
            // twice. A final partial line (no newline before EOF) is
            // forwarded once, verbatim.
            let mut buf = Vec::new();
            let mut chunk = [0u8; 4096];
            loop {
                match server.read(&mut chunk) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        buf.extend_from_slice(&chunk[..n]);
                        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                            let line: Vec<u8> = buf.drain(..=pos).collect();
                            if client.write_all(&line).is_err() || client.write_all(&line).is_err()
                            {
                                return;
                            }
                        }
                    }
                }
            }
            let _ = client.write_all(&buf);
            let _ = client.shutdown(Shutdown::Write);
        }
        _ => copy_all(&mut server, &mut client),
    }
}
