//! A small blocking client for the campaign server, used by
//! `repro submit` and the integration tests.

use std::fmt;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::time::Duration;

use grit_sim::RunSpec;
use grit_trace::Json;

use crate::wire::{CellResult, Request, Response};

/// Default socket read timeout: long enough for a deep queue of slow
/// cells ahead of ours, short enough that a wedged server is an error,
/// not a hang.
pub const DEFAULT_CLIENT_READ_TIMEOUT_MS: u64 = 120_000;

/// Default socket write timeout.
pub const DEFAULT_CLIENT_WRITE_TIMEOUT_MS: u64 = 10_000;

/// Why a client call failed. Timeouts are distinguished so retry loops
/// can treat a silent server differently from a refused connection or a
/// protocol violation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ClientError {
    /// A socket read or write exceeded its timeout: the server is
    /// reachable but silent (wedged, overloaded, or partitioned).
    Timeout(String),
    /// Any other socket failure (refused, reset, broken pipe, ...).
    Io(String),
    /// The peer answered with something that is not `grit-serve/v1`.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Timeout(m) => write!(f, "timeout: {m}"),
            ClientError::Io(m) => write!(f, "io: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ClientError> for String {
    fn from(e: ClientError) -> String {
        e.to_string()
    }
}

impl ClientError {
    fn io(context: &str, e: &std::io::Error) -> ClientError {
        if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
            ClientError::Timeout(format!("{context}: {e}"))
        } else {
            ClientError::Io(format!("{context}: {e}"))
        }
    }
}

/// Everything a campaign streamed back, collected by
/// [`ServeClient::finish`].
#[derive(Clone, PartialEq, Debug, Default)]
#[non_exhaustive]
pub struct CampaignOutcome {
    /// `result` lines in arrival order — which the server guarantees is
    /// this client's submission order.
    pub results: Vec<CellResult>,
    /// `(id, event)` pairs from `trace` lines, in arrival order.
    pub traces: Vec<(u64, Json)>,
    /// Protocol-level `error` lines (not per-cell failures, which land
    /// in [`CampaignOutcome::results`] with a non-`ok` status).
    pub errors: Vec<String>,
    /// `(id, retry_after_ms)` pairs from `busy` lines: submissions the
    /// server's admission control rejected. These ids have no result
    /// and should be resubmitted after backing off.
    pub busy: Vec<(u64, u64)>,
    /// The `done` tally sent by the server, when the connection closed
    /// cleanly.
    pub done_results: Option<u64>,
}

/// A blocking connection to a campaign server.
pub struct ServeClient {
    write: TcpStream,
    read: BufReader<TcpStream>,
    /// Server version from the `hello` line.
    pub server_version: String,
}

impl ServeClient {
    /// Connects with the default timeouts and consumes the server's
    /// `hello` line.
    ///
    /// # Errors
    ///
    /// Connection failures and protocol violations.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<ServeClient, ClientError> {
        ServeClient::connect_with(
            addr,
            Duration::from_millis(DEFAULT_CLIENT_READ_TIMEOUT_MS),
            Duration::from_millis(DEFAULT_CLIENT_WRITE_TIMEOUT_MS),
        )
    }

    /// Connects with explicit socket timeouts (`Duration::ZERO`
    /// disables one), sets `TCP_NODELAY`, and consumes the server's
    /// `hello` line.
    ///
    /// # Errors
    ///
    /// Connection failures and protocol violations.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        read_timeout: Duration,
        write_timeout: Duration,
    ) -> Result<ServeClient, ClientError> {
        let write = TcpStream::connect(addr).map_err(|e| ClientError::io("connect", &e))?;
        let _ = write.set_nodelay(true);
        let _ = write.set_read_timeout((!read_timeout.is_zero()).then_some(read_timeout));
        let _ = write.set_write_timeout((!write_timeout.is_zero()).then_some(write_timeout));
        let read_half = write.try_clone().map_err(|e| ClientError::io("clone", &e))?;
        let mut read = BufReader::new(read_half);
        let mut line = String::new();
        read.read_line(&mut line).map_err(|e| ClientError::io("hello", &e))?;
        let hello = Json::parse(&line)
            .map_err(|e| ClientError::Protocol(format!("hello: bad JSON {e:?}")))
            .and_then(|v| Response::from_json(&v).map_err(ClientError::Protocol))?;
        let Response::Hello { version } = hello else {
            return Err(ClientError::Protocol(format!(
                "expected hello, got {hello:?}"
            )));
        };
        Ok(ServeClient {
            write,
            read,
            server_version: version,
        })
    }

    fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        let line = format!("{}\n", req.to_json());
        self.write.write_all(line.as_bytes()).map_err(|e| ClientError::io("send", &e))
    }

    /// Submits one cell under a client-chosen id.
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn submit(&mut self, id: u64, spec: &RunSpec) -> Result<(), ClientError> {
        self.send(&Request::Submit {
            id,
            spec: spec.clone(),
        })
    }

    /// Round-trips a ping. Any buffered `accepted`/`progress` lines
    /// ahead of the pong are skipped.
    ///
    /// # Errors
    ///
    /// Socket failures or an unexpected end of stream.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Ping)?;
        loop {
            match self.next_response()? {
                Some(Response::Pong) => return Ok(()),
                Some(_) => continue,
                None => return Err(ClientError::Protocol("server closed before pong".into())),
            }
        }
    }

    /// Asks the server to exit once all outstanding work (from every
    /// client) is answered.
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Shutdown)
    }

    /// Reads one response line, or `None` at end of stream.
    ///
    /// # Errors
    ///
    /// Socket read failures (including [`ClientError::Timeout`] when
    /// the server goes silent past the read timeout) or unparseable
    /// lines.
    pub fn next_response(&mut self) -> Result<Option<Response>, ClientError> {
        let mut line = String::new();
        let n = self.read.read_line(&mut line).map_err(|e| ClientError::io("recv", &e))?;
        if n == 0 {
            return Ok(None);
        }
        if line.trim().is_empty() {
            return self.next_response();
        }
        Json::parse(&line)
            .map_err(|e| ClientError::Protocol(format!("recv: bad JSON {e:?}")))
            .and_then(|v| Response::from_json(&v).map_err(ClientError::Protocol))
            .map(Some)
    }

    /// Half-closes the write side (telling the server no more requests
    /// are coming) and drains the stream until `done`/EOF.
    ///
    /// # Errors
    ///
    /// Socket failures while draining.
    pub fn finish(mut self) -> Result<CampaignOutcome, ClientError> {
        let _ = self.write.shutdown(Shutdown::Write);
        let mut outcome = CampaignOutcome::default();
        while let Some(resp) = self.next_response()? {
            match resp {
                Response::Result(r) => outcome.results.push(r),
                Response::Trace { id, event } => outcome.traces.push((id, event)),
                Response::Busy { id, retry_after_ms } => {
                    outcome.busy.push((id, retry_after_ms));
                }
                Response::Error { id, message } => outcome.errors.push(match id {
                    Some(id) => format!("cell {id}: {message}"),
                    None => message,
                }),
                Response::Done { results } => {
                    outcome.done_results = Some(results);
                    break;
                }
                Response::Hello { .. }
                | Response::Accepted { .. }
                | Response::Progress { .. }
                | Response::Pong => {}
            }
        }
        Ok(outcome)
    }
}
