//! A small blocking client for the campaign server, used by
//! `repro submit` and the integration tests.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};

use grit_sim::RunSpec;
use grit_trace::Json;

use crate::wire::{CellResult, Request, Response};

/// Everything a campaign streamed back, collected by
/// [`ServeClient::finish`].
#[derive(Clone, PartialEq, Debug, Default)]
#[non_exhaustive]
pub struct CampaignOutcome {
    /// `result` lines in arrival order — which the server guarantees is
    /// this client's submission order.
    pub results: Vec<CellResult>,
    /// `(id, event)` pairs from `trace` lines, in arrival order.
    pub traces: Vec<(u64, Json)>,
    /// Protocol-level `error` lines (not per-cell failures, which land
    /// in [`CampaignOutcome::results`] with a non-`ok` status).
    pub errors: Vec<String>,
    /// The `done` tally sent by the server, when the connection closed
    /// cleanly.
    pub done_results: Option<u64>,
}

/// A blocking connection to a campaign server.
pub struct ServeClient {
    write: TcpStream,
    read: BufReader<TcpStream>,
    /// Server version from the `hello` line.
    pub server_version: String,
}

impl ServeClient {
    /// Connects and consumes the server's `hello` line.
    ///
    /// # Errors
    ///
    /// Connection failures and protocol violations, as a message.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<ServeClient, String> {
        let write = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        let read_half = write.try_clone().map_err(|e| format!("clone: {e}"))?;
        let mut read = BufReader::new(read_half);
        let mut line = String::new();
        read.read_line(&mut line).map_err(|e| format!("hello: {e}"))?;
        let hello = Json::parse(&line)
            .map_err(|e| format!("hello: bad JSON {e:?}"))
            .and_then(|v| Response::from_json(&v))?;
        let Response::Hello { version } = hello else {
            return Err(format!("expected hello, got {hello:?}"));
        };
        Ok(ServeClient {
            write,
            read,
            server_version: version,
        })
    }

    fn send(&mut self, req: &Request) -> Result<(), String> {
        let line = format!("{}\n", req.to_json());
        self.write.write_all(line.as_bytes()).map_err(|e| format!("send: {e}"))
    }

    /// Submits one cell under a client-chosen id.
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn submit(&mut self, id: u64, spec: &RunSpec) -> Result<(), String> {
        self.send(&Request::Submit {
            id,
            spec: spec.clone(),
        })
    }

    /// Round-trips a ping. Any buffered `accepted`/`progress` lines
    /// ahead of the pong are skipped.
    ///
    /// # Errors
    ///
    /// Socket failures or an unexpected end of stream.
    pub fn ping(&mut self) -> Result<(), String> {
        self.send(&Request::Ping)?;
        loop {
            match self.next_response()? {
                Some(Response::Pong) => return Ok(()),
                Some(_) => continue,
                None => return Err("server closed before pong".into()),
            }
        }
    }

    /// Asks the server to exit once all outstanding work (from every
    /// client) is answered.
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn shutdown_server(&mut self) -> Result<(), String> {
        self.send(&Request::Shutdown)
    }

    /// Reads one response line, or `None` at end of stream.
    ///
    /// # Errors
    ///
    /// Socket read failures or unparseable lines.
    pub fn next_response(&mut self) -> Result<Option<Response>, String> {
        let mut line = String::new();
        let n = self.read.read_line(&mut line).map_err(|e| format!("recv: {e}"))?;
        if n == 0 {
            return Ok(None);
        }
        if line.trim().is_empty() {
            return self.next_response();
        }
        Json::parse(&line)
            .map_err(|e| format!("recv: bad JSON {e:?}"))
            .and_then(|v| Response::from_json(&v))
            .map(Some)
    }

    /// Half-closes the write side (telling the server no more requests
    /// are coming) and drains the stream until `done`/EOF.
    ///
    /// # Errors
    ///
    /// Socket failures while draining.
    pub fn finish(mut self) -> Result<CampaignOutcome, String> {
        let _ = self.write.shutdown(Shutdown::Write);
        let mut outcome = CampaignOutcome::default();
        while let Some(resp) = self.next_response()? {
            match resp {
                Response::Result(r) => outcome.results.push(r),
                Response::Trace { id, event } => outcome.traces.push((id, event)),
                Response::Error { id, message } => outcome.errors.push(match id {
                    Some(id) => format!("cell {id}: {message}"),
                    None => message,
                }),
                Response::Done { results } => {
                    outcome.done_results = Some(results);
                    break;
                }
                Response::Hello { .. }
                | Response::Accepted { .. }
                | Response::Progress { .. }
                | Response::Pong => {}
            }
        }
        Ok(outcome)
    }
}
