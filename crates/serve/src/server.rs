//! The campaign server: accept loop, shared worker pool, and the
//! per-connection ordered sink.
//!
//! Each connection gets a reader thread that parses request lines and a
//! sink that buffers response lines per submission. Cells from *all*
//! connections funnel into one process-wide queue drained by `jobs`
//! worker threads, so every client shares the same warm process (and,
//! through the runner, the same workload cache and result store).
//! Workers finish cells in arbitrary order; the sink releases each
//! cell's `[trace..., result]` group only when every earlier submission
//! of the *same connection* has been released, so a client always reads
//! its results in declaration order, at any `jobs`.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

use grit_sim::RunSpec;
use grit_trace::Json;

use crate::wire::{CellResult, Request, Response};

/// A successfully executed cell, as produced by the [`SpecRunner`].
#[derive(Clone, PartialEq, Debug, Default)]
#[non_exhaustive]
pub struct SpecResult {
    /// The result came out of the shared store instead of a fresh run.
    pub store_hit: bool,
    /// Simulated cycles to completion.
    pub total_cycles: u64,
    /// Total memory accesses replayed.
    pub accesses: u64,
    /// GPU-local faults.
    pub local_faults: u64,
    /// Page migrations.
    pub migrations: u64,
    /// Wall-clock simulation seconds.
    pub sim_seconds: f64,
    /// Serialized trace events (one JSON object per entry) when the
    /// spec asked for tracing.
    pub trace_lines: Vec<String>,
}

/// A cell that did not complete.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub struct SpecFailure {
    /// Machine-readable status (`"invalid-spec"`, `"panicked"`,
    /// `"timed-out"`, ...).
    pub status: String,
    /// Human-readable detail.
    pub message: String,
}

impl SpecFailure {
    /// Builds a failure with the given status and message.
    pub fn new(status: impl Into<String>, message: impl Into<String>) -> Self {
        SpecFailure {
            status: status.into(),
            message: message.into(),
        }
    }
}

/// Executes one [`RunSpec`]. The callback is invoked concurrently from
/// the worker pool, so it must be thread-safe; the `grit` crate's
/// batch engine (which already serializes store access internally) is
/// the intended implementation.
pub type SpecRunner = Arc<dyn Fn(&RunSpec) -> Result<SpecResult, SpecFailure> + Send + Sync>;

/// Server configuration. Construct with [`ServeOptions::new`] and the
/// builder methods; the struct is non-exhaustive so new knobs can be
/// added without breaking callers.
#[derive(Clone, Debug, Default)]
#[non_exhaustive]
pub struct ServeOptions {
    /// TCP port to bind on 127.0.0.1; `0` picks an ephemeral port.
    pub port: u16,
    /// When set, the bound address is written here (for scripts that
    /// started the server with port 0).
    pub port_file: Option<PathBuf>,
    /// Worker threads; `0` resolves to available parallelism.
    pub jobs: usize,
}

impl ServeOptions {
    /// Default options: ephemeral port, auto worker count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the TCP port (`0` = ephemeral).
    pub fn port(mut self, port: u16) -> Self {
        self.port = port;
        self
    }

    /// Writes the bound address to `path` once listening.
    pub fn port_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.port_file = Some(path.into());
        self
    }

    /// Sets the worker-thread count (`0` = auto).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }
}

/// What a finished server did, for logs and reports.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
#[non_exhaustive]
pub struct ServeSummary {
    /// Result lines sent across all connections.
    pub cells: u64,
    /// How many of those were store hits.
    pub store_hits: u64,
    /// How many ended in a non-`ok` status.
    pub errors: u64,
    /// Connections accepted.
    pub connections: u64,
}

/// One queued cell: where it came from and where its lines go.
struct Job {
    seq: u64,
    id: u64,
    spec: RunSpec,
    sink: Arc<OrderedSink>,
}

/// Per-connection ordered delivery: buffers each submission's response
/// lines under its sequence number and flushes groups strictly in
/// sequence order. `Progress` lines bypass the buffer (they are
/// documented as out-of-band). One mutex guards both the buffer and the
/// socket: a group only counts as flushed once its bytes hit the
/// stream, so `done` can never overtake the final result.
struct OrderedSink {
    state: Mutex<SinkState>,
    cv: Condvar,
}

struct SinkState {
    stream: TcpStream,
    next_flush: u64,
    pending: HashMap<u64, Vec<String>>,
    flushed: u64,
    dead: bool,
}

impl SinkState {
    fn write(&mut self, line: &str) {
        if self.stream.write_all(line.as_bytes()).is_err() {
            self.dead = true;
        }
    }
}

impl OrderedSink {
    fn new(stream: TcpStream) -> Self {
        OrderedSink {
            state: Mutex::new(SinkState {
                stream,
                next_flush: 0,
                pending: HashMap::new(),
                flushed: 0,
                dead: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Sends one line immediately, outside the ordering buffer.
    fn send_direct(&self, resp: &Response) {
        let line = format!("{}\n", resp.to_json());
        self.state.lock().unwrap().write(&line);
    }

    /// Queues a finished submission's lines and flushes every group
    /// that is now next in sequence.
    fn complete(&self, seq: u64, lines: Vec<String>) {
        let mut st = self.state.lock().unwrap();
        st.pending.insert(seq, lines);
        loop {
            let next = st.next_flush;
            let Some(group) = st.pending.remove(&next) else {
                break;
            };
            for line in &group {
                st.write(line);
            }
            st.next_flush += 1;
            st.flushed += 1;
        }
        let _ = st.stream.flush();
        drop(st);
        self.cv.notify_all();
    }

    /// Blocks until `count` submission groups have been flushed (or the
    /// connection died).
    fn wait_flushed(&self, count: u64) {
        let mut st = self.state.lock().unwrap();
        while st.flushed < count && !st.dead {
            st = self.cv.wait(st).unwrap();
        }
    }
}

struct Shared {
    queue: Mutex<Vec<Job>>,
    work_cv: Condvar,
    shutdown: AtomicBool,
    runner: SpecRunner,
    cells: AtomicU64,
    store_hits: AtomicU64,
    errors: AtomicU64,
}

impl Shared {
    fn push(&self, job: Job) {
        self.queue.lock().unwrap().push(job);
        self.work_cv.notify_one();
    }

    /// Pops the oldest job, or `None` once shutdown is flagged and the
    /// queue has drained.
    fn pop(&self) -> Option<Job> {
        let mut q = self.queue.lock().unwrap();
        loop {
            if !q.is_empty() {
                return Some(q.remove(0));
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return None;
            }
            q = self.work_cv.wait(q).unwrap();
        }
    }
}

/// A listening campaign server. Obtain one with [`Server::start`], then
/// either [`Server::run`] on the current thread or keep the handle and
/// poke [`Server::local_addr`] into clients first.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    jobs: usize,
    addr: SocketAddr,
}

impl Server {
    /// Binds `127.0.0.1:port` and spins up the shared state (workers
    /// start inside [`Server::run`]). Writes the port file when asked.
    ///
    /// # Errors
    ///
    /// Propagates the bind / port-file I/O error as a string.
    pub fn start(opts: &ServeOptions, runner: SpecRunner) -> Result<Server, String> {
        let listener = TcpListener::bind(("127.0.0.1", opts.port))
            .map_err(|e| format!("bind 127.0.0.1:{}: {e}", opts.port))?;
        let addr = listener.local_addr().map_err(|e| format!("local_addr: {e}"))?;
        if let Some(path) = &opts.port_file {
            std::fs::write(path, format!("{addr}\n"))
                .map_err(|e| format!("write {}: {e}", path.display()))?;
        }
        let jobs = if opts.jobs == 0 {
            thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            opts.jobs
        };
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                queue: Mutex::new(Vec::new()),
                work_cv: Condvar::new(),
                shutdown: AtomicBool::new(false),
                runner,
                cells: AtomicU64::new(0),
                store_hits: AtomicU64::new(0),
                errors: AtomicU64::new(0),
            }),
            jobs,
            addr,
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves until a client sends `shutdown`; returns the tally of
    /// work done. Connection handler threads and workers are joined
    /// before returning, so every accepted submission has been
    /// answered.
    pub fn run(self) -> ServeSummary {
        let workers: Vec<_> = (0..self.jobs)
            .map(|_| {
                let shared = Arc::clone(&self.shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        let mut handlers = Vec::new();
        let mut connections = 0u64;
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            connections += 1;
            let shared = Arc::clone(&self.shared);
            let addr = self.addr;
            handlers.push(thread::spawn(move || {
                handle_connection(stream, &shared, addr)
            }));
        }
        for h in handlers {
            let _ = h.join();
        }
        // Handlers only enqueue while alive, so the queue is final now;
        // wake the workers to drain and exit.
        self.shared.work_cv.notify_all();
        for w in workers {
            let _ = w.join();
        }
        ServeSummary {
            cells: self.shared.cells.load(Ordering::SeqCst),
            store_hits: self.shared.store_hits.load(Ordering::SeqCst),
            errors: self.shared.errors.load(Ordering::SeqCst),
            connections,
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.pop() {
        job.sink.send_direct(&Response::Progress {
            id: job.id,
            state: "running".into(),
        });
        let mut lines = Vec::new();
        let result = match (shared.runner)(&job.spec) {
            Ok(res) => {
                for ev in &res.trace_lines {
                    // Trace lines were serialized by the runner; parse
                    // so the wire carries a structured event, and skip
                    // (rather than corrupt the stream with) any line
                    // that is not valid JSON.
                    if let Ok(event) = Json::parse(ev) {
                        lines.push(format!(
                            "{}\n",
                            Response::Trace { id: job.id, event }.to_json()
                        ));
                    }
                }
                if res.store_hit {
                    shared.store_hits.fetch_add(1, Ordering::SeqCst);
                }
                CellResult {
                    id: job.id,
                    status: "ok".into(),
                    store_hit: res.store_hit,
                    total_cycles: res.total_cycles,
                    accesses: res.accesses,
                    local_faults: res.local_faults,
                    migrations: res.migrations,
                    sim_seconds: res.sim_seconds,
                    error: None,
                }
            }
            Err(fail) => {
                shared.errors.fetch_add(1, Ordering::SeqCst);
                CellResult {
                    id: job.id,
                    status: fail.status,
                    error: Some(fail.message),
                    ..CellResult::default()
                }
            }
        };
        shared.cells.fetch_add(1, Ordering::SeqCst);
        lines.push(format!("{}\n", Response::Result(result).to_json()));
        job.sink.complete(job.seq, lines);
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>, addr: SocketAddr) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let sink = Arc::new(OrderedSink::new(write_half));
    sink.send_direct(&Response::Hello {
        version: env!("CARGO_PKG_VERSION").into(),
    });

    let mut submitted = 0u64;
    let mut results = 0u64;
    let mut want_shutdown = false;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let req = Json::parse(&line)
            .map_err(|e| format!("bad JSON: {e:?}"))
            .and_then(|v| Request::from_json(&v));
        match req {
            Ok(Request::Submit { id, spec }) => {
                sink.send_direct(&Response::Accepted { id });
                shared.push(Job {
                    seq: submitted,
                    id,
                    spec,
                    sink: Arc::clone(&sink),
                });
                submitted += 1;
                results += 1;
            }
            Ok(Request::Ping) => sink.send_direct(&Response::Pong),
            Ok(Request::Shutdown) => want_shutdown = true,
            Err(message) => sink.send_direct(&Response::Error { id: None, message }),
        }
    }

    // The client half-closed (or dropped); everything it submitted is
    // in flight. Wait for the sink to flush all of it, then close the
    // conversation.
    sink.wait_flushed(submitted);
    sink.send_direct(&Response::Done { results });
    let _ = sink.state.lock().unwrap().stream.shutdown(Shutdown::Both);

    if want_shutdown {
        shared.shutdown.store(true, Ordering::SeqCst);
        shared.work_cv.notify_all();
        // The accept loop is blocked in `incoming()`; a throwaway
        // connection unblocks it so it can observe the flag.
        let _ = TcpStream::connect(addr);
    }
}
