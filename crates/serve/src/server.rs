//! The campaign server: accept loop, shared worker pool, and the
//! per-connection ordered sink.
//!
//! Each connection gets a reader thread that parses request lines and a
//! sink that buffers response lines per submission. Cells from *all*
//! connections funnel into one process-wide queue drained by `jobs`
//! worker threads, so every client shares the same warm process (and,
//! through the runner, the same workload cache and result store).
//! Workers finish cells in arbitrary order; the sink releases each
//! cell's `[trace..., result]` group only when every earlier submission
//! of the *same connection* has been released, so a client always reads
//! its results in declaration order, at any `jobs`.
//!
//! Survivability invariants (chaos-tested in `tests/serve_chaos.rs`):
//!
//! * **Admission control.** The global queue is bounded
//!   ([`ServeOptions::max_queued`]); an over-budget `submit` is answered
//!   with a typed `busy` response carrying `retry_after_ms` instead of
//!   growing the queue, and is not counted toward the connection's
//!   results — the client backs off and resubmits.
//! * **Bounded sinks.** A connection that stops reading cannot pin
//!   memory: its ordered buffer is capped
//!   ([`ServeOptions::max_sink_bytes`]) and socket writes carry a
//!   timeout ([`ServeOptions::write_timeout_ms`]). Breaching either
//!   marks the sink dead and discards its buffered lines.
//! * **Cancellation.** When a connection drops with a read *error* (as
//!   opposed to a graceful half-close), its still-queued cells are
//!   purged and its dead sink makes workers skip any stragglers;
//!   cells already in flight finish and populate the shared store, so
//!   the work is never wasted twice.
//! * **Drain-then-exit.** A [`ShutdownHandle`] (wired to SIGINT/SIGTERM
//!   by `repro serve`) stops the accept loop and makes reader loops
//!   treat their connection as half-closed: every already-submitted
//!   cell is answered and acknowledged with `done` before the server
//!   returns.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use grit_sim::RunSpec;
use grit_trace::Json;

use crate::wire::{CellResult, Request, Response};

/// Backoff hint carried by `busy` responses.
pub const RETRY_AFTER_MS: u64 = 2_000;

/// Default cap on one connection's buffered (not yet written) response
/// bytes.
pub const DEFAULT_MAX_SINK_BYTES: usize = 8 * 1024 * 1024;

/// Default socket write timeout; a client that reads nothing for this
/// long while the server has output for it is treated as dead.
pub const DEFAULT_WRITE_TIMEOUT_MS: u64 = 10_000;

/// Reader-loop poll interval: how often a blocked reader re-checks the
/// drain flag.
const READ_POLL_MS: u64 = 500;

/// A successfully executed cell, as produced by the [`SpecRunner`].
#[derive(Clone, PartialEq, Debug, Default)]
#[non_exhaustive]
pub struct SpecResult {
    /// The result came out of the shared store instead of a fresh run.
    pub store_hit: bool,
    /// Simulated cycles to completion.
    pub total_cycles: u64,
    /// Total memory accesses replayed.
    pub accesses: u64,
    /// GPU-local faults.
    pub local_faults: u64,
    /// Page migrations.
    pub migrations: u64,
    /// Wall-clock simulation seconds.
    pub sim_seconds: f64,
    /// Result-store loads answered while serving this cell.
    pub store_hits: u64,
    /// Result-store loads that missed while serving this cell.
    pub store_misses: u64,
    /// Store files quarantined (failed an integrity check) while
    /// serving this cell.
    pub store_quarantined: u64,
    /// Serialized trace events (one JSON object per entry) when the
    /// spec asked for tracing.
    pub trace_lines: Vec<String>,
}

/// A cell that did not complete.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub struct SpecFailure {
    /// Machine-readable status (`"invalid-spec"`, `"panicked"`,
    /// `"timed-out"`, ...).
    pub status: String,
    /// Human-readable detail.
    pub message: String,
}

impl SpecFailure {
    /// Builds a failure with the given status and message.
    pub fn new(status: impl Into<String>, message: impl Into<String>) -> Self {
        SpecFailure {
            status: status.into(),
            message: message.into(),
        }
    }
}

/// Executes one [`RunSpec`]. The callback is invoked concurrently from
/// the worker pool, so it must be thread-safe; the `grit` crate's
/// batch engine (which already serializes store access internally) is
/// the intended implementation.
pub type SpecRunner = Arc<dyn Fn(&RunSpec) -> Result<SpecResult, SpecFailure> + Send + Sync>;

/// Server configuration. Construct with [`ServeOptions::new`] and the
/// builder methods; the struct is non-exhaustive so new knobs can be
/// added without breaking callers.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct ServeOptions {
    /// TCP port to bind on 127.0.0.1; `0` picks an ephemeral port.
    pub port: u16,
    /// When set, the bound address is written here (for scripts that
    /// started the server with port 0).
    pub port_file: Option<PathBuf>,
    /// Worker threads; `0` resolves to available parallelism.
    pub jobs: usize,
    /// Admission-control bound on the global cell queue; `0` means
    /// unbounded. Submissions over the bound are answered `busy`.
    pub max_queued: usize,
    /// Cap on one connection's buffered response bytes; `0` means
    /// unbounded. A sink over the cap is dead (slow-client disconnect).
    pub max_sink_bytes: usize,
    /// Socket write timeout in milliseconds; `0` disables it.
    pub write_timeout_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            port: 0,
            port_file: None,
            jobs: 0,
            max_queued: 0,
            max_sink_bytes: DEFAULT_MAX_SINK_BYTES,
            write_timeout_ms: DEFAULT_WRITE_TIMEOUT_MS,
        }
    }
}

impl ServeOptions {
    /// Default options: ephemeral port, auto worker count, unbounded
    /// queue, default sink bound and write timeout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the TCP port (`0` = ephemeral).
    pub fn port(mut self, port: u16) -> Self {
        self.port = port;
        self
    }

    /// Writes the bound address to `path` once listening.
    pub fn port_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.port_file = Some(path.into());
        self
    }

    /// Sets the worker-thread count (`0` = auto).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Bounds the global cell queue (`0` = unbounded).
    pub fn max_queued(mut self, max_queued: usize) -> Self {
        self.max_queued = max_queued;
        self
    }

    /// Bounds one connection's buffered response bytes (`0` =
    /// unbounded).
    pub fn max_sink_bytes(mut self, max_sink_bytes: usize) -> Self {
        self.max_sink_bytes = max_sink_bytes;
        self
    }

    /// Sets the socket write timeout in milliseconds (`0` = none).
    pub fn write_timeout_ms(mut self, ms: u64) -> Self {
        self.write_timeout_ms = ms;
        self
    }
}

/// What a finished server did, for logs and reports.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
#[non_exhaustive]
pub struct ServeSummary {
    /// Result lines sent across all connections.
    pub cells: u64,
    /// How many of those were store hits.
    pub store_hits: u64,
    /// How many ended in a non-`ok` status.
    pub errors: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Cells dropped unrun because their connection died first.
    pub cancelled: u64,
    /// Submissions rejected with `busy` by admission control.
    pub rejected: u64,
}

/// One queued cell: where it came from and where its lines go.
struct Job {
    seq: u64,
    id: u64,
    spec: RunSpec,
    sink: Arc<OrderedSink>,
}

/// Per-connection ordered delivery: buffers each submission's response
/// lines under its sequence number and flushes groups strictly in
/// sequence order. `Progress` lines bypass the buffer (they are
/// documented as out-of-band). One mutex guards both the buffer and the
/// socket: a group only counts as flushed once its bytes hit the
/// stream, so `done` can never overtake the final result.
///
/// A sink dies when a write fails or times out, or when its buffered
/// bytes exceed `max_bytes`; a dead sink drops its buffer and swallows
/// all further lines, so one stalled client costs a bounded amount of
/// memory and at most one write-timeout per worker.
struct OrderedSink {
    state: Mutex<SinkState>,
    cv: Condvar,
    max_bytes: usize,
}

struct SinkState {
    stream: TcpStream,
    next_flush: u64,
    pending: HashMap<u64, Vec<String>>,
    pending_bytes: usize,
    flushed: u64,
    dead: bool,
}

impl SinkState {
    fn write(&mut self, line: &str) {
        if self.dead {
            return;
        }
        if self.stream.write_all(line.as_bytes()).is_err() {
            self.die();
        }
    }

    fn die(&mut self) {
        self.dead = true;
        self.pending.clear();
        self.pending_bytes = 0;
    }
}

impl OrderedSink {
    fn new(stream: TcpStream, max_bytes: usize) -> Self {
        OrderedSink {
            state: Mutex::new(SinkState {
                stream,
                next_flush: 0,
                pending: HashMap::new(),
                pending_bytes: 0,
                flushed: 0,
                dead: false,
            }),
            cv: Condvar::new(),
            max_bytes,
        }
    }

    fn is_dead(&self) -> bool {
        self.state.lock().unwrap().dead
    }

    /// Marks the sink dead and releases anyone waiting on it.
    fn kill(&self) {
        self.state.lock().unwrap().die();
        self.cv.notify_all();
    }

    /// Sends one line immediately, outside the ordering buffer.
    fn send_direct(&self, resp: &Response) {
        let line = format!("{}\n", resp.to_json());
        let mut st = self.state.lock().unwrap();
        st.write(&line);
        let died = st.dead;
        drop(st);
        if died {
            self.cv.notify_all();
        }
    }

    /// Queues a finished submission's lines and flushes every group
    /// that is now next in sequence.
    fn complete(&self, seq: u64, lines: Vec<String>) {
        let mut st = self.state.lock().unwrap();
        if st.dead {
            drop(st);
            self.cv.notify_all();
            return;
        }
        st.pending_bytes += lines.iter().map(String::len).sum::<usize>();
        st.pending.insert(seq, lines);
        if self.max_bytes != 0 && st.pending_bytes > self.max_bytes {
            // The client is not reading fast enough for the results it
            // ordered; cut it loose rather than buffer without bound.
            st.die();
            drop(st);
            self.cv.notify_all();
            return;
        }
        loop {
            let next = st.next_flush;
            let Some(group) = st.pending.remove(&next) else {
                break;
            };
            st.pending_bytes -= group.iter().map(String::len).sum::<usize>();
            for line in &group {
                st.write(line);
            }
            st.next_flush += 1;
            st.flushed += 1;
        }
        let _ = st.stream.flush();
        drop(st);
        self.cv.notify_all();
    }

    /// Blocks until `count` submission groups have been flushed (or the
    /// connection died).
    fn wait_flushed(&self, count: u64) {
        let mut st = self.state.lock().unwrap();
        while st.flushed < count && !st.dead {
            st = self.cv.wait(st).unwrap();
        }
    }
}

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    work_cv: Condvar,
    shutdown: AtomicBool,
    runner: SpecRunner,
    max_queued: usize,
    /// Live connection handlers; workers only exit once this is zero
    /// (a live handler may still enqueue work after the drain flag is
    /// set, between parsing a line and submitting it).
    active: AtomicU64,
    cells: AtomicU64,
    store_hits: AtomicU64,
    errors: AtomicU64,
    cancelled: AtomicU64,
    rejected: AtomicU64,
}

impl Shared {
    /// Admits the job if the queue has room, acknowledging it with
    /// `accepted` *while holding the queue lock* — so no worker can
    /// flush the job's result line ahead of its acknowledgement.
    /// Returns `false` (and sends nothing) when admission control says
    /// `busy`.
    fn try_submit(&self, job: Job) -> bool {
        let mut q = self.queue.lock().unwrap();
        if self.max_queued != 0 && q.len() >= self.max_queued {
            return false;
        }
        job.sink.send_direct(&Response::Accepted { id: job.id });
        q.push_back(job);
        drop(q);
        self.work_cv.notify_one();
        true
    }

    /// Pops the oldest job, or `None` once shutdown is flagged, every
    /// connection handler has exited, and the queue has drained — the
    /// point after which no new job can appear.
    fn pop(&self) -> Option<Job> {
        let mut q = self.queue.lock().unwrap();
        loop {
            if let Some(job) = q.pop_front() {
                return Some(job);
            }
            if self.shutdown.load(Ordering::SeqCst) && self.active.load(Ordering::SeqCst) == 0 {
                return None;
            }
            q = self.work_cv.wait(q).unwrap();
        }
    }

    /// Removes every still-queued job belonging to `sink` (a dropped
    /// connection); in-flight jobs are unaffected and finish into the
    /// shared store.
    fn purge_sink(&self, sink: &Arc<OrderedSink>) {
        let mut q = self.queue.lock().unwrap();
        let before = q.len();
        q.retain(|job| !Arc::ptr_eq(&job.sink, sink));
        let removed = (before - q.len()) as u64;
        drop(q);
        self.cancelled.fetch_add(removed, Ordering::SeqCst);
    }
}

/// Asks a running [`Server`] to drain and exit: stop accepting, treat
/// every open connection as half-closed (already-submitted cells are
/// still answered), and return once the queue is empty. Cloneable and
/// signal-safe to *store*; the actual [`ShutdownHandle::shutdown`] call
/// locks and allocates, so call it from a normal thread (e.g. a signal
/// poller), not a signal handler.
#[derive(Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Triggers the drain. Idempotent.
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shared, self.addr);
    }
}

fn trigger_shutdown(shared: &Shared, addr: SocketAddr) {
    shared.shutdown.store(true, Ordering::SeqCst);
    shared.work_cv.notify_all();
    // The accept loop is blocked in `incoming()`; a throwaway
    // connection unblocks it so it can observe the flag. (Reader loops
    // poll the flag on their read timeout.)
    let _ = TcpStream::connect(addr);
}

/// A listening campaign server. Obtain one with [`Server::start`], then
/// either [`Server::run`] on the current thread or keep the handle and
/// poke [`Server::local_addr`] into clients first.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    jobs: usize,
    addr: SocketAddr,
    write_timeout_ms: u64,
    max_sink_bytes: usize,
}

impl Server {
    /// Binds `127.0.0.1:port` and spins up the shared state (workers
    /// start inside [`Server::run`]). Writes the port file when asked.
    ///
    /// # Errors
    ///
    /// Propagates the bind / port-file I/O error as a string.
    pub fn start(opts: &ServeOptions, runner: SpecRunner) -> Result<Server, String> {
        let listener = TcpListener::bind(("127.0.0.1", opts.port))
            .map_err(|e| format!("bind 127.0.0.1:{}: {e}", opts.port))?;
        let addr = listener.local_addr().map_err(|e| format!("local_addr: {e}"))?;
        if let Some(path) = &opts.port_file {
            std::fs::write(path, format!("{addr}\n"))
                .map_err(|e| format!("write {}: {e}", path.display()))?;
        }
        let jobs = if opts.jobs == 0 {
            thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            opts.jobs
        };
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                work_cv: Condvar::new(),
                shutdown: AtomicBool::new(false),
                runner,
                max_queued: opts.max_queued,
                active: AtomicU64::new(0),
                cells: AtomicU64::new(0),
                store_hits: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                cancelled: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
            }),
            jobs,
            addr,
            write_timeout_ms: opts.write_timeout_ms,
            max_sink_bytes: opts.max_sink_bytes,
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that can ask this server to drain and exit from another
    /// thread (`repro serve` wires it to SIGINT/SIGTERM).
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
            addr: self.addr,
        }
    }

    /// Serves until a client sends `shutdown` (or a [`ShutdownHandle`]
    /// fires); returns the tally of work done. Connection handler
    /// threads and workers are joined before returning, so every
    /// accepted submission has been answered.
    pub fn run(self) -> ServeSummary {
        let workers: Vec<_> = (0..self.jobs)
            .map(|_| {
                let shared = Arc::clone(&self.shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        let mut handlers = Vec::new();
        let mut connections = 0u64;
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            connections += 1;
            self.shared.active.fetch_add(1, Ordering::SeqCst);
            let shared = Arc::clone(&self.shared);
            let addr = self.addr;
            let write_timeout_ms = self.write_timeout_ms;
            let max_sink_bytes = self.max_sink_bytes;
            handlers.push(thread::spawn(move || {
                handle_connection(stream, &shared, addr, write_timeout_ms, max_sink_bytes);
                shared.active.fetch_sub(1, Ordering::SeqCst);
                // The last handler out lets the workers observe
                // (shutdown && active == 0 && queue empty) and exit.
                shared.work_cv.notify_all();
            }));
        }
        for h in handlers {
            let _ = h.join();
        }
        // Handlers only enqueue while alive, so the queue is final now;
        // wake the workers to drain and exit.
        self.shared.work_cv.notify_all();
        for w in workers {
            let _ = w.join();
        }
        ServeSummary {
            cells: self.shared.cells.load(Ordering::SeqCst),
            store_hits: self.shared.store_hits.load(Ordering::SeqCst),
            errors: self.shared.errors.load(Ordering::SeqCst),
            connections,
            cancelled: self.shared.cancelled.load(Ordering::SeqCst),
            rejected: self.shared.rejected.load(Ordering::SeqCst),
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.pop() {
        if job.sink.is_dead() {
            // The connection died after this cell was queued but before
            // a worker reached it; nobody will read the result, so skip
            // the run entirely.
            shared.cancelled.fetch_add(1, Ordering::SeqCst);
            continue;
        }
        job.sink.send_direct(&Response::Progress {
            id: job.id,
            state: "running".into(),
        });
        let mut lines = Vec::new();
        let result = match (shared.runner)(&job.spec) {
            Ok(res) => {
                for ev in &res.trace_lines {
                    // Trace lines were serialized by the runner; parse
                    // so the wire carries a structured event, and skip
                    // (rather than corrupt the stream with) any line
                    // that is not valid JSON.
                    if let Ok(event) = Json::parse(ev) {
                        lines.push(format!(
                            "{}\n",
                            Response::Trace { id: job.id, event }.to_json()
                        ));
                    }
                }
                if res.store_hit {
                    shared.store_hits.fetch_add(1, Ordering::SeqCst);
                }
                CellResult {
                    id: job.id,
                    status: "ok".into(),
                    store_hit: res.store_hit,
                    total_cycles: res.total_cycles,
                    accesses: res.accesses,
                    local_faults: res.local_faults,
                    migrations: res.migrations,
                    sim_seconds: res.sim_seconds,
                    store_hits: res.store_hits,
                    store_misses: res.store_misses,
                    store_quarantined: res.store_quarantined,
                    error: None,
                }
            }
            Err(fail) => {
                shared.errors.fetch_add(1, Ordering::SeqCst);
                CellResult {
                    id: job.id,
                    status: fail.status,
                    error: Some(fail.message),
                    ..CellResult::default()
                }
            }
        };
        shared.cells.fetch_add(1, Ordering::SeqCst);
        lines.push(format!("{}\n", Response::Result(result).to_json()));
        job.sink.complete(job.seq, lines);
    }
}

/// How one connection's reader loop ended.
enum ReadEnd {
    /// Clean half-close (or drain): honor everything submitted.
    Eof,
    /// Read error: the client is gone; cancel its queued work.
    Aborted,
}

/// Reads request lines until EOF, error, or server drain. A read
/// timeout on the socket turns the blocking read into a poll so the
/// drain flag is observed within [`READ_POLL_MS`]; partial lines
/// accumulate across `WouldBlock` returns and are never dropped.
fn read_requests(
    stream: TcpStream,
    shared: &Arc<Shared>,
    sink: &Arc<OrderedSink>,
    submitted: &mut u64,
) -> ReadEnd {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(READ_POLL_MS)));
    let mut reader = BufReader::new(stream);
    let mut buf = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) => {
                // EOF. A non-empty buffer is a final line without a
                // trailing newline; chaos truncation lands here, and the
                // half-parsed text must still get its error response.
                if !buf.is_empty() {
                    handle_line(&buf, shared, sink, submitted);
                }
                return ReadEnd::Eof;
            }
            Ok(_) if buf.last() == Some(&b'\n') => {
                handle_line(&buf, shared, sink, submitted);
                buf.clear();
            }
            Ok(_) => {
                // read_until only returns without a delimiter at EOF;
                // treat like Ok(0) with a pending line.
                handle_line(&buf, shared, sink, submitted);
                return ReadEnd::Eof;
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    // Drain: pretend the client half-closed now.
                    return ReadEnd::Eof;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return ReadEnd::Aborted,
        }
    }
}

fn handle_line(raw: &[u8], shared: &Arc<Shared>, sink: &Arc<OrderedSink>, submitted: &mut u64) {
    let line = String::from_utf8_lossy(raw);
    let line = line.trim();
    if line.is_empty() {
        return;
    }
    let req = Json::parse(line)
        .map_err(|e| format!("bad JSON: {e:?}"))
        .and_then(|v| Request::from_json(&v));
    match req {
        Ok(Request::Submit { id, spec }) => {
            let admitted = shared.try_submit(Job {
                seq: *submitted,
                id,
                spec,
                sink: Arc::clone(sink),
            });
            if admitted {
                *submitted += 1;
            } else {
                shared.rejected.fetch_add(1, Ordering::SeqCst);
                sink.send_direct(&Response::Busy {
                    id,
                    retry_after_ms: RETRY_AFTER_MS,
                });
            }
        }
        Ok(Request::Ping) => sink.send_direct(&Response::Pong),
        Ok(Request::Shutdown) => {
            // Honored after this connection's work is flushed; flag it
            // via the shared state so the accept loop stops taking new
            // connections right away.
            shared.shutdown.store(true, Ordering::SeqCst);
        }
        Err(message) => sink.send_direct(&Response::Error { id: None, message }),
    }
}

fn handle_connection(
    stream: TcpStream,
    shared: &Arc<Shared>,
    addr: SocketAddr,
    write_timeout_ms: u64,
    max_sink_bytes: usize,
) {
    // NODELAY: responses are single small lines and latency-sensitive;
    // the write timeout is the slow-client guillotine.
    let _ = stream.set_nodelay(true);
    if write_timeout_ms != 0 {
        let _ = stream.set_write_timeout(Some(Duration::from_millis(write_timeout_ms)));
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let sink = Arc::new(OrderedSink::new(write_half, max_sink_bytes));
    sink.send_direct(&Response::Hello {
        version: env!("CARGO_PKG_VERSION").into(),
    });

    let mut submitted = 0u64;
    let want_shutdown_before = shared.shutdown.load(Ordering::SeqCst);
    let end = read_requests(stream, shared, &sink, &mut submitted);

    match end {
        ReadEnd::Eof => {
            // The client half-closed (or the server is draining);
            // everything it submitted is in flight. Wait for the sink
            // to flush all of it, then close the conversation.
            sink.wait_flushed(submitted);
            sink.send_direct(&Response::Done { results: submitted });
        }
        ReadEnd::Aborted => {
            // The client is gone; answer lines would hit a broken pipe.
            // Kill the sink first so workers skip the stragglers, then
            // purge what never started.
            sink.kill();
            shared.purge_sink(&sink);
        }
    }
    let _ = sink.state.lock().unwrap().stream.shutdown(Shutdown::Both);

    // A `shutdown` request observed on this connection (the flag
    // flipped while we were reading) also needs the accept loop poked.
    if !want_shutdown_before && shared.shutdown.load(Ordering::SeqCst) {
        trigger_shutdown(shared, addr);
    }
}
