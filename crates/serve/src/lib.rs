//! Campaign service for the GRIT reproduction: a long-lived local TCP
//! server that executes [`RunSpec`](grit_sim::RunSpec) cells and streams
//! results back as newline-delimited JSON (`grit-serve/v1`).
//!
//! The crate is deliberately split in three:
//!
//! * [`wire`] — the versioned message schema. Pure data: every message
//!   round-trips through [`grit_trace::Json`], unknown fields are
//!   tolerated, and a `schema` tag guards against protocol skew.
//! * [`server`] — the TCP accept loop, a process-wide worker pool, and
//!   the per-connection ordered sink that turns out-of-order completion
//!   into per-client declaration-order delivery. Execution itself is a
//!   pluggable [`server::SpecRunner`] callback, which keeps this crate
//!   free of any dependency on the experiment engine (the `grit` crate
//!   supplies the real runner; tests supply stubs).
//! * [`client`] — a small blocking client used by `repro submit` and
//!   the integration tests.
//! * [`chaos`] — a deterministic fault-injecting localhost proxy
//!   (close/truncate/stall/duplicate on exact byte schedules) used by
//!   the chaos tests to prove the above degrade gracefully.
//!
//! The server is *local-first*: it binds a loopback-style TCP port so
//! several shells and CI steps can share one warm process (one workload
//! cache, one result store), not to be exposed to a network.

#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod server;
pub mod wire;

pub use chaos::{ChaosFault, ChaosProxy};
pub use client::{CampaignOutcome, ClientError, ServeClient};
pub use server::{
    ServeOptions, ServeSummary, Server, ShutdownHandle, SpecFailure, SpecResult, SpecRunner,
};
pub use wire::{CellResult, Request, Response, SERVE_SCHEMA};
