//! The `grit-serve/v1` wire schema: newline-delimited JSON messages.
//!
//! Clients send one JSON object per line ([`Request`]); the server
//! answers with one JSON object per line ([`Response`]). Every message
//! carries a `schema` tag and a `type` discriminator. Parsing is
//! **forward tolerant**: unknown object fields are ignored, so a v1
//! client keeps working against a server that has grown new fields (and
//! vice versa) — only a changed `schema` tag or a missing required
//! field is an error.
//!
//! The payload of a `submit` request is a serialized
//! [`RunSpec`] — the same struct the CLI flags build
//! and the result store keys on — so the wire adds no encoding of its
//! own.

use grit_sim::RunSpec;
use grit_trace::Json;

/// Schema tag carried by every message; bump on breaking layout
/// changes.
pub const SERVE_SCHEMA: &str = "grit-serve/v1";

/// Serializes a [`RunSpec`] as a JSON object. Optional fields are
/// emitted only when set, so default specs stay compact and the
/// encoding is stable for golden fixtures.
pub fn spec_to_json(spec: &RunSpec) -> Json {
    let mut fields: Vec<(String, Json)> = vec![
        ("app".into(), Json::Str(spec.app.clone())),
        ("policy".into(), Json::Str(spec.policy.clone())),
        ("scale".into(), Json::Float(spec.scale)),
        ("intensity".into(), Json::Float(spec.intensity)),
        ("seed".into(), Json::UInt(spec.seed)),
    ];
    if let Some(gpus) = spec.gpus {
        fields.push(("gpus".into(), Json::UInt(gpus as u64)));
    }
    if let Some(bytes) = spec.page_size {
        fields.push(("page_size".into(), Json::UInt(bytes)));
    }
    if let Some(mode) = &spec.page_size_mode {
        fields.push(("page_size_mode".into(), Json::Str(mode.clone())));
    }
    if let Some(topology) = &spec.topology {
        fields.push(("topology".into(), Json::Str(topology.clone())));
    }
    if let Some(inject) = &spec.inject {
        fields.push(("inject".into(), Json::Str(inject.clone())));
    }
    if spec.check_invariants {
        fields.push(("check_invariants".into(), Json::Bool(true)));
    }
    if let Some(threads) = spec.sim_threads {
        fields.push(("sim_threads".into(), Json::UInt(threads as u64)));
    }
    if let Some(secs) = spec.timeout_secs {
        fields.push(("timeout_secs".into(), Json::Float(secs)));
    }
    if spec.trace {
        fields.push(("trace".into(), Json::Bool(true)));
        if let Some(filter) = &spec.trace_filter {
            fields.push(("trace_filter".into(), Json::Str(filter.clone())));
        }
        if spec.trace_sample != 1 {
            fields.push(("trace_sample".into(), Json::UInt(spec.trace_sample)));
        }
    }
    if spec.profile {
        fields.push(("profile".into(), Json::Bool(true)));
    }
    Json::Obj(fields)
}

/// Deserializes a [`RunSpec`] from a JSON object. `app` and `policy`
/// are required; every other field falls back to the spec default, and
/// unknown fields are ignored.
///
/// # Errors
///
/// A human-readable message naming the missing or mistyped field.
pub fn spec_from_json(v: &Json) -> Result<RunSpec, String> {
    let mut spec = RunSpec::default();
    spec.app = v.get("app").and_then(Json::as_str).ok_or("spec: missing app")?.to_string();
    spec.policy = v
        .get("policy")
        .and_then(Json::as_str)
        .ok_or("spec: missing policy")?
        .to_string();
    if let Some(x) = v.get("scale").and_then(Json::as_f64) {
        spec.scale = x;
    }
    if let Some(x) = v.get("intensity").and_then(Json::as_f64) {
        spec.intensity = x;
    }
    if let Some(x) = v.get("seed").and_then(Json::as_u64) {
        spec.seed = x;
    }
    spec.gpus = v.get("gpus").and_then(Json::as_u64).map(|g| g as usize);
    spec.page_size = v.get("page_size").and_then(Json::as_u64);
    spec.page_size_mode = v.get("page_size_mode").and_then(Json::as_str).map(String::from);
    spec.topology = v.get("topology").and_then(Json::as_str).map(String::from);
    spec.inject = v.get("inject").and_then(Json::as_str).map(String::from);
    spec.check_invariants = v.get("check_invariants").and_then(Json::as_bool).unwrap_or(false);
    spec.sim_threads = v.get("sim_threads").and_then(Json::as_u64).map(|t| t as usize);
    spec.timeout_secs = v.get("timeout_secs").and_then(Json::as_f64);
    spec.trace = v.get("trace").and_then(Json::as_bool).unwrap_or(false);
    spec.trace_filter = v.get("trace_filter").and_then(Json::as_str).map(String::from);
    if let Some(n) = v.get("trace_sample").and_then(Json::as_u64) {
        spec.trace_sample = n.max(1);
    }
    spec.profile = v.get("profile").and_then(Json::as_bool).unwrap_or(false);
    Ok(spec)
}

/// One client-to-server message.
// A submit carries a whole RunSpec inline; requests are parsed once per
// line, so the size skew against Ping/Shutdown is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum Request {
    /// Run one cell. `id` is client-chosen and echoed on every line
    /// about this cell; results stream back in submission order.
    Submit {
        /// Client-chosen cell identifier.
        id: u64,
        /// The cell to run.
        spec: RunSpec,
    },
    /// Liveness probe; answered immediately with `pong`.
    Ping,
    /// Ask the server to exit once every submitted cell (on any
    /// connection) has been answered.
    Shutdown,
}

impl Request {
    /// Serializes the request as one JSON object (no trailing newline).
    pub fn to_json(&self) -> Json {
        match self {
            Request::Submit { id, spec } => Json::Obj(vec![
                ("schema".into(), Json::Str(SERVE_SCHEMA.into())),
                ("type".into(), Json::Str("submit".into())),
                ("id".into(), Json::UInt(*id)),
                ("spec".into(), spec_to_json(spec)),
            ]),
            Request::Ping => Json::Obj(vec![
                ("schema".into(), Json::Str(SERVE_SCHEMA.into())),
                ("type".into(), Json::Str("ping".into())),
            ]),
            Request::Shutdown => Json::Obj(vec![
                ("schema".into(), Json::Str(SERVE_SCHEMA.into())),
                ("type".into(), Json::Str("shutdown".into())),
            ]),
        }
    }

    /// Parses one request line. Unknown fields are ignored; an unknown
    /// `type` or `schema` is an error (the client is speaking a
    /// different protocol version).
    ///
    /// # Errors
    ///
    /// A human-readable message suitable for an `error` response line.
    pub fn from_json(v: &Json) -> Result<Request, String> {
        check_schema(v)?;
        match v.get("type").and_then(Json::as_str).ok_or("missing type")? {
            "submit" => Ok(Request::Submit {
                id: v.get("id").and_then(Json::as_u64).ok_or("submit: missing id")?,
                spec: spec_from_json(v.get("spec").ok_or("submit: missing spec")?)?,
            }),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown request type '{other}'")),
        }
    }
}

/// The outcome of one served cell, as it travels on the wire.
#[derive(Clone, PartialEq, Debug, Default)]
#[non_exhaustive]
pub struct CellResult {
    /// The client's submission id.
    pub id: u64,
    /// `"ok"`, or the failure status (`"panicked"`, `"timed-out"`,
    /// `"invalid-spec"`, ...).
    pub status: String,
    /// The result was loaded from the shared store instead of re-run.
    pub store_hit: bool,
    /// Simulated cycles to completion.
    pub total_cycles: u64,
    /// Total memory accesses replayed.
    pub accesses: u64,
    /// GPU-local faults.
    pub local_faults: u64,
    /// Page migrations.
    pub migrations: u64,
    /// Wall-clock simulation seconds on the server.
    pub sim_seconds: f64,
    /// Result-store loads answered while serving this cell (0 or 1 in
    /// practice; kept as a counter to match the report schema).
    pub store_hits: u64,
    /// Result-store loads that missed while serving this cell.
    pub store_misses: u64,
    /// Store files quarantined (failed an integrity check) while
    /// serving this cell.
    pub store_quarantined: u64,
    /// Failure detail when `status != "ok"`.
    pub error: Option<String>,
}

impl CellResult {
    /// Whether the cell completed.
    pub fn is_ok(&self) -> bool {
        self.status == "ok"
    }
}

/// One server-to-client message.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum Response {
    /// First line on every connection: the server is speaking v1.
    Hello {
        /// Server crate version.
        version: String,
    },
    /// A `submit` was parsed and queued (sent immediately, in request
    /// order).
    Accepted {
        /// The client's submission id.
        id: u64,
    },
    /// A `submit` was parsed but **not** queued: the server's global
    /// cell queue is full (admission control). The cell is not counted
    /// toward the connection's results; the client should back off for
    /// at least `retry_after_ms` and resubmit.
    Busy {
        /// The client's submission id.
        id: u64,
        /// Server's backoff hint in milliseconds.
        retry_after_ms: u64,
    },
    /// Out-of-band progress: a worker picked the cell up. Unlike
    /// `result` lines these are *not* ordered between cells.
    Progress {
        /// The client's submission id.
        id: u64,
        /// Lifecycle state (`"running"`).
        state: String,
    },
    /// One trace event of a traced cell; trace lines for a cell
    /// immediately precede its `result` line.
    Trace {
        /// The client's submission id.
        id: u64,
        /// The `grit-trace` event object, verbatim.
        event: Json,
    },
    /// A finished cell, in per-client submission order.
    Result(CellResult),
    /// Answer to `ping`.
    Pong,
    /// A request line the server could not honor; `id` when it could
    /// at least be attributed.
    Error {
        /// The submission id, when attributable.
        id: Option<u64>,
        /// What went wrong.
        message: String,
    },
    /// Last line of a connection: every submitted cell was answered.
    Done {
        /// Number of `result` lines sent on this connection.
        results: u64,
    },
}

impl Response {
    /// Serializes the response as one JSON object (no trailing newline).
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> =
            vec![("schema".into(), Json::Str(SERVE_SCHEMA.into()))];
        match self {
            Response::Hello { version } => {
                fields.push(("type".into(), Json::Str("hello".into())));
                fields.push(("version".into(), Json::Str(version.clone())));
            }
            Response::Accepted { id } => {
                fields.push(("type".into(), Json::Str("accepted".into())));
                fields.push(("id".into(), Json::UInt(*id)));
            }
            Response::Busy { id, retry_after_ms } => {
                fields.push(("type".into(), Json::Str("busy".into())));
                fields.push(("id".into(), Json::UInt(*id)));
                fields.push(("retry_after_ms".into(), Json::UInt(*retry_after_ms)));
            }
            Response::Progress { id, state } => {
                fields.push(("type".into(), Json::Str("progress".into())));
                fields.push(("id".into(), Json::UInt(*id)));
                fields.push(("state".into(), Json::Str(state.clone())));
            }
            Response::Trace { id, event } => {
                fields.push(("type".into(), Json::Str("trace".into())));
                fields.push(("id".into(), Json::UInt(*id)));
                fields.push(("event".into(), event.clone()));
            }
            Response::Result(r) => {
                fields.push(("type".into(), Json::Str("result".into())));
                fields.push(("id".into(), Json::UInt(r.id)));
                fields.push(("status".into(), Json::Str(r.status.clone())));
                fields.push(("store_hit".into(), Json::Bool(r.store_hit)));
                fields.push(("total_cycles".into(), Json::UInt(r.total_cycles)));
                fields.push(("accesses".into(), Json::UInt(r.accesses)));
                fields.push(("local_faults".into(), Json::UInt(r.local_faults)));
                fields.push(("migrations".into(), Json::UInt(r.migrations)));
                fields.push(("sim_seconds".into(), Json::Float(r.sim_seconds)));
                // Store traffic is the exception, not the rule: emit
                // only nonzero counters so pre-v8 readers and golden
                // fixtures are unchanged for cells that never touch
                // the store.
                if r.store_hits != 0 {
                    fields.push(("store_hits".into(), Json::UInt(r.store_hits)));
                }
                if r.store_misses != 0 {
                    fields.push(("store_misses".into(), Json::UInt(r.store_misses)));
                }
                if r.store_quarantined != 0 {
                    fields.push(("store_quarantined".into(), Json::UInt(r.store_quarantined)));
                }
                if let Some(e) = &r.error {
                    fields.push(("error".into(), Json::Str(e.clone())));
                }
            }
            Response::Pong => fields.push(("type".into(), Json::Str("pong".into()))),
            Response::Error { id, message } => {
                fields.push(("type".into(), Json::Str("error".into())));
                if let Some(id) = id {
                    fields.push(("id".into(), Json::UInt(*id)));
                }
                fields.push(("message".into(), Json::Str(message.clone())));
            }
            Response::Done { results } => {
                fields.push(("type".into(), Json::Str("done".into())));
                fields.push(("results".into(), Json::UInt(*results)));
            }
        }
        Json::Obj(fields)
    }

    /// Parses one response line, ignoring unknown fields.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the missing or mistyped field.
    pub fn from_json(v: &Json) -> Result<Response, String> {
        check_schema(v)?;
        let id = || v.get("id").and_then(Json::as_u64).ok_or("missing id");
        match v.get("type").and_then(Json::as_str).ok_or("missing type")? {
            "hello" => Ok(Response::Hello {
                version: v.get("version").and_then(Json::as_str).unwrap_or_default().to_string(),
            }),
            "accepted" => Ok(Response::Accepted { id: id()? }),
            "busy" => Ok(Response::Busy {
                id: id()?,
                retry_after_ms: v.get("retry_after_ms").and_then(Json::as_u64).unwrap_or(0),
            }),
            "progress" => Ok(Response::Progress {
                id: id()?,
                state: v.get("state").and_then(Json::as_str).unwrap_or_default().to_string(),
            }),
            "trace" => Ok(Response::Trace {
                id: id()?,
                event: v.get("event").ok_or("trace: missing event")?.clone(),
            }),
            "result" => Ok(Response::Result(CellResult {
                id: id()?,
                status: v
                    .get("status")
                    .and_then(Json::as_str)
                    .ok_or("result: missing status")?
                    .to_string(),
                store_hit: v.get("store_hit").and_then(Json::as_bool).unwrap_or(false),
                total_cycles: v.get("total_cycles").and_then(Json::as_u64).unwrap_or(0),
                accesses: v.get("accesses").and_then(Json::as_u64).unwrap_or(0),
                local_faults: v.get("local_faults").and_then(Json::as_u64).unwrap_or(0),
                migrations: v.get("migrations").and_then(Json::as_u64).unwrap_or(0),
                sim_seconds: v.get("sim_seconds").and_then(Json::as_f64).unwrap_or(0.0),
                store_hits: v.get("store_hits").and_then(Json::as_u64).unwrap_or(0),
                store_misses: v.get("store_misses").and_then(Json::as_u64).unwrap_or(0),
                store_quarantined: v.get("store_quarantined").and_then(Json::as_u64).unwrap_or(0),
                error: v.get("error").and_then(Json::as_str).map(String::from),
            })),
            "pong" => Ok(Response::Pong),
            "error" => Ok(Response::Error {
                id: v.get("id").and_then(Json::as_u64),
                message: v.get("message").and_then(Json::as_str).unwrap_or_default().to_string(),
            }),
            "done" => Ok(Response::Done {
                results: v.get("results").and_then(Json::as_u64).unwrap_or(0),
            }),
            other => Err(format!("unknown response type '{other}'")),
        }
    }
}

fn check_schema(v: &Json) -> Result<(), String> {
    match v.get("schema").and_then(Json::as_str) {
        Some(SERVE_SCHEMA) => Ok(()),
        Some(other) => Err(format!(
            "unsupported schema '{other}' (want {SERVE_SCHEMA})"
        )),
        None => Err("missing schema tag".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_with_all_fields() {
        let spec = RunSpec::new("BFS", "grit")
            .scale(0.5)
            .intensity(1.0)
            .seed(7)
            .gpus(8)
            .page_size(2 * 1024 * 1024)
            .page_size_mode("mixed")
            .topology("ring")
            .inject("retire@10:gpu=0:frames=1")
            .check_invariants(true)
            .sim_threads(2)
            .timeout_secs(3.5)
            .trace(true)
            .trace_filter("fault,migration")
            .trace_sample(4)
            .profile(true);
        let back = spec_from_json(&spec_to_json(&spec)).unwrap();
        assert_eq!(back, spec);
        // And a default-ish spec too (optional fields absent on the wire).
        let plain = RunSpec::new("GEMM", "ideal");
        assert_eq!(spec_from_json(&spec_to_json(&plain)).unwrap(), plain);
    }

    #[test]
    fn request_and_response_round_trip() {
        let msgs = [
            Request::Submit {
                id: 3,
                spec: RunSpec::new("FIR", "on-touch"),
            },
            Request::Ping,
            Request::Shutdown,
        ];
        for m in msgs {
            let line = m.to_json().to_string();
            let back = Request::from_json(&Json::parse(&line).unwrap()).unwrap();
            assert_eq!(back, m);
        }
        let msgs = [
            Response::Hello {
                version: "0.1.0".into(),
            },
            Response::Accepted { id: 1 },
            Response::Busy {
                id: 2,
                retry_after_ms: 2000,
            },
            Response::Progress {
                id: 1,
                state: "running".into(),
            },
            Response::Trace {
                id: 1,
                event: Json::Obj(vec![("type".into(), Json::Str("fault".into()))]),
            },
            Response::Result(CellResult {
                id: 1,
                status: "ok".into(),
                store_hit: true,
                total_cycles: 123,
                accesses: 456,
                local_faults: 7,
                migrations: 8,
                sim_seconds: 0.25,
                store_hits: 1,
                store_misses: 0,
                store_quarantined: 0,
                error: None,
            }),
            Response::Pong,
            Response::Error {
                id: Some(9),
                message: "unknown app 'quake'".into(),
            },
            Response::Done { results: 4 },
        ];
        for m in msgs {
            let line = m.to_json().to_string();
            let back = Response::from_json(&Json::parse(&line).unwrap()).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn zero_store_counters_stay_off_the_wire() {
        // Pre-v8 readers and golden fixtures must not see new fields on
        // cells that never touched the store.
        let r = Response::Result(CellResult {
            id: 1,
            status: "ok".into(),
            ..CellResult::default()
        });
        let line = r.to_json().to_string();
        assert!(!line.contains("store_hits"), "unexpected field in {line}");
        assert!(!line.contains("store_misses"));
        assert!(!line.contains("store_quarantined"));
        assert_eq!(
            Response::from_json(&Json::parse(&line).unwrap()).unwrap(),
            r
        );
    }

    #[test]
    fn malformed_lines_parse_to_errors_not_panics() {
        // Every line the reader loop can see must produce Ok or Err —
        // never a panic. These are the hand-picked nasty shapes; the
        // exhaustive randomized sweep lives in tests/prop_wire.rs.
        let lines = [
            "",
            "{",
            "}",
            "null",
            "true",
            "42",
            "\"just a string\"",
            "[1,2,3]",
            "{}",
            r#"{"schema":"grit-serve/v1"}"#,
            r#"{"schema":"grit-serve/v1","type":"submit"}"#,
            r#"{"schema":"grit-serve/v1","type":"submit","id":"not-a-number","spec":{}}"#,
            r#"{"schema":"grit-serve/v1","type":"submit","id":1,"spec":{"app":"BFS"}}"#,
            r#"{"schema":"grit-serve/v1","type":"submit","id":1,"spec":7}"#,
            r#"{"schema":"grit-serve/v1","type":42}"#,
            r#"{"schema":null,"type":"ping"}"#,
            "\u{0}\u{1}\u{2}garbage bytes",
            r#"{"schema":"grit-serve/v1","type":"ping""#, // truncated
        ];
        for line in lines {
            match Json::parse(line) {
                Ok(v) => {
                    let _ = Request::from_json(&v);
                    let _ = Response::from_json(&v);
                }
                Err(e) => assert!(
                    !format!("{e:?}").is_empty(),
                    "parse error must carry a message"
                ),
            }
        }
    }

    #[test]
    fn unknown_fields_are_tolerated_but_schema_mismatch_is_not() {
        let line = r#"{"schema":"grit-serve/v1","type":"submit","id":1,"future_flag":true,
                       "spec":{"app":"BFS","policy":"grit","novel_knob":42}}"#;
        let req = Request::from_json(&Json::parse(line).unwrap()).unwrap();
        match req {
            Request::Submit { id, spec } => {
                assert_eq!(id, 1);
                assert_eq!(spec.app, "BFS");
                assert_eq!(spec.policy, "grit");
            }
            other => panic!("parsed as {other:?}"),
        }
        let v2 = r#"{"schema":"grit-serve/v2","type":"ping"}"#;
        assert!(Request::from_json(&Json::parse(v2).unwrap())
            .unwrap_err()
            .contains("unsupported schema"));
        let untagged = r#"{"type":"ping"}"#;
        assert!(Request::from_json(&Json::parse(untagged).unwrap())
            .unwrap_err()
            .contains("missing schema"));
    }
}
