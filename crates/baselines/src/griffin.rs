//! Griffin (Baruah et al., HPCA 2020) reimplemented at the page-placement
//! abstraction level (paper §VI-C1).
//!
//! Griffin has two orthogonal parts:
//!
//! * **DPC** (Dynamic Page Classification): pages are profiled over a time
//!   interval and, at each interval boundary, pages whose accesses are
//!   dominated by one remote GPU are migrated to it. Between boundaries
//!   remote pages are accessed in place — which is exactly the behaviour
//!   GRIT's §VI-C1 analysis criticizes ("substantial remote accesses before
//!   the page migration").
//! * **ACUD** (Asynchronous Compute Unit Draining): migration-time pipeline
//!   draining proceeds asynchronously, shrinking the flush cost. ACUD is a
//!   mechanism-level change, modelled by [`apply_acud`] scaling the
//!   `flush_drain` latency; it composes with any policy (the paper builds
//!   GRIT+ACUD the same way).

use grit_sim::{AccessKind, Cycle, FxHashMap, GpuId, MemLoc, PageId, Scheme, SimConfig};
use grit_uvm::{
    CentralPageTable, Directive, FaultInfo, PageState, PlacementPolicy, PolicyDecision, Resolution,
};

/// Default Griffin-DPC profiling interval (cycles). Griffin classifies
/// and migrates at coarse predefined intervals — the §VI-C1 observation
/// that "substantial remote accesses" accumulate before each migration.
pub const DPC_INTERVAL_DEFAULT: Cycle = 1_000_000;

/// Minimum per-interval accesses before a page is considered for
/// migration (filters noise, mirrors Griffin's hot-page classification).
pub const DPC_MIN_ACCESSES: u64 = 8;

/// Fraction of a page's interval accesses one GPU must dominate to trigger
/// migration.
pub const DPC_DOMINANCE: f64 = 0.6;

/// Griffin's Dynamic Page Classification policy.
///
/// ```
/// use grit_baselines::GriffinDpcPolicy;
/// use grit_uvm::PlacementPolicy;
/// let p = GriffinDpcPolicy::new(4);
/// assert_eq!(p.name(), "griffin-dpc");
/// assert!(p.epoch_len().is_some());
/// ```
#[derive(Clone, Debug)]
pub struct GriffinDpcPolicy {
    num_gpus: usize,
    interval: Cycle,
    /// Per-page access counts by GPU within the current interval.
    profile: FxHashMap<PageId, Vec<u64>>,
    migrations_requested: u64,
}

impl GriffinDpcPolicy {
    /// DPC for `num_gpus` GPUs with the default interval.
    pub fn new(num_gpus: usize) -> Self {
        Self::with_interval(num_gpus, DPC_INTERVAL_DEFAULT)
    }

    /// DPC with an explicit profiling interval.
    ///
    /// # Panics
    ///
    /// Panics if `num_gpus` or `interval` is zero.
    pub fn with_interval(num_gpus: usize, interval: Cycle) -> Self {
        assert!(num_gpus > 0 && interval > 0, "invalid DPC configuration");
        GriffinDpcPolicy {
            num_gpus,
            interval,
            profile: FxHashMap::default(),
            migrations_requested: 0,
        }
    }

    /// Interval migrations requested so far.
    pub fn migrations_requested(&self) -> u64 {
        self.migrations_requested
    }
}

impl PlacementPolicy for GriffinDpcPolicy {
    fn name(&self) -> String {
        "griffin-dpc".into()
    }

    fn on_fault(
        &mut self,
        fault: &FaultInfo,
        page: &PageState,
        table: &mut CentralPageTable,
    ) -> PolicyDecision {
        table.set_scheme(fault.vpn, Scheme::OnTouch);
        // First touch lands the page; afterwards DPC leaves it in place and
        // classifies at interval boundaries.
        let resolution = if page.owner.gpu().is_none() {
            Resolution::Migrate
        } else {
            Resolution::MapRemote
        };
        PolicyDecision::plain(resolution)
    }

    fn on_access(&mut self, _now: Cycle, gpu: GpuId, vpn: PageId, _kind: AccessKind) {
        let counts = self.profile.entry(vpn).or_insert_with(|| vec![0; self.num_gpus]);
        counts[gpu.index()] += 1;
    }

    fn epoch_len(&self) -> Option<Cycle> {
        Some(self.interval)
    }

    fn on_epoch(&mut self, _now: Cycle, table: &mut CentralPageTable) -> Vec<Directive> {
        let mut directives = Vec::new();
        for (&vpn, counts) in &self.profile {
            let total: u64 = counts.iter().sum();
            if total < DPC_MIN_ACCESSES {
                continue;
            }
            let (best_gpu, &best) =
                counts.iter().enumerate().max_by_key(|&(_, c)| *c).expect("at least one GPU");
            if (best as f64) < DPC_DOMINANCE * total as f64 {
                continue;
            }
            let to = GpuId::new(best_gpu as u8);
            if table.page(vpn).owner != MemLoc::Gpu(to) {
                directives.push(Directive::MigratePage { vpn, to });
            }
        }
        self.migrations_requested += directives.len() as u64;
        self.profile.clear();
        directives
    }
}

/// Applies ACUD to a configuration: asynchronous CU draining overlaps most
/// of the pipeline flush with execution, cutting the per-migration drain
/// cost (Griffin reports the drain as the dominant migration overhead).
pub fn apply_acud(cfg: &mut SimConfig) {
    cfg.lat.flush_drain = (cfg.lat.flush_drain / 4).max(1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use grit_uvm::FaultKind;

    fn feed(p: &mut GriffinDpcPolicy, gpu: u8, vpn: u64, n: u64) {
        for _ in 0..n {
            p.on_access(0, GpuId::new(gpu), PageId(vpn), AccessKind::Read);
        }
    }

    #[test]
    fn dominated_remote_page_is_migrated_at_epoch() {
        let mut p = GriffinDpcPolicy::new(4);
        let mut t = CentralPageTable::new();
        t.page_mut(PageId(1)).owner = MemLoc::Gpu(GpuId::new(0));
        feed(&mut p, 2, 1, 20);
        feed(&mut p, 0, 1, 2);
        let d = p.on_epoch(DPC_INTERVAL_DEFAULT, &mut t);
        assert_eq!(
            d,
            vec![Directive::MigratePage {
                vpn: PageId(1),
                to: GpuId::new(2)
            }]
        );
        assert_eq!(p.migrations_requested(), 1);
    }

    #[test]
    fn balanced_or_cold_pages_stay_put() {
        let mut p = GriffinDpcPolicy::new(4);
        let mut t = CentralPageTable::new();
        t.page_mut(PageId(1)).owner = MemLoc::Gpu(GpuId::new(0));
        // Balanced: no GPU dominates.
        feed(&mut p, 0, 1, 10);
        feed(&mut p, 1, 1, 10);
        // Cold: below the access floor.
        feed(&mut p, 2, 2, 3);
        assert!(p.on_epoch(0, &mut t).is_empty());
    }

    #[test]
    fn already_local_pages_not_re_migrated() {
        let mut p = GriffinDpcPolicy::new(4);
        let mut t = CentralPageTable::new();
        t.page_mut(PageId(1)).owner = MemLoc::Gpu(GpuId::new(2));
        feed(&mut p, 2, 1, 50);
        assert!(p.on_epoch(0, &mut t).is_empty());
    }

    #[test]
    fn profile_clears_between_epochs() {
        let mut p = GriffinDpcPolicy::new(4);
        let mut t = CentralPageTable::new();
        t.page_mut(PageId(1)).owner = MemLoc::Gpu(GpuId::new(0));
        feed(&mut p, 1, 1, 20);
        assert_eq!(p.on_epoch(0, &mut t).len(), 1);
        // Next epoch with no traffic: nothing to do.
        assert!(p.on_epoch(0, &mut t).is_empty());
    }

    #[test]
    fn fault_behaviour_is_first_touch_like() {
        let mut p = GriffinDpcPolicy::new(4);
        let mut t = CentralPageTable::new();
        let f = FaultInfo {
            now: 0,
            gpu: GpuId::new(1),
            vpn: PageId(3),
            kind: AccessKind::Read,
            fault: FaultKind::Local,
        };
        let cold = t.note_fault(f.gpu, f.vpn, false);
        assert_eq!(
            p.on_fault(&f, &cold, &mut t).resolution,
            Resolution::Migrate
        );
        t.page_mut(PageId(3)).owner = MemLoc::Gpu(GpuId::new(1));
        let warm = t.note_fault(GpuId::new(2), PageId(3), false);
        let f2 = FaultInfo {
            gpu: GpuId::new(2),
            ..f
        };
        assert_eq!(
            p.on_fault(&f2, &warm, &mut t).resolution,
            Resolution::MapRemote
        );
    }

    #[test]
    fn acud_shrinks_drain_cost() {
        let mut cfg = SimConfig::default();
        let before = cfg.lat.flush_drain;
        apply_acud(&mut cfg);
        assert!(cfg.lat.flush_drain < before);
        assert!(cfg.lat.flush_drain >= 1);
    }
}
