//! Trans-FW (Li et al., HPCA 2023): short-circuiting page-table walks in
//! multi-GPU systems via remote forwarding (paper §VI-C3).
//!
//! Trans-FW attacks the *cost of handling* page faults rather than their
//! number: instead of a full host round trip and centralized walk for every
//! fault, translations are forwarded between GPUs and served on the short
//! path. At our abstraction level that is a reduction of the host fault
//! service latency and of the centralized-walk component; the reduction
//! factor below reproduces the relative gain Trans-FW reports over its
//! baseline fault path.

use grit_sim::SimConfig;

/// Fraction of the baseline host fault-handling latency that remains with
/// Trans-FW's forwarded path.
pub const TRANSFW_HOST_FACTOR: f64 = 0.80;

/// Applies Trans-FW to a configuration: fault handling and centralized
/// walks get cheaper; everything else (migration transfers, flushes,
/// invalidations, remote accesses) is untouched.
pub fn apply_transfw(cfg: &mut SimConfig) {
    cfg.lat.host_fault_base =
        ((cfg.lat.host_fault_base as f64 * TRANSFW_HOST_FACTOR) as u64).max(1);
    cfg.lat.central_walk = ((cfg.lat.central_walk as f64 * TRANSFW_HOST_FACTOR) as u64).max(1);
    cfg.lat.fault_service_time =
        ((cfg.lat.fault_service_time as f64 * TRANSFW_HOST_FACTOR) as u64).max(1);
    cfg.lat.fault_replay = (cfg.lat.fault_replay / 2).max(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_only_fault_path_latencies() {
        let base = SimConfig::default();
        let mut cfg = base.clone();
        apply_transfw(&mut cfg);
        assert!(cfg.lat.host_fault_base < base.lat.host_fault_base);
        assert!(cfg.lat.central_walk < base.lat.central_walk);
        assert!(cfg.lat.fault_service_time < base.lat.fault_service_time);
        assert!(cfg.lat.fault_replay < base.lat.fault_replay);
        // Non-fault-path latencies unchanged.
        assert_eq!(cfg.lat.flush_drain, base.lat.flush_drain);
        assert_eq!(cfg.lat.remote_extra, base.lat.remote_extra);
        assert_eq!(cfg.lat.local_dram, base.lat.local_dram);
    }

    #[test]
    fn factors_stay_positive() {
        let mut cfg = SimConfig::default();
        cfg.lat.host_fault_base = 1;
        cfg.lat.central_walk = 1;
        cfg.lat.fault_replay = 1;
        apply_transfw(&mut cfg);
        assert!(cfg.lat.host_fault_base >= 1);
        assert!(cfg.lat.central_walk >= 1);
        assert!(cfg.lat.fault_replay >= 1);
    }
}
