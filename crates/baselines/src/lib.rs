//! # grit-baselines
//!
//! Baseline and state-of-the-art comparator policies for the GRIT
//! reproduction, all implemented against `grit-uvm`'s
//! [`grit_uvm::PlacementPolicy`] mechanism layer:
//!
//! * [`FirstTouchPolicy`] — pin on first touch, peer-access forever (§VI-D).
//! * [`IdealPolicy`] — the unrealizable upper bound of Fig. 1.
//! * [`GriffinDpcPolicy`] + [`apply_acud`] — Griffin's dynamic page
//!   classification and asynchronous CU draining (HPCA 2020, §VI-C1).
//! * [`GpsPolicy`] — the GPS publish-subscribe model (MICRO 2021, §VI-C2).
//! * [`apply_transfw`] — Trans-FW's short-circuited fault path
//!   (HPCA 2023, §VI-C3).
//! * [`TreePrefetcher`] — the CUDA-driver tree-based neighborhood
//!   prefetcher (ISCA 2019, §VI-E), attachable to any policy.
//! * [`OraclePolicy`] — a profile-guided static-best upper bound (not in
//!   the paper; used by the extension ablation).
//!
//! The three uniform schemes themselves (on-touch / access-counter /
//! duplication) live in `grit-uvm` as [`grit_uvm::StaticPolicy`].
//!
//! # Example
//!
//! ```
//! use grit_baselines::{GpsPolicy, GriffinDpcPolicy};
//! use grit_sim::SimConfig;
//! use grit_uvm::UvmDriver;
//!
//! let driver = UvmDriver::new(SimConfig::default(), 1024, Box::new(GpsPolicy::new()));
//! assert_eq!(driver.policy_name(), "gps");
//! let driver = UvmDriver::new(
//!     SimConfig::default(),
//!     1024,
//!     Box::new(GriffinDpcPolicy::new(4)),
//! );
//! assert!(driver.wants_access_feed());
//! ```

#![warn(missing_docs)]

pub mod first_touch;
pub mod gps;
pub mod griffin;
pub mod ideal;
pub mod oracle;
pub mod prefetch;
pub mod transfw;

pub use first_touch::FirstTouchPolicy;
pub use gps::GpsPolicy;
pub use griffin::{
    apply_acud, GriffinDpcPolicy, DPC_DOMINANCE, DPC_INTERVAL_DEFAULT, DPC_MIN_ACCESSES,
};
pub use ideal::IdealPolicy;
pub use oracle::OraclePolicy;
pub use prefetch::{TreePrefetcher, LEAVES_PER_REGION, PAGES_PER_LEAF, PAGES_PER_REGION};
pub use transfw::{apply_transfw, TRANSFW_HOST_FACTOR};
