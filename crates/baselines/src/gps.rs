//! GPS — a global publish-subscribe model for multi-GPU memory (Muthukrishnan
//! et al., MICRO 2021), reimplemented at the page-placement abstraction
//! level (paper §VI-C2).
//!
//! GPS tracks the *subscribers* of every page (the GPUs that accessed it)
//! and keeps a physical replica in each subscriber's local memory; stores
//! are proactively broadcast to all subscribers at fine granularity, so
//! reads are always local and replicas never collapse. The cost — the one
//! GRIT's comparison exploits — is memory capacity: with mostly-shared
//! workloads nearly every page replicates on every GPU, and the 70 %
//! capacity configuration forces heavy eviction/re-subscription traffic.

use grit_sim::Scheme;
use grit_uvm::{
    CentralPageTable, FaultInfo, PageState, PlacementPolicy, PolicyDecision, Resolution, WriteMode,
};

/// The GPS publish-subscribe policy.
///
/// ```
/// use grit_baselines::GpsPolicy;
/// use grit_uvm::{PlacementPolicy, WriteMode};
/// let p = GpsPolicy::new();
/// assert_eq!(p.write_mode(), WriteMode::Broadcast);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct GpsPolicy;

impl GpsPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        GpsPolicy
    }
}

impl PlacementPolicy for GpsPolicy {
    fn name(&self) -> String {
        "gps".into()
    }

    fn on_fault(
        &mut self,
        fault: &FaultInfo,
        page: &PageState,
        table: &mut CentralPageTable,
    ) -> PolicyDecision {
        // Mark as duplication so metrics see the replica-based scheme; the
        // Volta access counters never fire (they only watch AC pages).
        table.set_scheme(fault.vpn, Scheme::Duplication);
        let resolution = if page.owner.gpu().is_none() && !page.is_duplicated() {
            // First toucher becomes the home node of the page.
            Resolution::Migrate
        } else {
            // Every later accessor subscribes: local replica, even for
            // writers (their stores broadcast instead of collapsing).
            Resolution::Duplicate
        };
        PolicyDecision::plain(resolution)
    }

    fn write_mode(&self) -> WriteMode {
        WriteMode::Broadcast
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grit_sim::{AccessKind, GpuId, MemLoc, PageId};
    use grit_uvm::FaultKind;

    fn fault(gpu: u8, kind: AccessKind) -> FaultInfo {
        FaultInfo {
            now: 0,
            gpu: GpuId::new(gpu),
            vpn: PageId(1),
            kind,
            fault: FaultKind::Local,
        }
    }

    #[test]
    fn first_touch_homes_then_subscribes() {
        let mut p = GpsPolicy::new();
        let mut t = CentralPageTable::new();
        let cold = t.note_fault(GpuId::new(0), PageId(1), false);
        assert_eq!(
            p.on_fault(&fault(0, AccessKind::Read), &cold, &mut t).resolution,
            Resolution::Migrate
        );
        t.page_mut(PageId(1)).owner = MemLoc::Gpu(GpuId::new(0));
        let warm = t.note_fault(GpuId::new(1), PageId(1), false);
        assert_eq!(
            p.on_fault(&fault(1, AccessKind::Read), &warm, &mut t).resolution,
            Resolution::Duplicate
        );
        // Writers subscribe too (stores broadcast, no collapse).
        let wr = t.note_fault(GpuId::new(2), PageId(1), true);
        assert_eq!(
            p.on_fault(&fault(2, AccessKind::Write), &wr, &mut t).resolution,
            Resolution::Duplicate
        );
    }

    #[test]
    fn broadcast_write_mode() {
        assert_eq!(GpsPolicy::new().write_mode(), WriteMode::Broadcast);
        assert_eq!(GpsPolicy::new().name(), "gps");
    }
}
