//! Tree-based neighborhood prefetching (Ganguly et al., ISCA 2019), the
//! NVIDIA-driver prefetcher the paper combines with GRIT in §VI-E.
//!
//! The driver maintains full binary trees whose roots span 2 MB regions and
//! whose leaves are 64 KB basic blocks (32 leaves per region). It monitors
//! per-GPU occupancy of every tree node; when a GPU's occupancy of a
//! non-leaf node exceeds 50 % of the node's capacity, the remaining leaves
//! under that node are prefetched to that GPU.

use grit_sim::{FxHashMap, GpuId, PageId};
use grit_uvm::Prefetcher;

/// 4 KB pages per 64 KB leaf block.
pub const PAGES_PER_LEAF: u64 = 16;
/// 64 KB leaves per 2 MB region (tree root capacity).
pub const LEAVES_PER_REGION: u64 = 32;
/// 4 KB pages per 2 MB region.
pub const PAGES_PER_REGION: u64 = PAGES_PER_LEAF * LEAVES_PER_REGION;

/// Per-(region, GPU) leaf-occupancy bitmap.
type OccupancyKey = (u64, GpuId);

/// The tree-based neighborhood prefetcher.
///
/// ```
/// use grit_baselines::TreePrefetcher;
/// use grit_uvm::Prefetcher;
/// let mut p = TreePrefetcher::new();
/// assert_eq!(p.name(), "tree-prefetch");
/// ```
#[derive(Clone, Debug, Default)]
pub struct TreePrefetcher {
    /// 32-bit leaf bitmap per (2 MB region, GPU).
    occupancy: FxHashMap<OccupancyKey, u32>,
    prefetches_issued: u64,
}

impl TreePrefetcher {
    /// Creates the prefetcher.
    pub fn new() -> Self {
        TreePrefetcher::default()
    }

    /// Total pages nominated for prefetch so far.
    pub fn prefetches_issued(&self) -> u64 {
        self.prefetches_issued
    }

    /// Leaf index of a page within its region.
    fn leaf_of(vpn: PageId) -> u32 {
        ((vpn.vpn() % PAGES_PER_REGION) / PAGES_PER_LEAF) as u32
    }

    /// Region index of a page.
    fn region_of(vpn: PageId) -> u64 {
        vpn.vpn() / PAGES_PER_REGION
    }
}

impl Prefetcher for TreePrefetcher {
    fn name(&self) -> String {
        "tree-prefetch".into()
    }

    fn on_fill(&mut self, gpu: GpuId, vpn: PageId, footprint_pages: u64) -> Vec<PageId> {
        let region = Self::region_of(vpn);
        let leaf = Self::leaf_of(vpn);
        let bitmap = self.occupancy.entry((region, gpu)).or_insert(0);
        *bitmap |= 1 << leaf;

        // Walk the binary tree bottom-up: node sizes 2, 4, 8, 16, 32
        // leaves. Find the largest node containing this leaf whose
        // occupancy exceeds half its capacity, then prefetch its untouched
        // leaves.
        let mut chosen: Option<(u32, u32)> = None; // (node_start_leaf, node_size)
        let mut size = 2u32;
        while size <= LEAVES_PER_REGION as u32 {
            let start = leaf / size * size;
            let mask = if size == 32 {
                u32::MAX
            } else {
                ((1u32 << size) - 1) << start
            };
            let occupied = (*bitmap & mask).count_ones();
            if occupied * 2 > size {
                chosen = Some((start, size));
            }
            size *= 2;
        }

        let Some((start, size)) = chosen else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for l in start..start + size {
            if *bitmap & (1 << l) != 0 {
                continue;
            }
            *bitmap |= 1 << l;
            let first_page = region * PAGES_PER_REGION + l as u64 * PAGES_PER_LEAF;
            for p in first_page..(first_page + PAGES_PER_LEAF).min(footprint_pages) {
                out.push(PageId(p));
            }
        }
        self.prefetches_issued += out.len() as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_leaf_of_a_pair_triggers_sibling_prefetch() {
        let mut p = TreePrefetcher::new();
        let g = GpuId::new(0);
        // First leaf of the pair (leaf 0): occupancy 1/2 = not > 50%.
        let out = p.on_fill(g, PageId(0), 10_000);
        // Node of size 2 with one leaf occupied: 1*2 > 2 is false.
        assert!(out.is_empty());
        // Second touch lands in leaf 1 -> pair fully occupied -> larger
        // nodes may trigger: node size 4 has 2/4 occupied (not > 50%)...
        let out = p.on_fill(g, PageId(PAGES_PER_LEAF), 10_000);
        // Pair node (leaves 0-1) is 100% occupied but has nothing left to
        // prefetch; size-4 node is exactly 50% (not >). Nothing emitted.
        assert!(out.is_empty());
        // Touch leaf 2: size-4 node now 3/4 occupied -> leaf 3 prefetched.
        let out = p.on_fill(g, PageId(2 * PAGES_PER_LEAF), 10_000);
        assert_eq!(out.len(), PAGES_PER_LEAF as usize);
        assert_eq!(out[0], PageId(3 * PAGES_PER_LEAF));
    }

    #[test]
    fn occupancy_is_per_gpu() {
        let mut p = TreePrefetcher::new();
        p.on_fill(GpuId::new(0), PageId(0), 10_000);
        p.on_fill(GpuId::new(0), PageId(PAGES_PER_LEAF), 10_000);
        // GPU1 starts cold in the same region.
        let out = p.on_fill(GpuId::new(1), PageId(0), 10_000);
        assert!(out.is_empty());
    }

    #[test]
    fn footprint_bounds_prefetch_targets() {
        let mut p = TreePrefetcher::new();
        let g = GpuId::new(0);
        p.on_fill(g, PageId(0), 40);
        p.on_fill(g, PageId(16), 40);
        let out = p.on_fill(g, PageId(32), 40);
        // Leaf 3 covers pages 48..64 but the footprint ends at 40.
        assert!(out.is_empty());
    }

    #[test]
    fn prefetched_leaves_not_renominated() {
        let mut p = TreePrefetcher::new();
        let g = GpuId::new(0);
        p.on_fill(g, PageId(0), 10_000);
        p.on_fill(g, PageId(16), 10_000);
        let first = p.on_fill(g, PageId(32), 10_000);
        assert!(!first.is_empty());
        // Touching the prefetched leaf again emits nothing new for it.
        let again = p.on_fill(g, PageId(48), 10_000);
        assert!(!again.iter().any(|pg| pg.vpn() < 64));
        assert!(p.prefetches_issued() >= first.len() as u64);
    }

    #[test]
    fn region_math() {
        assert_eq!(TreePrefetcher::region_of(PageId(511)), 0);
        assert_eq!(TreePrefetcher::region_of(PageId(512)), 1);
        assert_eq!(TreePrefetcher::leaf_of(PageId(17)), 1);
        assert_eq!(PAGES_PER_REGION, 512);
    }
}
