//! The unrealizable Ideal of Fig. 1: every page read (except the first cold
//! touch) hits local memory, and every write completes with zero NUMA
//! latency. Used only to expose the optimization headroom.

use grit_uvm::{
    CentralPageTable, FaultInfo, PageState, PlacementPolicy, PolicyDecision, Resolution,
};

/// The Ideal upper-bound policy.
///
/// ```
/// use grit_baselines::IdealPolicy;
/// use grit_uvm::PlacementPolicy;
/// let p = IdealPolicy::new();
/// assert!(p.is_ideal());
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct IdealPolicy;

impl IdealPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        IdealPolicy
    }
}

impl PlacementPolicy for IdealPolicy {
    fn name(&self) -> String {
        "ideal".into()
    }

    fn on_fault(
        &mut self,
        _fault: &FaultInfo,
        _page: &PageState,
        _table: &mut CentralPageTable,
    ) -> PolicyDecision {
        PolicyDecision::plain(Resolution::Ideal)
    }

    fn is_ideal(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grit_sim::{AccessKind, GpuId, PageId};
    use grit_uvm::FaultKind;

    #[test]
    fn always_ideal() {
        let mut p = IdealPolicy::new();
        let mut t = CentralPageTable::new();
        let f = FaultInfo {
            now: 0,
            gpu: GpuId::new(3),
            vpn: PageId(9),
            kind: AccessKind::Write,
            fault: FaultKind::Local,
        };
        let st = t.note_fault(f.gpu, f.vpn, true);
        let d = p.on_fault(&f, &st, &mut t);
        assert_eq!(d.resolution, Resolution::Ideal);
        assert_eq!(d.decision_latency, 0);
        assert_eq!(p.name(), "ideal");
    }
}
