//! A profile-guided *static oracle*: run the workload once, classify every
//! page from its whole-run attributes (Table III applied offline with
//! perfect knowledge), and replay with the per-page best static scheme.
//!
//! This is not in the paper's evaluation — it is the natural upper bound
//! for any *static* per-page placement, sitting between the best uniform
//! scheme and the unrealizable Ideal. GRIT approaching the oracle shows
//! its online fault-driven classification recovers most of what offline
//! profiling would; GRIT *beating* it on an app shows the value of
//! re-deciding per phase (the oracle cannot express Fig. 10's read-only →
//! read-write transitions).

use grit_metrics::PageAttrTracker;
use grit_sim::{FxHashMap, PageId, Scheme};
use grit_uvm::{
    CentralPageTable, FaultInfo, PageState, PlacementPolicy, PolicyDecision, Resolution,
};

/// The static oracle policy.
///
/// ```
/// use grit_baselines::OraclePolicy;
/// use grit_metrics::PageAttrTracker;
/// use grit_sim::{AccessKind, GpuId, PageId, Scheme};
/// use grit_uvm::PlacementPolicy;
///
/// let mut profile = PageAttrTracker::new();
/// profile.record(GpuId::new(0), PageId(1), AccessKind::Read);
/// profile.record(GpuId::new(1), PageId(1), AccessKind::Read);
/// let oracle = OraclePolicy::from_profile(&profile);
/// assert_eq!(oracle.scheme_for(PageId(1)), Scheme::Duplication);
/// assert_eq!(oracle.name(), "oracle");
/// ```
#[derive(Clone, Debug)]
pub struct OraclePolicy {
    schemes: FxHashMap<PageId, Scheme>,
}

impl OraclePolicy {
    /// Builds the oracle from a profiling run's page attributes, applying
    /// Table III with whole-run knowledge: private pages pin with
    /// on-touch, read-shared pages duplicate, written shared pages use
    /// counter-based migration.
    pub fn from_profile(profile: &PageAttrTracker) -> Self {
        let schemes = profile
            .iter_pages()
            .map(|(vpn, sharers, written, _)| {
                let scheme = match (sharers > 1, written) {
                    (false, _) => Scheme::OnTouch,
                    (true, false) => Scheme::Duplication,
                    (true, true) => Scheme::AccessCounter,
                };
                (vpn, scheme)
            })
            .collect();
        OraclePolicy { schemes }
    }

    /// The oracle's scheme for a page (on-touch for unprofiled pages).
    pub fn scheme_for(&self, vpn: PageId) -> Scheme {
        self.schemes.get(&vpn).copied().unwrap_or(Scheme::OnTouch)
    }

    /// Pages with a non-default classification.
    pub fn classified_pages(&self) -> usize {
        self.schemes.len()
    }
}

impl PlacementPolicy for OraclePolicy {
    fn name(&self) -> String {
        "oracle".into()
    }

    fn on_fault(
        &mut self,
        fault: &FaultInfo,
        page: &PageState,
        table: &mut CentralPageTable,
    ) -> PolicyDecision {
        let scheme = self.scheme_for(fault.vpn);
        table.set_scheme(fault.vpn, scheme);
        let resolution = match scheme {
            Scheme::OnTouch => Resolution::Migrate,
            Scheme::AccessCounter => {
                // Host-resident pages still land on first touch (Volta
                // semantics); peers then map remotely.
                if page.owner.gpu().is_none() && !page.is_duplicated() {
                    Resolution::Migrate
                } else {
                    Resolution::MapRemote
                }
            }
            Scheme::Duplication => Resolution::Duplicate,
        };
        PolicyDecision::plain(resolution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grit_sim::{AccessKind, GpuId};
    use grit_uvm::FaultKind;

    fn profile() -> PageAttrTracker {
        let mut t = PageAttrTracker::new();
        // Page 1: private.
        t.record(GpuId::new(0), PageId(1), AccessKind::Write);
        // Page 2: read-shared.
        t.record(GpuId::new(0), PageId(2), AccessKind::Read);
        t.record(GpuId::new(1), PageId(2), AccessKind::Read);
        // Page 3: written and shared.
        t.record(GpuId::new(0), PageId(3), AccessKind::Write);
        t.record(GpuId::new(2), PageId(3), AccessKind::Read);
        t
    }

    #[test]
    fn classification_applies_table3_offline() {
        let o = OraclePolicy::from_profile(&profile());
        assert_eq!(o.scheme_for(PageId(1)), Scheme::OnTouch);
        assert_eq!(o.scheme_for(PageId(2)), Scheme::Duplication);
        assert_eq!(o.scheme_for(PageId(3)), Scheme::AccessCounter);
        assert_eq!(o.scheme_for(PageId(99)), Scheme::OnTouch);
        assert_eq!(o.classified_pages(), 3);
    }

    #[test]
    fn faults_resolve_per_classification() {
        let mut o = OraclePolicy::from_profile(&profile());
        let mut table = CentralPageTable::new();
        let f = FaultInfo {
            now: 0,
            gpu: GpuId::new(1),
            vpn: PageId(2),
            kind: AccessKind::Read,
            fault: FaultKind::Local,
        };
        let st = table.note_fault(f.gpu, f.vpn, false);
        let d = o.on_fault(&f, &st, &mut table);
        assert_eq!(d.resolution, Resolution::Duplicate);
        assert_eq!(table.scheme_of(PageId(2)), Some(Scheme::Duplication));
    }
}
