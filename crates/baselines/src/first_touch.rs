//! First-touch migration (paper §VI-D): the page is pinned on the GPU that
//! touches it first; every other GPU accesses it through peer load/stores
//! for the rest of the execution.

use grit_sim::Scheme;
use grit_uvm::{
    CentralPageTable, FaultInfo, PageState, PlacementPolicy, PolicyDecision, Resolution,
};

/// The first-touch pinning policy.
///
/// ```
/// use grit_baselines::FirstTouchPolicy;
/// use grit_uvm::PlacementPolicy;
/// assert_eq!(FirstTouchPolicy::new().name(), "first-touch");
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct FirstTouchPolicy;

impl FirstTouchPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        FirstTouchPolicy
    }
}

impl PlacementPolicy for FirstTouchPolicy {
    fn name(&self) -> String {
        "first-touch".into()
    }

    fn on_fault(
        &mut self,
        fault: &FaultInfo,
        page: &PageState,
        table: &mut CentralPageTable,
    ) -> PolicyDecision {
        // Scheme bits stay at on-touch so the Volta counters (which only
        // fire for access-counter pages) never migrate a pinned page.
        table.set_scheme(fault.vpn, Scheme::OnTouch);
        let resolution = if page.owner.gpu().is_none() {
            Resolution::Migrate // first touch: land the page here, forever
        } else {
            Resolution::MapRemote // peer access, no migration ever again
        };
        PolicyDecision::plain(resolution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grit_sim::{AccessKind, GpuId, MemLoc, PageId};
    use grit_uvm::FaultKind;

    #[test]
    fn pins_on_first_toucher_and_peers_afterwards() {
        let mut p = FirstTouchPolicy::new();
        let mut t = CentralPageTable::new();
        let f = FaultInfo {
            now: 0,
            gpu: GpuId::new(0),
            vpn: PageId(1),
            kind: AccessKind::Read,
            fault: FaultKind::Local,
        };
        let cold = t.note_fault(f.gpu, f.vpn, false);
        assert_eq!(
            p.on_fault(&f, &cold, &mut t).resolution,
            Resolution::Migrate
        );

        t.page_mut(PageId(1)).owner = MemLoc::Gpu(GpuId::new(0));
        let f2 = FaultInfo {
            gpu: GpuId::new(2),
            ..f
        };
        let warm = t.note_fault(f2.gpu, f2.vpn, false);
        assert_eq!(
            p.on_fault(&f2, &warm, &mut t).resolution,
            Resolution::MapRemote
        );
        // Counters never fire: scheme bits are not access-counter.
        assert_eq!(t.scheme_of(PageId(1)), Some(Scheme::OnTouch));
    }
}
