//! Property tests for the set-associative LRU cache against a naive model.

use proptest::prelude::*;

use grit_mem::SetAssocCache;

/// A trivially correct reference model: per-set vectors in MRU order.
#[derive(Default)]
struct ModelCache {
    sets: Vec<Vec<(u64, u32)>>,
    ways: usize,
}

impl ModelCache {
    fn new(sets: usize, ways: usize) -> Self {
        ModelCache {
            sets: vec![Vec::new(); sets],
            ways,
        }
    }

    fn set_of(&self, k: u64) -> usize {
        (k % self.sets.len() as u64) as usize
    }

    fn get(&mut self, k: u64) -> Option<u32> {
        let s = self.set_of(k);
        let set = &mut self.sets[s];
        let pos = set.iter().position(|&(key, _)| key == k)?;
        let e = set.remove(pos);
        set.insert(0, e);
        Some(set[0].1)
    }

    fn insert(&mut self, k: u64, v: u32) -> Option<(u64, u32)> {
        let s = self.set_of(k);
        let set = &mut self.sets[s];
        if let Some(pos) = set.iter().position(|&(key, _)| key == k) {
            set.remove(pos);
            set.insert(0, (k, v));
            return None;
        }
        let victim = if set.len() == self.ways {
            set.pop()
        } else {
            None
        };
        set.insert(0, (k, v));
        victim
    }

    fn invalidate(&mut self, k: u64) -> Option<u32> {
        let s = self.set_of(k);
        let set = &mut self.sets[s];
        let pos = set.iter().position(|&(key, _)| key == k)?;
        Some(set.remove(pos).1)
    }

    fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[derive(Clone, Debug)]
enum Op {
    Get(u64),
    Insert(u64, u32),
    Invalidate(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..64).prop_map(Op::Get),
        ((0u64..64), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
        (0u64..64).prop_map(Op::Invalidate),
    ]
}

proptest! {
    #[test]
    fn cache_matches_reference_model(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let mut real: SetAssocCache<u64, u32> = SetAssocCache::new(4, 3);
        let mut model = ModelCache::new(4, 3);
        for op in ops {
            match op {
                Op::Get(k) => {
                    let got = real.get(&k).map(|v| *v);
                    prop_assert_eq!(got, model.get(k));
                }
                Op::Insert(k, v) => {
                    prop_assert_eq!(real.insert(k, v), model.insert(k, v));
                }
                Op::Invalidate(k) => {
                    prop_assert_eq!(real.invalidate(&k), model.invalidate(k));
                }
            }
            prop_assert_eq!(real.len(), model.len());
            prop_assert!(real.len() <= real.capacity());
        }
    }

    #[test]
    fn capacity_never_exceeded(keys in prop::collection::vec(any::<u64>(), 1..600)) {
        let mut c: SetAssocCache<u64, ()> = SetAssocCache::with_entries(32, 4);
        for k in keys {
            c.insert(k, ());
            prop_assert!(c.len() <= 32);
        }
    }

    #[test]
    fn resident_keys_always_hit(keys in prop::collection::vec(0u64..16, 1..100)) {
        // With 16 possible keys and capacity 32 over 8 sets / 4 ways, every
        // set holds at most 2 distinct keys -> nothing is ever evicted and
        // every earlier insert must still hit.
        let mut c: SetAssocCache<u64, ()> = SetAssocCache::new(8, 4);
        let mut inserted = std::collections::HashSet::new();
        for k in keys {
            c.insert(k, ());
            inserted.insert(k);
            for &p in &inserted {
                prop_assert!(c.peek(&p).is_some(), "key {} lost", p);
            }
        }
    }

    #[test]
    fn stats_account_every_lookup(keys in prop::collection::vec(0u64..32, 1..200)) {
        let mut c: SetAssocCache<u64, ()> = SetAssocCache::new(4, 2);
        let mut lookups = 0u64;
        for k in keys {
            let _ = c.get(&k);
            lookups += 1;
            c.insert(k, ());
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, lookups);
    }
}
