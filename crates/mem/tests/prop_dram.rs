//! Property tests for the GPU memory LRU against a naive model.

use proptest::prelude::*;

use grit_mem::GpuMemory;
use grit_sim::PageId;

/// Reference model: a Vec in MRU order.
struct ModelLru {
    pages: Vec<u64>,
    capacity: usize,
}

impl ModelLru {
    fn new(capacity: usize) -> Self {
        ModelLru {
            pages: Vec::new(),
            capacity,
        }
    }

    fn insert(&mut self, p: u64) -> Option<u64> {
        if let Some(pos) = self.pages.iter().position(|&x| x == p) {
            self.pages.remove(pos);
            self.pages.insert(0, p);
            return None;
        }
        let victim = if self.pages.len() == self.capacity {
            self.pages.pop()
        } else {
            None
        };
        self.pages.insert(0, p);
        victim
    }

    fn touch(&mut self, p: u64) -> bool {
        if let Some(pos) = self.pages.iter().position(|&x| x == p) {
            self.pages.remove(pos);
            self.pages.insert(0, p);
            true
        } else {
            false
        }
    }

    fn remove(&mut self, p: u64) -> bool {
        if let Some(pos) = self.pages.iter().position(|&x| x == p) {
            self.pages.remove(pos);
            true
        } else {
            false
        }
    }
}

#[derive(Clone, Debug)]
enum Op {
    Insert(u64),
    Touch(u64),
    Remove(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..40).prop_map(Op::Insert),
        (0u64..40).prop_map(Op::Touch),
        (0u64..40).prop_map(Op::Remove),
    ]
}

proptest! {
    #[test]
    fn lru_matches_reference_model(ops in prop::collection::vec(op_strategy(), 1..500)) {
        let mut real = GpuMemory::new(8);
        let mut model = ModelLru::new(8);
        for op in ops {
            match op {
                Op::Insert(p) => {
                    prop_assert_eq!(
                        real.insert(PageId(p)),
                        model.insert(p).map(PageId)
                    );
                }
                Op::Touch(p) => {
                    prop_assert_eq!(real.touch(PageId(p)), model.touch(p));
                }
                Op::Remove(p) => {
                    prop_assert_eq!(real.remove(PageId(p)), model.remove(p));
                }
            }
            prop_assert_eq!(real.resident(), model.pages.len());
            prop_assert!(real.resident() <= real.capacity());
            for &p in &model.pages {
                prop_assert!(real.contains(PageId(p)));
            }
        }
    }

    #[test]
    fn eviction_count_is_monotone(pages in prop::collection::vec(any::<u64>(), 1..300)) {
        let mut m = GpuMemory::new(4);
        let mut last = 0;
        for p in pages {
            m.insert(PageId(p));
            let e = m.evictions();
            prop_assert!(e >= last);
            last = e;
        }
    }
}
