//! Property tests for the TLB hierarchy and the walker pool.

use proptest::prelude::*;

use grit_mem::{TlbHierarchy, TranslationLevel, WalkerPool};
use grit_sim::{PageId, SimConfig, WalkConfig};

proptest! {
    #[test]
    fn tlb_fill_then_translate_always_hits_l1(pages in prop::collection::vec(0u64..1 << 20, 1..64)) {
        let cfg = SimConfig::default();
        let mut t = TlbHierarchy::new(cfg.l1_tlb, cfg.l2_tlb);
        for &p in &pages {
            t.fill(PageId(p));
            let (level, lat) = t.translate(PageId(p));
            prop_assert_eq!(level, TranslationLevel::L1);
            prop_assert_eq!(lat, cfg.l1_tlb.lookup_latency);
        }
    }

    #[test]
    fn tlb_invalidate_forces_walk(pages in prop::collection::vec(0u64..1 << 20, 1..64)) {
        let cfg = SimConfig::default();
        let mut t = TlbHierarchy::new(cfg.l1_tlb, cfg.l2_tlb);
        for &p in &pages {
            t.fill(PageId(p));
            t.invalidate(PageId(p));
            let (level, _) = t.translate(PageId(p));
            prop_assert_eq!(level, TranslationLevel::Walk, "page {} survived", p);
        }
    }

    #[test]
    fn tlb_levels_never_exceed_capacity(pages in prop::collection::vec(any::<u32>(), 1..2000)) {
        let cfg = SimConfig::default();
        let mut t = TlbHierarchy::new(cfg.l1_tlb, cfg.l2_tlb);
        for &p in &pages {
            t.fill(PageId(p as u64));
        }
        prop_assert!(t.l1().len() <= cfg.l1_tlb.entries);
        prop_assert!(t.l2().len() <= cfg.l2_tlb.entries);
    }

    #[test]
    fn walker_results_are_causal_and_bounded(
        walks in prop::collection::vec((0u64..1_000_000, any::<u32>()), 1..128)
    ) {
        let cfg = WalkConfig::default();
        let mut pool = WalkerPool::new(cfg);
        let max_latency = cfg.levels as u64 * cfg.cycles_per_level;
        let mut sorted = walks;
        sorted.sort();
        for (now, vpn) in sorted {
            let o = pool.walk(now, PageId(vpn as u64));
            prop_assert!(o.done_at > now, "walks take time");
            prop_assert!(o.levels_fetched >= 1 && o.levels_fetched <= cfg.levels);
            prop_assert!(
                o.done_at - now <= o.queue_wait + max_latency,
                "done {} vs now {} + wait {} + max {}",
                o.done_at,
                now,
                o.queue_wait,
                max_latency
            );
        }
        prop_assert!(pool.mean_levels() >= 1.0 && pool.mean_levels() <= cfg.levels as f64);
    }

    #[test]
    fn walker_repeat_walks_get_cheaper_never_pricier(vpn in any::<u32>()) {
        let mut pool = WalkerPool::new(WalkConfig::default());
        let first = pool.walk(0, PageId(vpn as u64));
        let second = pool.walk(first.done_at + 1_000, PageId(vpn as u64));
        prop_assert!(second.levels_fetched <= first.levels_fetched);
    }
}
