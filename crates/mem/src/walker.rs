//! GMMU page-table-walker pool (Table I: 8 shared walkers, 100 cycles per
//! radix level, 128-entry shared page-walk cache, 64-entry walk queue).

use grit_sim::{Cycle, PageId, WalkConfig};

use crate::cache::{CacheUndo, SetAssocCache};

/// Result of scheduling one page-table walk.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WalkOutcome {
    /// Cycle at which the walk finishes and the translation (or fault
    /// detection) is available.
    pub done_at: Cycle,
    /// Radix levels actually fetched from memory (upper levels can be
    /// skipped thanks to the page-walk cache).
    pub levels_fetched: u32,
    /// Cycles the request waited for a free walker (queueing delay).
    pub queue_wait: Cycle,
}

/// A pool of hardware page-table walkers shared by all CUs of one GPU.
///
/// Walk latency is `levels_fetched * cycles_per_level`; the page-walk cache
/// holds upper-level (non-leaf) entries keyed by the VPN prefix of each
/// level, so walks to nearby pages skip the shared prefix levels. Requests
/// contend for `walkers` units; when more than `queue_capacity` requests are
/// already waiting, additional requests stall until the queue drains (the
/// queue itself is modelled through walker availability times).
///
/// ```
/// use grit_mem::WalkerPool;
/// use grit_sim::{PageId, WalkConfig};
/// let mut w = WalkerPool::new(WalkConfig::default());
/// let first = w.walk(0, PageId(0));
/// assert_eq!(first.levels_fetched, 4);        // cold: all levels
/// let second = w.walk(first.done_at, PageId(1));
/// assert_eq!(second.levels_fetched, 1);       // neighbours share upper levels
/// ```
#[derive(Clone, Debug)]
pub struct WalkerPool {
    cfg: WalkConfig,
    walker_free_at: Vec<Cycle>,
    walk_cache: SetAssocCache<u64, ()>,
    /// Completion times of walks still outstanding (bounded by the walk
    /// queue: a request arriving with the queue full waits for its head).
    outstanding: std::collections::VecDeque<Cycle>,
    queue_full_stalls: u64,
    walks: u64,
    total_levels: u64,
}

/// Bits of VPN consumed per radix level (x86-style 512-entry tables).
const BITS_PER_LEVEL: u32 = 9;

/// Undo record for one [`WalkerPool::walk_recorded`] call.
#[derive(Clone, Debug)]
pub struct WalkUndo {
    /// How many retired completion times the call appended to the arena.
    pub retired: u32,
    stalled: bool,
    cache_ops: Vec<CacheUndo<u64, ()>>,
    walker: u32,
    prev_free_at: Cycle,
    levels: u32,
}

impl WalkerPool {
    /// Builds the pool.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero walkers or zero levels.
    pub fn new(cfg: WalkConfig) -> Self {
        assert!(cfg.walkers > 0 && cfg.levels > 0, "invalid walk config");
        let ways = 4.min(cfg.walk_cache_entries);
        WalkerPool {
            cfg,
            walker_free_at: vec![0; cfg.walkers],
            walk_cache: SetAssocCache::with_entries(
                cfg.walk_cache_entries - cfg.walk_cache_entries % ways,
                ways,
            ),
            outstanding: std::collections::VecDeque::new(),
            queue_full_stalls: 0,
            walks: 0,
            total_levels: 0,
        }
    }

    fn level_key(vpn: PageId, level: u32) -> u64 {
        // Tag the level into the top bits so different levels never alias.
        (vpn.vpn() >> (BITS_PER_LEVEL * level)) | ((level as u64) << 58)
    }

    /// Schedules a walk for `vpn` arriving at cycle `now`.
    pub fn walk(&mut self, mut now: Cycle, vpn: PageId) -> WalkOutcome {
        let arrival = now;
        // Retire completed walks, then enforce the walk-queue bound: a
        // request hitting a full queue waits for the queue head to retire.
        while self.outstanding.front().is_some_and(|&t| t <= now) {
            self.outstanding.pop_front();
        }
        if self.outstanding.len() >= self.cfg.queue_capacity + self.cfg.walkers {
            if let Some(&head) = self.outstanding.front() {
                now = now.max(head);
                self.queue_full_stalls += 1;
            }
        }
        // Determine how many levels must be fetched: find the deepest
        // non-leaf level cached; everything below it (plus the leaf) is
        // fetched. Levels are numbered leaf = 0 .. root = levels-1.
        let mut levels_fetched = self.cfg.levels;
        for level in 1..self.cfg.levels {
            if self.walk_cache.get(&Self::level_key(vpn, level)).is_some() {
                levels_fetched = level;
                break;
            }
        }
        // Install the prefix entries this walk observed.
        for level in 1..self.cfg.levels {
            self.walk_cache.insert(Self::level_key(vpn, level), ());
        }

        // Pick the earliest-free walker.
        let (idx, &free_at) = self
            .walker_free_at
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .expect("at least one walker");
        let start = now.max(free_at);
        let latency = levels_fetched as Cycle * self.cfg.cycles_per_level;
        let done = start + latency;
        self.walker_free_at[idx] = done;

        self.outstanding.push_back(done);
        self.walks += 1;
        self.total_levels += levels_fetched as u64;
        WalkOutcome {
            done_at: done,
            levels_fetched,
            queue_wait: start - arrival,
        }
    }

    /// [`WalkerPool::walk`] with an undo record for speculative rollback.
    ///
    /// Outstanding-walk completion times retired by this call are appended
    /// to `retired` (the caller's undo arena) so [`WalkerPool::undo_walk`]
    /// can reinstate them in order.
    pub fn walk_recorded(
        &mut self,
        mut now: Cycle,
        vpn: PageId,
        retired: &mut Vec<Cycle>,
    ) -> (WalkOutcome, WalkUndo) {
        let arrival = now;
        let start = retired.len();
        while self.outstanding.front().is_some_and(|&t| t <= now) {
            retired.push(self.outstanding.pop_front().expect("front checked"));
        }
        let mut stalled = false;
        if self.outstanding.len() >= self.cfg.queue_capacity + self.cfg.walkers {
            if let Some(&head) = self.outstanding.front() {
                now = now.max(head);
                self.queue_full_stalls += 1;
                stalled = true;
            }
        }
        let mut cache_ops = Vec::new();
        let mut levels_fetched = self.cfg.levels;
        for level in 1..self.cfg.levels {
            let (hit, u) = self.walk_cache.get_recorded(&Self::level_key(vpn, level));
            cache_ops.push(u);
            if hit {
                levels_fetched = level;
                break;
            }
        }
        for level in 1..self.cfg.levels {
            cache_ops.push(self.walk_cache.insert_recorded(Self::level_key(vpn, level), ()));
        }
        let (idx, &free_at) = self
            .walker_free_at
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .expect("at least one walker");
        let start_cycle = now.max(free_at);
        let latency = levels_fetched as Cycle * self.cfg.cycles_per_level;
        let done = start_cycle + latency;
        self.walker_free_at[idx] = done;
        self.outstanding.push_back(done);
        self.walks += 1;
        self.total_levels += levels_fetched as u64;
        (
            WalkOutcome {
                done_at: done,
                levels_fetched,
                queue_wait: start_cycle - arrival,
            },
            WalkUndo {
                retired: (retired.len() - start) as u32,
                stalled,
                cache_ops,
                walker: idx as u32,
                prev_free_at: free_at,
                levels: levels_fetched,
            },
        )
    }

    /// Reverses one [`WalkerPool::walk_recorded`] call. `retired` must be
    /// exactly the values that call appended to the arena.
    pub fn undo_walk(&mut self, undo: WalkUndo, retired: &[Cycle]) {
        debug_assert_eq!(undo.retired as usize, retired.len());
        self.outstanding.pop_back();
        self.walker_free_at[undo.walker as usize] = undo.prev_free_at;
        for u in undo.cache_ops.into_iter().rev() {
            self.walk_cache.undo(u);
        }
        if undo.stalled {
            self.queue_full_stalls -= 1;
        }
        self.walks -= 1;
        self.total_levels -= undo.levels as u64;
        // Retired values were popped from the front in order; push them
        // back in reverse so the original order is restored.
        for &t in retired.iter().rev() {
            self.outstanding.push_front(t);
        }
    }

    /// Number of walks serviced so far.
    pub fn walks(&self) -> u64 {
        self.walks
    }

    /// Mean levels fetched per walk (page-walk-cache effectiveness).
    pub fn mean_levels(&self) -> f64 {
        if self.walks == 0 {
            0.0
        } else {
            self.total_levels as f64 / self.walks as f64
        }
    }

    /// Walks that stalled on a full walk queue.
    pub fn queue_full_stalls(&self) -> u64 {
        self.queue_full_stalls
    }

    /// Flushes the page-walk cache (part of a full GPU flush).
    pub fn flush_walk_cache(&mut self) {
        self.walk_cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> WalkerPool {
        WalkerPool::new(WalkConfig::default())
    }

    #[test]
    fn cold_walk_touches_all_levels() {
        let mut w = pool();
        let o = w.walk(0, PageId(12345));
        assert_eq!(o.levels_fetched, 4);
        assert_eq!(o.done_at, 400);
        assert_eq!(o.queue_wait, 0);
    }

    #[test]
    fn walk_cache_shortens_neighbour_walks() {
        let mut w = pool();
        w.walk(0, PageId(512));
        // Same level-1 prefix (>>9 equal): only the leaf is fetched.
        let o = w.walk(1000, PageId(513));
        assert_eq!(o.levels_fetched, 1);
        // Different level-1 prefix but same level-2 prefix: two levels.
        let o = w.walk(2000, PageId(1024));
        assert_eq!(o.levels_fetched, 2);
    }

    #[test]
    fn walkers_serialize_when_saturated() {
        let mut w = pool();
        // Issue 9 cold walks at cycle 0 to distinct far-apart pages: the
        // ninth must wait for a walker.
        let mut outcomes = Vec::new();
        for i in 0..9u64 {
            outcomes.push(w.walk(0, PageId(i << 40)));
        }
        assert!(outcomes[..8].iter().all(|o| o.queue_wait == 0));
        assert!(outcomes[8].queue_wait > 0);
    }

    #[test]
    fn flush_forgets_prefixes() {
        let mut w = pool();
        w.walk(0, PageId(512));
        w.flush_walk_cache();
        let o = w.walk(1000, PageId(513));
        assert_eq!(o.levels_fetched, 4);
    }

    #[test]
    fn full_walk_queue_stalls_arrivals() {
        let mut w = pool();
        // Saturate: 8 walkers + 64 queue slots of cold walks issued at 0.
        for i in 0..(8 + 64) as u64 {
            w.walk(0, PageId(i << 40));
        }
        assert_eq!(w.queue_full_stalls(), 0);
        // The next arrival must wait for the queue head.
        let o = w.walk(0, PageId(999 << 40));
        assert!(o.queue_wait > 0);
        assert_eq!(w.queue_full_stalls(), 1);
    }

    #[test]
    fn recorded_walks_match_and_undo_exactly() {
        let mut a = pool();
        let mut b = pool();
        // A mixed sequence: cold walks, neighbours sharing prefixes, and
        // enough load that outstanding walks retire mid-sequence.
        let seq: Vec<(Cycle, u64)> = vec![
            (0, 0),
            (0, 513),
            (100, 1 << 40),
            (450, 514),
            (900, 2 << 40),
            (2000, 1),
        ];
        let mut arena = Vec::new();
        let mut undos = Vec::new();
        let mark = |arena: &Vec<Cycle>| arena.len();
        let mut marks = Vec::new();
        for &(now, p) in &seq {
            marks.push(mark(&arena));
            let (out, u) = a.walk_recorded(now, PageId(p), &mut arena);
            assert_eq!(out, b.walk(now, PageId(p)));
            undos.push(u);
        }
        // Roll everything back in reverse; arena slices pop like a stack.
        for (u, m) in undos.into_iter().zip(marks).rev() {
            let vals: Vec<Cycle> = arena.split_off(m);
            a.undo_walk(u, &vals);
        }
        let fresh = pool();
        assert_eq!(a.walks(), fresh.walks());
        assert_eq!(a.queue_full_stalls(), fresh.queue_full_stalls());
        assert_eq!(a.mean_levels(), fresh.mean_levels());
        // Behavioural check: the rolled-back pool walks like a fresh one.
        let mut fresh = fresh;
        for &(now, p) in &seq {
            assert_eq!(a.walk(now, PageId(p)), fresh.walk(now, PageId(p)));
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut w = pool();
        w.walk(0, PageId(0));
        w.walk(500, PageId(1));
        assert_eq!(w.walks(), 2);
        assert!((w.mean_levels() - 2.5).abs() < 1e-9); // 4 then 1
    }
}
