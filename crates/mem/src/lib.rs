//! # grit-mem
//!
//! Memory-hierarchy building blocks for the GRIT reproduction: a generic
//! set-associative LRU cache (reused for TLBs, the page-walk cache, GPU L2
//! data caches and GRIT's PA-Cache), per-GPU TLB hierarchies, the GMMU
//! page-table-walker pool of Table I, per-GPU DRAM with LRU eviction for
//! oversubscription modelling, and per-GPU local page tables.
//!
//! # Example
//!
//! ```
//! use grit_mem::{SetAssocCache, Tlb};
//! use grit_sim::{PageId, TlbGeometry};
//!
//! let mut tlb = Tlb::new(TlbGeometry { entries: 32, ways: 32, lookup_latency: 1 });
//! assert!(!tlb.access(PageId(5)));
//! tlb.fill(PageId(5));
//! assert!(tlb.access(PageId(5)));
//!
//! let mut c: SetAssocCache<u64, &str> = SetAssocCache::new(4, 2);
//! c.insert(1, "a");
//! assert_eq!(c.get(&1), Some(&mut "a"));
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod dram;
pub mod page_table;
pub mod tlb;
pub mod walker;

pub use cache::{CacheKey, CacheStats, CacheUndo, SetAssocCache};
pub use dram::GpuMemory;
pub use page_table::{LocalPageTable, Mapping};
pub use tlb::{Tlb, TlbFillUndo, TlbHierarchy, TlbTranslateUndo, TranslationLevel};
pub use walker::{WalkUndo, WalkerPool};
