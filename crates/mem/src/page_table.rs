//! Per-GPU local page table.
//!
//! Each GPU holds translations only for pages it has faulted on; the
//! authoritative state lives in the UVM driver's centralized table
//! (`grit-uvm`). A local entry maps a virtual page either to local memory,
//! to a remote GPU's memory (counter-based scheme, §II-B2), or to a local
//! read-only replica (duplication, §II-B3).

use grit_sim::{FxHashMap, GpuId, PageId};

/// How a GPU's local page table resolves a virtual page.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mapping {
    /// The page lives in this GPU's own memory and is writable.
    Local,
    /// The translation points at another GPU's memory; accesses go over
    /// NVLink at cache-line granularity.
    Remote(GpuId),
    /// The translation points at host (CPU) memory; accesses go over PCIe.
    /// This is where access-counter pages sit before their counter trips
    /// (NVIDIA leaves the page in place and counts remote accesses).
    RemoteHost,
    /// A local read-only replica exists (page duplication); writes raise a
    /// page protection fault.
    Replica,
}

impl Mapping {
    /// Whether a write through this mapping is legal without a fault.
    pub fn writable(self) -> bool {
        matches!(
            self,
            Mapping::Local | Mapping::Remote(_) | Mapping::RemoteHost
        )
    }
}

/// A GPU's local page table.
///
/// ```
/// use grit_mem::{LocalPageTable, Mapping};
/// use grit_sim::PageId;
///
/// let mut pt = LocalPageTable::new();
/// assert_eq!(pt.lookup(PageId(1)), None);
/// pt.map(PageId(1), Mapping::Local);
/// assert_eq!(pt.lookup(PageId(1)), Some(Mapping::Local));
/// assert!(pt.invalidate(PageId(1)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct LocalPageTable {
    entries: FxHashMap<PageId, Mapping>,
    invalidations: u64,
}

impl LocalPageTable {
    /// An empty table.
    pub fn new() -> Self {
        LocalPageTable::default()
    }

    /// Current mapping for a page, if any.
    pub fn lookup(&self, vpn: PageId) -> Option<Mapping> {
        self.entries.get(&vpn).copied()
    }

    /// Installs or replaces a mapping.
    pub fn map(&mut self, vpn: PageId, mapping: Mapping) {
        self.entries.insert(vpn, mapping);
    }

    /// Removes a mapping; `true` if one was present.
    pub fn invalidate(&mut self, vpn: PageId) -> bool {
        let present = self.entries.remove(&vpn).is_some();
        if present {
            self.invalidations += 1;
        }
        present
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no valid entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Count of PTE invalidations performed (coherence traffic indicator).
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Iterates `(page, mapping)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&PageId, &Mapping)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_lookup_invalidate() {
        let mut pt = LocalPageTable::new();
        pt.map(PageId(3), Mapping::Remote(GpuId::new(1)));
        assert_eq!(pt.lookup(PageId(3)), Some(Mapping::Remote(GpuId::new(1))));
        pt.map(PageId(3), Mapping::Local);
        assert_eq!(pt.lookup(PageId(3)), Some(Mapping::Local));
        assert_eq!(pt.len(), 1);
        assert!(pt.invalidate(PageId(3)));
        assert!(!pt.invalidate(PageId(3)));
        assert!(pt.is_empty());
        assert_eq!(pt.invalidations(), 1);
    }

    #[test]
    fn writability() {
        assert!(Mapping::Local.writable());
        assert!(Mapping::Remote(GpuId::new(0)).writable());
        assert!(Mapping::RemoteHost.writable());
        assert!(!Mapping::Replica.writable());
    }
}
