//! Per-GPU DRAM occupancy with LRU page eviction.
//!
//! The paper sizes GPU memory to 70 % of the application footprint
//! (Table I) precisely to exercise oversubscription: page duplication and
//! GPS inflate resident sets, forcing evictions, re-faults and
//! re-duplications (§II-B3, §VI-C2). [`GpuMemory`] tracks which virtual
//! pages are resident in one GPU's DRAM and picks LRU victims when space
//! runs out.

use grit_sim::{FxHashMap, FxHashSet, PageId};

/// Intrusive doubly-linked LRU list over a slab of nodes.
#[derive(Clone, Debug)]
struct LruList {
    nodes: Vec<LruNode>,
    free: Vec<usize>,
    head: Option<usize>, // MRU
    tail: Option<usize>, // LRU
}

#[derive(Clone, Copy, Debug)]
struct LruNode {
    page: PageId,
    prev: Option<usize>,
    next: Option<usize>,
}

impl LruList {
    fn new() -> Self {
        LruList {
            nodes: Vec::new(),
            free: Vec::new(),
            head: None,
            tail: None,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        match prev {
            Some(p) => self.nodes[p].next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.nodes[n].prev = prev,
            None => self.tail = prev,
        }
        self.nodes[idx].prev = None;
        self.nodes[idx].next = None;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = None;
        self.nodes[idx].next = self.head;
        if let Some(h) = self.head {
            self.nodes[h].prev = Some(idx);
        }
        self.head = Some(idx);
        if self.tail.is_none() {
            self.tail = Some(idx);
        }
    }

    fn alloc(&mut self, page: PageId) -> usize {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = LruNode {
                page,
                prev: None,
                next: None,
            };
            idx
        } else {
            self.nodes.push(LruNode {
                page,
                prev: None,
                next: None,
            });
            self.nodes.len() - 1
        }
    }

    fn release(&mut self, idx: usize) {
        self.free.push(idx);
    }
}

/// Resident-page tracker for one GPU's local memory.
///
/// ```
/// use grit_mem::GpuMemory;
/// use grit_sim::PageId;
///
/// let mut m = GpuMemory::new(2);
/// assert_eq!(m.insert(PageId(1)), None);
/// assert_eq!(m.insert(PageId(2)), None);
/// m.touch(PageId(1));                      // 1 becomes MRU
/// assert_eq!(m.insert(PageId(3)), Some(PageId(2)));
/// assert!(m.contains(PageId(1)));
/// ```
#[derive(Clone, Debug)]
pub struct GpuMemory {
    capacity_pages: usize,
    index: FxHashMap<PageId, usize>,
    dirty: FxHashSet<PageId>,
    lru: LruList,
    evictions: u64,
}

impl GpuMemory {
    /// Memory holding at most `capacity_pages` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_pages` is zero.
    pub fn new(capacity_pages: usize) -> Self {
        assert!(capacity_pages > 0, "GPU memory capacity must be non-zero");
        GpuMemory {
            capacity_pages,
            index: FxHashMap::with_capacity_and_hasher(capacity_pages, Default::default()),
            dirty: FxHashSet::default(),
            lru: LruList::new(),
            evictions: 0,
        }
    }

    /// Marks a resident page as modified since it arrived; dirty victims
    /// must be written back on eviction, clean ones can be dropped.
    pub fn mark_dirty(&mut self, page: PageId) {
        if self.index.contains_key(&page) {
            self.dirty.insert(page);
        }
    }

    /// Whether the page has been written since becoming resident.
    pub fn is_dirty(&self, page: PageId) -> bool {
        self.dirty.contains(&page)
    }

    /// Makes `page` resident as MRU. If memory is full, evicts and returns
    /// the LRU page (never the page just inserted). Inserting an already
    /// resident page just refreshes its recency.
    pub fn insert(&mut self, page: PageId) -> Option<PageId> {
        if let Some(&idx) = self.index.get(&page) {
            self.lru.unlink(idx);
            self.lru.push_front(idx);
            return None;
        }
        let victim = if self.index.len() == self.capacity_pages {
            let tail = self.lru.tail.expect("full memory has a tail");
            let victim_page = self.lru.nodes[tail].page;
            self.lru.unlink(tail);
            self.lru.release(tail);
            self.index.remove(&victim_page);
            self.evictions += 1;
            Some(victim_page)
        } else {
            None
        };
        // A fresh arrival starts clean.
        self.dirty.remove(&page);
        let idx = self.lru.alloc(page);
        self.lru.push_front(idx);
        self.index.insert(page, idx);
        victim
    }

    /// Refreshes recency of a resident page; `true` if it was resident.
    pub fn touch(&mut self, page: PageId) -> bool {
        if let Some(&idx) = self.index.get(&page) {
            self.lru.unlink(idx);
            self.lru.push_front(idx);
            true
        } else {
            false
        }
    }

    /// Removes a page (migration away / invalidated replica); `true` if it
    /// was resident.
    pub fn remove(&mut self, page: PageId) -> bool {
        if let Some(idx) = self.index.remove(&page) {
            self.lru.unlink(idx);
            self.lru.release(idx);
            self.dirty.remove(&page);
            true
        } else {
            false
        }
    }

    /// ECC frame retirement: permanently removes `frames` page frames
    /// from this memory's capacity (capacity never drops below one frame)
    /// and force-evicts LRU pages until the survivors fit. Returns the
    /// evicted pages in eviction (LRU-first) order, each with the dirty
    /// bit it held at eviction — the caller re-places them, writing dirty
    /// ones back first.
    pub fn retire_frames(&mut self, frames: u64) -> Vec<(PageId, bool)> {
        let frames = usize::try_from(frames).unwrap_or(usize::MAX).min(self.capacity_pages - 1);
        self.capacity_pages -= frames;
        let mut evicted = Vec::new();
        while self.index.len() > self.capacity_pages {
            let tail = self.lru.tail.expect("overfull memory has a tail");
            let page = self.lru.nodes[tail].page;
            self.lru.unlink(tail);
            self.lru.release(tail);
            self.index.remove(&page);
            let dirty = self.dirty.remove(&page);
            self.evictions += 1;
            evicted.push((page, dirty));
        }
        evicted
    }

    /// Whether the page is resident.
    pub fn contains(&self, page: PageId) -> bool {
        self.index.contains_key(&page)
    }

    /// Number of resident pages.
    pub fn resident(&self) -> usize {
        self.index.len()
    }

    /// Capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity_pages
    }

    /// Occupancy in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        self.index.len() as f64 / self.capacity_pages as f64
    }

    /// Total pages evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_evicts_lru() {
        let mut m = GpuMemory::new(3);
        for p in 0..3 {
            assert_eq!(m.insert(PageId(p)), None);
        }
        assert_eq!(m.resident(), 3);
        // 0 is LRU.
        assert_eq!(m.insert(PageId(3)), Some(PageId(0)));
        assert_eq!(m.evictions(), 1);
        assert!(!m.contains(PageId(0)));
    }

    #[test]
    fn touch_protects_from_eviction() {
        let mut m = GpuMemory::new(2);
        m.insert(PageId(1));
        m.insert(PageId(2));
        assert!(m.touch(PageId(1)));
        assert_eq!(m.insert(PageId(3)), Some(PageId(2)));
        assert!(!m.touch(PageId(2)));
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut m = GpuMemory::new(2);
        m.insert(PageId(1));
        m.insert(PageId(2));
        assert_eq!(m.insert(PageId(1)), None);
        assert_eq!(m.insert(PageId(3)), Some(PageId(2)));
    }

    #[test]
    fn remove_frees_space() {
        let mut m = GpuMemory::new(2);
        m.insert(PageId(1));
        m.insert(PageId(2));
        assert!(m.remove(PageId(1)));
        assert!(!m.remove(PageId(1)));
        assert_eq!(m.insert(PageId(3)), None);
        assert_eq!(m.resident(), 2);
    }

    #[test]
    fn occupancy_reporting() {
        let mut m = GpuMemory::new(4);
        assert_eq!(m.occupancy(), 0.0);
        m.insert(PageId(1));
        m.insert(PageId(2));
        assert!((m.occupancy() - 0.5).abs() < 1e-12);
        assert_eq!(m.capacity(), 4);
    }

    #[test]
    fn eviction_order_is_true_lru_under_churn() {
        let mut m = GpuMemory::new(3);
        m.insert(PageId(1));
        m.insert(PageId(2));
        m.insert(PageId(3));
        m.touch(PageId(1)); // order (MRU->LRU): 1,3,2
        m.touch(PageId(2)); // order: 2,1,3
        assert_eq!(m.insert(PageId(4)), Some(PageId(3)));
        assert_eq!(m.insert(PageId(5)), Some(PageId(1)));
        assert_eq!(m.insert(PageId(6)), Some(PageId(2)));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = GpuMemory::new(0);
    }

    #[test]
    fn retiring_frames_force_evicts_lru_first() {
        let mut m = GpuMemory::new(4);
        for p in 0..4 {
            m.insert(PageId(p));
        }
        m.touch(PageId(0)); // order (MRU->LRU): 0,3,2,1
        m.mark_dirty(PageId(1));
        let evicted = m.retire_frames(2);
        assert_eq!(evicted, vec![(PageId(1), true), (PageId(2), false)]);
        assert_eq!(m.capacity(), 2);
        assert_eq!(m.resident(), 2);
        assert_eq!(m.evictions(), 2);
        assert!(m.contains(PageId(0)) && m.contains(PageId(3)));
        assert!(!m.is_dirty(PageId(1)));
    }

    #[test]
    fn retirement_never_drops_below_one_frame() {
        let mut m = GpuMemory::new(3);
        m.insert(PageId(7));
        let evicted = m.retire_frames(100);
        assert_eq!(m.capacity(), 1);
        assert!(evicted.is_empty(), "one resident page still fits");
        // Retiring when already at the floor is a no-op.
        assert!(m.retire_frames(5).is_empty());
        assert_eq!(m.capacity(), 1);
        assert!(m.contains(PageId(7)));
    }

    #[test]
    fn retirement_with_spare_room_evicts_nothing() {
        let mut m = GpuMemory::new(8);
        m.insert(PageId(1));
        m.insert(PageId(2));
        assert!(m.retire_frames(3).is_empty());
        assert_eq!(m.capacity(), 5);
        assert_eq!(m.resident(), 2);
    }

    #[test]
    fn dirty_tracking_follows_residency() {
        let mut m = GpuMemory::new(2);
        m.insert(PageId(1));
        assert!(!m.is_dirty(PageId(1)));
        m.mark_dirty(PageId(1));
        assert!(m.is_dirty(PageId(1)));
        // Marking a non-resident page is a no-op.
        m.mark_dirty(PageId(9));
        assert!(!m.is_dirty(PageId(9)));
        // Removal clears the dirty bit...
        m.remove(PageId(1));
        assert!(!m.is_dirty(PageId(1)));
        // ...and re-insertion starts clean.
        m.insert(PageId(1));
        assert!(!m.is_dirty(PageId(1)));
    }
}
