//! Per-GPU TLB hierarchy (Table I: CU-private L1 TLBs aggregated into one
//! structure, plus a shared L2 TLB).

use grit_sim::{Cycle, PageId, TlbGeometry};

use crate::cache::{CacheStats, CacheUndo, SetAssocCache};

/// Which level satisfied a translation request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TranslationLevel {
    /// Hit in the L1 TLB.
    L1,
    /// Missed L1, hit L2.
    L2,
    /// Missed both; a page-table walk is required.
    Walk,
}

/// One set-associative TLB level.
#[derive(Clone, Debug)]
pub struct Tlb {
    cache: SetAssocCache<PageId, ()>,
    lookup_latency: Cycle,
}

impl Tlb {
    /// Builds a TLB with the given geometry.
    pub fn new(geo: TlbGeometry) -> Self {
        Tlb {
            cache: SetAssocCache::with_entries(geo.entries, geo.ways),
            lookup_latency: geo.lookup_latency,
        }
    }

    /// Looks up a translation; `true` on hit (also refreshes LRU).
    pub fn access(&mut self, vpn: PageId) -> bool {
        self.cache.get(&vpn).is_some()
    }

    /// Installs a translation.
    pub fn fill(&mut self, vpn: PageId) {
        self.cache.insert(vpn, ());
    }

    /// [`Tlb::access`] with an undo record for speculative rollback.
    pub fn access_recorded(&mut self, vpn: PageId) -> (bool, CacheUndo<PageId, ()>) {
        self.cache.get_recorded(&vpn)
    }

    /// [`Tlb::fill`] with an undo record for speculative rollback.
    pub fn fill_recorded(&mut self, vpn: PageId) -> CacheUndo<PageId, ()> {
        self.cache.insert_recorded(vpn, ())
    }

    /// Reverses one recorded operation (reverse order required).
    pub fn undo(&mut self, undo: CacheUndo<PageId, ()>) {
        self.cache.undo(undo);
    }

    /// Drops one translation (PTE invalidation); `true` if it was present.
    pub fn invalidate(&mut self, vpn: PageId) -> bool {
        self.cache.invalidate(&vpn).is_some()
    }

    /// Drops everything (full TLB shootdown).
    pub fn flush(&mut self) {
        self.cache.clear();
    }

    /// Lookup latency in cycles.
    pub fn lookup_latency(&self) -> Cycle {
        self.lookup_latency
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Resident translations.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether no translations are resident.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

/// The two-level per-GPU TLB of the baseline configuration.
///
/// ```
/// use grit_mem::{TlbHierarchy, TranslationLevel};
/// use grit_sim::{PageId, SimConfig};
///
/// let cfg = SimConfig::default();
/// let mut t = TlbHierarchy::new(cfg.l1_tlb, cfg.l2_tlb);
/// let (level, lat) = t.translate(PageId(3));
/// assert_eq!(level, TranslationLevel::Walk);
/// assert_eq!(lat, 1 + 10); // L1 probe + L2 probe
/// t.fill(PageId(3));
/// assert_eq!(t.translate(PageId(3)).0, TranslationLevel::L1);
/// ```
#[derive(Clone, Debug)]
pub struct TlbHierarchy {
    l1: Tlb,
    l2: Tlb,
}

/// Undo record for one [`TlbHierarchy::translate_recorded`] call.
#[derive(Clone, Debug)]
pub struct TlbTranslateUndo {
    l1_get: CacheUndo<PageId, ()>,
    l2_get: Option<CacheUndo<PageId, ()>>,
    l1_fill: Option<CacheUndo<PageId, ()>>,
}

/// Undo record for one [`TlbHierarchy::fill_recorded`] call.
#[derive(Clone, Debug)]
pub struct TlbFillUndo {
    l2: CacheUndo<PageId, ()>,
    l1: CacheUndo<PageId, ()>,
}

impl TlbHierarchy {
    /// Builds the hierarchy from the two geometries.
    pub fn new(l1: TlbGeometry, l2: TlbGeometry) -> Self {
        TlbHierarchy {
            l1: Tlb::new(l1),
            l2: Tlb::new(l2),
        }
    }

    /// Probes L1 then L2; returns the satisfying level and the cycles spent
    /// probing. An L2 hit refills L1. A double miss costs both probe
    /// latencies before the walk begins (the paper's "Local" category then
    /// accounts the walk itself).
    pub fn translate(&mut self, vpn: PageId) -> (TranslationLevel, Cycle) {
        let l1_lat = self.l1.lookup_latency();
        if self.l1.access(vpn) {
            return (TranslationLevel::L1, l1_lat);
        }
        let l2_lat = self.l2.lookup_latency();
        if self.l2.access(vpn) {
            self.l1.fill(vpn);
            return (TranslationLevel::L2, l1_lat + l2_lat);
        }
        (TranslationLevel::Walk, l1_lat + l2_lat)
    }

    /// Installs a translation into both levels (walk completion).
    pub fn fill(&mut self, vpn: PageId) {
        self.l2.fill(vpn);
        self.l1.fill(vpn);
    }

    /// [`TlbHierarchy::translate`] with an undo record.
    pub fn translate_recorded(
        &mut self,
        vpn: PageId,
    ) -> ((TranslationLevel, Cycle), TlbTranslateUndo) {
        let l1_lat = self.l1.lookup_latency();
        let (l1_hit, l1_get) = self.l1.access_recorded(vpn);
        if l1_hit {
            return (
                (TranslationLevel::L1, l1_lat),
                TlbTranslateUndo {
                    l1_get,
                    l2_get: None,
                    l1_fill: None,
                },
            );
        }
        let l2_lat = self.l2.lookup_latency();
        let (l2_hit, l2_get) = self.l2.access_recorded(vpn);
        if l2_hit {
            let l1_fill = self.l1.fill_recorded(vpn);
            return (
                (TranslationLevel::L2, l1_lat + l2_lat),
                TlbTranslateUndo {
                    l1_get,
                    l2_get: Some(l2_get),
                    l1_fill: Some(l1_fill),
                },
            );
        }
        (
            (TranslationLevel::Walk, l1_lat + l2_lat),
            TlbTranslateUndo {
                l1_get,
                l2_get: Some(l2_get),
                l1_fill: None,
            },
        )
    }

    /// Reverses one [`TlbHierarchy::translate_recorded`] call.
    pub fn undo_translate(&mut self, undo: TlbTranslateUndo) {
        if let Some(u) = undo.l1_fill {
            self.l1.undo(u);
        }
        if let Some(u) = undo.l2_get {
            self.l2.undo(u);
        }
        self.l1.undo(undo.l1_get);
    }

    /// [`TlbHierarchy::fill`] with an undo record.
    pub fn fill_recorded(&mut self, vpn: PageId) -> TlbFillUndo {
        TlbFillUndo {
            l2: self.l2.fill_recorded(vpn),
            l1: self.l1.fill_recorded(vpn),
        }
    }

    /// Reverses one [`TlbHierarchy::fill_recorded`] call.
    pub fn undo_fill(&mut self, undo: TlbFillUndo) {
        self.l1.undo(undo.l1);
        self.l2.undo(undo.l2);
    }

    /// Invalidates one translation from both levels; `true` if either level
    /// held it.
    pub fn invalidate(&mut self, vpn: PageId) -> bool {
        let a = self.l1.invalidate(vpn);
        let b = self.l2.invalidate(vpn);
        a || b
    }

    /// Full shootdown of both levels.
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
    }

    /// The L1 level.
    pub fn l1(&self) -> &Tlb {
        &self.l1
    }

    /// The L2 level.
    pub fn l2(&self) -> &Tlb {
        &self.l2
    }

    /// `(L1, L2)` hit/miss statistics, for per-GPU report series.
    pub fn level_stats(&self) -> (CacheStats, CacheStats) {
        (self.l1.stats(), self.l2.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grit_sim::SimConfig;

    fn hierarchy() -> TlbHierarchy {
        let cfg = SimConfig::default();
        TlbHierarchy::new(cfg.l1_tlb, cfg.l2_tlb)
    }

    #[test]
    fn level_stats_expose_both_levels() {
        let mut t = hierarchy();
        let _ = t.translate(PageId(7)); // miss in both levels
        t.fill(PageId(7));
        let _ = t.translate(PageId(7)); // L1 hit
        let (l1, l2) = t.level_stats();
        assert_eq!(l1.hits, 1);
        assert_eq!(l1.misses, 1);
        assert_eq!(l2.misses, 1);
    }

    #[test]
    fn l2_hit_refills_l1() {
        let mut t = hierarchy();
        t.fill(PageId(7));
        // Evict from L1 only by invalidating L1 directly.
        assert!(t.l1.invalidate(PageId(7)));
        let (level, _) = t.translate(PageId(7));
        assert_eq!(level, TranslationLevel::L2);
        // Now L1 holds it again.
        assert_eq!(t.translate(PageId(7)).0, TranslationLevel::L1);
    }

    #[test]
    fn invalidate_removes_from_both() {
        let mut t = hierarchy();
        t.fill(PageId(9));
        assert!(t.invalidate(PageId(9)));
        assert_eq!(t.translate(PageId(9)).0, TranslationLevel::Walk);
        assert!(!t.invalidate(PageId(9)));
    }

    #[test]
    fn flush_empties_everything() {
        let mut t = hierarchy();
        for p in 0..100 {
            t.fill(PageId(p));
        }
        t.flush();
        assert!(t.l1().is_empty());
        assert!(t.l2().is_empty());
    }

    #[test]
    fn latency_accumulates_on_misses() {
        let mut t = hierarchy();
        let (_, lat_walk) = t.translate(PageId(1));
        assert_eq!(lat_walk, 11);
        t.fill(PageId(1));
        let (_, lat_l1) = t.translate(PageId(1));
        assert_eq!(lat_l1, 1);
    }

    #[test]
    fn recorded_translate_and_fill_undo_exactly() {
        // Tiny geometries force evictions so every undo variant exercises.
        let geo = TlbGeometry {
            entries: 4,
            ways: 2,
            lookup_latency: 1,
        };
        let mut t = TlbHierarchy::new(geo, geo);
        let mut shadow = TlbHierarchy::new(geo, geo);
        for p in [0u64, 1, 4, 0] {
            t.fill(PageId(p));
            shadow.fill(PageId(p));
        }
        let mut translate_undos = Vec::new();
        let mut fill_undos = Vec::new();
        for p in [0u64, 2, 5, 1, 4, 9, 0, 2] {
            let (out, u) = t.translate_recorded(PageId(p));
            assert_eq!(out, shadow.translate(PageId(p)));
            translate_undos.push(u);
            if out.0 == TranslationLevel::Walk {
                fill_undos.push(Some(t.fill_recorded(PageId(p))));
                shadow.fill(PageId(p));
            } else {
                fill_undos.push(None);
            }
        }
        let reference = TlbHierarchy::new(geo, geo);
        let mut reference = reference;
        for p in [0u64, 1, 4, 0] {
            reference.fill(PageId(p));
        }
        for (tu, fu) in translate_undos.into_iter().zip(fill_undos).rev() {
            if let Some(f) = fu {
                t.undo_fill(f);
            }
            t.undo_translate(tu);
        }
        let same = |a: &TlbHierarchy, b: &TlbHierarchy| {
            assert_eq!(a.level_stats(), b.level_stats());
            assert_eq!(a.l1().len(), b.l1().len());
            assert_eq!(a.l2().len(), b.l2().len());
        };
        same(&t, &reference);
        // The rolled-back hierarchy behaves identically going forward.
        for p in [0u64, 2, 7] {
            assert_eq!(t.translate(PageId(p)), reference.translate(PageId(p)));
        }
    }

    #[test]
    fn capacity_bounded_by_geometry() {
        let mut t = Tlb::new(TlbGeometry {
            entries: 8,
            ways: 2,
            lookup_latency: 1,
        });
        for p in 0..100 {
            t.fill(PageId(p));
        }
        assert!(t.len() <= 8);
    }
}
