//! Generic set-associative cache with true-LRU replacement.
//!
//! One implementation serves every hardware lookup structure in the
//! reproduction: L1/L2 TLBs, the page-walk cache, the per-GPU L2 data cache,
//! and GRIT's 64-entry 4-way PA-Cache (paper Fig. 12, which indexes by the
//! low VPN bits — exactly what [`CacheKey::index`] provides for page keys).

use grit_sim::{GpuId, PageId};

/// Maps a key to its set-index source value.
///
/// The set is chosen as `index() % sets`, i.e. the low bits of the returned
/// value — matching the paper's PA-Cache ("the lower 4 bits of VPN").
pub trait CacheKey: Eq + Clone {
    /// Value whose low bits select the set.
    fn index(&self) -> u64;
}

impl CacheKey for u64 {
    fn index(&self) -> u64 {
        *self
    }
}

impl CacheKey for PageId {
    fn index(&self) -> u64 {
        self.vpn()
    }
}

impl CacheKey for (GpuId, PageId) {
    fn index(&self) -> u64 {
        // Mix the GPU into the high bits so per-GPU streams do not collide
        // pathologically in small shared structures.
        self.1.vpn() ^ ((self.0.index() as u64) << 57)
    }
}

impl CacheKey for (PageId, u16) {
    fn index(&self) -> u64 {
        // Page + line-in-page: lines of one page spread across sets.
        (self.0.vpn() << 6) | self.1 as u64 & 0x3f
    }
}

/// Hit/miss/eviction counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Lookups that found the key.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries displaced by insertion.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; zero when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Clone, Debug)]
struct Way<K, V> {
    key: K,
    value: V,
}

/// Inverse record of one mutating cache operation, produced by
/// [`SetAssocCache::get_recorded`] / [`SetAssocCache::insert_recorded`] and
/// consumed by [`SetAssocCache::undo`].
///
/// Undo records must be applied in exact reverse order of the operations
/// that produced them; doing so restores the cache — contents, LRU order
/// within every set, and statistics — byte for byte. This powers
/// speculative-execution rollback in the time-sharded runner at a cost
/// proportional to the work undone instead of the cache size.
#[derive(Clone, Debug)]
pub enum CacheUndo<K, V> {
    /// A `get` hit promoted the way at `pos` to MRU.
    Hit {
        /// Set index.
        set: u32,
        /// Position the way was promoted from.
        pos: u16,
    },
    /// A `get` missed; only the miss counter moved.
    Miss,
    /// An `insert` placed a fresh key without displacing anything.
    Inserted {
        /// Set index.
        set: u32,
    },
    /// An `insert` displaced the LRU way of a full set.
    Evicted {
        /// Set index.
        set: u32,
        /// Displaced key.
        key: K,
        /// Displaced value.
        value: V,
    },
    /// An `insert` over an existing key promoted it from `pos` and
    /// overwrote its value.
    Replaced {
        /// Set index.
        set: u32,
        /// Position the way was promoted from.
        pos: u16,
        /// The overwritten value.
        value: V,
    },
}

/// Set-associative cache with per-set true-LRU order (front = MRU).
///
/// ```
/// use grit_mem::SetAssocCache;
/// let mut c: SetAssocCache<u64, u32> = SetAssocCache::new(1, 2);
/// assert_eq!(c.insert(1, 10), None);
/// assert_eq!(c.insert(2, 20), None);
/// c.get(&1);                            // 1 becomes MRU
/// let evicted = c.insert(3, 30);        // 2 is LRU, displaced
/// assert_eq!(evicted, Some((2, 20)));
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocCache<K, V> {
    sets: Vec<Vec<Way<K, V>>>,
    ways: usize,
    stats: CacheStats,
}

impl<K: CacheKey, V> SetAssocCache<K, V> {
    /// A cache with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(
            sets > 0 && ways > 0,
            "cache must have non-zero sets and ways"
        );
        SetAssocCache {
            sets: (0..sets).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            stats: CacheStats::default(),
        }
    }

    /// A cache from a total entry count and associativity.
    ///
    /// # Panics
    ///
    /// Panics if `ways` does not divide `entries`.
    pub fn with_entries(entries: usize, ways: usize) -> Self {
        assert!(
            ways > 0 && entries.is_multiple_of(ways),
            "entries must be a multiple of ways"
        );
        Self::new(entries / ways, ways)
    }

    fn set_of(&self, key: &K) -> usize {
        (key.index() % self.sets.len() as u64) as usize
    }

    /// Looks the key up, counting a hit or miss and promoting a hit to MRU.
    pub fn get(&mut self, key: &K) -> Option<&mut V> {
        let set = self.set_of(key);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|w| &w.key == key) {
            self.stats.hits += 1;
            let w = ways.remove(pos);
            ways.insert(0, w);
            Some(&mut ways[0].value)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// [`SetAssocCache::get`] with an undo record; returns whether the key
    /// hit. Designed for unit-payload caches, so the value itself is not
    /// exposed.
    pub fn get_recorded(&mut self, key: &K) -> (bool, CacheUndo<K, V>) {
        let set = self.set_of(key);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|w| &w.key == key) {
            self.stats.hits += 1;
            let w = ways.remove(pos);
            ways.insert(0, w);
            (
                true,
                CacheUndo::Hit {
                    set: set as u32,
                    pos: pos as u16,
                },
            )
        } else {
            self.stats.misses += 1;
            (false, CacheUndo::Miss)
        }
    }

    /// [`SetAssocCache::insert`] with an undo record; the displaced entry
    /// (if any) is captured in the record instead of being returned.
    pub fn insert_recorded(&mut self, key: K, value: V) -> CacheUndo<K, V> {
        let set = self.set_of(&key);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|w| w.key == key) {
            let mut w = ways.remove(pos);
            let prev = std::mem::replace(&mut w.value, value);
            ways.insert(0, w);
            return CacheUndo::Replaced {
                set: set as u32,
                pos: pos as u16,
                value: prev,
            };
        }
        if ways.len() == self.ways {
            self.stats.evictions += 1;
            let victim = ways.pop().expect("full set is non-empty");
            ways.insert(0, Way { key, value });
            CacheUndo::Evicted {
                set: set as u32,
                key: victim.key,
                value: victim.value,
            }
        } else {
            ways.insert(0, Way { key, value });
            CacheUndo::Inserted { set: set as u32 }
        }
    }

    /// Reverses one recorded operation. Records must be undone in exact
    /// reverse order of the operations that produced them.
    pub fn undo(&mut self, undo: CacheUndo<K, V>) {
        match undo {
            CacheUndo::Hit { set, pos } => {
                self.stats.hits -= 1;
                let ways = &mut self.sets[set as usize];
                let w = ways.remove(0);
                ways.insert(pos as usize, w);
            }
            CacheUndo::Miss => self.stats.misses -= 1,
            CacheUndo::Inserted { set } => {
                self.sets[set as usize].remove(0);
            }
            CacheUndo::Evicted { set, key, value } => {
                self.stats.evictions -= 1;
                let ways = &mut self.sets[set as usize];
                ways.remove(0);
                ways.push(Way { key, value });
            }
            CacheUndo::Replaced { set, pos, value } => {
                let ways = &mut self.sets[set as usize];
                let mut w = ways.remove(0);
                w.value = value;
                ways.insert(pos as usize, w);
            }
        }
    }

    /// Looks the key up without touching recency or statistics.
    pub fn peek(&self, key: &K) -> Option<&V> {
        let set = self.set_of(key);
        self.sets[set].iter().find(|w| &w.key == key).map(|w| &w.value)
    }

    /// Inserts (or overwrites) the entry as MRU; returns the displaced LRU
    /// entry if the set was full with distinct keys.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        let set = self.set_of(&key);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|w| w.key == key) {
            let mut w = ways.remove(pos);
            w.value = value;
            ways.insert(0, w);
            return None;
        }
        let victim = if ways.len() == self.ways {
            self.stats.evictions += 1;
            ways.pop().map(|w| (w.key, w.value))
        } else {
            None
        };
        ways.insert(0, Way { key, value });
        victim
    }

    /// Removes an entry, returning its value.
    pub fn invalidate(&mut self, key: &K) -> Option<V> {
        let set = self.set_of(key);
        let ways = &mut self.sets[set];
        let pos = ways.iter().position(|w| &w.key == key)?;
        Some(ways.remove(pos).value)
    }

    /// Removes every entry for which `pred` returns true; returns how many
    /// were removed. Used for flushing all lines/translations of a page.
    pub fn invalidate_matching<F: FnMut(&K) -> bool>(&mut self, mut pred: F) -> usize {
        let mut removed = 0;
        for ways in &mut self.sets {
            let before = ways.len();
            ways.retain(|w| !pred(&w.key));
            removed += before - ways.len();
        }
        removed
    }

    /// Empties the cache (TLB shootdown / cache flush).
    pub fn clear(&mut self) {
        for ways in &mut self.sets {
            ways.clear();
        }
    }

    /// Current number of resident entries.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Iterates all resident `(key, value)` pairs (no recency effect).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.sets.iter().flatten().map(|w| (&w.key, &w.value))
    }

    /// Drains every entry, returning them; used for write-back-all.
    pub fn drain_all(&mut self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.len());
        for ways in &mut self.sets {
            out.extend(ways.drain(..).map(|w| (w.key, w.value)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_accounting() {
        let mut c: SetAssocCache<u64, ()> = SetAssocCache::new(4, 2);
        assert!(c.get(&7).is_none());
        c.insert(7, ());
        assert!(c.get(&7).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_within_set() {
        // One set, two ways; keys 0,4,8 all map to set 0 of 4 sets? No:
        // force a single set so collisions are guaranteed.
        let mut c: SetAssocCache<u64, u32> = SetAssocCache::new(1, 2);
        c.insert(1, 1);
        c.insert(2, 2);
        c.get(&1);
        assert_eq!(c.insert(3, 3), Some((2, 2)));
        assert!(c.peek(&1).is_some());
        assert!(c.peek(&3).is_some());
        assert!(c.peek(&2).is_none());
    }

    #[test]
    fn reinsert_updates_value_without_eviction() {
        let mut c: SetAssocCache<u64, u32> = SetAssocCache::new(1, 2);
        c.insert(1, 1);
        c.insert(2, 2);
        assert_eq!(c.insert(1, 99), None);
        assert_eq!(c.peek(&1), Some(&99));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn set_selection_uses_low_index_bits() {
        let mut c: SetAssocCache<u64, ()> = SetAssocCache::new(4, 1);
        // Keys 0 and 4 collide (same low bits mod 4); 1 does not.
        c.insert(0, ());
        c.insert(1, ());
        assert_eq!(c.insert(4, ()), Some((0, ())));
        assert!(c.peek(&1).is_some());
    }

    #[test]
    fn invalidate_and_matching() {
        let mut c: SetAssocCache<u64, u32> = SetAssocCache::new(8, 2);
        for k in 0..10 {
            c.insert(k, k as u32);
        }
        assert_eq!(c.invalidate(&3), Some(3));
        assert_eq!(c.invalidate(&3), None);
        let removed = c.invalidate_matching(|k| k % 2 == 0);
        assert_eq!(removed, 5);
        assert_eq!(c.len(), 4); // 1,5,7,9
    }

    #[test]
    fn clear_and_capacity() {
        let mut c: SetAssocCache<u64, ()> = SetAssocCache::with_entries(64, 4);
        assert_eq!(c.capacity(), 64);
        for k in 0..100 {
            c.insert(k, ());
        }
        assert!(c.len() <= 64);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn drain_all_returns_everything() {
        let mut c: SetAssocCache<u64, u32> = SetAssocCache::new(4, 4);
        for k in 0..8 {
            c.insert(k, k as u32);
        }
        let drained = c.drain_all();
        assert_eq!(drained.len(), 8);
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_geometry_panics() {
        let _: SetAssocCache<u64, ()> = SetAssocCache::new(0, 4);
    }

    /// Full observable state: per-set way lists in recency order + stats.
    fn fingerprint(c: &SetAssocCache<u64, u32>) -> (Vec<Vec<(u64, u32)>>, CacheStats) {
        (
            c.sets
                .iter()
                .map(|ways| ways.iter().map(|w| (w.key, w.value)).collect())
                .collect(),
            c.stats,
        )
    }

    #[test]
    fn recorded_ops_match_plain_ops() {
        let mut a: SetAssocCache<u64, u32> = SetAssocCache::new(2, 2);
        let mut b: SetAssocCache<u64, u32> = SetAssocCache::new(2, 2);
        for k in [1u64, 3, 5, 1, 2, 3] {
            assert_eq!(a.get_recorded(&k).0, b.get(&k).is_some());
            a.insert_recorded(k, k as u32);
            b.insert(k, k as u32);
        }
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn undo_in_reverse_restores_exact_state() {
        // A tiny geometry forces every undo variant: hits, misses, fresh
        // inserts, evictions, and same-key replacements.
        let mut c: SetAssocCache<u64, u32> = SetAssocCache::new(2, 2);
        c.insert(1, 10);
        c.insert(3, 30);
        c.insert(2, 20);
        c.get(&1);
        let before = fingerprint(&c);
        let mut undos = Vec::new();
        // Deterministic mixed op sequence touching both sets.
        for (i, k) in [1u64, 5, 2, 7, 1, 9, 4, 3, 5, 2].into_iter().enumerate() {
            if i % 2 == 0 {
                undos.push(c.get_recorded(&k).1);
            } else {
                undos.push(c.insert_recorded(k, (k * 100 + i as u64) as u32));
            }
        }
        assert_ne!(fingerprint(&c), before);
        for u in undos.into_iter().rev() {
            c.undo(u);
        }
        assert_eq!(fingerprint(&c), before);
    }
}
