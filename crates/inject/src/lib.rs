//! Deterministic, cycle-scheduled hardware fault injection.
//!
//! A [`FaultPlan`] is compiled from an [`InjectConfig`] (itself parsed from
//! the `--inject <spec>` string) against a concrete system shape (wire and
//! GPU counts). Every query on the plan is a **pure function of the
//! simulated cycle** — no wall clock, no RNG — so a run with a plan is
//! byte-identical at any worker count, and a run with an *empty* plan is
//! byte-identical to a run with no plan at all.
//!
//! Four fault kinds are modeled:
//!
//! - **`degrade`** — a wire's bandwidth is cut to a fraction of nominal
//!   for a window of cycles.
//! - **`outage`** — a wire is down for a window; routing must go around
//!   it (or traffic stages through the host when no route remains).
//! - **`retire`** — ECC retires DRAM page frames on one GPU at a cycle;
//!   resident pages are force-evicted and re-placed.
//! - **`storm`** — the GPU's fault handler stalls an extra fixed cost per
//!   fault for a window (an interrupt storm).
//!
//! ## Spec grammar
//!
//! Events are separated by `;`. Each event is `kind@cycle` followed by
//! `:key=value` fields:
//!
//! ```text
//! degrade@CYCLE:wire=W:frac=F:for=DUR      bandwidth of wire W (or *) x F
//! outage@CYCLE:wire=W:for=DUR              wire W (or *) down for DUR
//! retire@CYCLE:gpu=G:frames=N              retire N frames on GPU G
//! retire@CYCLE:gpu=G:pct=P                 ... or P percent of capacity
//! storm@CYCLE:gpu=G:for=DUR:stall=S        +S cycles per fault for DUR
//! ```
//!
//! Example: `outage@50000:wire=*:for=150000;retire@30000:gpu=0:pct=20`.

#![warn(missing_docs)]

use std::fmt;

/// Simulated clock tick (mirrors `grit_sim::Cycle`; this crate is a leaf
/// and deliberately depends on nothing).
pub type Cycle = u64;

/// A malformed or invalid injection specification.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InjectError(String);

impl InjectError {
    fn new(msg: impl Into<String>) -> Self {
        InjectError(msg.into())
    }
}

impl fmt::Display for InjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid inject spec: {}", self.0)
    }
}

impl std::error::Error for InjectError {}

/// Which fabric wire an event targets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireSel {
    /// Every GPU-to-GPU wire in the fabric.
    All,
    /// One wire, by its fabric wire index.
    One(u32),
}

/// How many frames an ECC retirement removes.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum FrameCount {
    /// An absolute number of page frames.
    Frames(u64),
    /// A percentage of the GPU's DRAM capacity (0, 100].
    Percent(f64),
}

impl FrameCount {
    /// Resolves to an absolute frame count against a capacity.
    pub fn resolve(self, capacity_pages: u64) -> u64 {
        match self {
            FrameCount::Frames(n) => n.min(capacity_pages),
            FrameCount::Percent(p) => {
                ((capacity_pages as f64 * p / 100.0).floor() as u64).min(capacity_pages)
            }
        }
    }
}

/// One parsed fault event.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum FaultSpec {
    /// Cut a wire's bandwidth to `frac` of nominal for `duration` cycles.
    Degrade {
        /// Target wire(s).
        wire: WireSel,
        /// Start cycle.
        at: Cycle,
        /// Window length in cycles.
        duration: Cycle,
        /// Remaining bandwidth fraction, in (0, 1).
        frac: f64,
    },
    /// Take a wire down entirely for `duration` cycles.
    Outage {
        /// Target wire(s).
        wire: WireSel,
        /// Start cycle.
        at: Cycle,
        /// Window length in cycles.
        duration: Cycle,
    },
    /// Retire DRAM page frames on a GPU (ECC) at a cycle.
    Retire {
        /// Target GPU.
        gpu: u8,
        /// Retirement cycle.
        at: Cycle,
        /// How many frames go away.
        count: FrameCount,
    },
    /// Fault-handler stall storm: every fault on the GPU pays `stall`
    /// extra service cycles while the window is active.
    Storm {
        /// Target GPU.
        gpu: u8,
        /// Start cycle.
        at: Cycle,
        /// Window length in cycles.
        duration: Cycle,
        /// Extra service cycles per fault.
        stall: Cycle,
    },
}

impl FaultSpec {
    /// The event's start cycle.
    pub fn at(&self) -> Cycle {
        match *self {
            FaultSpec::Degrade { at, .. }
            | FaultSpec::Outage { at, .. }
            | FaultSpec::Retire { at, .. }
            | FaultSpec::Storm { at, .. } => at,
        }
    }

    /// The event's kind tag.
    pub fn kind(&self) -> InjectedKind {
        match self {
            FaultSpec::Degrade { .. } => InjectedKind::Degrade,
            FaultSpec::Outage { .. } => InjectedKind::Outage,
            FaultSpec::Retire { .. } => InjectedKind::Retire,
            FaultSpec::Storm { .. } => InjectedKind::Storm,
        }
    }
}

/// The kind tag of an injected fault (for trace events and transitions).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum InjectedKind {
    /// Bandwidth degradation window.
    Degrade,
    /// Link outage window.
    Outage,
    /// ECC frame retirement.
    Retire,
    /// Fault-handler stall storm.
    Storm,
}

impl InjectedKind {
    /// Stable lowercase name (trace-event payload).
    pub fn name(self) -> &'static str {
        match self {
            InjectedKind::Degrade => "degrade",
            InjectedKind::Outage => "outage",
            InjectedKind::Retire => "retire",
            InjectedKind::Storm => "storm",
        }
    }

    /// Parses [`InjectedKind::name`] back.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "degrade" => InjectedKind::Degrade,
            "outage" => InjectedKind::Outage,
            "retire" => InjectedKind::Retire,
            "storm" => InjectedKind::Storm,
            _ => return None,
        })
    }
}

/// A parsed injection schedule: the plain-data form that travels inside
/// `SimConfig` (and therefore through resume keys and run reports).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct InjectConfig {
    /// The scheduled fault events, in specification order.
    pub events: Vec<FaultSpec>,
}

impl InjectConfig {
    /// No injected faults: the simulation behaves exactly as if the
    /// injection subsystem did not exist.
    pub fn none() -> Self {
        InjectConfig::default()
    }

    /// Whether the schedule carries no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Parses the `--inject` grammar (see the crate docs).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending event and field.
    pub fn parse(spec: &str) -> Result<Self, InjectError> {
        let mut events = Vec::new();
        for (i, ev) in spec.split(';').enumerate() {
            let ev = ev.trim();
            if ev.is_empty() {
                continue;
            }
            events.push(
                parse_event(ev)
                    .map_err(|e| InjectError(format!("event {} ({ev:?}): {}", i + 1, e.0)))?,
            );
        }
        Ok(InjectConfig { events })
    }
}

impl fmt::Display for InjectConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                f.write_str(";")?;
            }
            match *ev {
                FaultSpec::Degrade {
                    wire,
                    at,
                    duration,
                    frac,
                } => write!(
                    f,
                    "degrade@{at}:wire={}:frac={frac}:for={duration}",
                    wire_str(wire)
                )?,
                FaultSpec::Outage { wire, at, duration } => {
                    write!(f, "outage@{at}:wire={}:for={duration}", wire_str(wire))?
                }
                FaultSpec::Retire { gpu, at, count } => match count {
                    FrameCount::Frames(n) => write!(f, "retire@{at}:gpu={gpu}:frames={n}")?,
                    FrameCount::Percent(p) => write!(f, "retire@{at}:gpu={gpu}:pct={p}")?,
                },
                FaultSpec::Storm {
                    gpu,
                    at,
                    duration,
                    stall,
                } => write!(f, "storm@{at}:gpu={gpu}:for={duration}:stall={stall}")?,
            }
        }
        Ok(())
    }
}

fn wire_str(w: WireSel) -> String {
    match w {
        WireSel::All => "*".into(),
        WireSel::One(i) => i.to_string(),
    }
}

fn parse_event(ev: &str) -> Result<FaultSpec, InjectError> {
    let mut parts = ev.split(':');
    let head = parts.next().unwrap_or("");
    let (kind, at) = head.split_once('@').ok_or_else(|| InjectError::new("expected kind@cycle"))?;
    let at: Cycle = at.parse().map_err(|_| InjectError::new(format!("bad cycle {at:?}")))?;
    let mut wire: Option<WireSel> = None;
    let mut gpu: Option<u8> = None;
    let mut frac: Option<f64> = None;
    let mut duration: Option<Cycle> = None;
    let mut stall: Option<Cycle> = None;
    let mut count: Option<FrameCount> = None;
    for field in parts {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| InjectError::new(format!("field {field:?} is not key=value")))?;
        let bad = || InjectError::new(format!("bad value for {key}: {value:?}"));
        match key {
            "wire" => {
                wire = Some(if value == "*" {
                    WireSel::All
                } else {
                    WireSel::One(value.parse().map_err(|_| bad())?)
                })
            }
            "gpu" => gpu = Some(value.parse().map_err(|_| bad())?),
            "frac" => frac = Some(value.parse().map_err(|_| bad())?),
            "for" => duration = Some(value.parse().map_err(|_| bad())?),
            "stall" => stall = Some(value.parse().map_err(|_| bad())?),
            "frames" => count = Some(FrameCount::Frames(value.parse().map_err(|_| bad())?)),
            "pct" => count = Some(FrameCount::Percent(value.parse().map_err(|_| bad())?)),
            _ => return Err(InjectError::new(format!("unknown field {key:?}"))),
        }
    }
    let need = |name: &str| InjectError::new(format!("missing field {name}"));
    let dur_ok = |d: Cycle| {
        if d == 0 {
            Err(InjectError::new("for= must be positive"))
        } else {
            Ok(d)
        }
    };
    match kind {
        "degrade" => {
            let frac = frac.ok_or_else(|| need("frac"))?;
            if !(frac > 0.0 && frac < 1.0) {
                return Err(InjectError::new("frac must be in (0, 1)"));
            }
            Ok(FaultSpec::Degrade {
                wire: wire.ok_or_else(|| need("wire"))?,
                at,
                duration: dur_ok(duration.ok_or_else(|| need("for"))?)?,
                frac,
            })
        }
        "outage" => Ok(FaultSpec::Outage {
            wire: wire.ok_or_else(|| need("wire"))?,
            at,
            duration: dur_ok(duration.ok_or_else(|| need("for"))?)?,
        }),
        "retire" => {
            let count = count.ok_or_else(|| need("frames (or pct)"))?;
            if let FrameCount::Percent(p) = count {
                if !(p > 0.0 && p <= 100.0) {
                    return Err(InjectError::new("pct must be in (0, 100]"));
                }
            }
            if let FrameCount::Frames(0) = count {
                return Err(InjectError::new("frames must be positive"));
            }
            Ok(FaultSpec::Retire {
                gpu: gpu.ok_or_else(|| need("gpu"))?,
                at,
                count,
            })
        }
        "storm" => {
            let stall = stall.ok_or_else(|| need("stall"))?;
            if stall == 0 {
                return Err(InjectError::new("stall must be positive"));
            }
            Ok(FaultSpec::Storm {
                gpu: gpu.ok_or_else(|| need("gpu"))?,
                at,
                duration: dur_ok(duration.ok_or_else(|| need("for"))?)?,
                stall,
            })
        }
        other => Err(InjectError::new(format!("unknown fault kind {other:?}"))),
    }
}

/// One state change of the injected-fault machinery: a fault taking
/// effect (`starts`) or a window expiring (recovery). The driver walks
/// these in order with a cursor and emits trace events at each crossing.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Transition {
    /// The simulated cycle at which the change applies.
    pub cycle: Cycle,
    /// The fault's kind.
    pub kind: InjectedKind,
    /// `true` when the fault takes effect, `false` on recovery.
    /// Retirements are permanent and only ever start.
    pub starts: bool,
    /// The affected wire (`None` for GPU-side faults or `wire=*`).
    pub wire: Option<u32>,
    /// The affected GPU (`None` for wire-side faults).
    pub gpu: Option<u8>,
}

/// Capped exponential backoff for migrations blocked by an outage.
///
/// Attempt `k` (0-based) waits `min(base << k, cap)` cycles before
/// re-checking the route; after `max_attempts` failed checks the
/// migration falls back (remote mapping or host staging). All values are
/// cycle counts, so the retry schedule is deterministic.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Backoff {
    /// First retry delay in cycles.
    pub base: Cycle,
    /// Upper bound on any single delay.
    pub cap: Cycle,
    /// Number of retry attempts before falling back.
    pub max_attempts: u32,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            base: 2_000,
            cap: 64_000,
            max_attempts: 4,
        }
    }
}

impl Backoff {
    /// The delay before 0-based retry attempt `attempt`.
    pub fn delay(&self, attempt: u32) -> Cycle {
        self.base.checked_shl(attempt).unwrap_or(Cycle::MAX).min(self.cap).max(1)
    }
}

/// Counters of injected faults and the degradation machinery's responses;
/// surfaced as the `resilience_counters` aux series and the report's
/// `resilience` object. [`ResilienceCounters::as_aux`] fixes the order.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ResilienceCounters {
    /// Fault events that took effect (window starts + retirements).
    pub faults_injected: u64,
    /// Fault windows that expired (degrade/outage/storm ends).
    pub recoveries: u64,
    /// DRAM page frames retired by ECC events.
    pub frames_retired: u64,
    /// Resident pages force-evicted by retirements.
    pub pages_force_evicted: u64,
    /// Faults that paid a storm stall.
    pub storm_stalled_faults: u64,
    /// Migration attempts that found their route down.
    pub migrations_blocked: u64,
    /// Backoff retry attempts made by blocked migrations.
    pub migration_retries: u64,
    /// Blocked migrations that eventually completed via retry.
    pub retry_successes: u64,
    /// Blocked migrations that fell back to a remote mapping.
    pub fallback_remote: u64,
    /// Blocked migrations that staged the page through host memory.
    pub host_staged: u64,
    /// Invariant checks executed by the injection machinery.
    pub invariant_checks: u64,
}

impl ResilienceCounters {
    /// Length of the aux-series encoding.
    pub const AUX_LEN: usize = 11;

    /// Encodes the counters as the `resilience_counters` aux series, in
    /// field-declaration order.
    pub fn as_aux(&self) -> Vec<f64> {
        vec![
            self.faults_injected as f64,
            self.recoveries as f64,
            self.frames_retired as f64,
            self.pages_force_evicted as f64,
            self.storm_stalled_faults as f64,
            self.migrations_blocked as f64,
            self.migration_retries as f64,
            self.retry_successes as f64,
            self.fallback_remote as f64,
            self.host_staged as f64,
            self.invariant_checks as f64,
        ]
    }
}

/// A compiled, queryable fault schedule for a concrete system shape.
///
/// Every query is a pure function of the cycle argument, which is what
/// keeps injected runs deterministic under any execution order.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    num_wires: usize,
    /// Per wire: merged outage windows `[start, end)`, sorted by start.
    outages: Vec<Vec<(Cycle, Cycle)>>,
    /// Per wire: degrade windows `(start, end, frac)`, sorted by start.
    degrades: Vec<Vec<(Cycle, Cycle, f64)>>,
    /// Per GPU: retirements `(cycle, count)`, sorted by cycle.
    retirements: Vec<Vec<(Cycle, FrameCount)>>,
    /// Per GPU: storm windows `(start, end, stall)`, sorted by start.
    storms: Vec<Vec<(Cycle, Cycle, Cycle)>>,
    /// All state changes, sorted by cycle (ties broken deterministically).
    transitions: Vec<Transition>,
    /// Outage epochs: at `cycle`, the sorted set of down wires becomes
    /// exactly `wires`. Starts with an implicit all-up epoch at cycle 0.
    epochs: Vec<(Cycle, Vec<u32>)>,
}

impl FaultPlan {
    /// An inert plan (every query reports healthy hardware).
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// Compiles a schedule against a system shape.
    ///
    /// # Errors
    ///
    /// Rejects wire or GPU indices outside the fabric.
    pub fn compile(
        cfg: &InjectConfig,
        num_wires: usize,
        num_gpus: usize,
    ) -> Result<Self, InjectError> {
        let mut plan = FaultPlan {
            num_wires,
            outages: vec![Vec::new(); num_wires],
            degrades: vec![Vec::new(); num_wires],
            retirements: vec![Vec::new(); num_gpus],
            storms: vec![Vec::new(); num_gpus],
            transitions: Vec::new(),
            epochs: Vec::new(),
        };
        let wire_targets = |w: WireSel| -> Result<Vec<usize>, InjectError> {
            match w {
                WireSel::All => Ok((0..num_wires).collect()),
                WireSel::One(i) => {
                    if (i as usize) < num_wires {
                        Ok(vec![i as usize])
                    } else {
                        Err(InjectError::new(format!(
                            "wire {i} out of range (fabric has {num_wires} wires)"
                        )))
                    }
                }
            }
        };
        let gpu_ok = |g: u8| -> Result<usize, InjectError> {
            if (g as usize) < num_gpus {
                Ok(g as usize)
            } else {
                Err(InjectError::new(format!(
                    "gpu {g} out of range (system has {num_gpus} GPUs)"
                )))
            }
        };
        for ev in &cfg.events {
            match *ev {
                FaultSpec::Degrade {
                    wire,
                    at,
                    duration,
                    frac,
                } => {
                    let end = at.saturating_add(duration);
                    for w in wire_targets(wire)? {
                        plan.degrades[w].push((at, end, frac));
                    }
                    plan.push_window(ev.kind(), wire, at, Some(end));
                }
                FaultSpec::Outage { wire, at, duration } => {
                    let end = at.saturating_add(duration);
                    for w in wire_targets(wire)? {
                        plan.outages[w].push((at, end));
                    }
                    plan.push_window(ev.kind(), wire, at, Some(end));
                }
                FaultSpec::Retire { gpu, at, count } => {
                    let g = gpu_ok(gpu)?;
                    plan.retirements[g].push((at, count));
                    plan.transitions.push(Transition {
                        cycle: at,
                        kind: InjectedKind::Retire,
                        starts: true,
                        wire: None,
                        gpu: Some(gpu),
                    });
                }
                FaultSpec::Storm {
                    gpu,
                    at,
                    duration,
                    stall,
                } => {
                    let g = gpu_ok(gpu)?;
                    let end = at.saturating_add(duration);
                    plan.storms[g].push((at, end, stall));
                    for (cycle, starts) in [(at, true), (end, false)] {
                        plan.transitions.push(Transition {
                            cycle,
                            kind: InjectedKind::Storm,
                            starts,
                            wire: None,
                            gpu: Some(gpu),
                        });
                    }
                }
            }
        }
        for list in &mut plan.outages {
            list.sort_unstable();
        }
        for list in &mut plan.degrades {
            list.sort_unstable_by_key(|a| (a.0, a.1));
        }
        for list in &mut plan.retirements {
            list.sort_unstable_by_key(|&(at, _)| at);
        }
        for list in &mut plan.storms {
            list.sort_unstable();
        }
        plan.transitions.sort_by_key(|t| {
            (
                t.cycle,
                t.kind,
                t.starts,
                t.wire.unwrap_or(u32::MAX),
                t.gpu.unwrap_or(u8::MAX),
            )
        });
        plan.build_epochs();
        Ok(plan)
    }

    fn push_window(&mut self, kind: InjectedKind, wire: WireSel, at: Cycle, end: Option<Cycle>) {
        let wire = match wire {
            WireSel::All => None,
            WireSel::One(i) => Some(i),
        };
        self.transitions.push(Transition {
            cycle: at,
            kind,
            starts: true,
            wire,
            gpu: None,
        });
        if let Some(end) = end {
            self.transitions.push(Transition {
                cycle: end,
                kind,
                starts: false,
                wire,
                gpu: None,
            });
        }
    }

    /// Precomputes the epochs at which the set of down wires changes.
    fn build_epochs(&mut self) {
        let mut boundaries: Vec<Cycle> = Vec::new();
        for list in &self.outages {
            for &(s, e) in list {
                boundaries.push(s);
                boundaries.push(e);
            }
        }
        boundaries.sort_unstable();
        boundaries.dedup();
        let mut epochs: Vec<(Cycle, Vec<u32>)> = vec![(0, Vec::new())];
        for b in boundaries {
            let down: Vec<u32> = (0..self.num_wires)
                .filter(|&w| self.wire_down(w, b))
                .map(|w| w as u32)
                .collect();
            if b == 0 {
                // An outage can start at cycle 0: the initial epoch is
                // then not all-up.
                epochs[0].1 = down;
            } else if epochs.last().map(|(_, d)| d) != Some(&down) {
                epochs.push((b, down));
            }
        }
        self.epochs = epochs;
    }

    /// Whether the plan carries no faults at all.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Whether any outage windows exist (routing needs alternates).
    pub fn has_outages(&self) -> bool {
        self.outages.iter().any(|l| !l.is_empty())
    }

    /// Whether wire `wire` is inside an outage window at cycle `t`.
    pub fn wire_down(&self, wire: usize, t: Cycle) -> bool {
        self.outages.get(wire).is_some_and(|l| l.iter().any(|&(s, e)| s <= t && t < e))
    }

    /// The remaining bandwidth fraction of wire `wire` at cycle `t`
    /// (1.0 when healthy; overlapping degradations compound).
    pub fn bw_scale(&self, wire: usize, t: Cycle) -> f64 {
        match self.degrades.get(wire) {
            None => 1.0,
            Some(l) => l.iter().filter(|&&(s, e, _)| s <= t && t < e).map(|&(_, _, f)| f).product(),
        }
    }

    /// Whether wire `wire` is degraded or down at cycle `t`.
    pub fn wire_sick(&self, wire: usize, t: Cycle) -> bool {
        self.wire_down(wire, t) || self.bw_scale(wire, t) < 1.0
    }

    /// The cycle at which wire `wire`'s current outage (at `t`) ends, or
    /// `None` when the wire is up at `t`.
    pub fn down_until(&self, wire: usize, t: Cycle) -> Option<Cycle> {
        self.outages
            .get(wire)?
            .iter()
            .filter(|&&(s, e)| s <= t && t < e)
            .map(|&(_, e)| e)
            .max()
    }

    /// The outage epochs (cycle at which the down-set changes, and the
    /// sorted set of down wires from then on). Always starts with the
    /// all-up epoch at cycle 0.
    pub fn outage_epochs(&self) -> &[(Cycle, Vec<u32>)] {
        if self.epochs.is_empty() {
            const EMPTY: &[(Cycle, Vec<u32>)] = &[];
            return EMPTY;
        }
        &self.epochs
    }

    /// Index into [`FaultPlan::outage_epochs`] active at cycle `t`
    /// (0 when there are no epochs).
    pub fn epoch_at(&self, t: Cycle) -> usize {
        match self.epochs.binary_search_by_key(&t, |&(c, _)| c) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    /// Extra fault-handler service cycles on GPU `gpu` at cycle `t`
    /// (overlapping storms sum).
    pub fn storm_stall(&self, gpu: usize, t: Cycle) -> Cycle {
        match self.storms.get(gpu) {
            None => 0,
            Some(l) => {
                l.iter().filter(|&&(s, e, _)| s <= t && t < e).map(|&(_, _, stall)| stall).sum()
            }
        }
    }

    /// The retirement schedule of GPU `gpu` (sorted by cycle); the driver
    /// applies entries with a one-shot cursor.
    pub fn retirements(&self, gpu: usize) -> &[(Cycle, FrameCount)] {
        self.retirements.get(gpu).map_or(&[], |l| l.as_slice())
    }

    /// All state changes in deterministic order; the driver walks them
    /// with a cursor to emit `FaultInjected`/`Recovered` trace events.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_specs_parse_to_no_events() {
        for s in ["", "  ", ";;", " ; "] {
            let cfg = InjectConfig::parse(s).unwrap();
            assert!(cfg.is_empty(), "{s:?}");
        }
    }

    #[test]
    fn full_grammar_round_trips_through_display() {
        let spec = "degrade@100:wire=2:frac=0.25:for=500;outage@50:wire=*:for=1000;\
                    retire@30:gpu=0:frames=16;retire@40:gpu=1:pct=20;\
                    storm@60:gpu=3:for=200:stall=900";
        let cfg = InjectConfig::parse(spec).unwrap();
        assert_eq!(cfg.events.len(), 5);
        let printed = cfg.to_string();
        let again = InjectConfig::parse(&printed).unwrap();
        assert_eq!(cfg, again);
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        for (s, needle) in [
            ("degrade@100:wire=0:for=5", "frac"),
            ("degrade@100:wire=0:frac=1.5:for=5", "(0, 1)"),
            ("outage@100:wire=0", "for"),
            ("outage@100:wire=0:for=0", "positive"),
            ("retire@5:gpu=0", "frames"),
            ("retire@5:gpu=0:pct=120", "(0, 100]"),
            ("storm@5:gpu=0:for=10", "stall"),
            ("blink@5:wire=0:for=10", "unknown fault kind"),
            ("outage:wire=0:for=10", "kind@cycle"),
            ("outage@x:wire=0:for=10", "bad cycle"),
            ("outage@5:wire=q:for=10", "bad value"),
            ("outage@5:wirefor", "key=value"),
            ("outage@5:wat=3:for=10", "unknown field"),
        ] {
            let e = InjectConfig::parse(s).unwrap_err().to_string();
            assert!(e.contains(needle), "{s:?} -> {e}");
        }
    }

    #[test]
    fn compile_rejects_out_of_range_targets() {
        let c = InjectConfig::parse("outage@5:wire=9:for=10").unwrap();
        assert!(FaultPlan::compile(&c, 6, 4).unwrap_err().to_string().contains("wire 9"));
        let c = InjectConfig::parse("retire@5:gpu=7:frames=1").unwrap();
        assert!(FaultPlan::compile(&c, 6, 4).unwrap_err().to_string().contains("gpu 7"));
    }

    #[test]
    fn windows_answer_pure_cycle_queries() {
        let c = InjectConfig::parse(
            "outage@100:wire=1:for=50;degrade@200:wire=0:frac=0.5:for=100;\
             degrade@250:wire=0:frac=0.5:for=100",
        )
        .unwrap();
        let p = FaultPlan::compile(&c, 3, 2).unwrap();
        assert!(!p.wire_down(1, 99));
        assert!(p.wire_down(1, 100));
        assert!(p.wire_down(1, 149));
        assert!(!p.wire_down(1, 150));
        assert_eq!(p.down_until(1, 120), Some(150));
        assert_eq!(p.down_until(1, 99), None);
        assert_eq!(p.bw_scale(0, 199), 1.0);
        assert_eq!(p.bw_scale(0, 200), 0.5);
        // Overlap compounds: both windows active in [250, 300).
        assert_eq!(p.bw_scale(0, 260), 0.25);
        assert_eq!(p.bw_scale(0, 320), 0.5);
        assert_eq!(p.bw_scale(0, 350), 1.0);
        assert!(p.wire_sick(0, 220));
        assert!(!p.wire_sick(2, 220));
    }

    #[test]
    fn epochs_track_the_down_set() {
        let c = InjectConfig::parse("outage@100:wire=1:for=50;outage@120:wire=2:for=100").unwrap();
        let p = FaultPlan::compile(&c, 3, 2).unwrap();
        let epochs = p.outage_epochs();
        let downs: Vec<(Cycle, Vec<u32>)> = epochs.to_vec();
        assert_eq!(
            downs,
            vec![
                (0, vec![]),
                (100, vec![1]),
                (120, vec![1, 2]),
                (150, vec![2]),
                (220, vec![]),
            ]
        );
        assert_eq!(p.epoch_at(0), 0);
        assert_eq!(p.epoch_at(110), 1);
        assert_eq!(p.epoch_at(130), 2);
        assert_eq!(p.epoch_at(10_000), 4);
    }

    #[test]
    fn storms_and_retirements_resolve() {
        let c = InjectConfig::parse(
            "storm@10:gpu=0:for=20:stall=500;retire@5:gpu=1:pct=25;retire@9:gpu=1:frames=2",
        )
        .unwrap();
        let p = FaultPlan::compile(&c, 1, 2).unwrap();
        assert_eq!(p.storm_stall(0, 9), 0);
        assert_eq!(p.storm_stall(0, 10), 500);
        assert_eq!(p.storm_stall(0, 30), 0);
        assert_eq!(p.storm_stall(1, 15), 0);
        let r = p.retirements(1);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].1.resolve(100), 25);
        assert_eq!(r[1].1.resolve(100), 2);
        assert_eq!(
            FrameCount::Frames(500).resolve(100),
            100,
            "clamped to capacity"
        );
    }

    #[test]
    fn transitions_are_sorted_and_complete() {
        let c = InjectConfig::parse(
            "outage@100:wire=1:for=50;storm@10:gpu=0:for=20:stall=5;retire@5:gpu=1:frames=1",
        )
        .unwrap();
        let p = FaultPlan::compile(&c, 3, 2).unwrap();
        let t = p.transitions();
        // retire@5, storm start@10, storm end@30, outage start@100, outage end@150.
        assert_eq!(t.len(), 5);
        assert!(t.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        assert_eq!(t[0].kind, InjectedKind::Retire);
        assert!(t[0].starts);
        assert_eq!(t.iter().filter(|x| !x.starts).count(), 2);
    }

    #[test]
    fn empty_plan_is_inert() {
        let p = FaultPlan::empty();
        assert!(p.is_empty());
        assert!(!p.wire_down(0, 0));
        assert_eq!(p.bw_scale(0, 0), 1.0);
        assert_eq!(p.storm_stall(0, 0), 0);
        assert!(p.retirements(0).is_empty());
        assert!(p.transitions().is_empty());
        assert!(p.outage_epochs().is_empty());
        let compiled = FaultPlan::compile(&InjectConfig::none(), 6, 4).unwrap();
        assert!(compiled.is_empty());
        assert_eq!(compiled.outage_epochs().len(), 1, "single all-up epoch");
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let b = Backoff::default();
        assert_eq!(b.delay(0), 2_000);
        assert_eq!(b.delay(1), 4_000);
        assert_eq!(b.delay(4), 32_000);
        assert_eq!(b.delay(5), 64_000);
        assert_eq!(b.delay(31), 64_000, "saturates at the cap");
        let tiny = Backoff {
            base: 0,
            cap: 10,
            max_attempts: 2,
        };
        assert_eq!(tiny.delay(0), 1, "delays never collapse to zero");
    }

    #[test]
    fn counters_encode_in_declared_order() {
        let c = ResilienceCounters {
            faults_injected: 1,
            recoveries: 2,
            host_staged: 9,
            invariant_checks: 10,
            ..ResilienceCounters::default()
        };
        let aux = c.as_aux();
        assert_eq!(aux.len(), ResilienceCounters::AUX_LEN);
        assert_eq!(aux[0], 1.0);
        assert_eq!(aux[1], 2.0);
        assert_eq!(aux[9], 9.0);
        assert_eq!(aux[10], 10.0);
    }

    #[test]
    fn kind_names_round_trip() {
        for k in [
            InjectedKind::Degrade,
            InjectedKind::Outage,
            InjectedKind::Retire,
            InjectedKind::Storm,
        ] {
            assert_eq!(InjectedKind::parse(k.name()), Some(k));
        }
        assert_eq!(InjectedKind::parse("nope"), None);
    }
}
