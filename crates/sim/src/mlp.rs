//! Bounded-outstanding-request window modelling GPU memory-level
//! parallelism.
//!
//! A real GPU hides memory latency behind thousands of threads; a fully
//! serial trace replay would wildly overweight latency. [`MlpWindow`] keeps
//! up to `capacity` operations in flight per GPU: an access may *issue* as
//! soon as a slot is free, and the GPU's trace front advances at issue time
//! while the access completes in the background.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Cycle;

/// Tracks completion times of in-flight memory operations for one GPU.
///
/// ```
/// use grit_sim::MlpWindow;
/// let mut w = MlpWindow::new(2);
/// assert_eq!(w.issue_at(0), 0);   // empty: issue immediately
/// w.complete(100);
/// w.complete(50);
/// // window full: next issue waits for the earliest completion (50)
/// assert_eq!(w.issue_at(10), 50);
/// ```
#[derive(Clone, Debug)]
pub struct MlpWindow {
    capacity: usize,
    inflight: BinaryHeap<Reverse<Cycle>>,
    last_drain: Cycle,
}

impl MlpWindow {
    /// A window allowing `capacity` outstanding operations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MLP window capacity must be non-zero");
        MlpWindow {
            capacity,
            inflight: BinaryHeap::with_capacity(capacity + 1),
            last_drain: 0,
        }
    }

    /// Earliest cycle at which a new operation can issue, given the GPU is
    /// otherwise ready at `ready`. Retires every operation that completes by
    /// that time.
    pub fn issue_at(&mut self, ready: Cycle) -> Cycle {
        // Retire operations that completed before the GPU is ready anyway.
        while let Some(&Reverse(t)) = self.inflight.peek() {
            if t <= ready {
                self.inflight.pop();
            } else {
                break;
            }
        }
        if self.inflight.len() < self.capacity {
            ready
        } else {
            // Must wait for the earliest in-flight completion.
            let Reverse(t) = self.inflight.pop().expect("window non-empty");
            t.max(ready)
        }
    }

    /// Records that an operation issued earlier will complete at `done`.
    pub fn complete(&mut self, done: Cycle) {
        self.inflight.push(Reverse(done));
    }

    /// Cycle by which everything currently in flight has completed.
    pub fn drain_time(&mut self) -> Cycle {
        let mut last = self.last_drain;
        while let Some(Reverse(t)) = self.inflight.pop() {
            last = last.max(t);
        }
        self.last_drain = last;
        last
    }

    /// Number of operations currently tracked in flight.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_issues_immediately() {
        let mut w = MlpWindow::new(4);
        assert_eq!(w.issue_at(123), 123);
        assert_eq!(w.in_flight(), 0);
    }

    #[test]
    fn full_window_blocks_on_earliest_completion() {
        let mut w = MlpWindow::new(2);
        w.complete(200);
        w.complete(300);
        // Ready at 10 but both slots busy; earliest frees at 200.
        assert_eq!(w.issue_at(10), 200);
        assert_eq!(w.in_flight(), 1);
        // A slot is now free, so the next issue is immediate; the 300
        // completion is still outstanding.
        assert_eq!(w.issue_at(10), 10);
        assert_eq!(w.in_flight(), 1);
        // Filling the window again forces a wait on the 300 completion.
        w.complete(400);
        assert_eq!(w.issue_at(10), 300);
    }

    #[test]
    fn retired_operations_free_slots() {
        let mut w = MlpWindow::new(2);
        w.complete(50);
        w.complete(60);
        // Ready at 100: both have completed, issue immediately.
        assert_eq!(w.issue_at(100), 100);
        assert_eq!(w.in_flight(), 0);
    }

    #[test]
    fn drain_returns_max_completion() {
        let mut w = MlpWindow::new(4);
        w.complete(10);
        w.complete(99);
        w.complete(55);
        assert_eq!(w.drain_time(), 99);
        assert_eq!(w.in_flight(), 0);
        // Draining again with nothing in flight keeps the high-water mark.
        assert_eq!(w.drain_time(), 99);
    }

    #[test]
    fn issue_never_before_ready() {
        let mut w = MlpWindow::new(1);
        w.complete(5);
        assert_eq!(w.issue_at(10), 10);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = MlpWindow::new(0);
    }
}
