//! Bounded-outstanding-request window modelling GPU memory-level
//! parallelism.
//!
//! A real GPU hides memory latency behind thousands of threads; a fully
//! serial trace replay would wildly overweight latency. [`MlpWindow`] keeps
//! up to `capacity` operations in flight per GPU: an access may *issue* as
//! soon as a slot is free, and the GPU's trace front advances at issue time
//! while the access completes in the background.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Cycle;

/// Tracks completion times of in-flight memory operations for one GPU.
///
/// ```
/// use grit_sim::MlpWindow;
/// let mut w = MlpWindow::new(2);
/// assert_eq!(w.issue_at(0), 0);   // empty: issue immediately
/// w.complete(100);
/// w.complete(50);
/// // window full: next issue waits for the earliest completion (50)
/// assert_eq!(w.issue_at(10), 50);
/// ```
#[derive(Clone, Debug)]
pub struct MlpWindow {
    capacity: usize,
    inflight: BinaryHeap<Reverse<Cycle>>,
    last_drain: Cycle,
    stall_cycles: Cycle,
}

/// Undo record for one [`MlpWindow::issue_at_recorded`] call.
#[derive(Clone, Copy, Debug)]
pub struct MlpIssueUndo {
    /// How many retired completion times the call appended to the arena.
    pub retired: u32,
    /// The completion time popped because the window was full, if any.
    pub forced: Option<Cycle>,
    /// Stall cycles the call charged (issue time minus ready time).
    pub stalled: Cycle,
}

impl MlpWindow {
    /// A window allowing `capacity` outstanding operations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MLP window capacity must be non-zero");
        MlpWindow {
            capacity,
            inflight: BinaryHeap::with_capacity(capacity + 1),
            last_drain: 0,
            stall_cycles: 0,
        }
    }

    /// Earliest cycle at which a new operation can issue, given the GPU is
    /// otherwise ready at `ready`. Retires every operation that completes by
    /// that time.
    pub fn issue_at(&mut self, ready: Cycle) -> Cycle {
        // Retire operations that completed before the GPU is ready anyway.
        while let Some(&Reverse(t)) = self.inflight.peek() {
            if t <= ready {
                self.inflight.pop();
            } else {
                break;
            }
        }
        if self.inflight.len() < self.capacity {
            ready
        } else {
            // Must wait for the earliest in-flight completion.
            let Reverse(t) = self.inflight.pop().expect("window non-empty");
            let issue = t.max(ready);
            self.stall_cycles += issue - ready;
            issue
        }
    }

    /// Records that an operation issued earlier will complete at `done`.
    pub fn complete(&mut self, done: Cycle) {
        self.inflight.push(Reverse(done));
    }

    /// Cycle by which everything currently in flight has completed.
    pub fn drain_time(&mut self) -> Cycle {
        let mut last = self.last_drain;
        while let Some(Reverse(t)) = self.inflight.pop() {
            last = last.max(t);
        }
        self.last_drain = last;
        last
    }

    /// [`MlpWindow::issue_at`] with an undo record for speculative
    /// execution: completion times retired by this call are appended to
    /// `retired` (the caller's undo arena) so [`MlpWindow::undo_issue`]
    /// can reinstate them on rollback.
    pub fn issue_at_recorded(
        &mut self,
        ready: Cycle,
        retired: &mut Vec<Cycle>,
    ) -> (Cycle, MlpIssueUndo) {
        let start = retired.len();
        while let Some(&Reverse(t)) = self.inflight.peek() {
            if t <= ready {
                self.inflight.pop();
                retired.push(t);
            } else {
                break;
            }
        }
        let n = (retired.len() - start) as u32;
        if self.inflight.len() < self.capacity {
            (
                ready,
                MlpIssueUndo {
                    retired: n,
                    forced: None,
                    stalled: 0,
                },
            )
        } else {
            let Reverse(t) = self.inflight.pop().expect("window non-empty");
            let issue = t.max(ready);
            self.stall_cycles += issue - ready;
            (
                issue,
                MlpIssueUndo {
                    retired: n,
                    forced: Some(t),
                    stalled: issue - ready,
                },
            )
        }
    }

    /// Reverses one [`MlpWindow::issue_at_recorded`] call. `retired` must be
    /// exactly the values that call appended to the arena. The in-flight
    /// multiset (the only observable state) is restored exactly; the heap's
    /// internal layout may differ, which no operation can distinguish.
    pub fn undo_issue(&mut self, undo: MlpIssueUndo, retired: &[Cycle]) {
        debug_assert_eq!(undo.retired as usize, retired.len());
        self.stall_cycles -= undo.stalled;
        if let Some(t) = undo.forced {
            self.inflight.push(Reverse(t));
        }
        for &t in retired {
            self.inflight.push(Reverse(t));
        }
    }

    /// Reverses one [`MlpWindow::complete`] call by removing one in-flight
    /// instance of `done`.
    pub fn uncomplete(&mut self, done: Cycle) {
        let mut v = std::mem::take(&mut self.inflight).into_vec();
        match v.iter().position(|&Reverse(t)| t == done) {
            Some(p) => {
                v.swap_remove(p);
            }
            None => debug_assert!(false, "uncomplete of a value not in flight"),
        }
        self.inflight = BinaryHeap::from(v);
    }

    /// [`MlpWindow::drain_time`] with an undo record: every completion time
    /// popped is appended to `drained` so [`MlpWindow::undo_drain`] can
    /// reinstate the window.
    pub fn drain_time_recorded(&mut self, drained: &mut Vec<Cycle>) -> Cycle {
        let mut last = self.last_drain;
        while let Some(Reverse(t)) = self.inflight.pop() {
            last = last.max(t);
            drained.push(t);
        }
        self.last_drain = last;
        last
    }

    /// Reverses one [`MlpWindow::drain_time_recorded`] call.
    pub fn undo_drain(&mut self, prev_last_drain: Cycle, drained: &[Cycle]) {
        self.last_drain = prev_last_drain;
        for &t in drained {
            self.inflight.push(Reverse(t));
        }
    }

    /// The current drain high-water mark (for speculative undo records).
    pub fn last_drain_mark(&self) -> Cycle {
        self.last_drain
    }

    /// Total cycles issues waited on a full window (issue time minus
    /// ready time, summed): the GPU's memory-level-parallelism stall.
    /// Deterministic — speculative issues that roll back subtract their
    /// contribution in [`MlpWindow::undo_issue`].
    pub fn stall_cycles(&self) -> Cycle {
        self.stall_cycles
    }

    /// Number of operations currently tracked in flight.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_issues_immediately() {
        let mut w = MlpWindow::new(4);
        assert_eq!(w.issue_at(123), 123);
        assert_eq!(w.in_flight(), 0);
    }

    #[test]
    fn full_window_blocks_on_earliest_completion() {
        let mut w = MlpWindow::new(2);
        w.complete(200);
        w.complete(300);
        // Ready at 10 but both slots busy; earliest frees at 200.
        assert_eq!(w.issue_at(10), 200);
        assert_eq!(w.in_flight(), 1);
        // A slot is now free, so the next issue is immediate; the 300
        // completion is still outstanding.
        assert_eq!(w.issue_at(10), 10);
        assert_eq!(w.in_flight(), 1);
        // Filling the window again forces a wait on the 300 completion.
        w.complete(400);
        assert_eq!(w.issue_at(10), 300);
    }

    #[test]
    fn retired_operations_free_slots() {
        let mut w = MlpWindow::new(2);
        w.complete(50);
        w.complete(60);
        // Ready at 100: both have completed, issue immediately.
        assert_eq!(w.issue_at(100), 100);
        assert_eq!(w.in_flight(), 0);
    }

    #[test]
    fn drain_returns_max_completion() {
        let mut w = MlpWindow::new(4);
        w.complete(10);
        w.complete(99);
        w.complete(55);
        assert_eq!(w.drain_time(), 99);
        assert_eq!(w.in_flight(), 0);
        // Draining again with nothing in flight keeps the high-water mark.
        assert_eq!(w.drain_time(), 99);
    }

    #[test]
    fn issue_never_before_ready() {
        let mut w = MlpWindow::new(1);
        w.complete(5);
        assert_eq!(w.issue_at(10), 10);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = MlpWindow::new(0);
    }

    /// In-flight multiset of a window, order-insensitive.
    fn contents(w: &MlpWindow) -> Vec<Cycle> {
        let mut v: Vec<Cycle> = w.inflight.iter().map(|&Reverse(t)| t).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn issue_recorded_matches_plain_issue_and_undoes() {
        let mut a = MlpWindow::new(2);
        let mut b = MlpWindow::new(2);
        for w in [&mut a, &mut b] {
            w.complete(50);
            w.complete(120);
        }
        let before = contents(&a);
        let mut arena = Vec::new();
        // Retires 50 (<= 80), then forces out 120 because the window is
        // still full after a fresh complete.
        let (t1, u1) = a.issue_at_recorded(80, &mut arena);
        assert_eq!(t1, b.issue_at(80));
        a.complete(200);
        b.complete(200);
        let m2 = arena.len();
        let (t2, u2) = a.issue_at_recorded(80, &mut arena);
        assert_eq!(t2, b.issue_at(80));
        assert_eq!(contents(&a), contents(&b));
        // Reverse order: last issue first, each with its arena slice.
        a.undo_issue(u2, &arena[m2..]);
        a.uncomplete(200);
        a.undo_issue(u1, &arena[..m2]);
        assert_eq!(contents(&a), before);
    }

    #[test]
    fn stall_cycles_accumulate_and_undo() {
        let mut w = MlpWindow::new(1);
        assert_eq!(w.issue_at(10), 10);
        assert_eq!(w.stall_cycles(), 0);
        w.complete(100);
        // Ready at 40, issues at 100: 60 cycles stalled on the window.
        assert_eq!(w.issue_at(40), 100);
        assert_eq!(w.stall_cycles(), 60);
        w.complete(300);
        let mut arena = Vec::new();
        let (t, undo) = w.issue_at_recorded(250, &mut arena);
        assert_eq!(t, 300);
        assert_eq!(undo.stalled, 50);
        assert_eq!(w.stall_cycles(), 110);
        // Rolling the speculative issue back restores the stall total.
        w.undo_issue(undo, &arena);
        assert_eq!(w.stall_cycles(), 60);
    }

    #[test]
    fn drain_recorded_roundtrips() {
        let mut w = MlpWindow::new(4);
        w.complete(10);
        w.complete(99);
        let before = contents(&w);
        let mut drained = Vec::new();
        assert_eq!(w.drain_time_recorded(&mut drained), 99);
        assert_eq!(w.in_flight(), 0);
        w.undo_drain(0, &drained);
        assert_eq!(contents(&w), before);
        assert_eq!(w.drain_time(), 99);
    }
}
