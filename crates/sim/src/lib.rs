//! # grit-sim
//!
//! Foundation types for the GRIT multi-GPU reproduction: simulated time,
//! identifiers, memory-access records, access-stream traits, deterministic
//! randomness, and the full system configuration mirroring Table I of the
//! paper (*GRIT: Enhancing Multi-GPU Performance with Fine-Grained Dynamic
//! Page Placement*, HPCA 2024).
//!
//! The simulator built on top of this crate is **trace driven** and
//! **discrete event**: workload generators (see `grit-workloads`) produce
//! per-GPU [`Access`] streams, and the system runner advances whichever GPU
//! has the smallest next-ready cycle, so cross-GPU interactions (migrations,
//! invalidations, write-collapses) are globally ordered.
//!
//! # Example
//!
//! ```
//! use grit_sim::{Access, AccessKind, GpuId, PageId, SimConfig};
//!
//! let cfg = SimConfig::default();
//! assert_eq!(cfg.num_gpus, 4);
//! assert_eq!(cfg.page_size, 4096);
//!
//! let a = Access::read(PageId(42), 3);
//! assert_eq!(a.vpn, PageId(42));
//! assert!(a.kind == AccessKind::Read);
//! let g = GpuId::new(2);
//! assert_eq!(g.index(), 2);
//! ```

#![warn(missing_docs)]

pub mod access;
pub mod config;
pub mod error;
pub mod hash;
pub mod ids;
pub mod mlp;
pub mod rng;
pub mod scheme;
pub mod spec;
pub mod stream;

pub use access::{Access, AccessKind};
pub use config::{
    lines_per_page_checked, CacheGeometry, ConfigError, LatencyConfig, LinkConfig, PageSizeMode,
    SimConfig, TlbGeometry, TopologyConfig, TopologyKind, WalkConfig,
    ACCESS_COUNTER_THRESHOLD_DEFAULT, CACHE_LINE_BYTES, PAGE_SIZE_2M, PAGE_SIZE_4K,
};
pub use error::{CancelState, CancelToken, CellError, GritError};
pub use grit_inject::{
    Backoff, FaultPlan, FaultSpec, FrameCount, InjectConfig, InjectError, InjectedKind,
    ResilienceCounters, Transition, WireSel,
};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{GpuId, GpuSet, MemLoc, PageId};
pub use mlp::{MlpIssueUndo, MlpWindow};
pub use rng::SimRng;
pub use scheme::{GroupSize, Scheme};
pub use spec::RunSpec;
pub use stream::{AccessStream, SliceStream};

/// Simulated time in cycles at the 1 GHz compute-unit clock of Table I.
///
/// A plain alias (rather than a newtype) because cycle arithmetic saturates
/// the hot loops of the simulator; identifiers that must never be confused
/// with one another ([`PageId`], [`GpuId`]) are newtypes instead.
pub type Cycle = u64;
