//! The serializable description of one simulation cell.
//!
//! [`RunSpec`] is the single source of truth for "which cell is this":
//! the `repro` CLI's batch-override flags, the on-disk `ResultStore`
//! cache key, `run_report.json` cell rows, and the `grit-serve/v1` wire
//! protocol all derive from one `RunSpec` instead of four parallel
//! ad-hoc encodings.
//!
//! The struct is deliberately plain data: applications and policies are
//! named by their stable string labels (`App::abbr()`,
//! `PolicyKind::label()`), hardware overrides are optional strings in
//! the same grammar the CLI accepts (`--topology`, `--inject`), and the
//! experiment knobs carry the same defaults as `ExpConfig::default()`.
//! Higher layers resolve the strings into typed values; this crate only
//! validates and applies the pieces it owns ([`SimConfig`]).
//!
//! `RunSpec` is `#[non_exhaustive]` with a fluent builder so future
//! fields never break downstream callers; JSON encoding lives in
//! `grit-serve` (this crate has no JSON dependency).

use crate::config::{ConfigError, SimConfig, TopologyConfig};
use grit_inject::InjectConfig;

/// Default experiment scale (fraction of the paper's working-set size);
/// must agree with `ExpConfig::default()` in the top-level crate.
pub const DEFAULT_SCALE: f64 = 0.10;
/// Default compute-intensity multiplier; must agree with
/// `ExpConfig::default()`.
pub const DEFAULT_INTENSITY: f64 = 2.0;
/// Default workload seed; must agree with `ExpConfig::default()`.
pub const DEFAULT_SEED: u64 = 0xBEEF;

/// A complete, serializable description of one simulation cell: which
/// workload and placement policy to run, at what experiment scale, and
/// every batch-level override that changes the simulated machine or how
/// the cell executes.
///
/// Optional fields mean "use the configuration default"; a
/// default-constructed spec describes the paper's baseline machine
/// running `Gemm` under the GRIT policy.
///
/// ```
/// use grit_sim::{RunSpec, SimConfig};
///
/// let spec = RunSpec::new("bfs", "grit").gpus(8).topology("ring");
/// let mut cfg = SimConfig::default();
/// spec.apply_to(&mut cfg).unwrap();
/// assert_eq!(cfg.num_gpus, 8);
/// assert_eq!(cfg.topology.name(), "ring");
/// ```
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub struct RunSpec {
    /// Workload name: the stable `App::abbr()` label, case-insensitive
    /// (`"Gemm"`, `"bfs"`, ...).
    pub app: String,
    /// Placement-policy label as printed in tables (`"grit"`,
    /// `"on-touch"`, `"grit(t=4,cache=true,nap=false)"`, ...).
    pub policy: String,
    /// Working-set scale relative to the paper's footprint.
    pub scale: f64,
    /// Compute cycles per memory access (intensity multiplier).
    pub intensity: f64,
    /// Deterministic workload seed.
    pub seed: u64,
    /// GPU count override (`None` = config default, 4).
    pub gpus: Option<usize>,
    /// Page-size override in bytes (`None` = config default, 4 KiB).
    pub page_size: Option<u64>,
    /// Large-page management mode by stable name (`"uniform4k"`,
    /// `"uniform2m"`, `"mixed"`); `None` = uniform 4 KiB base pages.
    pub page_size_mode: Option<String>,
    /// Topology spec in `--topology` grammar (`"ring"`,
    /// `"nvswitch:16"`, ...); `None` = all-to-all.
    pub topology: Option<String>,
    /// Fault-injection plan in `--inject` grammar; `None` = healthy run.
    pub inject: Option<String>,
    /// Opt release builds into per-event invariant checking.
    pub check_invariants: bool,
    /// Intra-cell shard count override (`None` = engine default).
    pub sim_threads: Option<usize>,
    /// Per-cell wall-clock budget in seconds (`None` = no timeout).
    pub timeout_secs: Option<f64>,
    /// Record structured trace events for this cell.
    pub trace: bool,
    /// Trace category filter in `--trace-filter` grammar (`None` = all
    /// categories). Only meaningful when `trace` is set.
    pub trace_filter: Option<String>,
    /// Keep every Nth trace event per category (1 = keep all).
    pub trace_sample: u64,
    /// Record engine self-profiling phases for this cell.
    pub profile: bool,
}

impl Default for RunSpec {
    /// The paper's baseline cell: `Gemm` under GRIT at the default
    /// experiment scale, no hardware overrides, no tracing.
    fn default() -> Self {
        RunSpec {
            app: "Gemm".to_string(),
            policy: "grit".to_string(),
            scale: DEFAULT_SCALE,
            intensity: DEFAULT_INTENSITY,
            seed: DEFAULT_SEED,
            gpus: None,
            page_size: None,
            page_size_mode: None,
            topology: None,
            inject: None,
            check_invariants: false,
            sim_threads: None,
            timeout_secs: None,
            trace: false,
            trace_filter: None,
            trace_sample: 1,
            profile: false,
        }
    }
}

impl RunSpec {
    /// Builds a spec for `app` under `policy` with default experiment
    /// knobs and no overrides.
    pub fn new(app: impl Into<String>, policy: impl Into<String>) -> Self {
        RunSpec {
            app: app.into(),
            policy: policy.into(),
            ..RunSpec::default()
        }
    }

    /// Sets the workload label.
    pub fn app(mut self, app: impl Into<String>) -> Self {
        self.app = app.into();
        self
    }

    /// Sets the policy label.
    pub fn policy(mut self, policy: impl Into<String>) -> Self {
        self.policy = policy.into();
        self
    }

    /// Sets the working-set scale.
    pub fn scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Sets the compute-intensity multiplier.
    pub fn intensity(mut self, intensity: f64) -> Self {
        self.intensity = intensity;
        self
    }

    /// Sets the workload seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the GPU count.
    pub fn gpus(mut self, gpus: usize) -> Self {
        self.gpus = Some(gpus);
        self
    }

    /// Overrides the page size in bytes.
    pub fn page_size(mut self, bytes: u64) -> Self {
        self.page_size = Some(bytes);
        self
    }

    /// Overrides the large-page management mode (CLI `--page-size-mode`
    /// grammar: `uniform4k`, `uniform2m`, or `mixed`).
    pub fn page_size_mode(mut self, mode: impl Into<String>) -> Self {
        self.page_size_mode = Some(mode.into());
        self
    }

    /// Overrides the interconnect topology (CLI `--topology` grammar).
    pub fn topology(mut self, spec: impl Into<String>) -> Self {
        self.topology = Some(spec.into());
        self
    }

    /// Schedules fault injection (CLI `--inject` grammar).
    pub fn inject(mut self, spec: impl Into<String>) -> Self {
        self.inject = Some(spec.into());
        self
    }

    /// Opts release builds into invariant checking.
    pub fn check_invariants(mut self, on: bool) -> Self {
        self.check_invariants = on;
        self
    }

    /// Overrides the intra-cell shard count.
    pub fn sim_threads(mut self, threads: usize) -> Self {
        self.sim_threads = Some(threads);
        self
    }

    /// Sets the per-cell wall-clock budget in seconds.
    pub fn timeout_secs(mut self, secs: f64) -> Self {
        self.timeout_secs = Some(secs);
        self
    }

    /// Enables structured trace recording for this cell.
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Sets the trace category filter (CLI `--trace-filter` grammar).
    pub fn trace_filter(mut self, filter: impl Into<String>) -> Self {
        self.trace_filter = Some(filter.into());
        self
    }

    /// Keeps every Nth trace event per category (clamped to ≥ 1).
    pub fn trace_sample(mut self, every: u64) -> Self {
        self.trace_sample = every.max(1);
        self
    }

    /// Enables engine self-profiling for this cell.
    pub fn profile(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }

    /// Applies the machine-shaping overrides (`gpus`, `page_size`,
    /// `page_size_mode`, `topology`, `inject`, `check_invariants`) to
    /// `cfg`, parsing the
    /// string grammars and validating the result. Experiment knobs
    /// (`scale`/`intensity`/`seed`) and execution knobs
    /// (`sim_threads`/`timeout_secs`/trace/profile) are untouched: they
    /// belong to other layers.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field when a
    /// topology or inject spec fails to parse or the resulting
    /// configuration fails [`SimConfig::validate`].
    pub fn apply_to(&self, cfg: &mut SimConfig) -> Result<(), ConfigError> {
        if let Some(gpus) = self.gpus {
            cfg.num_gpus = gpus;
        }
        if let Some(bytes) = self.page_size {
            cfg.page_size = bytes;
        }
        if let Some(mode) = &self.page_size_mode {
            cfg.page_size_mode = crate::config::PageSizeMode::parse(mode)
                .map_err(|e| ConfigError::new("page_size_mode", e))?;
        }
        if let Some(spec) = &self.topology {
            cfg.topology =
                TopologyConfig::parse(spec).map_err(|e| ConfigError::new("topology", e))?;
        }
        if let Some(spec) = &self.inject {
            cfg.inject =
                InjectConfig::parse(spec).map_err(|e| ConfigError::new("inject", e.to_string()))?;
        }
        if self.check_invariants {
            cfg.check_invariants = true;
        }
        cfg.validate()
    }

    /// True when every field still holds its default: applying the spec
    /// to a config is then a no-op beyond validation.
    pub fn is_default(&self) -> bool {
        *self == RunSpec::default()
    }

    /// Renders the spec as a stable single-line `key=value;` string in
    /// fixed field order. Two specs describe the same cell if and only
    /// if their canonical forms are equal, so this string is the
    /// backbone of the `ResultStore` cache key and the `spec` column of
    /// `run_report.json` cell rows. Unset optional fields render as
    /// `-`; floats use Rust's shortest round-trip formatting.
    pub fn canonical(&self) -> String {
        fn opt<T: std::fmt::Display>(v: &Option<T>) -> String {
            match v {
                Some(x) => x.to_string(),
                None => "-".to_string(),
            }
        }
        format!(
            "app={};policy={};scale={};intensity={};seed={};gpus={};page_size={};\
             page_size_mode={};topology={};inject={};check_invariants={};sim_threads={};\
             timeout_secs={};trace={};trace_filter={};trace_sample={};profile={}",
            self.app,
            self.policy,
            self.scale,
            self.intensity,
            self.seed,
            opt(&self.gpus),
            opt(&self.page_size),
            opt(&self.page_size_mode),
            opt(&self.topology),
            opt(&self.inject),
            self.check_invariants,
            opt(&self.sim_threads),
            opt(&self.timeout_secs),
            self.trace,
            opt(&self.trace_filter),
            self.trace_sample,
            self.profile,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_a_config_no_op() {
        let mut cfg = SimConfig::default();
        RunSpec::default().apply_to(&mut cfg).unwrap();
        assert_eq!(cfg, SimConfig::default());
        assert!(RunSpec::default().is_default());
    }

    #[test]
    fn apply_to_sets_every_machine_field() {
        let spec = RunSpec::new("bfs", "on-touch")
            .gpus(8)
            .page_size(2 * 1024 * 1024)
            .topology("nvswitch:16")
            .inject("degrade@1000:wire=*:frac=0.5:for=500")
            .check_invariants(true);
        let mut cfg = SimConfig::default();
        spec.apply_to(&mut cfg).unwrap();
        assert_eq!(cfg.num_gpus, 8);
        assert_eq!(cfg.page_size, 2 * 1024 * 1024);
        assert_eq!(cfg.topology.name(), "nvswitch");
        assert_eq!(cfg.topology.switch_radix, 16);
        assert!(!cfg.inject.is_empty());
        assert!(cfg.check_invariants);

        // Large-page mode threads through by stable name (the 2 MB
        // page-size override above must drop back to 4 KB base pages
        // for the mode to validate).
        let spec = RunSpec::new("bfs", "grit").page_size_mode("mixed");
        let mut cfg = SimConfig::default();
        spec.apply_to(&mut cfg).unwrap();
        assert_eq!(cfg.page_size_mode.name(), "mixed");
    }

    #[test]
    fn apply_to_rejects_bad_grammar_and_bad_configs() {
        let mut cfg = SimConfig::default();
        let err = RunSpec::default().topology("moebius").apply_to(&mut cfg).unwrap_err();
        assert_eq!(err.field, "topology");

        let err = RunSpec::default().inject("explode@now").apply_to(&mut cfg).unwrap_err();
        assert_eq!(err.field, "inject");

        let err = RunSpec::default().page_size_mode("huge").apply_to(&mut cfg).unwrap_err();
        assert_eq!(err.field, "page_size_mode");

        // Out-of-range GPU counts are caught by validate(), not silently
        // applied.
        let err = RunSpec::default().gpus(64).apply_to(&mut cfg).unwrap_err();
        assert_eq!(err.field, "num_gpus");
    }

    #[test]
    fn canonical_is_stable_and_distinguishes_specs() {
        let a = RunSpec::new("Gemm", "grit");
        assert_eq!(
            a.canonical(),
            "app=Gemm;policy=grit;scale=0.1;intensity=2;seed=48879;gpus=-;page_size=-;\
             page_size_mode=-;topology=-;inject=-;check_invariants=false;sim_threads=-;\
             timeout_secs=-;trace=false;trace_filter=-;trace_sample=1;profile=false"
        );
        let b = a.clone().gpus(8);
        assert_ne!(a.canonical(), b.canonical());
        // Page-size mode is part of the cell identity (cache keys must
        // not collide across modes).
        assert_ne!(a.canonical(), a.clone().page_size_mode("mixed").canonical());
        assert_eq!(a.canonical(), a.clone().canonical());
        // Floats render round-trip exact, so close-but-different scales
        // stay distinct.
        assert_ne!(
            a.clone().scale(0.1).canonical(),
            a.clone().scale(0.1 + 1e-12).canonical()
        );
    }

    #[test]
    fn builder_covers_every_field() {
        let spec = RunSpec::new("bfs", "ideal")
            .scale(0.5)
            .intensity(1.0)
            .seed(7)
            .gpus(2)
            .page_size(4096)
            .page_size_mode("uniform2m")
            .topology("ring")
            .inject("retire@10:gpu=0:frames=1")
            .check_invariants(true)
            .sim_threads(4)
            .timeout_secs(1.5)
            .trace(true)
            .trace_filter("fault,migration")
            .trace_sample(8)
            .profile(true);
        assert_eq!(spec.app, "bfs");
        assert_eq!(spec.policy, "ideal");
        assert_eq!(spec.page_size_mode.as_deref(), Some("uniform2m"));
        assert_eq!(spec.sim_threads, Some(4));
        assert_eq!(spec.timeout_secs, Some(1.5));
        assert!(spec.trace && spec.profile && spec.check_invariants);
        assert_eq!(spec.trace_sample, 8);
        // trace_sample clamps to >= 1 so "keep every 0th" can't divide
        // by zero downstream.
        assert_eq!(RunSpec::default().trace_sample(0).trace_sample, 1);
    }
}
