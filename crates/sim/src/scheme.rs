//! Page-placement scheme and page-group vocabulary (paper Tables IV & V).
//!
//! These enums are shared vocabulary across the UVM driver, the GRIT
//! policy, and the metrics layer; the PTE bit packing that carries them
//! lives in `grit-uvm::pte`.

/// One of the three page placement schemes a page can employ (Table IV).
///
/// The two-bit encodings match the paper's PTE scheme bits: `01` on-touch,
/// `10` access-counter, `11` duplication (`00` means "unset", represented
/// here as `Option<Scheme>::None`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Scheme {
    /// Migrate the page to the requester on every non-local touch (§II-B1).
    OnTouch,
    /// Map remotely and migrate only after the 64 KB-group access counter
    /// reaches its threshold (§II-B2).
    AccessCounter,
    /// Replicate read-shared pages locally; writes collapse replicas
    /// (§II-B3).
    Duplication,
}

impl Scheme {
    /// The PTE scheme-bit encoding (Table IV).
    pub fn bits(self) -> u64 {
        match self {
            Scheme::OnTouch => 0b01,
            Scheme::AccessCounter => 0b10,
            Scheme::Duplication => 0b11,
        }
    }

    /// Decodes PTE scheme bits; `None` for the unset `00` pattern.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 0b11`.
    pub fn from_bits(bits: u64) -> Option<Scheme> {
        match bits {
            0b00 => None,
            0b01 => Some(Scheme::OnTouch),
            0b10 => Some(Scheme::AccessCounter),
            0b11 => Some(Scheme::Duplication),
            _ => panic!("scheme bits out of range: {bits:#b}"),
        }
    }

    /// All three schemes, in Table IV order.
    pub const ALL: [Scheme; 3] = [Scheme::OnTouch, Scheme::AccessCounter, Scheme::Duplication];

    /// Short label used in reports ("OT"/"AC"/"D" as in Fig. 3).
    pub fn label(self) -> &'static str {
        match self {
            Scheme::OnTouch => "OT",
            Scheme::AccessCounter => "AC",
            Scheme::Duplication => "D",
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Scheme::OnTouch => "on-touch",
            Scheme::AccessCounter => "access-counter",
            Scheme::Duplication => "duplication",
        };
        f.write_str(name)
    }
}

/// Page-group size for Neighboring-Aware Prediction (Table V).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum GroupSize {
    /// A single 4 KB page (`00`).
    #[default]
    One,
    /// Eight consecutive pages, 32 KB (`01`).
    Eight,
    /// Sixty-four consecutive pages, 256 KB (`10`).
    SixtyFour,
    /// Five hundred twelve consecutive pages, 2 MB (`11`).
    FiveTwelve,
}

impl GroupSize {
    /// Number of 4 KB pages in the group (Table V).
    pub fn pages(self) -> u64 {
        match self {
            GroupSize::One => 1,
            GroupSize::Eight => 8,
            GroupSize::SixtyFour => 64,
            GroupSize::FiveTwelve => 512,
        }
    }

    /// The PTE group-bit encoding (Table V).
    pub fn bits(self) -> u64 {
        match self {
            GroupSize::One => 0b00,
            GroupSize::Eight => 0b01,
            GroupSize::SixtyFour => 0b10,
            GroupSize::FiveTwelve => 0b11,
        }
    }

    /// Decodes PTE group bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 0b11`.
    pub fn from_bits(bits: u64) -> GroupSize {
        match bits {
            0b00 => GroupSize::One,
            0b01 => GroupSize::Eight,
            0b10 => GroupSize::SixtyFour,
            0b11 => GroupSize::FiveTwelve,
            _ => panic!("group bits out of range: {bits:#b}"),
        }
    }

    /// The next larger group (promotion), or `None` at 512 pages.
    pub fn promote(self) -> Option<GroupSize> {
        match self {
            GroupSize::One => Some(GroupSize::Eight),
            GroupSize::Eight => Some(GroupSize::SixtyFour),
            GroupSize::SixtyFour => Some(GroupSize::FiveTwelve),
            GroupSize::FiveTwelve => None,
        }
    }

    /// The next smaller group (degradation), or `None` at one page.
    pub fn demote(self) -> Option<GroupSize> {
        match self {
            GroupSize::One => None,
            GroupSize::Eight => Some(GroupSize::One),
            GroupSize::SixtyFour => Some(GroupSize::Eight),
            GroupSize::FiveTwelve => Some(GroupSize::SixtyFour),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_bits_round_trip() {
        for s in Scheme::ALL {
            assert_eq!(Scheme::from_bits(s.bits()), Some(s));
        }
        assert_eq!(Scheme::from_bits(0), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn scheme_bits_reject_garbage() {
        let _ = Scheme::from_bits(4);
    }

    #[test]
    fn group_bits_round_trip_and_pages() {
        let all = [
            GroupSize::One,
            GroupSize::Eight,
            GroupSize::SixtyFour,
            GroupSize::FiveTwelve,
        ];
        let pages = [1u64, 8, 64, 512];
        for (g, p) in all.iter().zip(pages) {
            assert_eq!(GroupSize::from_bits(g.bits()), *g);
            assert_eq!(g.pages(), p);
        }
    }

    #[test]
    fn promotion_chain() {
        assert_eq!(GroupSize::One.promote(), Some(GroupSize::Eight));
        assert_eq!(GroupSize::FiveTwelve.promote(), None);
        assert_eq!(GroupSize::FiveTwelve.demote(), Some(GroupSize::SixtyFour));
        assert_eq!(GroupSize::One.demote(), None);
    }

    #[test]
    fn labels_match_figure3() {
        assert_eq!(Scheme::OnTouch.label(), "OT");
        assert_eq!(Scheme::AccessCounter.label(), "AC");
        assert_eq!(Scheme::Duplication.label(), "D");
        assert_eq!(format!("{}", Scheme::Duplication), "duplication");
    }
}
