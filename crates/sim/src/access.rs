//! Memory-access records produced by workload trace generators.

use crate::ids::PageId;

/// Whether an access reads or writes memory.
///
/// Reads that miss locally raise *local page faults*; writes to read-only
/// replicas raise *page protection faults* (paper §II-B3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl AccessKind {
    /// `true` for [`AccessKind::Write`].
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// One coalesced memory access issued by a GPU.
///
/// The trace abstraction operates at the granularity the paper's analysis
/// does: a virtual page plus the cache line inside it (remote data is
/// "fetched at a cache line granularity", §II-B2). `think` models compute
/// cycles between this access and the previous one on the same GPU, which
/// sets the baseline issue rate the memory system then throttles.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Access {
    /// Virtual page touched.
    pub vpn: PageId,
    /// Cache-line index within the page (0..page_size/64).
    pub line: u16,
    /// Load or store.
    pub kind: AccessKind,
    /// Compute cycles separating this access from the previous one.
    pub think: u32,
}

impl Access {
    /// A read of line `line` of page `vpn` with default 4-cycle think time.
    pub fn read(vpn: PageId, line: u16) -> Self {
        Access {
            vpn,
            line,
            kind: AccessKind::Read,
            think: 4,
        }
    }

    /// A write of line `line` of page `vpn` with default 4-cycle think time.
    pub fn write(vpn: PageId, line: u16) -> Self {
        Access {
            vpn,
            line,
            kind: AccessKind::Write,
            think: 4,
        }
    }

    /// Replaces the think time.
    pub fn with_think(mut self, think: u32) -> Self {
        self.think = think;
        self
    }

    /// `true` if this access is a store.
    pub fn is_write(self) -> bool {
        self.kind.is_write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        assert!(!Access::read(PageId(1), 0).is_write());
        assert!(Access::write(PageId(1), 0).is_write());
    }

    #[test]
    fn with_think_overrides() {
        let a = Access::read(PageId(1), 2).with_think(77);
        assert_eq!(a.think, 77);
        assert_eq!(a.line, 2);
    }
}
