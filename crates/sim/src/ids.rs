//! Identifier newtypes: GPUs, virtual pages, memory locations, GPU sets.

use std::fmt;

/// Identifies one GPU in the multi-GPU node (0-based).
///
/// The paper evaluates 2-, 4-, 8- and 16-GPU systems; `u8` comfortably
/// covers that and keeps per-page state small.
///
/// ```
/// use grit_sim::GpuId;
/// let g = GpuId::new(3);
/// assert_eq!(g.index(), 3);
/// assert_eq!(format!("{g}"), "GPU3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct GpuId(u8);

impl GpuId {
    /// Creates a GPU identifier from a 0-based index.
    pub fn new(index: u8) -> Self {
        GpuId(index)
    }

    /// The 0-based index as `usize`, for indexing per-GPU arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw index value.
    pub fn raw(self) -> u8 {
        self.0
    }

    /// Iterates `GPU0..GPUn`.
    pub fn all(n: usize) -> impl Iterator<Item = GpuId> {
        (0..n as u8).map(GpuId)
    }
}

impl fmt::Display for GpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GPU{}", self.0)
    }
}

impl From<u8> for GpuId {
    fn from(v: u8) -> Self {
        GpuId(v)
    }
}

/// A virtual page number (VPN).
///
/// With the default 4 KB pages, `PageId(n)` names bytes
/// `n * 4096 .. (n + 1) * 4096` of the unified virtual address space. The
/// paper's PTE format (Fig. 14) carries 45-bit VPNs; we keep the full `u64`.
///
/// ```
/// use grit_sim::PageId;
/// let p = PageId(9);
/// assert_eq!(p.offset(3), PageId(12));
/// assert_eq!(p.group_base(8), PageId(8));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct PageId(pub u64);

impl PageId {
    /// The raw VPN.
    pub fn vpn(self) -> u64 {
        self.0
    }

    /// The page `delta` pages after this one.
    pub fn offset(self, delta: u64) -> PageId {
        PageId(self.0 + delta)
    }

    /// Base page of the naturally aligned group of `group_pages` pages
    /// containing this page (paper §V-D: `VPN_base`).
    ///
    /// # Panics
    ///
    /// Panics if `group_pages` is zero.
    pub fn group_base(self, group_pages: u64) -> PageId {
        assert!(group_pages > 0, "group size must be non-zero");
        PageId(self.0 - self.0 % group_pages)
    }

    /// The 64 KB access-counter group this page belongs to (§II-B2): Volta
    /// tracks remote accesses at 64 KB granularity, i.e. 16 pages of 4 KB.
    pub fn counter_group(self, page_size: u64) -> u64 {
        let pages_per_group = (65_536 / page_size).max(1);
        self.0 / pages_per_group
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page:{:#x}", self.0)
    }
}

impl From<u64> for PageId {
    fn from(v: u64) -> Self {
        PageId(v)
    }
}

/// Where a physical copy of a page lives.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemLoc {
    /// Local memory of one GPU.
    Gpu(GpuId),
    /// CPU (host) memory, reachable over PCIe.
    Host,
}

impl MemLoc {
    /// Returns the GPU if this location is a GPU memory.
    pub fn gpu(self) -> Option<GpuId> {
        match self {
            MemLoc::Gpu(g) => Some(g),
            MemLoc::Host => None,
        }
    }
}

impl fmt::Display for MemLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemLoc::Gpu(g) => write!(f, "{g}"),
            MemLoc::Host => write!(f, "host"),
        }
    }
}

/// A compact set of GPUs (bitmask over up to 16 GPUs).
///
/// Used for page sharer/replica/subscriber tracking where a `HashSet` per
/// page would be wasteful.
///
/// ```
/// use grit_sim::{GpuId, GpuSet};
/// let mut s = GpuSet::default();
/// s.insert(GpuId::new(1));
/// s.insert(GpuId::new(3));
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(GpuId::new(3)));
/// s.remove(GpuId::new(3));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![GpuId::new(1)]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct GpuSet(u16);

impl GpuSet {
    /// The empty set.
    pub fn new() -> Self {
        GpuSet(0)
    }

    /// The raw membership bitmask (bit `i` set ⇔ GPU `i` present). Stable
    /// across processes; used by on-disk result stores.
    pub fn bits(self) -> u16 {
        self.0
    }

    /// Rebuilds a set from a [`GpuSet::bits`] mask.
    pub fn from_bits(bits: u16) -> Self {
        GpuSet(bits)
    }

    /// A set containing exactly one GPU.
    pub fn singleton(g: GpuId) -> Self {
        let mut s = GpuSet(0);
        s.insert(g);
        s
    }

    /// Inserts a GPU; returns `true` if it was newly added.
    pub fn insert(&mut self, g: GpuId) -> bool {
        let bit = 1u16 << g.index();
        let added = self.0 & bit == 0;
        self.0 |= bit;
        added
    }

    /// Removes a GPU; returns `true` if it was present.
    pub fn remove(&mut self, g: GpuId) -> bool {
        let bit = 1u16 << g.index();
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Whether the GPU is in the set.
    pub fn contains(self, g: GpuId) -> bool {
        self.0 & (1u16 << g.index()) != 0
    }

    /// Number of GPUs in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Removes every GPU.
    pub fn clear(&mut self) {
        self.0 = 0;
    }

    /// Iterates the members in ascending GPU index order.
    pub fn iter(self) -> impl Iterator<Item = GpuId> {
        (0..16u8).filter(move |i| self.0 & (1u16 << i) != 0).map(GpuId::new)
    }

    /// Set union.
    pub fn union(self, other: GpuSet) -> GpuSet {
        GpuSet(self.0 | other.0)
    }

    /// Members of `self` that are not `g`.
    pub fn without(self, g: GpuId) -> GpuSet {
        let mut s = self;
        s.remove(g);
        s
    }
}

impl FromIterator<GpuId> for GpuSet {
    fn from_iter<T: IntoIterator<Item = GpuId>>(iter: T) -> Self {
        let mut s = GpuSet::new();
        for g in iter {
            s.insert(g);
        }
        s
    }
}

impl fmt::Display for GpuSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for g in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}", g.index())?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_id_roundtrip() {
        for i in 0..16 {
            assert_eq!(GpuId::new(i).index(), i as usize);
            assert_eq!(GpuId::from(i).raw(), i);
        }
    }

    #[test]
    fn gpu_all_enumerates_in_order() {
        let v: Vec<_> = GpuId::all(4).collect();
        assert_eq!(
            v,
            vec![GpuId::new(0), GpuId::new(1), GpuId::new(2), GpuId::new(3)]
        );
    }

    #[test]
    fn page_group_base_is_aligned() {
        assert_eq!(PageId(0).group_base(8), PageId(0));
        assert_eq!(PageId(7).group_base(8), PageId(0));
        assert_eq!(PageId(8).group_base(8), PageId(8));
        assert_eq!(PageId(511).group_base(512), PageId(0));
        assert_eq!(PageId(513).group_base(512), PageId(512));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn page_group_base_rejects_zero() {
        let _ = PageId(1).group_base(0);
    }

    #[test]
    fn counter_group_is_64kb() {
        // 16 pages of 4 KB per 64 KB group.
        assert_eq!(PageId(0).counter_group(4096), 0);
        assert_eq!(PageId(15).counter_group(4096), 0);
        assert_eq!(PageId(16).counter_group(4096), 1);
        // With 2 MB pages each page is its own (saturated) group.
        assert_eq!(PageId(3).counter_group(2 * 1024 * 1024), 3);
    }

    #[test]
    fn gpu_set_operations() {
        let mut s = GpuSet::new();
        assert!(s.is_empty());
        assert!(s.insert(GpuId::new(5)));
        assert!(!s.insert(GpuId::new(5)));
        assert!(s.contains(GpuId::new(5)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(GpuId::new(5)));
        assert!(!s.remove(GpuId::new(5)));
        assert!(s.is_empty());
    }

    #[test]
    fn gpu_set_union_and_without() {
        let a: GpuSet = [GpuId::new(0), GpuId::new(2)].into_iter().collect();
        let b = GpuSet::singleton(GpuId::new(1));
        let u = a.union(b);
        assert_eq!(u.len(), 3);
        assert_eq!(u.without(GpuId::new(2)).len(), 2);
        assert_eq!(format!("{u}"), "{0,1,2}");
    }

    #[test]
    fn mem_loc_gpu_accessor() {
        assert_eq!(MemLoc::Gpu(GpuId::new(2)).gpu(), Some(GpuId::new(2)));
        assert_eq!(MemLoc::Host.gpu(), None);
        assert_eq!(format!("{}", MemLoc::Host), "host");
    }
}
