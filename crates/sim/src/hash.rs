//! Fast deterministic hashing for simulator hot paths.
//!
//! The per-access maps (local page tables, access counters, line
//! generations) sit on the critical path of every simulated access, and the
//! standard library's SipHash — designed to resist hash-flooding from
//! untrusted input — costs far more than the table probe it guards. Keys
//! here are simulator-internal page and GPU identifiers, so a
//! multiplicative FxHash-style mix (as used by rustc) is both safe and
//! several times faster. The hasher is fully deterministic: no per-process
//! random state, so a given run hashes identically everywhere, which keeps
//! iteration-order-independent results reproducible across `--jobs`
//! settings.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative word-at-a-time hasher (FxHash-style, as in rustc).
///
/// Not resistant to adversarial keys — use only for trusted, internal keys.
///
/// ```
/// use std::hash::{Hash, Hasher};
/// use grit_sim::FxHasher;
///
/// let mut a = FxHasher::default();
/// 42u64.hash(&mut a);
/// let mut b = FxHasher::default();
/// 42u64.hash(&mut b);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    state: u64,
}

/// 64-bit multiplicative constant (golden-ratio derived, same as rustc's).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_to_hash(n as u64);
        self.add_to_hash((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }
}

/// `BuildHasher` producing [`FxHasher`]s; zero-sized and deterministic.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed by the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed by the deterministic [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_builders() {
        let b1 = FxBuildHasher::default();
        let b2 = FxBuildHasher::default();
        assert_eq!(b1.hash_one(0xDEAD_BEEFu64), b2.hash_one(0xDEAD_BEEFu64));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_of(1u64), hash_of(2u64));
        assert_ne!(hash_of((0u32, 1u64)), hash_of((1u32, 0u64)));
    }

    #[test]
    fn byte_writes_match_padded_words() {
        // Partial chunks are zero-padded; identical prefixes differ once a
        // differing byte lands in the chunk.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 4]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        m.insert(7, 70);
        assert_eq!(m.get(&7), Some(&70));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(9));
        assert!(s.contains(&9));
    }
}
