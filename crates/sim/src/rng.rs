//! Deterministic randomness for workload generation.
//!
//! Every figure in the reproduction must be re-runnable bit-for-bit, so all
//! randomness flows through [`SimRng`], a self-contained SplitMix64
//! generator with the handful of distributions the trace generators need.
//! Being dependency-free keeps the build hermetic and the sequence stable
//! across toolchains and platforms.

/// Seeded random source for trace generation.
///
/// ```
/// use grit_sim::SimRng;
/// let mut a = SimRng::seeded(7);
/// let mut b = SimRng::seeded(7);
/// assert_eq!(a.below(1000), b.below(1000));
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// A generator with the given seed.
    pub fn seeded(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Next raw 64-bit output (SplitMix64 step).
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Derives an independent child generator; used to give each GPU stream
    /// its own deterministic sequence.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seeded(s)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Modulo bias is < 2^-40 for the bounds trace generation uses.
        self.next_u64() % bound
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 uniform mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Picks one element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Zipf-like skewed index in `[0, n)`: rank r is proportional to
    /// `1/(r+1)^theta`. Used for hot-page skew in irregular workloads.
    ///
    /// This is approximate inverse-CDF sampling, accurate enough for trace
    /// shaping and allocation-free.
    pub fn zipf(&mut self, n: u64, theta: f64) -> u64 {
        assert!(n > 0, "zipf support must be non-empty");
        // Inverse transform for a continuous approximation of the Zipf CDF.
        let u = self.unit().max(1e-12);
        if (theta - 1.0).abs() < 1e-6 {
            let x = ((n as f64).ln() * u).exp() - 1.0;
            (x as u64).min(n - 1)
        } else {
            let e = 1.0 - theta;
            let x = ((n as f64).powf(e) * u + (1.0 - u)).powf(1.0 / e) - 1.0;
            (x.max(0.0) as u64).min(n - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SimRng::seeded(42);
        let mut b = SimRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.below(1 << 40), b.below(1 << 40));
        }
    }

    #[test]
    fn forks_are_independent_but_deterministic() {
        let mut root1 = SimRng::seeded(1);
        let mut root2 = SimRng::seeded(1);
        let mut f1 = root1.fork(9);
        let mut f2 = root2.fork(9);
        assert_eq!(f1.below(1000), f2.below(1000));
        // Different salts diverge (overwhelmingly likely).
        let mut g1 = SimRng::seeded(1).fork(1);
        let mut g2 = SimRng::seeded(1).fork(2);
        let same = (0..16).all(|_| g1.below(1 << 30) == g2.below(1 << 30));
        assert!(!same);
    }

    #[test]
    fn below_and_range_respect_bounds() {
        let mut r = SimRng::seeded(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
            let v = r.range(5, 9);
            assert!((5..9).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seeded(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn zipf_in_bounds_and_skewed() {
        let mut r = SimRng::seeded(5);
        let n = 1000;
        let mut low = 0usize;
        for _ in 0..10_000 {
            let v = r.zipf(n, 0.8);
            assert!(v < n);
            if v < n / 10 {
                low += 1;
            }
        }
        // Far more than 10% of samples land in the first decile.
        assert!(low > 3000, "zipf not skewed: {low}");
    }

    #[test]
    fn pick_returns_element() {
        let mut r = SimRng::seeded(6);
        let items = [10, 20, 30];
        assert!(items.contains(r.pick(&items)));
    }
}
