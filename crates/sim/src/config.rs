//! System configuration mirroring Table I of the paper, plus the latency
//! model used to attribute page-handling costs.
//!
//! All values are in cycles of the 1 GHz compute clock. Interconnect
//! bandwidths are expressed in bytes per cycle (300 GB/s NVLink-v2 at 1 GHz
//! is 300 B/cycle; 32 GB/s PCIe-v4 is 32 B/cycle).

use std::error::Error;
use std::fmt;

use grit_inject::InjectConfig;

/// Bytes per cache line (and per remote fetch, §II-B2).
pub const CACHE_LINE_BYTES: u64 = 64;

/// A violated configuration constraint, reported by
/// [`SimConfig::validate`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConfigError {
    /// Which field (or field group) is invalid.
    pub field: &'static str,
    /// Human-readable description of the violation.
    pub reason: String,
}

impl ConfigError {
    /// Builds a configuration error for `field` with a human-readable
    /// `reason`. Public so higher layers (runner, UVM driver) can report
    /// structural preconditions through the same type.
    pub fn new(field: &'static str, reason: impl Into<String>) -> Self {
        ConfigError {
            field,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {}: {}", self.field, self.reason)
    }
}

impl Error for ConfigError {}

/// Cache lines per page for an arbitrary page size, with the same
/// structural checks [`SimConfig::validate`] applies: the size must be a
/// power of two of at least one cache line, and the resulting line count
/// must fit the simulator's `u16` line indices (so 4 MB pages and larger
/// are rejected rather than silently truncated).
///
/// # Errors
///
/// Returns a [`ConfigError`] naming `page_size` on any violation.
pub fn lines_per_page_checked(page_size: u64) -> Result<u16, ConfigError> {
    if !page_size.is_power_of_two() {
        return Err(ConfigError::new(
            "page_size",
            format!("{page_size} must be a power of two"),
        ));
    }
    if page_size < CACHE_LINE_BYTES {
        return Err(ConfigError::new(
            "page_size",
            format!("{page_size} is smaller than one {CACHE_LINE_BYTES}-byte cache line"),
        ));
    }
    u16::try_from(page_size / CACHE_LINE_BYTES).map_err(|_| {
        ConfigError::new(
            "page_size",
            format!(
                "{page_size} implies {} cache lines per page, which overflows the \
                 simulator's 16-bit line indices (maximum page size {PAGE_SIZE_2M} bytes)",
                page_size / CACHE_LINE_BYTES,
            ),
        )
    })
}

/// Baseline 4 KB page size (§III-B).
pub const PAGE_SIZE_4K: u64 = 4096;

/// Large-page configuration evaluated in §VI-B3.
pub const PAGE_SIZE_2M: u64 = 2 * 1024 * 1024;

/// Volta-style access-counter threshold for counter-based migration
/// (Table I / §II-B2).
pub const ACCESS_COUNTER_THRESHOLD_DEFAULT: u32 = 256;

/// How the driver manages page granularity (Mosaic-style multi-page-size
/// support).
///
/// Under [`PageSizeMode::Uniform4k`] the simulator behaves exactly as it
/// always has: every mapping is a base page of `SimConfig::page_size`
/// bytes and the `grit-pagesize` subsystem is inert. The other two modes
/// turn on the two-level page-state model where base pages live inside
/// 2 MB large-page frames:
///
/// * [`PageSizeMode::Uniform2m`] — the driver coalesces every frame the
///   moment it becomes fully resident and private, approximating a
///   system that only allocates 2 MB pages (splintering still happens on
///   false sharing and partial eviction, because the migration machinery
///   operates on base pages).
/// * [`PageSizeMode::Mixed`] — Mosaic-style transparent management: a
///   frame is coalesced only once *every* base page inside it has been
///   touched, so cold ranges stay at base granularity and hot private
///   ranges gain TLB reach.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PageSizeMode {
    /// Base pages only; behavior (and output) identical to the pre-
    /// multi-page-size simulator.
    #[default]
    Uniform4k,
    /// Coalesce every fully-resident private 2 MB frame eagerly.
    Uniform2m,
    /// Coalesce only fully-touched, fully-resident private frames.
    Mixed,
}

impl PageSizeMode {
    /// Every mode, in stable order (also the order `describe()` encodes).
    pub const ALL: [PageSizeMode; 3] = [
        PageSizeMode::Uniform4k,
        PageSizeMode::Uniform2m,
        PageSizeMode::Mixed,
    ];

    /// Stable name used by `--page-size-mode` and report labels.
    pub fn name(self) -> &'static str {
        match self {
            PageSizeMode::Uniform4k => "uniform4k",
            PageSizeMode::Uniform2m => "uniform2m",
            PageSizeMode::Mixed => "mixed",
        }
    }

    /// Parses a `--page-size-mode` argument.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message listing the valid names.
    pub fn parse(s: &str) -> Result<Self, String> {
        PageSizeMode::ALL.into_iter().find(|m| m.name() == s).ok_or_else(|| {
            let names: Vec<&str> = PageSizeMode::ALL.iter().map(|m| m.name()).collect();
            format!(
                "unknown page-size mode {s:?} (expected one of {})",
                names.join(", ")
            )
        })
    }

    /// True when large-page frames are managed at all (any mode other
    /// than [`PageSizeMode::Uniform4k`]).
    pub fn large_pages_enabled(self) -> bool {
        self != PageSizeMode::Uniform4k
    }
}

/// Geometry of a set-associative TLB level.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TlbGeometry {
    /// Total entries.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
    /// Lookup latency in cycles.
    pub lookup_latency: u64,
}

/// Geometry of a set-associative cache (entry-count based; the simulator
/// keys data caches by cache-line address and metadata caches by their own
/// keys).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheGeometry {
    /// Total entries (lines).
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheGeometry {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or does not divide `entries`.
    pub fn sets(self) -> usize {
        assert!(self.ways > 0, "cache ways must be non-zero");
        assert!(
            self.entries.is_multiple_of(self.ways),
            "cache entries ({}) must be a multiple of ways ({})",
            self.entries,
            self.ways
        );
        self.entries / self.ways
    }
}

/// GPU memory-management-unit page-walk machinery (Table I).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WalkConfig {
    /// Shared page-table walkers per GPU (GMMU).
    pub walkers: usize,
    /// Page-walk queue entries.
    pub queue_capacity: usize,
    /// Radix page-table levels.
    pub levels: u32,
    /// Cycles per level touched.
    pub cycles_per_level: u64,
    /// Page-walk-cache entries shared across walkers.
    pub walk_cache_entries: usize,
}

impl Default for WalkConfig {
    fn default() -> Self {
        WalkConfig {
            walkers: 8,
            queue_capacity: 64,
            levels: 4,
            cycles_per_level: 100,
            walk_cache_entries: 128,
        }
    }
}

/// Interconnect parameters (Table I).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LinkConfig {
    /// NVLink-v2 bandwidth between each GPU pair, bytes/cycle.
    pub nvlink_bytes_per_cycle: f64,
    /// NVLink one-way latency, cycles.
    pub nvlink_latency: u64,
    /// PCIe-v4 bandwidth between each GPU and the host, bytes/cycle.
    pub pcie_bytes_per_cycle: f64,
    /// PCIe one-way latency, cycles.
    pub pcie_latency: u64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            nvlink_bytes_per_cycle: 300.0,
            nvlink_latency: 350,
            pcie_bytes_per_cycle: 32.0,
            pcie_latency: 450,
        }
    }
}

/// Which interconnect topology the fabric instantiates.
///
/// The descriptor lives here (rather than in `grit-topo`, which turns it
/// into a routed link graph) so that [`SimConfig`] — the foundation type
/// every layer shares — can carry it without a dependency cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TopologyKind {
    /// Dedicated duplex NVLink per GPU pair (DGX-style, today's default).
    AllToAll,
    /// Switched fabric: GPUs uplink to NvSwitch planes of a given radix;
    /// switches are fully interconnected by trunk links.
    NvSwitch,
    /// Unidirectional neighbour links closed into a ring; transfers route
    /// the shorter way around.
    Ring,
    /// 2-D mesh without wraparound, near-square factorization of the GPU
    /// count.
    Mesh2d,
    /// Two-node hierarchical fabric: all-to-all NVLink inside each node,
    /// one bottleneck link between the node routers.
    Hierarchical,
}

impl TopologyKind {
    /// Every kind, in stable order (also the order `describe()` encodes).
    pub const ALL: [TopologyKind; 5] = [
        TopologyKind::AllToAll,
        TopologyKind::NvSwitch,
        TopologyKind::Ring,
        TopologyKind::Mesh2d,
        TopologyKind::Hierarchical,
    ];

    /// Stable name used by `--topology` and report labels.
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::AllToAll => "all-to-all",
            TopologyKind::NvSwitch => "nvswitch",
            TopologyKind::Ring => "ring",
            TopologyKind::Mesh2d => "mesh2d",
            TopologyKind::Hierarchical => "hierarchical",
        }
    }
}

/// Interconnect topology descriptor threaded through [`SimConfig`].
///
/// Bandwidths are bytes per cycle, latencies are one-way cycles, matching
/// [`LinkConfig`] conventions. The switch parameters only apply to
/// [`TopologyKind::NvSwitch`] and [`TopologyKind::Hierarchical`] (GPU ↔
/// router uplinks); the inter-node parameters only apply to
/// [`TopologyKind::Hierarchical`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TopologyConfig {
    /// Which topology shape to instantiate.
    pub kind: TopologyKind,
    /// GPU ports per NvSwitch plane.
    pub switch_radix: usize,
    /// Bandwidth of each GPU↔switch uplink and switch↔switch trunk.
    pub switch_bytes_per_cycle: f64,
    /// One-way latency of each switch hop (half an NVLink latency by
    /// default, so a two-hop switched path costs about one direct link).
    pub switch_latency: u64,
    /// Bandwidth of the single inter-node bottleneck link.
    pub inter_node_bytes_per_cycle: f64,
    /// One-way latency of the inter-node link.
    pub inter_node_latency: u64,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            kind: TopologyKind::AllToAll,
            switch_radix: 8,
            switch_bytes_per_cycle: 300.0,
            switch_latency: 175,
            inter_node_bytes_per_cycle: 75.0,
            inter_node_latency: 700,
        }
    }
}

impl TopologyConfig {
    /// A default-parameter descriptor of the given kind.
    pub fn of(kind: TopologyKind) -> Self {
        TopologyConfig {
            kind,
            ..TopologyConfig::default()
        }
    }

    /// Stable name of the configured kind.
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }

    /// Parses a `--topology` argument: a kind name (`all-to-all`,
    /// `nvswitch`, `ring`, `mesh2d`, `hierarchical`), optionally suffixed
    /// with `:<radix>` for `nvswitch`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (name, param) = match s.split_once(':') {
            Some((n, p)) => (n, Some(p)),
            None => (s, None),
        };
        let kind = TopologyKind::ALL.into_iter().find(|k| k.name() == name).ok_or_else(|| {
            let names: Vec<&str> = TopologyKind::ALL.iter().map(|k| k.name()).collect();
            format!(
                "unknown topology {name:?} (expected one of {})",
                names.join(", ")
            )
        })?;
        let mut cfg = TopologyConfig::of(kind);
        if let Some(p) = param {
            if kind != TopologyKind::NvSwitch {
                return Err(format!("topology {name:?} takes no :<radix> parameter"));
            }
            cfg.switch_radix =
                p.parse::<usize>().map_err(|_| format!("invalid nvswitch radix {p:?}"))?;
        }
        Ok(cfg)
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.switch_radix < 2 {
            return Err(ConfigError::new(
                "topology",
                format!("switch radix {} must be at least 2", self.switch_radix),
            ));
        }
        if self.switch_bytes_per_cycle <= 0.0 || self.inter_node_bytes_per_cycle <= 0.0 {
            return Err(ConfigError::new("topology", "bandwidths must be positive"));
        }
        Ok(())
    }
}

/// Fixed latencies charged by the UVM driver model and memory system.
///
/// These are the calibration knobs of the reproduction: the paper inherits
/// them from MGPUSim and the NVIDIA driver; we document defaults chosen so
/// the *relative* costs match §II-B and Fig. 3 (migration ≫ remote access ≫
/// local access; write-collapse scales with replica count).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LatencyConfig {
    /// Local GPU DRAM access.
    pub local_dram: u64,
    /// GPU L1 data-cache hit.
    pub l1_data_hit: u64,
    /// GPU L2 data-cache hit.
    pub l2_data_hit: u64,
    /// Extra protocol overhead on each remote (peer) access beyond link
    /// latency and occupancy.
    pub remote_extra: u64,
    /// Base UVM driver fault-servicing cost on the host (interrupt,
    /// driver bookkeeping) per GPU page fault — latency seen by the fault.
    pub host_fault_base: u64,
    /// Serial occupancy of the UVM driver per fault: the host services
    /// faults one at a time, so fault *throughput* is bounded by
    /// `1 / fault_service_time` (the §VI-A observation that fault counts
    /// correlate with performance "due to frequent UVM handling and CPU
    /// interruption" — and Trans-FW's motivation).
    pub fault_service_time: u64,
    /// Minimum gap between peer (remote) cache-line requests issued by one
    /// GPU: models the coalescing/protocol limit of fine-grained NVLink
    /// traffic, bounding remote-access throughput per GPU.
    pub remote_issue_gap: u64,
    /// Host walking the centralized page table for one translation.
    pub central_walk: u64,
    /// Flushing in-flight instructions, caches and TLBs of one GPU prior to
    /// unmapping a page it owns (migration source / replica collapse).
    pub flush_drain: u64,
    /// Broadcasting one PTE/TLB invalidation to one GPU.
    pub invalidation_per_gpu: u64,
    /// One CPU-memory access (used by the software PA-Table).
    pub cpu_mem_access: u64,
    /// PA-Cache hit latency.
    pub pa_cache_hit: u64,
    /// Driver-side overhead per page duplication beyond the raw copy
    /// (the UVM driver mediates the replica creation, §II-B3).
    pub dup_overhead: u64,
    /// Extra write-collapse handling beyond per-holder flushes: the driver
    /// walks the centralized table for the replica set and waits for all
    /// invalidation acknowledgements before the writer resumes (§II-B3).
    pub collapse_extra: u64,
    /// Interrupting the UVM driver to change a page's placement scheme.
    pub scheme_change: u64,
    /// Replaying a faulted access once the fault is resolved.
    pub fault_replay: u64,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            local_dram: 150,
            l1_data_hit: 4,
            l2_data_hit: 40,
            remote_extra: 180,
            host_fault_base: 600,
            fault_service_time: 260,
            remote_issue_gap: 45,
            central_walk: 200,
            flush_drain: 1100,
            invalidation_per_gpu: 150,
            cpu_mem_access: 200,
            pa_cache_hit: 2,
            dup_overhead: 400,
            collapse_extra: 800,
            scheme_change: 250,
            fault_replay: 60,
        }
    }
}

/// Full system configuration (Table I defaults).
///
/// ```
/// use grit_sim::SimConfig;
/// let cfg = SimConfig::default();
/// assert_eq!(cfg.walk.walkers, 8);
/// assert_eq!(cfg.access_counter_threshold, 256);
/// cfg.validate().unwrap();
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct SimConfig {
    /// Number of GPUs in the node (paper baseline: 4).
    pub num_gpus: usize,
    /// Base page size in bytes (4 KB baseline, 2 MB in §VI-B3).
    pub page_size: u64,
    /// Large-page management mode (uniform 4 KB by default; see
    /// [`PageSizeMode`]).
    pub page_size_mode: PageSizeMode,
    /// GPU memory capacity as a fraction of the application footprint,
    /// split evenly across GPUs (paper: 70 %, §III-B).
    pub capacity_ratio: f64,
    /// Aggregated per-GPU L1 TLB (Table I lists 32-entry CU-private TLBs;
    /// we aggregate them into one per-GPU structure).
    pub l1_tlb: TlbGeometry,
    /// Shared per-GPU L2 TLB.
    pub l2_tlb: TlbGeometry,
    /// Per-GPU L1 TLB for 2 MB translations. VIPT TLBs are partitioned
    /// by page size: large pages get their own small array whose reach
    /// (entries × 2 MB) dwarfs the base array's. Only consulted when
    /// [`SimConfig::page_size_mode`] enables large pages.
    pub l1_tlb_2m: TlbGeometry,
    /// Shared per-GPU L2 TLB for 2 MB translations.
    pub l2_tlb_2m: TlbGeometry,
    /// GMMU page-walk machinery.
    pub walk: WalkConfig,
    /// Per-CU-scale L1 data cache stage (Table I: 16 KB, 4-way vector L1;
    /// modelled at single-CU size because the frontend replays one merged
    /// stream per GPU).
    pub l1_cache: CacheGeometry,
    /// Per-GPU L2 data cache (Table I: 256 KB, 16-way; 4096 64 B lines).
    pub l2_cache: CacheGeometry,
    /// Remote accesses per 64 KB group before counter-based migration.
    pub access_counter_threshold: u32,
    /// Interconnect parameters.
    pub links: LinkConfig,
    /// Interconnect topology (all-to-all by default; see `grit-topo`).
    pub topology: TopologyConfig,
    /// Latency model.
    pub lat: LatencyConfig,
    /// Maximum outstanding memory operations per GPU (memory-level
    /// parallelism window standing in for the CU pipelines).
    pub mlp_window: usize,
    /// Deterministic seed for workload generation.
    pub seed: u64,
    /// Cycle-scheduled hardware fault injection (empty by default: the
    /// simulation is byte-identical to one without the subsystem).
    pub inject: InjectConfig,
    /// Run the driver's VM-state invariant checks at every epoch boundary
    /// and after every injected fault (always on under
    /// `cfg(debug_assertions)`; this opts release builds in).
    pub check_invariants: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            num_gpus: 4,
            page_size: PAGE_SIZE_4K,
            page_size_mode: PageSizeMode::default(),
            capacity_ratio: 0.70,
            l1_tlb: TlbGeometry {
                entries: 256,
                ways: 32,
                lookup_latency: 1,
            },
            l2_tlb: TlbGeometry {
                entries: 512,
                ways: 16,
                lookup_latency: 10,
            },
            l1_tlb_2m: TlbGeometry {
                entries: 32,
                ways: 4,
                lookup_latency: 1,
            },
            l2_tlb_2m: TlbGeometry {
                entries: 128,
                ways: 16,
                lookup_latency: 10,
            },
            walk: WalkConfig::default(),
            l1_cache: CacheGeometry {
                entries: 256,
                ways: 4,
            },
            l2_cache: CacheGeometry {
                entries: 4_096,
                ways: 16,
            },
            access_counter_threshold: ACCESS_COUNTER_THRESHOLD_DEFAULT,
            links: LinkConfig::default(),
            topology: TopologyConfig::default(),
            lat: LatencyConfig::default(),
            mlp_window: 48,
            seed: 0xD1CE_BEEF,
            inject: InjectConfig::none(),
            check_invariants: false,
        }
    }
}

impl SimConfig {
    /// Convenience constructor varying only the GPU count.
    pub fn with_gpus(num_gpus: usize) -> Self {
        SimConfig {
            num_gpus,
            ..SimConfig::default()
        }
    }

    /// Cache lines per page under this configuration.
    ///
    /// # Panics
    ///
    /// Panics when the line count overflows `u16` (page sizes ≥ 4 MB);
    /// configurations that can reach this path should use
    /// [`SimConfig::try_lines_per_page`].
    pub fn lines_per_page(&self) -> u16 {
        self.try_lines_per_page().expect("validated page size")
    }

    /// Cache lines per page, rejecting sizes whose line count does not
    /// fit the simulator's `u16` line indices instead of silently
    /// truncating.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for non-power-of-two sizes, sizes below
    /// one cache line, and sizes of 4 MB or more (≥ 65 536 lines).
    pub fn try_lines_per_page(&self) -> Result<u16, ConfigError> {
        lines_per_page_checked(self.page_size)
    }

    /// Base pages per 2 MB large-page frame under this configuration
    /// (1 when the base page already is 2 MB or larger).
    pub fn pages_per_large_frame(&self) -> u64 {
        (PAGE_SIZE_2M / self.page_size).max(1)
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint (zero GPUs, >16 GPUs,
    /// non-power-of-two page size, cache geometry that does not divide
    /// evenly, or a capacity ratio outside `(0, 2]`).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_gpus == 0 {
            return Err(ConfigError::new("num_gpus", "must be at least 1"));
        }
        if self.num_gpus > 16 {
            return Err(ConfigError::new(
                "num_gpus",
                format!("{} exceeds the 16-GPU maximum", self.num_gpus),
            ));
        }
        if !self.page_size.is_power_of_two() || self.page_size < 1024 {
            return Err(ConfigError::new(
                "page_size",
                format!("{} must be a power of two >= 1024", self.page_size),
            ));
        }
        self.try_lines_per_page()?;
        if self.page_size_mode.large_pages_enabled() && self.page_size >= PAGE_SIZE_2M {
            return Err(ConfigError::new(
                "page_size_mode",
                format!(
                    "{} needs base pages smaller than the {PAGE_SIZE_2M}-byte large-page \
                     frame, but page_size is {}",
                    self.page_size_mode.name(),
                    self.page_size
                ),
            ));
        }
        if !(self.capacity_ratio > 0.0 && self.capacity_ratio <= 2.0) {
            return Err(ConfigError::new(
                "capacity_ratio",
                format!("{} out of range (0, 2]", self.capacity_ratio),
            ));
        }
        for (name, t) in [
            ("l1_tlb", self.l1_tlb),
            ("l2_tlb", self.l2_tlb),
            ("l1_tlb_2m", self.l1_tlb_2m),
            ("l2_tlb_2m", self.l2_tlb_2m),
        ] {
            if t.ways == 0 || t.entries == 0 || t.entries % t.ways != 0 {
                return Err(ConfigError::new(name, format!("geometry invalid: {t:?}")));
            }
        }
        for (name, c) in [("l1_cache", self.l1_cache), ("l2_cache", self.l2_cache)] {
            if c.ways == 0 || c.entries == 0 || c.entries % c.ways != 0 {
                return Err(ConfigError::new(name, format!("geometry invalid: {c:?}")));
            }
        }
        if self.walk.walkers == 0 || self.walk.levels == 0 {
            return Err(ConfigError::new("walk", "must have walkers and levels"));
        }
        if self.mlp_window == 0 {
            return Err(ConfigError::new("mlp_window", "must be at least 1"));
        }
        if self.links.nvlink_bytes_per_cycle <= 0.0 || self.links.pcie_bytes_per_cycle <= 0.0 {
            return Err(ConfigError::new("links", "bandwidths must be positive"));
        }
        self.topology.validate()?;
        for ev in &self.inject.events {
            let gpu = match *ev {
                grit_inject::FaultSpec::Retire { gpu, .. }
                | grit_inject::FaultSpec::Storm { gpu, .. } => gpu as usize,
                _ => continue,
            };
            if gpu >= self.num_gpus {
                return Err(ConfigError::new(
                    "inject",
                    format!(
                        "event targets gpu {gpu}, but the system has {} GPUs",
                        self.num_gpus
                    ),
                ));
            }
        }
        Ok(())
    }

    /// The configuration flattened to `(name, value)` pairs, for embedding
    /// the simulated-system description in machine-readable run reports.
    pub fn describe(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("num_gpus", self.num_gpus as f64),
            ("page_size", self.page_size as f64),
            (
                "page_size_mode",
                PageSizeMode::ALL
                    .iter()
                    .position(|m| *m == self.page_size_mode)
                    .expect("mode in ALL") as f64,
            ),
            ("capacity_ratio", self.capacity_ratio),
            ("l1_tlb_entries", self.l1_tlb.entries as f64),
            ("l1_tlb_ways", self.l1_tlb.ways as f64),
            ("l1_tlb_lookup_latency", self.l1_tlb.lookup_latency as f64),
            ("l2_tlb_entries", self.l2_tlb.entries as f64),
            ("l2_tlb_ways", self.l2_tlb.ways as f64),
            ("l2_tlb_lookup_latency", self.l2_tlb.lookup_latency as f64),
            ("l1_tlb_2m_entries", self.l1_tlb_2m.entries as f64),
            ("l1_tlb_2m_ways", self.l1_tlb_2m.ways as f64),
            ("l2_tlb_2m_entries", self.l2_tlb_2m.entries as f64),
            ("l2_tlb_2m_ways", self.l2_tlb_2m.ways as f64),
            ("walkers", self.walk.walkers as f64),
            ("walk_queue_capacity", self.walk.queue_capacity as f64),
            ("walk_levels", f64::from(self.walk.levels)),
            ("walk_cycles_per_level", self.walk.cycles_per_level as f64),
            ("walk_cache_entries", self.walk.walk_cache_entries as f64),
            ("l1_cache_entries", self.l1_cache.entries as f64),
            ("l1_cache_ways", self.l1_cache.ways as f64),
            ("l2_cache_entries", self.l2_cache.entries as f64),
            ("l2_cache_ways", self.l2_cache.ways as f64),
            (
                "access_counter_threshold",
                f64::from(self.access_counter_threshold),
            ),
            ("nvlink_bytes_per_cycle", self.links.nvlink_bytes_per_cycle),
            ("nvlink_latency", self.links.nvlink_latency as f64),
            ("pcie_bytes_per_cycle", self.links.pcie_bytes_per_cycle),
            ("pcie_latency", self.links.pcie_latency as f64),
            (
                "topology",
                TopologyKind::ALL
                    .iter()
                    .position(|k| *k == self.topology.kind)
                    .expect("kind in ALL") as f64,
            ),
            ("switch_radix", self.topology.switch_radix as f64),
            (
                "switch_bytes_per_cycle",
                self.topology.switch_bytes_per_cycle,
            ),
            ("switch_latency", self.topology.switch_latency as f64),
            (
                "inter_node_bytes_per_cycle",
                self.topology.inter_node_bytes_per_cycle,
            ),
            (
                "inter_node_latency",
                self.topology.inter_node_latency as f64,
            ),
            ("mlp_window", self.mlp_window as f64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = SimConfig::default();
        assert_eq!(c.num_gpus, 4);
        assert_eq!(c.page_size, 4096);
        assert!((c.capacity_ratio - 0.7).abs() < 1e-9);
        assert_eq!(c.l2_tlb.entries, 512);
        assert_eq!(c.l2_tlb.ways, 16);
        assert_eq!(c.l2_tlb.lookup_latency, 10);
        assert_eq!(c.walk.walkers, 8);
        assert_eq!(c.walk.queue_capacity, 64);
        assert_eq!(c.walk.cycles_per_level, 100);
        assert_eq!(c.walk.walk_cache_entries, 128);
        assert_eq!(c.access_counter_threshold, 256);
        assert!((c.links.nvlink_bytes_per_cycle - 300.0).abs() < 1e-9);
        assert!((c.links.pcie_bytes_per_cycle - 32.0).abs() < 1e-9);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn describe_covers_the_headline_parameters() {
        let d = SimConfig::default().describe();
        let get = |name: &str| d.iter().find(|(n, _)| *n == name).map(|(_, v)| *v);
        assert_eq!(get("num_gpus"), Some(4.0));
        assert_eq!(get("page_size"), Some(4096.0));
        assert_eq!(get("access_counter_threshold"), Some(256.0));
        assert_eq!(get("nvlink_bytes_per_cycle"), Some(300.0));
        // Names are unique so reports can treat the list as a map.
        let mut names: Vec<&str> = d.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), d.len());
    }

    #[test]
    fn lines_per_page() {
        assert_eq!(SimConfig::default().lines_per_page(), 64);
        let big = SimConfig {
            page_size: PAGE_SIZE_2M,
            ..SimConfig::default()
        };
        assert_eq!(big.lines_per_page() as u64, PAGE_SIZE_2M / 64);
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut c = SimConfig {
            num_gpus: 0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());
        c.num_gpus = 17;
        assert!(c.validate().is_err());

        let c = SimConfig {
            page_size: 3000,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());

        let c = SimConfig {
            capacity_ratio: 0.0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());

        let mut c = SimConfig::default();
        c.l1_tlb.ways = 3; // 256 % 3 != 0
        assert!(c.validate().is_err());

        let c = SimConfig {
            mlp_window: 0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn config_error_reports_field_and_reason() {
        let c = SimConfig {
            num_gpus: 0,
            ..SimConfig::default()
        };
        let e = c.validate().unwrap_err();
        assert_eq!(e.field, "num_gpus");
        let msg = e.to_string();
        assert!(
            msg.contains("num_gpus") && msg.contains("at least 1"),
            "{msg}"
        );
        // It is a std error.
        let _: &dyn std::error::Error = &e;
    }

    #[test]
    fn page_size_mode_parse_round_trips_names() {
        for mode in PageSizeMode::ALL {
            assert_eq!(PageSizeMode::parse(mode.name()).unwrap(), mode);
        }
        let err = PageSizeMode::parse("huge").unwrap_err();
        assert!(err.contains("uniform4k") && err.contains("mixed"), "{err}");
        assert_eq!(PageSizeMode::default(), PageSizeMode::Uniform4k);
        assert!(!PageSizeMode::Uniform4k.large_pages_enabled());
        assert!(PageSizeMode::Mixed.large_pages_enabled());
    }

    #[test]
    fn lines_per_page_checked_rejects_truncating_sizes() {
        assert_eq!(lines_per_page_checked(PAGE_SIZE_4K).unwrap(), 64);
        assert_eq!(
            u64::from(lines_per_page_checked(PAGE_SIZE_2M).unwrap()),
            PAGE_SIZE_2M / CACHE_LINE_BYTES
        );
        // 4 MB would silently truncate to 0 lines under an `as u16` cast.
        let err = lines_per_page_checked(4 * 1024 * 1024).unwrap_err();
        assert_eq!(err.field, "page_size");
        assert!(err.reason.contains("overflows"), "{}", err.reason);
        assert!(lines_per_page_checked(3000).is_err());
        assert!(lines_per_page_checked(32).is_err());
    }

    #[test]
    fn large_page_modes_require_small_base_pages() {
        let mut c = SimConfig {
            page_size_mode: PageSizeMode::Mixed,
            ..SimConfig::default()
        };
        assert!(c.validate().is_ok());
        assert_eq!(c.pages_per_large_frame(), 512);
        c.page_size = PAGE_SIZE_2M;
        let err = c.validate().unwrap_err();
        assert_eq!(err.field, "page_size_mode");
        c.page_size_mode = PageSizeMode::Uniform4k;
        assert!(c.validate().is_ok());
        assert_eq!(c.pages_per_large_frame(), 1);
    }

    #[test]
    fn topology_parse_round_trips_names() {
        for kind in TopologyKind::ALL {
            let cfg = TopologyConfig::parse(kind.name()).unwrap();
            assert_eq!(cfg.kind, kind);
            assert_eq!(cfg.name(), kind.name());
        }
        assert!(TopologyConfig::parse("torus").is_err());
    }

    #[test]
    fn topology_parse_nvswitch_radix() {
        let cfg = TopologyConfig::parse("nvswitch:4").unwrap();
        assert_eq!(cfg.kind, TopologyKind::NvSwitch);
        assert_eq!(cfg.switch_radix, 4);
        assert!(TopologyConfig::parse("ring:4").is_err());
        assert!(TopologyConfig::parse("nvswitch:zero").is_err());
    }

    #[test]
    fn topology_validate_rejects_degenerate_parameters() {
        let bad_radix = TopologyConfig {
            switch_radix: 1,
            ..TopologyConfig::default()
        };
        assert!(bad_radix.validate().is_err());
        let cfg = TopologyConfig {
            inter_node_bytes_per_cycle: 0.0,
            ..TopologyConfig::default()
        };
        assert!(cfg.validate().is_err());
        // An invalid topology fails the whole SimConfig.
        let bad = SimConfig {
            topology: cfg,
            ..SimConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn default_topology_is_all_to_all() {
        let c = SimConfig::default();
        assert_eq!(c.topology.kind, TopologyKind::AllToAll);
        let d = c.describe();
        let get = |name: &str| d.iter().find(|(n, _)| *n == name).map(|(_, v)| *v);
        assert_eq!(get("topology"), Some(0.0));
        assert_eq!(get("switch_radix"), Some(8.0));
    }

    #[test]
    fn cache_geometry_sets() {
        assert_eq!(
            CacheGeometry {
                entries: 64,
                ways: 4
            }
            .sets(),
            16
        );
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn cache_geometry_rejects_uneven() {
        let _ = CacheGeometry {
            entries: 65,
            ways: 4,
        }
        .sets();
    }
}
