//! Access-stream abstraction connecting workload generators to the
//! simulator.

use std::sync::Arc;

use crate::access::Access;

/// A lazily generated, per-GPU sequence of memory accesses.
///
/// Implementors are the workload generators in `grit-workloads`; the system
/// runner pulls one access at a time so multi-hundred-million-access traces
/// never need to be materialized.
pub trait AccessStream {
    /// Produces the next access, or `None` when the GPU's work is done.
    fn next_access(&mut self) -> Option<Access>;

    /// Optional estimate of the total accesses this stream will produce
    /// (used only for progress reporting; `None` if unknown).
    fn len_hint(&self) -> Option<u64> {
        None
    }
}

/// Blanket impl so `Box<dyn AccessStream>` is itself a stream.
impl<S: AccessStream + ?Sized> AccessStream for Box<S> {
    fn next_access(&mut self) -> Option<Access> {
        (**self).next_access()
    }

    fn len_hint(&self) -> Option<u64> {
        (**self).len_hint()
    }
}

/// A stream backed by a pre-materialized, immutably shared trace.
///
/// The trace lives behind an `Arc<[Access]>`, so cloning a stream (or
/// re-running the same workload under a different policy) shares the
/// underlying accesses instead of copying them: the stream itself is just a
/// shared trace plus a private cursor.
///
/// ```
/// use grit_sim::{Access, AccessStream, PageId, SliceStream};
/// let mut s = SliceStream::new(vec![Access::read(PageId(1), 0)]);
/// assert!(s.next_access().is_some());
/// assert!(s.next_access().is_none());
/// ```
#[derive(Clone, Debug)]
pub struct SliceStream {
    trace: Arc<[Access]>,
    pos: usize,
}

impl Default for SliceStream {
    fn default() -> Self {
        SliceStream {
            trace: Arc::from(Vec::new()),
            pos: 0,
        }
    }
}

impl SliceStream {
    /// Wraps a vector of accesses.
    pub fn new(accesses: Vec<Access>) -> Self {
        SliceStream {
            trace: accesses.into(),
            pos: 0,
        }
    }

    /// Wraps an already-shared trace without copying it.
    pub fn from_shared(trace: Arc<[Access]>) -> Self {
        SliceStream { trace, pos: 0 }
    }

    /// The shared trace backing this stream.
    pub fn shared(&self) -> Arc<[Access]> {
        Arc::clone(&self.trace)
    }

    /// A fresh stream over the same shared trace, rewound to the start.
    pub fn reset_clone(&self) -> Self {
        SliceStream {
            trace: Arc::clone(&self.trace),
            pos: 0,
        }
    }

    /// Accesses remaining.
    pub fn remaining(&self) -> usize {
        self.trace.len() - self.pos
    }

    /// The next access, without advancing the cursor.
    pub fn peek(&self) -> Option<Access> {
        self.trace.get(self.pos).copied()
    }

    /// Moves the cursor back by `n` accesses (speculative-execution
    /// rollback).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` accesses have been consumed.
    pub fn rewind(&mut self, n: usize) {
        assert!(n <= self.pos, "cannot rewind past the start of the stream");
        self.pos -= n;
    }
}

impl AccessStream for SliceStream {
    fn next_access(&mut self) -> Option<Access> {
        let a = self.trace.get(self.pos).copied();
        if a.is_some() {
            self.pos += 1;
        }
        a
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.trace.len() as u64)
    }
}

impl FromIterator<Access> for SliceStream {
    fn from_iter<T: IntoIterator<Item = Access>>(iter: T) -> Self {
        SliceStream::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::PageId;

    #[test]
    fn slice_stream_yields_in_order_then_none() {
        let acc = vec![Access::read(PageId(1), 0), Access::write(PageId(2), 1)];
        let mut s = SliceStream::new(acc.clone());
        assert_eq!(s.len_hint(), Some(2));
        assert_eq!(s.next_access(), Some(acc[0]));
        assert_eq!(s.remaining(), 1);
        assert_eq!(s.next_access(), Some(acc[1]));
        assert_eq!(s.next_access(), None);
        assert_eq!(s.next_access(), None);
    }

    #[test]
    fn boxed_stream_is_a_stream() {
        let mut s: Box<dyn AccessStream> =
            Box::new(SliceStream::new(vec![Access::read(PageId(9), 5)]));
        assert_eq!(s.len_hint(), Some(1));
        assert!(s.next_access().is_some());
        assert!(s.next_access().is_none());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut s = SliceStream::new(vec![Access::read(PageId(4), 2)]);
        assert_eq!(s.peek(), Some(Access::read(PageId(4), 2)));
        assert_eq!(s.peek(), s.next_access());
        assert_eq!(s.peek(), None);
        assert_eq!(s.next_access(), None);
    }

    #[test]
    fn rewind_steps_the_cursor_back() {
        let mut s: SliceStream = (0..3).map(|i| Access::read(PageId(i), 0)).collect();
        s.next_access();
        s.next_access();
        s.rewind(2);
        assert_eq!(s.next_access(), Some(Access::read(PageId(0), 0)));
    }

    #[test]
    #[should_panic(expected = "rewind past the start")]
    fn rewind_past_start_panics() {
        let mut s: SliceStream = (0..3).map(|i| Access::read(PageId(i), 0)).collect();
        s.next_access();
        s.rewind(2);
    }

    #[test]
    fn from_iterator_collects() {
        let s: SliceStream = (0..5).map(|i| Access::read(PageId(i), 0)).collect();
        assert_eq!(s.remaining(), 5);
    }

    #[test]
    fn clones_share_one_trace_with_private_cursors() {
        let mut a: SliceStream = (0..3).map(|i| Access::read(PageId(i), 0)).collect();
        let shared = a.shared();
        a.next_access();
        let mut b = SliceStream::from_shared(shared);
        assert!(Arc::ptr_eq(&a.trace, &b.trace));
        assert_eq!(a.remaining(), 2);
        assert_eq!(b.remaining(), 3);
        assert_eq!(b.next_access(), Some(Access::read(PageId(0), 0)));
        let c = a.reset_clone();
        assert!(Arc::ptr_eq(&a.trace, &c.trace));
        assert_eq!(c.remaining(), 3);
    }
}
