//! Access-stream abstraction connecting workload generators to the
//! simulator.

use crate::access::Access;

/// A lazily generated, per-GPU sequence of memory accesses.
///
/// Implementors are the workload generators in `grit-workloads`; the system
/// runner pulls one access at a time so multi-hundred-million-access traces
/// never need to be materialized.
pub trait AccessStream {
    /// Produces the next access, or `None` when the GPU's work is done.
    fn next_access(&mut self) -> Option<Access>;

    /// Optional estimate of the total accesses this stream will produce
    /// (used only for progress reporting; `None` if unknown).
    fn len_hint(&self) -> Option<u64> {
        None
    }
}

/// Blanket impl so `Box<dyn AccessStream>` is itself a stream.
impl<S: AccessStream + ?Sized> AccessStream for Box<S> {
    fn next_access(&mut self) -> Option<Access> {
        (**self).next_access()
    }

    fn len_hint(&self) -> Option<u64> {
        (**self).len_hint()
    }
}

/// A stream backed by a pre-materialized vector; used by unit and
/// integration tests to feed exact access sequences.
///
/// ```
/// use grit_sim::{Access, AccessStream, PageId, SliceStream};
/// let mut s = SliceStream::new(vec![Access::read(PageId(1), 0)]);
/// assert!(s.next_access().is_some());
/// assert!(s.next_access().is_none());
/// ```
#[derive(Clone, Debug, Default)]
pub struct SliceStream {
    accesses: Vec<Access>,
    pos: usize,
}

impl SliceStream {
    /// Wraps a vector of accesses.
    pub fn new(accesses: Vec<Access>) -> Self {
        SliceStream { accesses, pos: 0 }
    }

    /// Accesses remaining.
    pub fn remaining(&self) -> usize {
        self.accesses.len() - self.pos
    }
}

impl AccessStream for SliceStream {
    fn next_access(&mut self) -> Option<Access> {
        let a = self.accesses.get(self.pos).copied();
        if a.is_some() {
            self.pos += 1;
        }
        a
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.accesses.len() as u64)
    }
}

impl FromIterator<Access> for SliceStream {
    fn from_iter<T: IntoIterator<Item = Access>>(iter: T) -> Self {
        SliceStream::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::PageId;

    #[test]
    fn slice_stream_yields_in_order_then_none() {
        let acc = vec![Access::read(PageId(1), 0), Access::write(PageId(2), 1)];
        let mut s = SliceStream::new(acc.clone());
        assert_eq!(s.len_hint(), Some(2));
        assert_eq!(s.next_access(), Some(acc[0]));
        assert_eq!(s.remaining(), 1);
        assert_eq!(s.next_access(), Some(acc[1]));
        assert_eq!(s.next_access(), None);
        assert_eq!(s.next_access(), None);
    }

    #[test]
    fn boxed_stream_is_a_stream() {
        let mut s: Box<dyn AccessStream> =
            Box::new(SliceStream::new(vec![Access::read(PageId(9), 5)]));
        assert_eq!(s.len_hint(), Some(1));
        assert!(s.next_access().is_some());
        assert!(s.next_access().is_none());
    }

    #[test]
    fn from_iterator_collects() {
        let s: SliceStream = (0..5).map(|i| Access::read(PageId(i), 0)).collect();
        assert_eq!(s.remaining(), 5);
    }
}
