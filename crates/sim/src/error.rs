//! Unified error types and cooperative cancellation for the simulator.
//!
//! Everything a batch executor needs to keep running when one experiment
//! cell goes wrong: [`CellError`] is the typed per-cell failure surfaced
//! in results and reports, [`GritError`] is the crate-family-wide error
//! wrapping configuration, workload and cell failures, and [`CancelToken`]
//! carries soft wall-clock budgets and batch-wide abort flags into the
//! simulation hot loop.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::config::ConfigError;

/// Why one experiment cell failed to produce a [`Ok`] result.
///
/// Batch executors return `Vec<Result<_, CellError>>`, so one poisoned cell
/// becomes a row-level value instead of aborting the whole campaign.
#[derive(Clone, Debug, PartialEq)]
pub enum CellError {
    /// The cell panicked; the payload message is preserved.
    Panicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The cell exceeded its wall-clock budget; partial progress counters
    /// describe how far the simulation got.
    TimedOut {
        /// The configured budget in seconds.
        budget_seconds: f64,
        /// Simulated cycles completed when the budget expired.
        cycles: u64,
        /// Accesses replayed when the budget expired.
        accesses: u64,
    },
    /// The batch was aborted (fail-fast) before or while this cell ran.
    Cancelled,
    /// A post-run VM-state invariant was violated.
    Invariant(String),
    /// The cell's configuration failed validation.
    Config(ConfigError),
    /// The workload could not be built.
    Workload(String),
}

impl CellError {
    /// Short machine-readable status label (used in reports and tables).
    pub fn status(&self) -> &'static str {
        match self {
            CellError::Panicked { .. } => "panicked",
            CellError::TimedOut { .. } => "timed-out",
            CellError::Cancelled => "cancelled",
            CellError::Invariant(_) => "invariant-violated",
            CellError::Config(_) => "config-error",
            CellError::Workload(_) => "workload-error",
        }
    }
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellError::Panicked { message } => write!(f, "cell panicked: {message}"),
            CellError::TimedOut {
                budget_seconds,
                cycles,
                accesses,
            } => write!(
                f,
                "cell timed out after {budget_seconds}s ({cycles} cycles, {accesses} accesses simulated)"
            ),
            CellError::Cancelled => write!(f, "cell cancelled by batch abort"),
            CellError::Invariant(msg) => write!(f, "{msg}"),
            CellError::Config(e) => write!(f, "{e}"),
            CellError::Workload(msg) => write!(f, "workload build failed: {msg}"),
        }
    }
}

impl Error for CellError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CellError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for CellError {
    fn from(e: ConfigError) -> Self {
        CellError::Config(e)
    }
}

/// The unified error of the GRIT crate family: everything that can go
/// wrong building or running a simulation.
#[derive(Clone, Debug, PartialEq)]
pub enum GritError {
    /// A configuration failed [`crate::SimConfig::validate`] (or a
    /// structural precondition such as a workload/GPU-count mismatch).
    Config(ConfigError),
    /// A workload could not be built.
    Workload(String),
    /// A cell-level execution failure (panic, timeout, cancellation,
    /// invariant violation).
    Cell(CellError),
}

impl fmt::Display for GritError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GritError::Config(e) => write!(f, "{e}"),
            GritError::Workload(msg) => write!(f, "workload build failed: {msg}"),
            GritError::Cell(e) => write!(f, "{e}"),
        }
    }
}

impl Error for GritError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GritError::Config(e) => Some(e),
            GritError::Cell(e) => Some(e),
            GritError::Workload(_) => None,
        }
    }
}

impl From<ConfigError> for GritError {
    fn from(e: ConfigError) -> Self {
        GritError::Config(e)
    }
}

impl From<CellError> for GritError {
    fn from(e: CellError) -> Self {
        GritError::Cell(e)
    }
}

impl From<GritError> for CellError {
    fn from(e: GritError) -> Self {
        match e {
            GritError::Config(c) => CellError::Config(c),
            GritError::Workload(m) => CellError::Workload(m),
            GritError::Cell(c) => c,
        }
    }
}

/// What a [`CancelToken`] poll observed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CancelState {
    /// Keep going.
    Running,
    /// The shared abort flag was raised (e.g. fail-fast).
    Cancelled,
    /// The per-cell wall-clock budget expired.
    TimedOut,
}

/// Cooperative cancellation handle threaded into the simulation loop.
///
/// A token combines an optional *shared abort flag* (one per batch; raising
/// it cancels every in-flight cell) with an optional *per-cell deadline*
/// (a soft wall-clock budget). The simulation polls the token at a coarse
/// access granularity, so cancellation latency is bounded by a few thousand
/// simulated accesses, not by the whole run.
///
/// ```
/// use grit_sim::{CancelState, CancelToken};
/// use std::time::Duration;
///
/// let batch = CancelToken::shared();
/// let cell = batch.child(None);
/// assert_eq!(cell.poll(), CancelState::Running);
/// batch.cancel();
/// assert_eq!(cell.poll(), CancelState::Cancelled);
///
/// let strict = CancelToken::new().with_budget(Duration::ZERO);
/// assert_eq!(strict.poll(), CancelState::TimedOut);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Option<Arc<AtomicBool>>,
    deadline: Option<Instant>,
    budget: Option<Duration>,
}

impl CancelToken {
    /// An inert token that never fires.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token carrying a fresh shared abort flag. Clones (and
    /// [`CancelToken::child`] tokens) observe [`CancelToken::cancel`] calls
    /// made through any of them.
    pub fn shared() -> Self {
        CancelToken {
            flag: Some(Arc::new(AtomicBool::new(false))),
            deadline: None,
            budget: None,
        }
    }

    /// Adds a wall-clock budget starting now.
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.deadline = Some(Instant::now() + budget);
        self.budget = Some(budget);
        self
    }

    /// A per-cell token sharing this token's abort flag, with an optional
    /// budget starting now.
    pub fn child(&self, budget: Option<Duration>) -> Self {
        let t = CancelToken {
            flag: self.flag.clone(),
            deadline: None,
            budget: None,
        };
        match budget {
            Some(b) => t.with_budget(b),
            None => t,
        }
    }

    /// Raises the shared abort flag (no-op on tokens without one).
    pub fn cancel(&self) {
        if let Some(flag) = &self.flag {
            flag.store(true, Ordering::Relaxed);
        }
    }

    /// Whether polling can ever observe anything but `Running`. Hot loops
    /// hoist this so inert tokens cost nothing.
    pub fn is_active(&self) -> bool {
        self.flag.is_some() || self.deadline.is_some()
    }

    /// Polls the token. The abort flag wins over the deadline so a
    /// batch-wide abort reports `Cancelled` even on cells that also ran out
    /// of budget.
    pub fn poll(&self) -> CancelState {
        if let Some(flag) = &self.flag {
            if flag.load(Ordering::Relaxed) {
                return CancelState::Cancelled;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return CancelState::TimedOut;
            }
        }
        CancelState::Running
    }

    /// The configured budget in seconds (0.0 when no budget was set), for
    /// constructing [`CellError::TimedOut`].
    pub fn budget_seconds(&self) -> f64 {
        self.budget.map_or(0.0, |b| b.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_token_never_fires() {
        let t = CancelToken::new();
        assert!(!t.is_active());
        assert_eq!(t.poll(), CancelState::Running);
        t.cancel(); // no flag: no-op
        assert_eq!(t.poll(), CancelState::Running);
    }

    #[test]
    fn shared_flag_propagates_to_children_and_clones() {
        let parent = CancelToken::shared();
        let child = parent.child(None);
        let clone = child.clone();
        assert_eq!(child.poll(), CancelState::Running);
        parent.cancel();
        assert_eq!(child.poll(), CancelState::Cancelled);
        assert_eq!(clone.poll(), CancelState::Cancelled);
    }

    #[test]
    fn zero_budget_times_out_immediately() {
        let t = CancelToken::new().with_budget(Duration::ZERO);
        assert!(t.is_active());
        assert_eq!(t.poll(), CancelState::TimedOut);
        assert_eq!(t.budget_seconds(), 0.0);
    }

    #[test]
    fn abort_flag_wins_over_deadline() {
        let t = CancelToken::shared().with_budget(Duration::ZERO);
        t.cancel();
        assert_eq!(t.poll(), CancelState::Cancelled);
    }

    #[test]
    fn long_budget_keeps_running() {
        let t = CancelToken::new().with_budget(Duration::from_secs(3600));
        assert_eq!(t.poll(), CancelState::Running);
        assert!((t.budget_seconds() - 3600.0).abs() < 1e-9);
    }

    #[test]
    fn cell_error_display_and_status() {
        let e = CellError::Panicked {
            message: "boom".into(),
        };
        assert!(e.to_string().contains("boom"));
        assert_eq!(e.status(), "panicked");
        let e = CellError::TimedOut {
            budget_seconds: 2.0,
            cycles: 10,
            accesses: 5,
        };
        assert!(e.to_string().contains("timed out"));
        assert_eq!(e.status(), "timed-out");
        assert_eq!(CellError::Cancelled.status(), "cancelled");
    }

    #[test]
    fn grit_error_wraps_and_converts() {
        let cfg_err = ConfigError {
            field: "num_gpus",
            reason: "must be at least 1".into(),
        };
        let g: GritError = cfg_err.clone().into();
        assert!(matches!(g, GritError::Config(_)));
        assert!(g.to_string().contains("num_gpus"));
        let c: CellError = g.into();
        assert_eq!(c, CellError::Config(cfg_err));
        let back: GritError = CellError::Cancelled.into();
        assert!(matches!(back, GritError::Cell(CellError::Cancelled)));
        // Source chains terminate at the config error.
        let e = GritError::Config(ConfigError {
            field: "x",
            reason: "y".into(),
        });
        assert!(std::error::Error::source(&e).is_some());
    }
}
