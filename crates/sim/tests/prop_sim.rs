//! Property tests for the simulation substrate: MLP window scheduling,
//! GPU sets, scheme/group encodings and deterministic randomness.

use proptest::prelude::*;

use grit_sim::{GpuId, GpuSet, GroupSize, MlpWindow, PageId, Scheme, SimRng};

proptest! {
    #[test]
    fn mlp_issue_is_never_before_ready(
        completions in prop::collection::vec(0u64..10_000, 0..8),
        ready in 0u64..10_000,
    ) {
        let mut w = MlpWindow::new(8);
        for c in completions {
            w.complete(c);
        }
        let t = w.issue_at(ready);
        prop_assert!(t >= ready);
        prop_assert!(w.in_flight() < 8, "issue must leave a free slot");
    }

    #[test]
    fn mlp_in_flight_bounded(ops in prop::collection::vec((0u64..1000, 0u64..1000), 1..200)) {
        let mut w = MlpWindow::new(4);
        for (ready, extra) in ops {
            let t = w.issue_at(ready);
            w.complete(t + extra);
            prop_assert!(w.in_flight() <= 4);
        }
    }

    #[test]
    fn mlp_drain_is_max_completion(completions in prop::collection::vec(0u64..100_000, 1..50)) {
        let mut w = MlpWindow::new(64);
        let max = *completions.iter().max().unwrap();
        for c in &completions {
            w.complete(*c);
        }
        prop_assert_eq!(w.drain_time(), max);
        prop_assert_eq!(w.in_flight(), 0);
    }

    #[test]
    fn gpu_set_behaves_like_hashset(ops in prop::collection::vec((0u8..16, any::<bool>()), 0..100)) {
        let mut real = GpuSet::new();
        let mut model = std::collections::BTreeSet::new();
        for (g, insert) in ops {
            if insert {
                prop_assert_eq!(real.insert(GpuId::new(g)), model.insert(g));
            } else {
                prop_assert_eq!(real.remove(GpuId::new(g)), model.remove(&g));
            }
            prop_assert_eq!(real.len(), model.len());
            let members: Vec<u8> = real.iter().map(|x| x.raw()).collect();
            let expected: Vec<u8> = model.iter().copied().collect();
            prop_assert_eq!(members, expected);
        }
    }

    #[test]
    fn scheme_bits_are_injective(a in 0u64..4, b in 0u64..4) {
        let sa = Scheme::from_bits(a);
        let sb = Scheme::from_bits(b);
        prop_assert_eq!(sa == sb, a == b);
    }

    #[test]
    fn group_base_is_idempotent_and_aligned(vpn in any::<u32>().prop_map(u64::from)) {
        for g in [GroupSize::Eight, GroupSize::SixtyFour, GroupSize::FiveTwelve] {
            let base = PageId(vpn).group_base(g.pages());
            prop_assert_eq!(base.vpn() % g.pages(), 0);
            prop_assert_eq!(base.group_base(g.pages()), base);
            prop_assert!(base.vpn() <= vpn);
            prop_assert!(vpn - base.vpn() < g.pages());
        }
    }

    #[test]
    fn counter_groups_partition_pages(vpn in any::<u32>().prop_map(u64::from)) {
        // 16 consecutive 4 KB pages share one 64 KB counter group.
        let g = PageId(vpn).counter_group(4096);
        prop_assert_eq!(g, vpn / 16);
    }

    #[test]
    fn rng_streams_reproduce(seed in any::<u64>()) {
        let mut a = SimRng::seeded(seed);
        let mut b = SimRng::seeded(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.below(1 << 30), b.below(1 << 30));
        }
        let mut fa = a.fork(7);
        let mut fb = b.fork(7);
        prop_assert_eq!(fa.below(1000), fb.below(1000));
    }

    #[test]
    fn zipf_stays_in_support(seed in any::<u64>(), n in 1u64..10_000, theta in 0.1f64..1.6) {
        let mut r = SimRng::seeded(seed);
        for _ in 0..64 {
            prop_assert!(r.zipf(n, theta) < n);
        }
    }
}
