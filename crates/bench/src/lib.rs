//! # grit-bench
//!
//! Criterion benchmark harness for the GRIT reproduction.
//!
//! * `benches/figures.rs` — one macro-benchmark per table/figure of the
//!   paper's evaluation, re-running the same experiment drivers as the
//!   `repro` binary.
//! * `benches/components.rs` — micro-benchmarks of the hot simulator
//!   structures (set-associative cache, TLB hierarchy, walker pool, LRU
//!   memory, PA-Cache, NAP, trace generation, full small system runs).
//!
//! Run with `cargo bench --workspace`.
