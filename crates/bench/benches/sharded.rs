//! Benchmarks of the sharded event loop (`--sim-threads`): one cell run
//! serially vs sharded at 4 and 8 GPUs — the per-cell wall-clock win —
//! plus a tiny cell where the window/barrier machinery dominates, which
//! bounds the sharding overhead. `serial_8gpu` doubles as the
//! no-regression guard for the serial engine: CI compares it against the
//! stored Criterion baseline.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use grit::experiments::{run_batch_with, BatchOptions, CellSpec, ExpConfig, PolicyKind};
use grit_sim::SimConfig;
use grit_workloads::App;

fn exp(scale: f64) -> ExpConfig {
    ExpConfig {
        scale,
        intensity: 0.5,
        ..ExpConfig::quick()
    }
}

// Gemm has the highest purely-GPU-local event fraction of the built-in
// apps (~75% at 8 GPUs under GRIT), so it is the headline scaling cell;
// fault-heavy apps like BFS bound the other end (~45% pure).
fn cell(gpus: usize, scale: f64) -> Vec<CellSpec> {
    vec![CellSpec::new(App::Gemm, PolicyKind::GRIT, &exp(scale))
        .with_cfg(SimConfig::with_gpus(gpus))]
}

fn run_one(cells: &[CellSpec], sim_threads: usize) {
    let out = run_batch_with(cells, &BatchOptions::new().jobs(1).sim_threads(sim_threads));
    assert!(out.iter().all(Result::is_ok));
    black_box(out);
}

fn bench_sharded(c: &mut Criterion) {
    let mut g = c.benchmark_group("sharded");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(3));

    // One mid-size cell, serial vs sharded, at the two GPU counts the
    // acceptance criteria name. The first iteration builds the workload
    // trace into the shared cache, so steady-state samples time only the
    // engines.
    for gpus in [4usize, 8] {
        let cells = cell(gpus, 0.05);
        g.bench_function(format!("serial_{gpus}gpu"), |b| {
            b.iter(|| run_one(&cells, 1))
        });
        g.bench_function(format!("sharded4_{gpus}gpu"), |b| {
            b.iter(|| run_one(&cells, 4))
        });
    }

    // A deliberately tiny cell: almost every round hits a window barrier,
    // so sharded-vs-serial here is nearly pure round-barrier and merge
    // overhead.
    let tiny = cell(4, 0.005);
    g.bench_function("window_overhead_tiny_serial", |b| {
        b.iter(|| run_one(&tiny, 1))
    });
    g.bench_function("window_overhead_tiny_sharded4", |b| {
        b.iter(|| run_one(&tiny, 4))
    });

    g.finish();
}

/// Wall-clock of the serial engine over one cell, best of three.
fn time_serial(gpus: usize) -> Duration {
    let cells = cell(gpus, 0.05);
    run_one(&cells, 1); // warm the workload cache
    (0..3)
        .map(|_| {
            let t = std::time::Instant::now();
            run_one(&cells, 1);
            t.elapsed()
        })
        .min()
        .expect("three samples")
}

/// Serial no-regression guard: the undo-log journaling and worker pool
/// must stay entirely off the serial path. Doubling the GPU count
/// roughly doubles the event count, so the 8-GPU serial run must finish
/// within 4x the 4-GPU one on any machine — superlinear blow-ups or
/// speculative machinery leaking into the serial engine trip this
/// without needing a stored cross-machine baseline.
fn serial_no_regression_guard(_c: &mut Criterion) {
    let t4 = time_serial(4);
    let t8 = time_serial(8);
    assert!(
        t8 <= t4 * 4 + Duration::from_millis(50),
        "8-GPU serial run regressed: 4 GPUs took {t4:?}, 8 GPUs took {t8:?}"
    );
    println!("sharded/serial_guard ok: 4gpu={t4:?} 8gpu={t8:?}");
}

criterion_group! {
    name = sharded;
    config = Criterion::default().without_plots();
    targets = bench_sharded, serial_no_regression_guard
}
criterion_main!(sharded);
