//! Micro-benchmarks of the simulator's hot structures: the per-access data
//! path (TLB, walker, L2 cache keys), GRIT's PA-Cache, NAP group
//! operations, LRU memory, trace generation and a small end-to-end run.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use grit::experiments::PolicyKind;
use grit::Simulation;
use grit_core::{GritConfig, Nap, PaStore};
use grit_mem::{GpuMemory, SetAssocCache, TlbHierarchy, WalkerPool};
use grit_sim::{PageId, Scheme, SimConfig};
use grit_uvm::CentralPageTable;
use grit_workloads::{App, WorkloadBuilder};

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("components/cache");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    g.bench_function("set_assoc_insert_get", |b| {
        let mut cache: SetAssocCache<u64, u32> = SetAssocCache::with_entries(4096, 16);
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
            cache.insert(k % 8192, 1);
            black_box(cache.get(&(k % 8192)));
        })
    });
    g.bench_function("tlb_hierarchy_translate", |b| {
        let cfg = SimConfig::default();
        let mut tlb = TlbHierarchy::new(cfg.l1_tlb, cfg.l2_tlb);
        let mut p = 0u64;
        b.iter(|| {
            p = (p + 17) % 1024;
            let (level, lat) = tlb.translate(PageId(p));
            tlb.fill(PageId(p));
            black_box((level, lat));
        })
    });
    g.bench_function("walker_pool_walk", |b| {
        let mut w = WalkerPool::new(SimConfig::default().walk);
        let mut now = 0u64;
        let mut p = 0u64;
        b.iter(|| {
            // Advance time faster than walks complete so the outstanding
            // queue drains (a realistic arrival rate for one GPU).
            now += 500;
            p = (p + 97) % 100_000;
            black_box(w.walk(now, PageId(p)));
        })
    });
    g.finish();
}

fn bench_memory(c: &mut Criterion) {
    let mut g = c.benchmark_group("components/memory");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    g.bench_function("gpu_memory_insert_touch", |b| {
        let mut m = GpuMemory::new(10_000);
        let mut p = 0u64;
        b.iter(|| {
            p = (p + 131) % 20_000;
            black_box(m.insert(PageId(p)));
            black_box(m.touch(PageId(p / 2)));
        })
    });
    g.finish();
}

fn bench_grit_structures(c: &mut Criterion) {
    let mut g = c.benchmark_group("components/grit");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    g.bench_function("pa_store_record_fault", |b| {
        let mut s = PaStore::new(true, 2, 200);
        let mut p = 0u64;
        b.iter(|| {
            p = (p + 7) % 4096;
            let (e, lat) = s.record_fault(PageId(p), p.is_multiple_of(3));
            if e.faults >= 4 {
                s.delete(PageId(p));
            }
            black_box(lat);
        })
    });
    g.bench_function("nap_scheme_change", |b| {
        let mut table = CentralPageTable::new();
        let mut nap = Nap::new(8_192);
        let mut p = 0u64;
        let mut flip = false;
        b.iter(|| {
            p = (p + 13) % 8_192;
            flip = !flip;
            let new = if flip {
                Scheme::Duplication
            } else {
                Scheme::AccessCounter
            };
            let prev = table.scheme_of(PageId(p));
            if prev != Some(new) {
                table.set_scheme(PageId(p), new);
                nap.on_scheme_change(&mut table, PageId(p), new, prev);
            }
        })
    });
    g.finish();
}

fn bench_workloads(c: &mut Criterion) {
    let mut g = c.benchmark_group("components/workloads");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    for app in [App::Gemm, App::St, App::Bfs] {
        g.bench_function(format!("generate_{}", app.abbr()), |b| {
            b.iter(|| {
                black_box(WorkloadBuilder::new(app).scale(0.03).intensity(1.0).seed(1).build())
            })
        });
    }
    g.finish();
}

fn bench_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("components/system");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    g.bench_function("full_run_gemm_grit_small", |b| {
        b.iter(|| {
            let cfg = SimConfig::default();
            let w = WorkloadBuilder::new(App::Gemm).scale(0.02).intensity(1.0).seed(1).build();
            let p = PolicyKind::GRIT.build(&cfg, w.footprint_pages);
            black_box(
                Simulation::try_new(cfg, w, p).unwrap().try_run().unwrap().metrics.total_cycles,
            )
        })
    });
    g.bench_function("full_run_st_on_touch_small", |b| {
        b.iter(|| {
            let cfg = SimConfig::default();
            let w = WorkloadBuilder::new(App::St).scale(0.02).intensity(1.0).seed(1).build();
            let p = PolicyKind::Static(Scheme::OnTouch).build(&cfg, w.footprint_pages);
            black_box(
                Simulation::try_new(cfg, w, p).unwrap().try_run().unwrap().metrics.total_cycles,
            )
        })
    });
    g.finish();
}

fn bench_fabric(c: &mut Criterion) {
    use grit_interconnect::Fabric;
    use grit_sim::{GpuId, LinkConfig, TopologyConfig, TopologyKind};
    let mut g = c.benchmark_group("components/fabric");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    // The routed-transfer hot path: one gpu_to_gpu booking per iteration,
    // cycling through every GPU pair of an 8-GPU fabric. Single-hop on
    // the default all-to-all; multi-hop (route walk + per-hop booking) on
    // the shared-wire topologies.
    for kind in [
        TopologyKind::AllToAll,
        TopologyKind::NvSwitch,
        TopologyKind::Ring,
        TopologyKind::Hierarchical,
    ] {
        g.bench_function(
            format!("gpu_to_gpu_{}", TopologyConfig::of(kind).name()),
            |b| {
                let mut f =
                    Fabric::with_topology(8, LinkConfig::default(), TopologyConfig::of(kind));
                let pairs: Vec<(GpuId, GpuId)> = (0..8u8)
                    .flat_map(|a| ((a + 1)..8).map(move |b| (GpuId::new(a), GpuId::new(b))))
                    .collect();
                let mut i = 0usize;
                let mut now = 0u64;
                b.iter(|| {
                    let (src, dst) = pairs[i % pairs.len()];
                    i += 1;
                    now += 200;
                    black_box(f.gpu_to_gpu(src, dst, now, 4096));
                })
            },
        );
    }
    g.bench_function("fabric_build_nvswitch_16", |b| {
        b.iter(|| {
            black_box(Fabric::with_topology(
                16,
                LinkConfig::default(),
                TopologyConfig::of(TopologyKind::NvSwitch),
            ))
        })
    });
    g.finish();
}

fn bench_grit_policy_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("components/policy");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));
    g.bench_function("grit_policy_on_fault", |b| {
        use grit_sim::{AccessKind, GpuId};
        use grit_uvm::{FaultInfo, FaultKind, PlacementPolicy};
        let cfg = SimConfig::default();
        let mut policy = grit_core::GritPolicy::new(GritConfig::full(&cfg), 65_536);
        let mut table = CentralPageTable::new();
        let mut p = 0u64;
        b.iter(|| {
            p = (p + 3) % 65_536;
            let gpu = GpuId::new((p % 4) as u8);
            let fault = FaultInfo {
                now: p,
                gpu,
                vpn: PageId(p),
                kind: if p.is_multiple_of(5) {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
                fault: FaultKind::Local,
            };
            let state = table.note_fault(gpu, PageId(p), fault.kind.is_write());
            black_box(policy.on_fault(&fault, &state, &mut table));
        })
    });
    g.finish();
}

criterion_group! {
    name = components;
    config = Criterion::default().without_plots();
    targets = bench_cache,
        bench_memory,
        bench_grit_structures,
        bench_workloads,
        bench_system,
        bench_fabric,
        bench_grit_policy_end_to_end
}
criterion_main!(components);
