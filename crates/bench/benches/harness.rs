//! Benchmarks of the experiment harness itself: one cached `run_cell`,
//! and a small apps x policies grid executed serially vs across the
//! worker pool — the ratio is the wall-clock win `repro all` sees.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use grit::experiments::{run_batch_with, run_cell, BatchOptions, CellSpec, ExpConfig, PolicyKind};
use grit_sim::Scheme;
use grit_trace::TraceConfig;
use grit_workloads::App;

fn quick() -> ExpConfig {
    ExpConfig {
        scale: 0.015,
        intensity: 0.4,
        ..ExpConfig::quick()
    }
}

fn grid() -> Vec<CellSpec> {
    let exp = quick();
    let policies = [
        PolicyKind::Static(Scheme::OnTouch),
        PolicyKind::Static(Scheme::Duplication),
        PolicyKind::GRIT,
    ];
    [App::Bfs, App::Gemm, App::Fir, App::St]
        .into_iter()
        .flat_map(|app| policies.map(|p| CellSpec::new(app, p, &exp)))
        .collect()
}

fn bench_harness(c: &mut Criterion) {
    let mut g = c.benchmark_group("harness");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(3));

    // One cell through the shared workload cache (the trace is built on
    // the first iteration and reused afterwards, so this times the
    // simulator, not the generator). Tracing is off here; comparing
    // against `run_cell_grit_bfs_traced` below bounds the tracer's
    // overhead when enabled, and this bench itself bounds the disabled
    // tracer's cost (the emit sites compile to a branch on `None`).
    g.bench_function("run_cell_grit_bfs", |b| {
        let exp = quick();
        b.iter(|| black_box(run_cell(App::Bfs, PolicyKind::GRIT, &exp)))
    });
    g.bench_function("run_cell_grit_bfs_traced", |b| {
        let exp = quick();
        let cell = CellSpec::new(App::Bfs, PolicyKind::GRIT, &exp).traced(TraceConfig::default());
        b.iter(|| black_box(cell.run()))
    });

    // The same 12-cell grid, serial vs parallel.
    g.bench_function("grid_12_cells_serial", |b| {
        let cells = grid();
        b.iter(|| black_box(run_batch_with(&cells, &BatchOptions::new().jobs(1))))
    });
    let jobs = std::thread::available_parallelism().map_or(4, |n| n.get().min(8));
    g.bench_function("grid_12_cells_parallel", |b| {
        let cells = grid();
        b.iter(|| black_box(run_batch_with(&cells, &BatchOptions::new().jobs(jobs))))
    });

    g.finish();
}

criterion_group! {
    name = harness;
    config = Criterion::default().without_plots();
    targets = bench_harness
}
criterion_main!(harness);
