//! Criterion macro-benchmarks: one benchmark per table/figure of the
//! paper's evaluation, each re-running the exact experiment driver the
//! `repro` binary uses (at CI scale, so `cargo bench` completes in
//! minutes). Timing these is how we track the simulator's own performance;
//! the *results* of each figure are printed by `repro` and recorded in
//! EXPERIMENTS.md.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use grit::experiments as ex;
use grit::experiments::ExpConfig;

fn quick() -> ExpConfig {
    // Benchmark-sized inputs: small enough that the full 20-figure sweep
    // finishes in minutes, large enough to exercise every mechanism.
    ExpConfig {
        scale: 0.015,
        intensity: 0.4,
        ..ExpConfig::quick()
    }
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(2));

    g.bench_function("fig01_uniform_schemes", |b| {
        b.iter(|| ex::fig01_schemes::run(&quick()))
    });
    g.bench_function("fig03_latency_breakdown", |b| {
        b.iter(|| ex::fig03_breakdown::run(&quick()))
    });
    g.bench_function("fig04_sharing_characterization", |b| {
        b.iter(|| ex::fig04_sharing::run(&quick()))
    });
    g.bench_function("fig05_page_timeline", |b| {
        b.iter(|| ex::fig05_page_timeline::run(&quick()))
    });
    g.bench_function("fig06_08_attr_grids", |b| {
        b.iter(|| ex::fig06_attr_grids::run(&quick()))
    });
    g.bench_function("fig09_rw_characterization", |b| {
        b.iter(|| ex::fig09_rw::run(&quick()))
    });
    g.bench_function("fig10_rw_timeline", |b| {
        b.iter(|| ex::fig10_rw_timeline::run(&quick()))
    });
    g.bench_function("fig17_grit_headline", |b| {
        b.iter(|| ex::fig17_grit::run(&quick()))
    });
    g.bench_function("fig18_fault_counts", |b| {
        b.iter(|| ex::fig18_faults::run(&quick()))
    });
    g.bench_function("fig19_scheme_mix", |b| {
        b.iter(|| ex::fig19_scheme_mix::run(&quick()))
    });
    g.bench_function("fig20_ablation", |b| {
        b.iter(|| ex::fig20_ablation::run(&quick()))
    });
    g.bench_function("fig21_fault_threshold", |b| {
        b.iter(|| ex::fig21_threshold::run(&quick()))
    });
    g.bench_function("fig22_24_gpu_scaling", |b| {
        b.iter(|| ex::fig22_gpu_scaling::run_gpus(8, &quick()))
    });
    g.bench_function("fig25_large_pages", |b| {
        b.iter(|| ex::fig25_large_pages::run(&quick()))
    });
    g.bench_function("fig26_griffin", |b| {
        b.iter(|| ex::fig26_griffin::run(&quick()))
    });
    g.bench_function("fig27_gps", |b| b.iter(|| ex::fig27_gps::run(&quick())));
    g.bench_function("fig28_transfw", |b| {
        b.iter(|| ex::fig28_transfw::run(&quick()))
    });
    g.bench_function("fig29_first_touch", |b| {
        b.iter(|| ex::fig29_first_touch::run(&quick()))
    });
    g.bench_function("fig30_prefetch", |b| {
        b.iter(|| ex::fig30_prefetch::run(&quick()))
    });
    g.bench_function("fig31_dnn", |b| b.iter(|| ex::fig31_dnn::run(&quick())));
    g.bench_function("ext_oracle", |b| b.iter(|| ex::ext_oracle::run(&quick())));
    g.bench_function("ext_pa_cache_sweep", |b| {
        b.iter(|| ex::ext_pa_cache::run(&quick()))
    });
    g.bench_function("ext_adaptation_timeline", |b| {
        b.iter(|| ex::ext_adaptation::run(&quick()))
    });
    g.bench_function("ext_capacity_sweep", |b| {
        b.iter(|| ex::ext_sweeps::run_capacity(&quick()))
    });

    g.finish();
}

criterion_group! {
    name = figures;
    config = Criterion::default().without_plots();
    targets = bench_figures
}
criterion_main!(figures);
