//! Property tests for the routed fabric: per-hop byte conservation on
//! every topology, and exact equivalence between the default all-to-all
//! fabric and a hand-built replica of the legacy per-pair-link model.

use proptest::prelude::*;

use grit_interconnect::{Fabric, Link};
use grit_sim::{GpuId, LinkConfig, TopologyConfig, TopologyKind};

fn kind_strategy() -> impl Strategy<Value = TopologyKind> {
    (0usize..TopologyKind::ALL.len()).prop_map(|i| TopologyKind::ALL[i])
}

/// `(src, dst, submit cycle, bytes)` with endpoints reduced modulo the
/// fabric's GPU count at use time.
fn ops_strategy() -> impl Strategy<Value = Vec<(u8, u8, u64, u64)>> {
    prop::collection::vec(
        (any::<u8>(), any::<u8>(), 0u64..100_000, 0u64..1 << 16),
        1..60,
    )
}

proptest! {
    #[test]
    fn every_hop_books_the_transfer_bytes(
        kind in kind_strategy(),
        n in 2usize..=16,
        ops in ops_strategy(),
    ) {
        let mut f = Fabric::with_topology(n, LinkConfig::default(), TopologyConfig::of(kind));
        let mut expected_wire_bytes = 0u64;
        for (a, b, now, bytes) in ops {
            let (a, b) = (a as usize % n, b as usize % n);
            if a == b {
                continue;
            }
            let (a, b) = (GpuId::new(a as u8), GpuId::new(b as u8));
            // A k-hop route carries the payload over k wires.
            expected_wire_bytes += f.route(a, b).len() as u64 * bytes;
            f.gpu_to_gpu(a, b, now, bytes);
        }
        prop_assert_eq!(f.stats().wire_bytes(), expected_wire_bytes);
        // The same conservation holds wire by wire: summing per-wire
        // counters reproduces the aggregate.
        let per_wire: u64 = (0..f.num_wire_links() as u32).map(|w| f.wire_stats(w).bytes).sum();
        prop_assert_eq!(per_wire, expected_wire_bytes);
    }

    #[test]
    fn default_fabric_is_cycle_exact_with_the_legacy_pair_link_model(
        n in 2usize..=16,
        ops in ops_strategy(),
    ) {
        let cfg = LinkConfig::default();
        let mut fabric = Fabric::new(n, cfg);
        // The pre-topology model: one dedicated duplex Link per GPU pair
        // in upper-triangular order, booked directly.
        let mut pair_links: Vec<Link> = (0..n * (n - 1) / 2)
            .map(|_| Link::new(cfg.nvlink_bytes_per_cycle, cfg.nvlink_latency))
            .collect();
        let pair_index = |a: usize, b: usize| {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            lo * n - lo * (lo + 1) / 2 + (hi - lo - 1)
        };
        for (a, b, now, bytes) in ops {
            let (a, b) = (a as usize % n, b as usize % n);
            if a == b {
                continue;
            }
            let legacy = pair_links[pair_index(a, b)].transfer(now, bytes);
            let routed =
                fabric.gpu_to_gpu(GpuId::new(a as u8), GpuId::new(b as u8), now, bytes);
            prop_assert_eq!(routed, legacy, "pair ({a},{b}) at {now} x{bytes}");
        }
        let legacy_bytes: u64 = pair_links.iter().map(|l| l.stats().bytes).sum();
        let legacy_queue: u64 = pair_links.iter().map(|l| l.stats().queue_cycles).sum();
        let s = fabric.stats();
        prop_assert_eq!(s.nvlink_bytes, legacy_bytes);
        prop_assert_eq!(s.nvlink_queue_cycles, legacy_queue);
    }
}
