//! Property tests for link and fabric timing arithmetic.

use proptest::prelude::*;

use grit_interconnect::{Fabric, Link};
use grit_sim::{GpuId, LinkConfig};

proptest! {
    #[test]
    fn delivery_is_after_submission(
        transfers in prop::collection::vec((0u64..100_000, 0u64..1 << 20), 1..100)
    ) {
        let mut l = Link::new(100.0, 25);
        for (now, bytes) in transfers {
            let t = l.transfer(now, bytes);
            prop_assert!(t >= now + 25, "latency is a lower bound");
        }
    }

    #[test]
    fn occupancy_serializes_in_call_order(
        transfers in prop::collection::vec((0u64..1000, 1u64..10_000), 2..60)
    ) {
        let mut l = Link::new(50.0, 0);
        let mut last_free = 0;
        for (now, bytes) in transfers {
            let t = l.transfer(now, bytes);
            prop_assert!(l.free_at() >= last_free, "wire time must be monotone");
            prop_assert!(t >= l.free_at(), "delivery includes occupancy end");
            last_free = l.free_at();
        }
    }

    #[test]
    fn byte_accounting_is_exact(
        transfers in prop::collection::vec((0u64..1000, 0u64..10_000), 0..60)
    ) {
        let mut l = Link::new(10.0, 5);
        let expected: u64 = transfers.iter().map(|&(_, b)| b).sum();
        for (now, bytes) in &transfers {
            l.transfer(*now, *bytes);
        }
        prop_assert_eq!(l.stats().bytes, expected);
        prop_assert_eq!(l.stats().transfers, transfers.len() as u64);
    }

    #[test]
    fn fabric_pair_links_are_independent(
        n in 4usize..=16,
        picks in prop::collection::vec(any::<u8>(), 4),
    ) {
        // Derive four distinct endpoints in range deterministically.
        let mut idx: Vec<u8> = (0..n as u8).collect();
        let mut chosen = Vec::new();
        for p in picks {
            let take = (p as usize) % idx.len();
            chosen.push(idx.remove(take));
        }
        let (a, b, c, d) = (chosen[0], chosen[1], chosen[2], chosen[3]);
        // Pairs sharing no endpoints never contend.
        let mut f = Fabric::new(n, LinkConfig::default());
        let big = 1 << 20;
        let t1 = f.gpu_to_gpu(GpuId::new(a), GpuId::new(b), 0, big);
        let t2 = f.gpu_to_gpu(GpuId::new(c), GpuId::new(d), 0, big);
        prop_assert_eq!(t1, t2, "disjoint pairs must not contend");
    }

    #[test]
    fn fabric_symmetric_addressing(n in 2usize..=16, x in 0u8..16, y in 0u8..16) {
        prop_assume!((x as usize) < n && (y as usize) < n && x != y);
        let mut f = Fabric::new(n, LinkConfig::default());
        let t1 = f.gpu_to_gpu(GpuId::new(x), GpuId::new(y), 0, 128);
        // The same wire is busy now: the reverse direction queues.
        let t2 = f.gpu_to_gpu(GpuId::new(y), GpuId::new(x), 0, 128);
        prop_assert!(t2 >= t1, "shared duplex wire must serialize");
    }
}
