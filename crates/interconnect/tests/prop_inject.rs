//! Property tests for the fabric under injected faults: whatever the
//! outage/degradation schedule, per-hop byte accounting stays conserved,
//! no transfer completes before it was submitted or gets lost, and an
//! empty fault plan is cycle- and byte-identical to no plan at all.

use proptest::prelude::*;

use grit_interconnect::Fabric;
use grit_sim::{FaultPlan, GpuId, InjectConfig, LinkConfig, TopologyConfig, TopologyKind};

fn kind_strategy() -> impl Strategy<Value = TopologyKind> {
    (0usize..TopologyKind::ALL.len()).prop_map(|i| TopologyKind::ALL[i])
}

/// A raw injected event: `(is_outage, wire, start, duration, frac_pct)`.
/// Wires are reduced modulo the fabric's wire count (or `*`) at spec
/// construction time; degraded fractions land in [0.05, 0.95].
fn schedule_strategy() -> impl Strategy<Value = Vec<(bool, u8, u64, u64, u8)>> {
    prop::collection::vec(
        (
            any::<bool>(),
            any::<u8>(),
            0u64..200_000,
            1u64..150_000,
            5u8..95,
        ),
        0..12,
    )
}

/// `(src, dst, submit cycle, bytes)`; endpoints reduced modulo the GPU
/// count at use time, submit cycles pre-sorted to model a monotone
/// request feed.
fn ops_strategy() -> impl Strategy<Value = Vec<(u8, u8, u64, u64)>> {
    prop::collection::vec(
        (any::<u8>(), any::<u8>(), 0u64..400_000, 1u64..1 << 16),
        1..60,
    )
    .prop_map(|mut ops| {
        ops.sort_by_key(|&(_, _, now, _)| now);
        ops
    })
}

/// Formats a raw schedule into the `--inject` grammar and compiles it
/// against an existing fabric's wire count.
fn compile_schedule(events: &[(bool, u8, u64, u64, u8)], fabric: &Fabric) -> FaultPlan {
    let wires = fabric.num_wire_links();
    let spec = events
        .iter()
        .map(|&(is_outage, wire, at, dur, frac)| {
            // Exercise the whole-fabric selector alongside single wires.
            let w = if wire == u8::MAX {
                "*".to_string()
            } else {
                (wire as usize % wires).to_string()
            };
            if is_outage {
                format!("outage@{at}:wire={w}:for={dur}")
            } else {
                format!("degrade@{at}:wire={w}:frac=0.{frac:02}:for={dur}")
            }
        })
        .collect::<Vec<_>>()
        .join(";");
    let cfg = InjectConfig::parse(&spec).expect("generated spec is grammatical");
    FaultPlan::compile(&cfg, wires, fabric.num_gpus()).expect("wires are in range")
}

proptest! {
    /// Per-hop byte conservation survives any injected schedule: every
    /// transfer books its payload on GPU wires (once per hop) or, when
    /// the active epoch disconnects the pair, exactly twice on PCIe (up
    /// `a`'s link, down `b`'s) — and the per-wire counters always sum to
    /// the aggregate. Completions never precede submissions.
    #[test]
    fn bytes_are_conserved_per_hop_under_any_schedule(
        kind in kind_strategy(),
        n in 2usize..=8,
        events in schedule_strategy(),
        ops in ops_strategy(),
    ) {
        let mut f = Fabric::with_topology(n, LinkConfig::default(), TopologyConfig::of(kind));
        let plan = compile_schedule(&events, &f);
        f.set_fault_plan(plan);
        for (a, b, now, bytes) in ops {
            let (a, b) = (a as usize % n, b as usize % n);
            if a == b {
                continue;
            }
            let (a, b) = (GpuId::new(a as u8), GpuId::new(b as u8));
            let blocked = f.route_blocked(a, b, now);
            let before = f.stats();
            let done = f.gpu_to_gpu(a, b, now, bytes);
            let after = f.stats();
            prop_assert!(done >= now, "completion {done} precedes submission {now}");
            let wire_delta = after.wire_bytes() - before.wire_bytes();
            let pcie_delta = after.pcie_bytes - before.pcie_bytes;
            if blocked {
                prop_assert_eq!(wire_delta, 0, "blocked transfer touched GPU wires");
                prop_assert_eq!(pcie_delta, 2 * bytes, "host staging books up + down");
            } else {
                prop_assert_eq!(pcie_delta, 0, "routed transfer touched PCIe");
                prop_assert!(
                    wire_delta >= bytes && wire_delta.is_multiple_of(bytes),
                    "route booked {wire_delta} bytes for a {bytes}-byte payload"
                );
            }
        }
        let per_wire: u64 =
            (0..f.num_wire_links() as u32).map(|w| f.wire_stats(w).bytes).sum();
        prop_assert_eq!(per_wire, f.stats().wire_bytes());
    }

    /// An empty fault plan is indistinguishable from never installing
    /// one: every completion cycle and every counter matches exactly.
    #[test]
    fn empty_plan_is_byte_identical_to_no_plan(
        kind in kind_strategy(),
        n in 2usize..=8,
        ops in ops_strategy(),
    ) {
        let cfg = LinkConfig::default();
        let mut bare = Fabric::with_topology(n, cfg, TopologyConfig::of(kind));
        let mut planned = Fabric::with_topology(n, cfg, TopologyConfig::of(kind));
        let empty = FaultPlan::compile(&InjectConfig::none(), bare.num_wire_links(), n)
            .expect("empty plan compiles");
        planned.set_fault_plan(empty);
        for (a, b, now, bytes) in ops {
            let (a, b) = (a as usize % n, b as usize % n);
            if a == b {
                continue;
            }
            let (a, b) = (GpuId::new(a as u8), GpuId::new(b as u8));
            prop_assert!(!planned.route_blocked(a, b, now));
            prop_assert!(!planned.route_sick(a, b, now));
            let want = bare.gpu_to_gpu(a, b, now, bytes);
            let got = planned.gpu_to_gpu(a, b, now, bytes);
            prop_assert_eq!(got, want, "({a:?},{b:?}) at {now} x{bytes}");
        }
        prop_assert_eq!(planned.stats(), bare.stats());
        for w in 0..bare.num_wire_links() as u32 {
            prop_assert_eq!(planned.wire_stats(w), bare.wire_stats(w));
        }
    }

    /// On one wire, a monotone submission feed yields monotone
    /// completions whatever the degradation schedule — queueing under
    /// injected bandwidth loss never reorders or time-travels. Ops that
    /// land in an outage window escape to host staging, a different
    /// physical path with its own queue, so only wire-path completions
    /// are compared against each other.
    #[test]
    fn degraded_wire_completions_stay_monotone(
        events in schedule_strategy(),
        ops in ops_strategy(),
    ) {
        let mut f = Fabric::with_topology(2, LinkConfig::default(), TopologyConfig::default());
        let plan = compile_schedule(&events, &f);
        f.set_fault_plan(plan);
        let (a, b) = (GpuId::new(0), GpuId::new(1));
        let mut last_wire_done = 0u64;
        for (_, _, now, bytes) in ops {
            let staged = f.route_blocked(a, b, now);
            let done = f.gpu_to_gpu(a, b, now, bytes);
            prop_assert!(done >= now, "completion {done} precedes submission {now}");
            if !staged {
                prop_assert!(
                    done >= last_wire_done,
                    "wire completion {done} after earlier wire completion {last_wire_done}"
                );
                last_wire_done = done;
            }
        }
    }
}
