//! # grit-interconnect
//!
//! Interconnect model for the multi-GPU node: a routed GPU↔GPU fabric
//! wired by a pluggable topology (`grit-topo`) and a PCIe-v4 link from
//! each GPU to the host (Table I: 300 GB/s NVLink, 32 GB/s PCIe). The
//! default topology is the paper's all-to-all node — a dedicated NVLink-v2
//! wire per GPU pair. Links model both fixed latency and serial bandwidth
//! occupancy, and multi-hop routes book every hop, so heavy migration or
//! remote traffic queues behind itself — the mechanism that makes
//! "ping-pong" migration and counter-based remote storms expensive in the
//! paper — and shared switch trunks congest across unrelated GPU pairs.
//!
//! # Example
//!
//! ```
//! use grit_interconnect::Fabric;
//! use grit_sim::{GpuId, LinkConfig};
//!
//! let mut fabric = Fabric::new(4, LinkConfig::default());
//! let cfg = LinkConfig::default();
//! let arrival = fabric.gpu_to_gpu(GpuId::new(0), GpuId::new(1), 0, 4096);
//! assert!(arrival > cfg.nvlink_latency); // latency + occupancy
//! ```

#![warn(missing_docs)]

pub mod link;
pub mod topology;

pub use link::{Link, LinkStats};
pub use topology::{Fabric, FabricStats};
