//! Node topology: all-to-all NVLink between GPUs, PCIe to the host.

use grit_sim::{Cycle, GpuId, LinkConfig, MemLoc};
use grit_trace::{EventCategory, LinkKind, TraceEvent, Tracer};

use crate::link::{Link, LinkStats};

/// Aggregate fabric traffic, split by link class.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FabricStats {
    /// Bytes moved GPU-to-GPU over NVLink.
    pub nvlink_bytes: u64,
    /// Bytes moved to/from the host over PCIe.
    pub pcie_bytes: u64,
    /// Total congestion cycles across all links.
    pub queue_cycles: u64,
}

/// The interconnect of one multi-GPU node.
///
/// GPU pairs get a dedicated duplex NVLink (DGX-style fully connected for
/// the 2–16 GPU range the paper sweeps); each GPU shares one PCIe link with
/// the host for fault handling and host-sourced fills.
#[derive(Clone, Debug)]
pub struct Fabric {
    num_gpus: usize,
    /// Upper-triangular pair links, indexed via [`Fabric::pair_index`].
    nvlinks: Vec<Link>,
    /// Bulk-data PCIe channel per GPU (page transfers).
    pcie: Vec<Link>,
    /// Control PCIe channel per GPU (fault messages/replies). Split from
    /// the data channel so control traffic is not serialized behind bulk
    /// transfers booked at future completion times.
    pcie_ctrl: Vec<Link>,
    /// Event sink for link-transfer events; disabled by default.
    tracer: Tracer,
}

impl Fabric {
    /// Builds the fabric for `num_gpus` GPUs.
    ///
    /// # Panics
    ///
    /// Panics if `num_gpus` is zero.
    pub fn new(num_gpus: usize, cfg: LinkConfig) -> Self {
        assert!(num_gpus > 0, "fabric needs at least one GPU");
        let pairs = num_gpus * num_gpus.saturating_sub(1) / 2;
        Fabric {
            num_gpus,
            nvlinks: (0..pairs.max(1))
                .map(|_| Link::new(cfg.nvlink_bytes_per_cycle, cfg.nvlink_latency))
                .collect(),
            pcie: (0..num_gpus)
                .map(|_| Link::new(cfg.pcie_bytes_per_cycle, cfg.pcie_latency))
                .collect(),
            pcie_ctrl: (0..num_gpus)
                .map(|_| Link::new(cfg.pcie_bytes_per_cycle, cfg.pcie_latency))
                .collect(),
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches an event sink; link transfers are recorded through it.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn pair_index(&self, a: GpuId, b: GpuId) -> usize {
        let (lo, hi) = if a.index() < b.index() {
            (a.index(), b.index())
        } else {
            (b.index(), a.index())
        };
        debug_assert!(lo < hi, "pair link requires distinct GPUs");
        // Index into the upper triangle laid out row by row.
        lo * self.num_gpus - lo * (lo + 1) / 2 + (hi - lo - 1)
    }

    /// Transfers `bytes` between two distinct GPUs; returns delivery cycle.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (local copies never cross the fabric).
    pub fn gpu_to_gpu(&mut self, a: GpuId, b: GpuId, now: Cycle, bytes: u64) -> Cycle {
        assert!(a != b, "gpu_to_gpu requires distinct endpoints");
        let idx = self.pair_index(a, b);
        let t = self.nvlinks[idx].transfer(now, bytes);
        self.tracer.emit(EventCategory::LinkTransfer, || TraceEvent::LinkTransfer {
            cycle: now,
            link: LinkKind::Nvlink,
            src: MemLoc::Gpu(a),
            dst: MemLoc::Gpu(b),
            bytes,
            delivered: t,
        });
        t
    }

    /// Transfers `bytes` between a GPU and the host over its PCIe link.
    pub fn gpu_to_host(&mut self, g: GpuId, now: Cycle, bytes: u64) -> Cycle {
        let t = self.pcie[g.index()].transfer(now, bytes);
        self.tracer.emit(EventCategory::LinkTransfer, || TraceEvent::LinkTransfer {
            cycle: now,
            link: LinkKind::Pcie,
            src: MemLoc::Gpu(g),
            dst: MemLoc::Host,
            bytes,
            delivered: t,
        });
        t
    }

    /// Round trip between a GPU and the host (fault message + reply, no
    /// bulk payload). The links are duplex: the reply travels the
    /// downstream direction and does not re-book the upstream wire, so
    /// only the request occupies this link and the reply adds latency.
    pub fn host_round_trip(&mut self, g: GpuId, now: Cycle) -> Cycle {
        let there = self.pcie_ctrl[g.index()].transfer(now, 64);
        let t = there + self.pcie_ctrl[g.index()].latency() + 1;
        self.tracer.emit(EventCategory::LinkTransfer, || TraceEvent::LinkTransfer {
            cycle: now,
            link: LinkKind::PcieCtrl,
            src: MemLoc::Gpu(g),
            dst: MemLoc::Host,
            bytes: 64,
            delivered: t,
        });
        t
    }

    /// One-way NVLink latency between two GPUs (control messages).
    pub fn nvlink_latency(&self, a: GpuId, b: GpuId) -> Cycle {
        assert!(a != b, "nvlink latency requires distinct endpoints");
        self.nvlinks[self.pair_index(a, b)].latency()
    }

    /// Number of GPUs in the fabric.
    pub fn num_gpus(&self) -> usize {
        self.num_gpus
    }

    /// Per-link statistics for one GPU pair.
    pub fn nvlink_stats(&self, a: GpuId, b: GpuId) -> LinkStats {
        self.nvlinks[self.pair_index(a, b)].stats()
    }

    /// Aggregate traffic across the fabric.
    pub fn stats(&self) -> FabricStats {
        let mut s = FabricStats::default();
        for l in &self.nvlinks {
            s.nvlink_bytes += l.stats().bytes;
            s.queue_cycles += l.stats().queue_cycles;
        }
        for l in self.pcie.iter().chain(&self.pcie_ctrl) {
            s.pcie_bytes += l.stats().bytes;
            s.queue_cycles += l.stats().queue_cycles;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(n: usize) -> Fabric {
        Fabric::new(n, LinkConfig::default())
    }

    #[test]
    fn pair_index_is_unique_and_total() {
        let f = fabric(4);
        let mut seen = std::collections::HashSet::new();
        for a in 0..4u8 {
            for b in (a + 1)..4u8 {
                let idx = f.pair_index(GpuId::new(a), GpuId::new(b));
                assert!(seen.insert(idx), "duplicate index {idx}");
                assert!(idx < 6);
            }
        }
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn pair_index_symmetric() {
        let f = fabric(8);
        let i1 = f.pair_index(GpuId::new(2), GpuId::new(5));
        let i2 = f.pair_index(GpuId::new(5), GpuId::new(2));
        assert_eq!(i1, i2);
    }

    #[test]
    fn distinct_pairs_do_not_contend() {
        let mut f = fabric(4);
        let t1 = f.gpu_to_gpu(GpuId::new(0), GpuId::new(1), 0, 1_000_000);
        let t2 = f.gpu_to_gpu(GpuId::new(2), GpuId::new(3), 0, 1_000_000);
        assert_eq!(t1, t2); // independent wires
        let t3 = f.gpu_to_gpu(GpuId::new(0), GpuId::new(1), 0, 64);
        assert!(t3 > t1 - 400, "same pair should queue");
    }

    #[test]
    fn pcie_slower_than_nvlink() {
        let mut f = fabric(2);
        let nv = f.gpu_to_gpu(GpuId::new(0), GpuId::new(1), 0, 4096);
        let pcie = f.gpu_to_host(GpuId::new(0), 0, 4096);
        assert!(pcie > nv);
    }

    #[test]
    fn host_round_trip_costs_two_latencies() {
        let mut f = fabric(1);
        let t = f.host_round_trip(GpuId::new(0), 0);
        let lat = LinkConfig::default().pcie_latency;
        assert!(t >= 2 * lat);
    }

    #[test]
    fn stats_aggregate() {
        let mut f = fabric(2);
        f.gpu_to_gpu(GpuId::new(0), GpuId::new(1), 0, 100);
        f.gpu_to_host(GpuId::new(1), 0, 200);
        let s = f.stats();
        assert_eq!(s.nvlink_bytes, 100);
        assert_eq!(s.pcie_bytes, 200);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn same_gpu_transfer_panics() {
        let mut f = fabric(2);
        f.gpu_to_gpu(GpuId::new(1), GpuId::new(1), 0, 1);
    }

    #[test]
    fn single_gpu_fabric_supports_host_traffic() {
        let mut f = fabric(1);
        assert!(f.gpu_to_host(GpuId::new(0), 0, 64) > 0);
    }

    #[test]
    fn tracer_records_every_link_class() {
        use grit_trace::TraceConfig;
        let mut f = fabric(2);
        let t = Tracer::new(TraceConfig::default());
        f.set_tracer(t.clone());
        f.gpu_to_gpu(GpuId::new(0), GpuId::new(1), 0, 4096);
        f.gpu_to_host(GpuId::new(0), 0, 4096);
        f.host_round_trip(GpuId::new(1), 0);
        let events = t.take_events();
        assert_eq!(events.len(), 3);
        let kinds: Vec<LinkKind> = events
            .iter()
            .map(|e| match e {
                TraceEvent::LinkTransfer { link, .. } => *link,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(
            kinds,
            vec![LinkKind::Nvlink, LinkKind::Pcie, LinkKind::PcieCtrl]
        );
    }
}
