//! Topology-driven fabric: routed GPU↔GPU transfers over a pluggable link
//! graph, PCIe to the host.
//!
//! The GPU-side wire layout comes from `grit-topo`: a [`Fabric`] builds the
//! configured topology's link graph once, precomputes shortest-path routes,
//! and books every transfer hop-by-hop on per-link occupancy, so congestion
//! composes across hops (a saturated switch trunk delays every route that
//! crosses it). The default [`grit_sim::TopologyKind::AllToAll`] lays its
//! links out in the legacy triangular pair order and routes every pair in
//! one hop, reproducing the pre-topology fabric cycle-for-cycle.

use grit_metrics::LatencyHistogram;
use grit_prof::{span, Phase};
use grit_sim::{Cycle, FaultPlan, GpuId, LinkConfig, MemLoc, TopologyConfig};
use grit_topo::{build_topology, HopClass, Routing, TopoGraph};
use grit_trace::{EventCategory, LinkKind, TraceEvent, Tracer};

use crate::link::{Link, LinkStats};

/// Aggregate fabric traffic, split by wire class.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FabricStats {
    /// Bytes moved over direct GPU↔GPU NVLinks.
    pub nvlink_bytes: u64,
    /// Bytes moved over switch uplinks and inter-switch trunks.
    pub switch_bytes: u64,
    /// Bytes moved over the hierarchical inter-node bottleneck.
    pub inter_node_bytes: u64,
    /// Bytes moved to/from the host over PCIe (data + control).
    pub pcie_bytes: u64,
    /// Congestion cycles on NVLink hops.
    pub nvlink_queue_cycles: u64,
    /// Congestion cycles on switch hops.
    pub switch_queue_cycles: u64,
    /// Congestion cycles on inter-node hops.
    pub inter_node_queue_cycles: u64,
    /// Congestion cycles on PCIe links.
    pub pcie_queue_cycles: u64,
}

impl FabricStats {
    /// Total congestion cycles across every wire class.
    pub fn queue_cycles(&self) -> u64 {
        self.nvlink_queue_cycles
            + self.switch_queue_cycles
            + self.inter_node_queue_cycles
            + self.pcie_queue_cycles
    }

    /// GPU-side wire bytes (every class except host PCIe). Multi-hop
    /// routes count the payload once per hop crossed.
    pub fn wire_bytes(&self) -> u64 {
        self.nvlink_bytes + self.switch_bytes + self.inter_node_bytes
    }
}

fn hop_kind(class: HopClass) -> LinkKind {
    match class {
        HopClass::Nvlink => LinkKind::Nvlink,
        HopClass::Switch => LinkKind::Switch,
        HopClass::InterNode => LinkKind::InterNode,
    }
}

/// The interconnect of one multi-GPU node.
///
/// GPU↔GPU traffic crosses the configured topology's link graph along
/// precomputed shortest paths (store-and-forward: hop `i + 1` is submitted
/// at hop `i`'s delivery cycle); each GPU shares one PCIe link with the
/// host for fault handling and host-sourced fills.
#[derive(Clone, Debug)]
pub struct Fabric {
    num_gpus: usize,
    /// Stable topology name, for diagnostics.
    topology: &'static str,
    /// One wire per topology link, indexed by link id. For the default
    /// all-to-all this is the legacy upper-triangular pair layout.
    links: Vec<Link>,
    /// Wire class of each link (parallel to `links`).
    classes: Vec<HopClass>,
    /// Shortest-path routes between every GPU pair.
    routing: Routing,
    /// Saved link graph, kept so failover routes can be computed when a
    /// fault plan with outage windows is installed.
    graph: TopoGraph,
    /// Installed fault plan; empty by default, in which case every code
    /// path below is arithmetically identical to the fault-free fabric.
    plan: FaultPlan,
    /// Failover routing per outage epoch, parallel to
    /// `plan.outage_epochs()`. `None` entries reuse the base routing
    /// (epochs during which every wire is up).
    epoch_routes: Vec<Option<Routing>>,
    /// Bulk-data PCIe channel per GPU (page transfers).
    pcie: Vec<Link>,
    /// Control PCIe channel per GPU (fault messages/replies). Split from
    /// the data channel so control traffic is not serialized behind bulk
    /// transfers booked at future completion times.
    pcie_ctrl: Vec<Link>,
    /// Per-transfer-hop queue-wait distribution: how long each booked
    /// hop sat behind earlier traffic before its wire freed up. Cycle
    /// domain, so deterministic at any `--jobs`/`--sim-threads`.
    queue_hist: LatencyHistogram,
    /// Event sink for link-transfer events; disabled by default.
    tracer: Tracer,
}

impl Fabric {
    /// Builds the default all-to-all fabric for `num_gpus` GPUs.
    ///
    /// # Panics
    ///
    /// Panics if `num_gpus` is zero.
    pub fn new(num_gpus: usize, cfg: LinkConfig) -> Self {
        Fabric::with_topology(num_gpus, cfg, TopologyConfig::default())
    }

    /// Builds the fabric for `num_gpus` GPUs wired as `topo` describes.
    ///
    /// # Panics
    ///
    /// Panics if `num_gpus` is zero.
    pub fn with_topology(num_gpus: usize, cfg: LinkConfig, topo: TopologyConfig) -> Self {
        assert!(num_gpus > 0, "fabric needs at least one GPU");
        let graph = build_topology(num_gpus, cfg, topo).graph();
        let routing = Routing::compute(&graph);
        Fabric {
            num_gpus,
            topology: topo.name(),
            links: graph.links.iter().map(|l| Link::new(l.bytes_per_cycle, l.latency)).collect(),
            classes: graph.links.iter().map(|l| l.class).collect(),
            routing,
            graph,
            plan: FaultPlan::empty(),
            epoch_routes: Vec::new(),
            pcie: (0..num_gpus)
                .map(|_| Link::new(cfg.pcie_bytes_per_cycle, cfg.pcie_latency))
                .collect(),
            pcie_ctrl: (0..num_gpus)
                .map(|_| Link::new(cfg.pcie_bytes_per_cycle, cfg.pcie_latency))
                .collect(),
            queue_hist: LatencyHistogram::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches an event sink; link transfers are recorded through it.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Installs a compiled fault plan. Failover routing tables for every
    /// outage epoch are precomputed here, once, so the per-transfer hot
    /// path only indexes by epoch; pairs an epoch's down-set disconnects
    /// keep an empty route and get staged through host memory. Installing
    /// an empty plan restores fault-free behavior.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.epoch_routes = plan
            .outage_epochs()
            .iter()
            .map(|(_, down)| {
                if down.is_empty() {
                    None
                } else {
                    Some(Routing::compute_avoiding(&self.graph, down))
                }
            })
            .collect();
        self.plan = plan;
    }

    /// The installed fault plan (empty unless injection is configured).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The routing table active at cycle `now`: the base table, unless an
    /// injected outage epoch replaced it with a failover table.
    fn routing_at(&self, now: Cycle) -> &Routing {
        if self.epoch_routes.is_empty() {
            return &self.routing;
        }
        match &self.epoch_routes[self.plan.epoch_at(now)] {
            Some(r) => r,
            None => &self.routing,
        }
    }

    /// Whether the routing active at `now` has no GPU↔GPU path between
    /// distinct `a` and `b` (an injected outage disconnected the pair).
    /// Transfers submitted while blocked are staged through the host.
    pub fn route_blocked(&self, a: GpuId, b: GpuId, now: Cycle) -> bool {
        a != b && !self.routing_at(now).has_route(a.index(), b.index())
    }

    /// Whether the route between `a` and `b` active at `now` is blocked or
    /// crosses a wire that is currently degraded — placement policies
    /// treat such owners as farther away than their hop count suggests.
    pub fn route_sick(&self, a: GpuId, b: GpuId, now: Cycle) -> bool {
        if a == b || self.plan.is_empty() {
            return false;
        }
        let cur = self.routing_at(now).route(a.index(), b.index());
        if cur.is_empty() {
            return true; // blocked: staged through the host
        }
        // A failover detour is longer than the healthy route, so the pair
        // is sick even though every wire it crosses is up.
        cur.len() > self.routing.hops(a.index(), b.index())
            || cur.iter().any(|&w| self.plan.wire_sick(w as usize, now))
    }

    /// Transfers `bytes` between two distinct GPUs along the routed path;
    /// returns the final delivery cycle. Each hop books its wire at the
    /// previous hop's delivery cycle and emits one trace event.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (local copies never cross the fabric).
    pub fn gpu_to_gpu(&mut self, a: GpuId, b: GpuId, now: Cycle, bytes: u64) -> Cycle {
        assert!(a != b, "gpu_to_gpu requires distinct endpoints");
        let _prof = span(Phase::FabricTransfer);
        let routing = if self.epoch_routes.is_empty() {
            &self.routing
        } else {
            match &self.epoch_routes[self.plan.epoch_at(now)] {
                Some(r) => r,
                None => &self.routing,
            }
        };
        let path = routing.route(a.index(), b.index());
        if path.is_empty() {
            // The active outage epoch disconnected the pair: stage the
            // payload through host memory rather than losing or delaying
            // it indefinitely.
            return self.host_stage(a, b, now, bytes);
        }
        let hops = path.len() as u8;
        let forward = a.index() < b.index();
        let mut t = now;
        for hop in 0..path.len() {
            let step = if forward { hop } else { path.len() - 1 - hop };
            let wire = path[step] as usize;
            let submitted = t;
            let scale = self.plan.bw_scale(wire, submitted);
            self.queue_hist.record(self.links[wire].free_at().saturating_sub(submitted));
            t = self.links[wire].transfer_scaled(submitted, bytes, scale);
            let link = hop_kind(self.classes[wire]);
            self.tracer.emit(EventCategory::LinkTransfer, || TraceEvent::LinkTransfer {
                cycle: submitted,
                link,
                src: MemLoc::Gpu(a),
                dst: MemLoc::Gpu(b),
                bytes,
                delivered: t,
                hop: hop as u8,
                hops,
            });
        }
        t
    }

    /// Transfers `bytes` between a GPU and the host over its PCIe link.
    pub fn gpu_to_host(&mut self, g: GpuId, now: Cycle, bytes: u64) -> Cycle {
        let _prof = span(Phase::FabricTransfer);
        self.queue_hist.record(self.pcie[g.index()].free_at().saturating_sub(now));
        let t = self.pcie[g.index()].transfer(now, bytes);
        self.tracer.emit(EventCategory::LinkTransfer, || TraceEvent::LinkTransfer {
            cycle: now,
            link: LinkKind::Pcie,
            src: MemLoc::Gpu(g),
            dst: MemLoc::Host,
            bytes,
            delivered: t,
            hop: 0,
            hops: 1,
        });
        t
    }

    /// Stages `bytes` from GPU `a` to GPU `b` through host memory: up
    /// `a`'s PCIe data link, then down `b`'s. This is the last-resort
    /// degradation path when an injected outage leaves no GPU↔GPU route —
    /// slow, but the payload is never lost and the call never blocks.
    pub fn host_stage(&mut self, a: GpuId, b: GpuId, now: Cycle, bytes: u64) -> Cycle {
        assert!(a != b, "host staging requires distinct endpoints");
        let _prof = span(Phase::FabricTransfer);
        self.queue_hist.record(self.pcie[a.index()].free_at().saturating_sub(now));
        let up = self.pcie[a.index()].transfer(now, bytes);
        self.tracer.emit(EventCategory::LinkTransfer, || TraceEvent::LinkTransfer {
            cycle: now,
            link: LinkKind::Pcie,
            src: MemLoc::Gpu(a),
            dst: MemLoc::Gpu(b),
            bytes,
            delivered: up,
            hop: 0,
            hops: 2,
        });
        self.queue_hist.record(self.pcie[b.index()].free_at().saturating_sub(up));
        let t = self.pcie[b.index()].transfer(up, bytes);
        self.tracer.emit(EventCategory::LinkTransfer, || TraceEvent::LinkTransfer {
            cycle: up,
            link: LinkKind::Pcie,
            src: MemLoc::Gpu(a),
            dst: MemLoc::Gpu(b),
            bytes,
            delivered: t,
            hop: 1,
            hops: 2,
        });
        t
    }

    /// Round trip between a GPU and the host (fault message + reply, no
    /// bulk payload). The links are duplex: the reply travels the
    /// downstream direction and does not re-book the upstream wire, so
    /// only the request occupies this link and the reply adds latency.
    pub fn host_round_trip(&mut self, g: GpuId, now: Cycle) -> Cycle {
        self.queue_hist.record(self.pcie_ctrl[g.index()].free_at().saturating_sub(now));
        let there = self.pcie_ctrl[g.index()].transfer(now, 64);
        let t = there + self.pcie_ctrl[g.index()].latency() + 1;
        self.tracer.emit(EventCategory::LinkTransfer, || TraceEvent::LinkTransfer {
            cycle: now,
            link: LinkKind::PcieCtrl,
            src: MemLoc::Gpu(g),
            dst: MemLoc::Host,
            bytes: 64,
            delivered: t,
            hop: 0,
            hops: 1,
        });
        t
    }

    /// One-way fabric latency between two GPUs (control messages): the sum
    /// of per-hop wire latencies along the routed path.
    pub fn nvlink_latency(&self, a: GpuId, b: GpuId) -> Cycle {
        assert!(a != b, "nvlink latency requires distinct endpoints");
        self.routing
            .route(a.index(), b.index())
            .iter()
            .map(|&wire| self.links[wire as usize].latency())
            .sum()
    }

    /// Number of GPUs in the fabric.
    pub fn num_gpus(&self) -> usize {
        self.num_gpus
    }

    /// Stable name of the wired topology (e.g. `"all-to-all"`).
    pub fn topology_name(&self) -> &'static str {
        self.topology
    }

    /// Number of GPU-side wires in the topology graph (excludes host PCIe).
    pub fn num_wire_links(&self) -> usize {
        self.links.len()
    }

    /// Smallest one-way latency of any segment that can carry a cross-GPU
    /// interaction: the cheapest topology wire, or the host PCIe hop when
    /// that is cheaper (fault messages and host fills cross it). No packet
    /// between distinct GPUs completes in fewer cycles, so this bounds the
    /// safe lookahead of a time-sharded event loop.
    pub fn min_wire_latency(&self) -> Cycle {
        let wire = self.graph.min_latency().unwrap_or(Cycle::MAX);
        let pcie = self.pcie.first().map_or(Cycle::MAX, |l| l.latency());
        wire.min(pcie)
    }

    /// The link-id path between two distinct GPUs, ordered from the
    /// lower-numbered GPU to the higher one.
    pub fn route(&self, a: GpuId, b: GpuId) -> &[u32] {
        self.routing.route(a.index(), b.index())
    }

    /// Traffic counters of one GPU-side wire, by link id.
    pub fn wire_stats(&self, link: u32) -> LinkStats {
        self.links[link as usize].stats()
    }

    /// Per-hop queue-wait distribution across every link the fabric
    /// booked (topology wires, PCIe data and control channels).
    pub fn queue_wait_hist(&self) -> &LatencyHistogram {
        &self.queue_hist
    }

    /// Wire class of one GPU-side link, by link id.
    pub fn wire_class(&self, link: u32) -> HopClass {
        self.classes[link as usize]
    }

    /// Aggregate traffic across the fabric, split by wire class.
    pub fn stats(&self) -> FabricStats {
        let mut s = FabricStats::default();
        for (l, class) in self.links.iter().zip(&self.classes) {
            let (bytes, queue) = match class {
                HopClass::Nvlink => (&mut s.nvlink_bytes, &mut s.nvlink_queue_cycles),
                HopClass::Switch => (&mut s.switch_bytes, &mut s.switch_queue_cycles),
                HopClass::InterNode => (&mut s.inter_node_bytes, &mut s.inter_node_queue_cycles),
            };
            *bytes += l.stats().bytes;
            *queue += l.stats().queue_cycles;
        }
        for l in self.pcie.iter().chain(&self.pcie_ctrl) {
            s.pcie_bytes += l.stats().bytes;
            s.pcie_queue_cycles += l.stats().queue_cycles;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grit_sim::TopologyKind;

    fn fabric(n: usize) -> Fabric {
        Fabric::new(n, LinkConfig::default())
    }

    fn fabric_of(kind: TopologyKind, n: usize) -> Fabric {
        Fabric::with_topology(n, LinkConfig::default(), TopologyConfig::of(kind))
    }

    #[test]
    fn all_to_all_routes_every_pair_in_one_hop() {
        let f = fabric(4);
        let mut seen = std::collections::HashSet::new();
        for a in 0..4u8 {
            for b in (a + 1)..4u8 {
                let route = f.route(GpuId::new(a), GpuId::new(b));
                assert_eq!(route.len(), 1);
                assert!(seen.insert(route[0]), "duplicate wire {}", route[0]);
            }
        }
        assert_eq!(seen.len(), 6);
        assert_eq!(f.num_wire_links(), 6);
    }

    #[test]
    fn min_wire_latency_bounds_every_class() {
        let links = LinkConfig::default();
        // All-to-all: NVLink (350) vs PCIe (450) — NVLink wins.
        assert_eq!(fabric(4).min_wire_latency(), links.nvlink_latency);
        // NvSwitch halves the hop latency, undercutting both.
        let switched = fabric_of(TopologyKind::NvSwitch, 8);
        assert!(switched.min_wire_latency() < links.nvlink_latency);
        // A single GPU has no wires; PCIe is the only segment left.
        assert_eq!(fabric(1).min_wire_latency(), links.pcie_latency);
    }

    #[test]
    fn routes_are_direction_symmetric() {
        let f = fabric_of(TopologyKind::Ring, 8);
        let r1 = f.route(GpuId::new(2), GpuId::new(5)).to_vec();
        let r2 = f.route(GpuId::new(5), GpuId::new(2)).to_vec();
        assert_eq!(r1, r2);
    }

    #[test]
    fn distinct_pairs_do_not_contend() {
        let mut f = fabric(4);
        let t1 = f.gpu_to_gpu(GpuId::new(0), GpuId::new(1), 0, 1_000_000);
        let t2 = f.gpu_to_gpu(GpuId::new(2), GpuId::new(3), 0, 1_000_000);
        assert_eq!(t1, t2); // independent wires
        let t3 = f.gpu_to_gpu(GpuId::new(0), GpuId::new(1), 0, 64);
        assert!(t3 > t1 - 400, "same pair should queue");
    }

    #[test]
    fn pcie_slower_than_nvlink() {
        let mut f = fabric(2);
        let nv = f.gpu_to_gpu(GpuId::new(0), GpuId::new(1), 0, 4096);
        let pcie = f.gpu_to_host(GpuId::new(0), 0, 4096);
        assert!(pcie > nv);
    }

    #[test]
    fn host_round_trip_costs_two_latencies() {
        let mut f = fabric(1);
        let t = f.host_round_trip(GpuId::new(0), 0);
        let lat = LinkConfig::default().pcie_latency;
        assert!(t >= 2 * lat);
    }

    #[test]
    fn queue_wait_histogram_records_backlog() {
        let mut f = fabric(2);
        // First transfer finds an idle wire; the second queues behind it.
        f.gpu_to_gpu(GpuId::new(0), GpuId::new(1), 0, 100_000);
        f.gpu_to_gpu(GpuId::new(0), GpuId::new(1), 0, 100_000);
        let h = f.queue_wait_hist();
        assert_eq!(h.samples(), 2);
        assert!(h.max() > 0, "second hop must have waited: {h}");
    }

    #[test]
    fn stats_aggregate() {
        let mut f = fabric(2);
        f.gpu_to_gpu(GpuId::new(0), GpuId::new(1), 0, 100);
        f.gpu_to_host(GpuId::new(1), 0, 200);
        let s = f.stats();
        assert_eq!(s.nvlink_bytes, 100);
        assert_eq!(s.pcie_bytes, 200);
        assert_eq!(s.switch_bytes, 0);
        assert_eq!(s.inter_node_bytes, 0);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn same_gpu_transfer_panics() {
        let mut f = fabric(2);
        f.gpu_to_gpu(GpuId::new(1), GpuId::new(1), 0, 1);
    }

    #[test]
    fn single_gpu_fabric_supports_host_traffic() {
        let mut f = fabric(1);
        assert!(f.gpu_to_host(GpuId::new(0), 0, 64) > 0);
    }

    #[test]
    fn single_gpu_fabric_has_no_phantom_pair_links() {
        // Regression: the legacy fabric allocated `pairs.max(1)` NVLinks,
        // leaving one phantom pair link in a 1-GPU fabric.
        for kind in TopologyKind::ALL {
            let f = Fabric::with_topology(1, LinkConfig::default(), TopologyConfig::of(kind));
            assert_eq!(
                f.stats().wire_bytes(),
                0,
                "{kind:?} has wire traffic at n=1"
            );
        }
        assert_eq!(fabric(1).num_wire_links(), 0);
    }

    #[test]
    fn multi_hop_transfer_books_every_hop() {
        let mut f = fabric_of(TopologyKind::Ring, 8);
        // 0 -> 4 is antipodal on an 8-ring: 4 hops.
        assert_eq!(f.route(GpuId::new(0), GpuId::new(4)).len(), 4);
        let direct =
            fabric_of(TopologyKind::Ring, 8).gpu_to_gpu(GpuId::new(0), GpuId::new(1), 0, 4096);
        let routed = f.gpu_to_gpu(GpuId::new(0), GpuId::new(4), 0, 4096);
        // Store-and-forward: four hops cost four single-hop delays.
        assert_eq!(routed, 4 * direct);
        // Every hop carries the full payload once.
        assert_eq!(f.stats().wire_bytes(), 4 * 4096);
    }

    #[test]
    fn reverse_direction_books_the_same_wires() {
        let mut fwd = fabric_of(TopologyKind::Mesh2d, 8);
        let mut rev = fabric_of(TopologyKind::Mesh2d, 8);
        fwd.gpu_to_gpu(GpuId::new(1), GpuId::new(6), 0, 4096);
        rev.gpu_to_gpu(GpuId::new(6), GpuId::new(1), 0, 4096);
        for wire in 0..fwd.num_wire_links() as u32 {
            assert_eq!(fwd.wire_stats(wire), rev.wire_stats(wire));
        }
    }

    #[test]
    fn hierarchical_bottleneck_queues_cross_node_traffic() {
        let mut f = fabric_of(TopologyKind::Hierarchical, 8);
        // Two simultaneous cross-node transfers from different sources
        // serialize on the single inter-node link.
        f.gpu_to_gpu(GpuId::new(0), GpuId::new(4), 0, 1_000_000);
        f.gpu_to_gpu(GpuId::new(1), GpuId::new(5), 0, 1_000_000);
        let s = f.stats();
        assert_eq!(s.inter_node_bytes, 2_000_000);
        assert!(s.inter_node_queue_cycles > 0, "bottleneck never queued");
        // Intra-node pairs ride direct NVLinks and never touch it.
        let mut intra = fabric_of(TopologyKind::Hierarchical, 8);
        intra.gpu_to_gpu(GpuId::new(0), GpuId::new(3), 0, 1_000_000);
        intra.gpu_to_gpu(GpuId::new(1), GpuId::new(2), 0, 1_000_000);
        assert_eq!(intra.stats().inter_node_bytes, 0);
        assert_eq!(intra.stats().queue_cycles(), 0);
    }

    #[test]
    fn shared_wires_queue_harder_than_all_to_all() {
        // Acceptance: the same traffic pattern shows measurably different
        // queueing on shared-wire topologies than on dedicated pair links.
        let hammer = |mut f: Fabric| -> u64 {
            for round in 0..4 {
                for a in 0..8u8 {
                    for b in (a + 1)..8u8 {
                        f.gpu_to_gpu(GpuId::new(a), GpuId::new(b), round * 1000, 64 * 1024);
                    }
                }
            }
            f.stats().queue_cycles()
        };
        let all_to_all = hammer(fabric(8));
        let ring = hammer(fabric_of(TopologyKind::Ring, 8));
        let switched = hammer(fabric_of(TopologyKind::NvSwitch, 8));
        assert!(
            ring > all_to_all && switched > all_to_all,
            "expected shared wires to queue harder: all-to-all={all_to_all} \
             ring={ring} nvswitch={switched}"
        );
    }

    #[test]
    fn empty_fault_plan_is_byte_identical() {
        use grit_sim::InjectConfig;
        let mut plain = fabric_of(TopologyKind::Ring, 8);
        let mut injected = fabric_of(TopologyKind::Ring, 8);
        let plan = FaultPlan::compile(&InjectConfig::none(), injected.num_wire_links(), 8)
            .expect("empty plan compiles");
        injected.set_fault_plan(plan);
        for (a, b, at, bytes) in [
            (0u8, 4u8, 0u64, 4096u64),
            (2, 3, 100, 64),
            (7, 1, 250, 65536),
        ] {
            assert_eq!(
                plain.gpu_to_gpu(GpuId::new(a), GpuId::new(b), at, bytes),
                injected.gpu_to_gpu(GpuId::new(a), GpuId::new(b), at, bytes)
            );
        }
        assert_eq!(plain.stats(), injected.stats());
    }

    #[test]
    fn degraded_wire_slows_transfers_inside_the_window_only() {
        use grit_sim::InjectConfig;
        let mut f = fabric(2);
        let healthy = fabric(2).gpu_to_gpu(GpuId::new(0), GpuId::new(1), 0, 1 << 20);
        let cfg = InjectConfig::parse("degrade@1000:wire=0:frac=0.25:for=100000").unwrap();
        f.set_fault_plan(FaultPlan::compile(&cfg, f.num_wire_links(), 2).unwrap());
        // Before the window: full speed.
        assert_eq!(
            f.gpu_to_gpu(GpuId::new(0), GpuId::new(1), 0, 1 << 20),
            healthy
        );
        // Inside: quarter bandwidth, so occupancy roughly quadruples.
        let mut sick = fabric(2);
        sick.set_fault_plan(FaultPlan::compile(&cfg, 1, 2).unwrap());
        let slow = sick.gpu_to_gpu(GpuId::new(0), GpuId::new(1), 2000, 1 << 20);
        assert!(
            slow - 2000 > 3 * healthy,
            "degraded transfer too fast: {slow}"
        );
        // After the window: full speed again.
        let mut late = fabric(2);
        late.set_fault_plan(FaultPlan::compile(&cfg, 1, 2).unwrap());
        assert_eq!(
            late.gpu_to_gpu(GpuId::new(0), GpuId::new(1), 200_000, 1 << 20),
            healthy + 200_000
        );
    }

    #[test]
    fn outage_reroutes_around_the_dead_wire() {
        use grit_sim::InjectConfig;
        let mut f = fabric(4);
        let direct = f.route(GpuId::new(0), GpuId::new(1))[0];
        let cfg = InjectConfig::parse(&format!("outage@1000:wire={direct}:for=1000")).unwrap();
        f.set_fault_plan(FaultPlan::compile(&cfg, f.num_wire_links(), 4).unwrap());
        assert!(!f.route_blocked(GpuId::new(0), GpuId::new(1), 1500));
        assert!(f.route_sick(GpuId::new(0), GpuId::new(1), 1500));
        assert!(!f.route_sick(GpuId::new(0), GpuId::new(1), 5000));
        f.gpu_to_gpu(GpuId::new(0), GpuId::new(1), 1500, 4096);
        // The detour books two hops, neither of them the dead wire.
        assert_eq!(f.wire_stats(direct).bytes, 0);
        assert_eq!(f.stats().wire_bytes(), 2 * 4096);
        // Outside the window the direct wire carries traffic again.
        f.gpu_to_gpu(GpuId::new(0), GpuId::new(1), 5000, 4096);
        assert_eq!(f.wire_stats(direct).bytes, 4096);
    }

    #[test]
    fn total_outage_stages_through_the_host() {
        use grit_sim::InjectConfig;
        let mut f = fabric(2);
        let cfg = InjectConfig::parse("outage@100:wire=*:for=1000").unwrap();
        f.set_fault_plan(FaultPlan::compile(&cfg, f.num_wire_links(), 2).unwrap());
        assert!(f.route_blocked(GpuId::new(0), GpuId::new(1), 500));
        let t = f.gpu_to_gpu(GpuId::new(0), GpuId::new(1), 500, 4096);
        assert!(t > 500);
        let s = f.stats();
        assert_eq!(s.wire_bytes(), 0, "no GPU wire should carry staged bytes");
        assert_eq!(s.pcie_bytes, 2 * 4096);
        // After recovery the direct wire is back.
        f.gpu_to_gpu(GpuId::new(0), GpuId::new(1), 5000, 4096);
        assert_eq!(f.stats().wire_bytes(), 4096);
    }

    #[test]
    fn nvlink_latency_sums_over_hops() {
        let f = fabric_of(TopologyKind::Ring, 8);
        let one = f.nvlink_latency(GpuId::new(0), GpuId::new(1));
        assert_eq!(one, LinkConfig::default().nvlink_latency);
        assert_eq!(f.nvlink_latency(GpuId::new(0), GpuId::new(4)), 4 * one);
    }

    #[test]
    fn tracer_records_every_link_class() {
        use grit_trace::TraceConfig;
        let mut f = fabric(2);
        let t = Tracer::new(TraceConfig::default());
        f.set_tracer(t.clone());
        f.gpu_to_gpu(GpuId::new(0), GpuId::new(1), 0, 4096);
        f.gpu_to_host(GpuId::new(0), 0, 4096);
        f.host_round_trip(GpuId::new(1), 0);
        let events = t.take_events();
        assert_eq!(events.len(), 3);
        let kinds: Vec<LinkKind> = events
            .iter()
            .map(|e| match e {
                TraceEvent::LinkTransfer { link, .. } => *link,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(
            kinds,
            vec![LinkKind::Nvlink, LinkKind::Pcie, LinkKind::PcieCtrl]
        );
    }

    #[test]
    fn tracer_emits_one_event_per_hop_with_route_info() {
        use grit_trace::TraceConfig;
        let mut f = fabric_of(TopologyKind::Hierarchical, 8);
        let t = Tracer::new(TraceConfig::default());
        f.set_tracer(t.clone());
        let delivered = f.gpu_to_gpu(GpuId::new(0), GpuId::new(4), 0, 4096);
        let events = t.take_events();
        assert_eq!(events.len(), 3); // gpu -> router -> router -> gpu
        for (i, e) in events.iter().enumerate() {
            match e {
                TraceEvent::LinkTransfer {
                    src,
                    dst,
                    hop,
                    hops,
                    ..
                } => {
                    // Per-hop events keep the overall endpoints.
                    assert_eq!(*src, MemLoc::Gpu(GpuId::new(0)));
                    assert_eq!(*dst, MemLoc::Gpu(GpuId::new(4)));
                    assert_eq!(*hop, i as u8);
                    assert_eq!(*hops, 3);
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        let kinds: Vec<LinkKind> = events
            .iter()
            .map(|e| match e {
                TraceEvent::LinkTransfer { link, .. } => *link,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(
            kinds,
            vec![LinkKind::Switch, LinkKind::InterNode, LinkKind::Switch]
        );
        match events.last() {
            Some(TraceEvent::LinkTransfer { delivered: d, .. }) => assert_eq!(*d, delivered),
            other => panic!("unexpected event {other:?}"),
        }
    }
}
