//! A single duplex link with latency and serial bandwidth occupancy.

use grit_sim::Cycle;

/// Traffic counters for one link.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LinkStats {
    /// Total payload bytes moved.
    pub bytes: u64,
    /// Number of transfers.
    pub transfers: u64,
    /// Cycles transfers spent waiting for the wire (congestion).
    pub queue_cycles: u64,
}

/// A point-to-point link.
///
/// A transfer of `bytes` arriving at cycle `now` starts when the wire is
/// free, occupies it for `bytes / bandwidth` cycles, and is delivered one
/// `latency` later. This first-come-first-served serialization is what
/// creates backpressure under migration storms.
///
/// ```
/// use grit_interconnect::Link;
/// let mut l = Link::new(100.0, 10); // 100 B/cycle, 10-cycle latency
/// assert_eq!(l.transfer(0, 1000), 20);  // 10 occupancy + 10 latency
/// // Second transfer queues behind the first's occupancy.
/// assert_eq!(l.transfer(0, 1000), 30);
/// ```
#[derive(Clone, Debug)]
pub struct Link {
    bytes_per_cycle: f64,
    latency: Cycle,
    free_at: Cycle,
    stats: LinkStats,
}

impl Link {
    /// A link with the given bandwidth (bytes per cycle) and one-way
    /// latency (cycles).
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not positive.
    pub fn new(bytes_per_cycle: f64, latency: Cycle) -> Self {
        assert!(bytes_per_cycle > 0.0, "bandwidth must be positive");
        Link {
            bytes_per_cycle,
            latency,
            free_at: 0,
            stats: LinkStats::default(),
        }
    }

    /// Schedules a transfer of `bytes` submitted at `now`; returns the
    /// delivery cycle.
    pub fn transfer(&mut self, now: Cycle, bytes: u64) -> Cycle {
        self.transfer_scaled(now, bytes, 1.0)
    }

    /// Like [`Link::transfer`], with the wire's bandwidth scaled by
    /// `bw_scale` for this transfer (injected link degradation). A scale
    /// of exactly 1.0 is byte-identical to [`Link::transfer`]:
    /// multiplying an IEEE double by 1.0 is the identity.
    ///
    /// # Panics
    ///
    /// Panics if `bw_scale` is not positive (a dead wire is an outage,
    /// handled by routing, not a zero bandwidth).
    pub fn transfer_scaled(&mut self, now: Cycle, bytes: u64, bw_scale: f64) -> Cycle {
        assert!(bw_scale > 0.0, "bandwidth scale must be positive");
        let start = now.max(self.free_at);
        let occupancy = (bytes as f64 / (self.bytes_per_cycle * bw_scale)).ceil() as Cycle;
        // Minimum one cycle on the wire for any nonzero payload.
        let occupancy = if bytes > 0 { occupancy.max(1) } else { 0 };
        self.free_at = start + occupancy;
        self.stats.bytes += bytes;
        self.stats.transfers += 1;
        self.stats.queue_cycles += start - now;
        self.free_at + self.latency
    }

    /// One-way latency only (control messages small enough to ignore
    /// occupancy).
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// Cycle at which the wire next becomes free.
    pub fn free_at(&self) -> Cycle {
        self.free_at
    }

    /// Traffic counters.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_plus_occupancy() {
        let mut l = Link::new(300.0, 400);
        // A 4 KB page: ceil(4096/300)=14 cycles occupancy.
        assert_eq!(l.transfer(0, 4096), 14 + 400);
    }

    #[test]
    fn serialization_creates_queueing() {
        let mut l = Link::new(100.0, 0);
        assert_eq!(l.transfer(0, 1000), 10);
        assert_eq!(l.transfer(5, 1000), 20);
        assert_eq!(l.stats().queue_cycles, 5);
        assert_eq!(l.stats().bytes, 2000);
        assert_eq!(l.stats().transfers, 2);
    }

    #[test]
    fn idle_link_starts_immediately() {
        let mut l = Link::new(100.0, 7);
        l.transfer(0, 100);
        // Wire free at 1; arriving at 50 starts at 50.
        assert_eq!(l.transfer(50, 100), 58);
    }

    #[test]
    fn zero_bytes_costs_latency_only() {
        let mut l = Link::new(100.0, 9);
        assert_eq!(l.transfer(3, 0), 12);
    }

    #[test]
    fn minimum_one_cycle_occupancy() {
        let mut l = Link::new(1000.0, 0);
        assert_eq!(l.transfer(0, 1), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_panics() {
        let _ = Link::new(0.0, 1);
    }
}
