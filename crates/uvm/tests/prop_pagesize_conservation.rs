//! Property test: per-hop byte conservation for frame migration. When a
//! coalesced 2 MB frame's aliased access counter trips, the driver
//! migrates the frame to the heavy accessor as base pages — and every
//! hop must move each base page exactly once (no page left behind on
//! the source, none double-transferred) — exactly one frame's worth of
//! bytes per hop — for any frame geometry, GPU count and number of
//! hops. The frame must also re-coalesce on the destination after each
//! hop, so the next hop again moves it whole.

use proptest::prelude::*;

use grit_sim::{AccessKind, GpuId, MemLoc, PageId, PageSizeMode, Scheme, SimConfig};
use grit_uvm::{FaultInfo, FaultKind, StaticPolicy, UvmDriver};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn frame_trips_conserve_bytes_on_every_hop(
        shift in 0u32..3,       // 256 KB..1 MB base pages: 8/4/2 per frame
        gpus in 2usize..=4,
        hops in 1usize..=3,
    ) {
        let mut cfg = SimConfig::with_gpus(gpus);
        cfg.page_size = (256 * 1024u64) << shift;
        cfg.page_size_mode = PageSizeMode::Uniform2m;
        let ppf = cfg.pages_per_large_frame();
        let page_size = cfg.page_size;
        let mut d = UvmDriver::new(
            cfg,
            ppf * 2,
            Box::new(StaticPolicy::new(Scheme::AccessCounter)),
        );

        // GPU0 faults every base page of frame 0: fully private, coalesced.
        for p in 0..ppf {
            d.handle_fault(FaultInfo {
                now: p * 100_000,
                gpu: GpuId::new(0),
                vpn: PageId(p),
                kind: AccessKind::Read,
                fault: FaultKind::Local,
            });
        }
        prop_assert_eq!(d.coalesced_frame(PageId(0)), Some(PageId(0)));

        let mut now = ppf * 100_000 + 1_000_000;
        let mut from = 0u8;
        for hop in 0..hops {
            let to = GpuId::new((from + 1) % gpus as u8);
            let before = d.fault_counters().migrations;
            let mut tripped = false;
            for i in 0..1024 {
                if d.record_remote_access(now + i, to, PageId(0)).is_some() {
                    tripped = true;
                    break;
                }
            }
            prop_assert!(tripped, "hop {hop}: frame counter must trip");

            // Conservation: exactly `ppf` base-page moves this hop —
            // `ppf * page_size` bytes left `from` and all arrived at `to`.
            let moved = d.fault_counters().migrations - before;
            prop_assert_eq!(
                moved, ppf,
                "hop {}: moved {} of {} base pages ({} of {} bytes)",
                hop, moved, ppf, moved * page_size, ppf * page_size
            );
            for p in 0..ppf {
                prop_assert_eq!(d.central().page(PageId(p)).owner, MemLoc::Gpu(to));
            }
            // The whole frame re-coalesces on the destination, so the
            // next hop again migrates it as one unit.
            prop_assert_eq!(d.large_pages().frame_owner(PageId(0)), Some(to));
            d.check_invariants().expect("driver invariants hold after the hop");

            now += 10_000_000;
            from = to.index() as u8;
        }
        let c = d.large_pages().counters();
        prop_assert_eq!(c.counter_trips_large, hops as u64);
        prop_assert_eq!(c.counter_trips_base, 0);
    }
}
