//! Property tests for the PTE and PA-Table bit encodings (paper Figs. 12
//! and 14): every representable state must round-trip exactly, and the
//! GRIT fields must never clobber the architectural bits.

use proptest::prelude::*;

use grit_sim::{GroupSize, Scheme};
use grit_uvm::{PaTableEntryBits, Pte};

fn scheme_strategy() -> impl Strategy<Value = Option<Scheme>> {
    prop_oneof![
        Just(None),
        Just(Some(Scheme::OnTouch)),
        Just(Some(Scheme::AccessCounter)),
        Just(Some(Scheme::Duplication)),
    ]
}

fn group_strategy() -> impl Strategy<Value = GroupSize> {
    prop_oneof![
        Just(GroupSize::One),
        Just(GroupSize::Eight),
        Just(GroupSize::SixtyFour),
        Just(GroupSize::FiveTwelve),
    ]
}

fn pte_strategy() -> impl Strategy<Value = Pte> {
    (
        any::<(bool, bool, bool, bool, bool, bool, bool, bool, bool, bool)>(),
        0u64..=Pte::MAX_PFN,
        scheme_strategy(),
        group_strategy(),
    )
        .prop_map(|(flags, pfn, scheme, group)| Pte {
            valid: flags.0,
            user: flags.1,
            writable: flags.2,
            write_through: flags.3,
            cache_disable: flags.4,
            accessed: flags.5,
            dirty: flags.6,
            pat: flags.7,
            global: flags.8,
            no_execute: flags.9,
            pfn,
            scheme,
            group,
        })
}

proptest! {
    #[test]
    fn pte_round_trips(pte in pte_strategy()) {
        prop_assert_eq!(Pte::decode(pte.encode()), pte);
    }

    #[test]
    fn grit_bits_do_not_clobber_architectural_fields(pte in pte_strategy()) {
        // Stripping the scheme/group bits recovers a PTE identical except
        // for those fields.
        let raw = pte.encode();
        let stripped = raw & !(0b11 << 9) & !(0b11 << 52);
        let decoded = Pte::decode(stripped);
        prop_assert_eq!(decoded.pfn, pte.pfn);
        prop_assert_eq!(decoded.valid, pte.valid);
        prop_assert_eq!(decoded.writable, pte.writable);
        prop_assert_eq!(decoded.dirty, pte.dirty);
        prop_assert_eq!(decoded.no_execute, pte.no_execute);
        prop_assert_eq!(decoded.scheme, None);
        prop_assert_eq!(decoded.group, GroupSize::One);
    }

    #[test]
    fn decode_encode_is_stable_for_valid_bit_patterns(raw in any::<u64>()) {
        // Mask to bits the format defines (no reserved bits set).
        let defined = 0x1FFu64 | (0b11 << 9) | (((1u64 << 40) - 1) << 12) | (0b11 << 52) | (1 << 63);
        let raw = raw & defined;
        let decoded = Pte::decode(raw);
        prop_assert_eq!(decoded.encode(), raw);
    }

    #[test]
    fn pa_entry_round_trips(
        vpn in 0u64..=PaTableEntryBits::MAX_VPN,
        write in any::<bool>(),
        faults in 0u8..4,
    ) {
        let e = PaTableEntryBits { vpn, write, fault_count: faults };
        let raw = e.encode();
        prop_assert!(raw < 1 << 48, "entry must fit 48 bits");
        prop_assert_eq!(PaTableEntryBits::decode(raw), e);
    }
}
