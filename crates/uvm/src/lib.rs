//! # grit-uvm
//!
//! The unified-virtual-memory driver model of the GRIT reproduction
//! (paper §II): a centralized page table on the CPU, per-GPU local page
//! tables, page-fault servicing over PCIe, and the full mechanism set the
//! placement policies choose from — on-touch migration, access-counter
//! migration with Volta-style 64 KB-group counters, page duplication with
//! write-collapse, GPS-style store broadcast, prefetch fills and
//! capacity-pressure eviction.
//!
//! Policies (the three uniform schemes here, GRIT in `grit-core`, the
//! comparators in `grit-baselines`) implement [`PlacementPolicy`]; the
//! [`UvmDriver`] executes their decisions and attributes every cycle to
//! the six latency classes of Fig. 3.
//!
//! # Example
//!
//! ```
//! use grit_sim::{AccessKind, GpuId, PageId, Scheme, SimConfig};
//! use grit_uvm::{FaultInfo, FaultKind, StaticPolicy, UvmDriver};
//!
//! let mut driver = UvmDriver::new(
//!     SimConfig::default(),
//!     1024,
//!     Box::new(StaticPolicy::new(Scheme::OnTouch)),
//! );
//! let fault = FaultInfo {
//!     now: 0,
//!     gpu: GpuId::new(0),
//!     vpn: PageId(3),
//!     kind: AccessKind::Read,
//!     fault: FaultKind::Local,
//! };
//! let outcome = driver.handle_fault(fault);
//! assert!(outcome.done_at > 0);
//! ```

#![warn(missing_docs)]

pub mod central;
pub mod counters;
pub mod driver;
pub mod policy;
pub mod prefetch;
pub mod pte;

pub use central::{CentralPageTable, PageState};
pub use counters::AccessCounters;
pub use driver::{DriverOutcome, DriverView, InvariantViolation, UvmDriver};
pub use policy::{
    Directive, FaultInfo, FaultKind, PlacementPolicy, PolicyDecision, Resolution, StaticPolicy,
    WriteMode,
};
pub use prefetch::{NullPrefetcher, Prefetcher};
pub use pte::{PaTableEntryBits, Pte};
