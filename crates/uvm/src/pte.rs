//! Page-table-entry encoding for 4 KB pages in GRIT (paper Fig. 14).
//!
//! GRIT repurposes PTE bits 9–10 for the placement-scheme bits (Table IV)
//! and the unused bits 52–53 for the page-group size bits (Table V). The
//! simulator keeps page state in structured form ([`crate::central`]), but
//! the bit-exact encoding is implemented and tested here because the
//! paper's design argument (no extra page-table walks, group bits live in
//! the base page's PTE) depends on everything fitting in one 64-bit PTE.

use grit_sim::{GroupSize, Scheme};

/// Bit positions from Fig. 14.
mod bits {
    pub const VALID: u64 = 1 << 0;
    pub const USER: u64 = 1 << 1;
    pub const RW: u64 = 1 << 2;
    pub const PWT: u64 = 1 << 3;
    pub const PCD: u64 = 1 << 4;
    pub const ACCESSED: u64 = 1 << 5;
    pub const DIRTY: u64 = 1 << 6;
    pub const PAT: u64 = 1 << 7;
    pub const GLOBAL: u64 = 1 << 8;
    pub const SCHEME_SHIFT: u32 = 9;
    pub const SCHEME_MASK: u64 = 0b11 << 9;
    pub const PFN_SHIFT: u32 = 12;
    pub const PFN_MASK: u64 = ((1u64 << 40) - 1) << 12;
    pub const GROUP_SHIFT: u32 = 52;
    pub const GROUP_MASK: u64 = 0b11 << 52;
    pub const XD: u64 = 1 << 63;
}

/// A decoded 4 KB-page PTE with GRIT's extra fields.
///
/// ```
/// use grit_uvm::Pte;
/// use grit_sim::{GroupSize, Scheme};
///
/// let mut pte = Pte::new_valid(0x1234);
/// pte.scheme = Some(Scheme::Duplication);
/// pte.group = GroupSize::Eight;
/// let raw = pte.encode();
/// assert_eq!(Pte::decode(raw), pte);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Pte {
    /// Translation valid (V).
    pub valid: bool,
    /// User/supervisor (U/S).
    pub user: bool,
    /// Writable (R/W = 1 means writes allowed; replicas clear it).
    pub writable: bool,
    /// Page-level write-through (PWT).
    pub write_through: bool,
    /// Page-level cache disable (PCD).
    pub cache_disable: bool,
    /// Accessed (A).
    pub accessed: bool,
    /// Dirty (D).
    pub dirty: bool,
    /// Page-attribute-table bit (PAT).
    pub pat: bool,
    /// Global (G).
    pub global: bool,
    /// Execute-disable (XD).
    pub no_execute: bool,
    /// 4 KB page frame number (40 bits, bits 12–51).
    pub pfn: u64,
    /// GRIT placement-scheme bits (bits 9–10, Table IV); `None` = `00`.
    pub scheme: Option<Scheme>,
    /// GRIT page-group size bits (bits 52–53, Table V); meaningful only in
    /// the PTE of a group's base page.
    pub group: GroupSize,
}

impl Pte {
    /// Maximum representable PFN (40 bits).
    pub const MAX_PFN: u64 = (1 << 40) - 1;

    /// A valid, writable, user, accessed PTE for `pfn`.
    ///
    /// # Panics
    ///
    /// Panics if `pfn` exceeds 40 bits.
    pub fn new_valid(pfn: u64) -> Self {
        assert!(pfn <= Self::MAX_PFN, "PFN {pfn:#x} exceeds 40 bits");
        Pte {
            valid: true,
            user: true,
            writable: true,
            accessed: true,
            pfn,
            ..Pte::default()
        }
    }

    /// Packs into the raw 64-bit format of Fig. 14.
    ///
    /// # Panics
    ///
    /// Panics if `pfn` exceeds 40 bits.
    pub fn encode(&self) -> u64 {
        assert!(
            self.pfn <= Self::MAX_PFN,
            "PFN {:#x} exceeds 40 bits",
            self.pfn
        );
        let mut raw = 0u64;
        let mut flag = |on: bool, bit: u64| {
            if on {
                raw |= bit;
            }
        };
        flag(self.valid, bits::VALID);
        flag(self.user, bits::USER);
        flag(self.writable, bits::RW);
        flag(self.write_through, bits::PWT);
        flag(self.cache_disable, bits::PCD);
        flag(self.accessed, bits::ACCESSED);
        flag(self.dirty, bits::DIRTY);
        flag(self.pat, bits::PAT);
        flag(self.global, bits::GLOBAL);
        flag(self.no_execute, bits::XD);
        raw |= self.scheme.map_or(0, Scheme::bits) << bits::SCHEME_SHIFT;
        raw |= self.pfn << bits::PFN_SHIFT;
        raw |= self.group.bits() << bits::GROUP_SHIFT;
        raw
    }

    /// Unpacks from the raw 64-bit format.
    pub fn decode(raw: u64) -> Self {
        Pte {
            valid: raw & bits::VALID != 0,
            user: raw & bits::USER != 0,
            writable: raw & bits::RW != 0,
            write_through: raw & bits::PWT != 0,
            cache_disable: raw & bits::PCD != 0,
            accessed: raw & bits::ACCESSED != 0,
            dirty: raw & bits::DIRTY != 0,
            pat: raw & bits::PAT != 0,
            global: raw & bits::GLOBAL != 0,
            no_execute: raw & bits::XD != 0,
            pfn: (raw & bits::PFN_MASK) >> bits::PFN_SHIFT,
            scheme: Scheme::from_bits((raw & bits::SCHEME_MASK) >> bits::SCHEME_SHIFT),
            group: GroupSize::from_bits((raw & bits::GROUP_MASK) >> bits::GROUP_SHIFT),
        }
    }
}

/// One software PA-Table entry as specified in Fig. 12: 48 bits = 45-bit
/// VPN + 1 read/write bit + 2-bit fault counter. Packed here to validate
/// the storage-overhead claim (§V-F: 48 bits per 4 KB page = 0.15 %).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PaTableEntryBits {
    /// 45-bit virtual page number.
    pub vpn: u64,
    /// Read/write bit (1 once any write has been observed).
    pub write: bool,
    /// 2-bit fault counter (saturates at 3; the threshold check combines it
    /// with driver state for thresholds above 4 — see `grit-core`).
    pub fault_count: u8,
}

impl PaTableEntryBits {
    /// Maximum representable VPN (45 bits).
    pub const MAX_VPN: u64 = (1 << 45) - 1;

    /// Packs into 48 bits (returned in the low bits of a `u64`).
    ///
    /// # Panics
    ///
    /// Panics if the VPN exceeds 45 bits or the counter exceeds 2 bits.
    pub fn encode(&self) -> u64 {
        assert!(
            self.vpn <= Self::MAX_VPN,
            "VPN {:#x} exceeds 45 bits",
            self.vpn
        );
        assert!(
            self.fault_count < 4,
            "fault counter {} exceeds 2 bits",
            self.fault_count
        );
        self.vpn | (u64::from(self.write) << 45) | ((self.fault_count as u64) << 46)
    }

    /// Unpacks from 48 bits.
    pub fn decode(raw: u64) -> Self {
        PaTableEntryBits {
            vpn: raw & Self::MAX_VPN,
            write: raw & (1 << 45) != 0,
            fault_count: ((raw >> 46) & 0b11) as u8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pte_round_trip_all_fields() {
        let mut p = Pte::new_valid(0xAB_CDEF);
        p.dirty = true;
        p.global = true;
        p.no_execute = true;
        p.write_through = true;
        p.cache_disable = true;
        p.pat = true;
        p.scheme = Some(Scheme::AccessCounter);
        p.group = GroupSize::FiveTwelve;
        assert_eq!(Pte::decode(p.encode()), p);
    }

    #[test]
    fn scheme_bits_live_at_9_and_10() {
        let mut p = Pte {
            scheme: Some(Scheme::OnTouch),
            ..Pte::default()
        };
        assert_eq!(p.encode(), 0b01 << 9);
        p.scheme = Some(Scheme::Duplication);
        assert_eq!(p.encode(), 0b11 << 9);
    }

    #[test]
    fn group_bits_live_at_52_and_53() {
        let p = Pte {
            group: GroupSize::SixtyFour,
            ..Pte::default()
        };
        assert_eq!(p.encode(), 0b10 << 52);
    }

    #[test]
    fn pfn_occupies_bits_12_to_51() {
        let p = Pte {
            pfn: Pte::MAX_PFN,
            ..Pte::default()
        };
        let raw = p.encode();
        assert_eq!(raw, (((1u64 << 40) - 1) << 12));
        assert_eq!(Pte::decode(raw).pfn, Pte::MAX_PFN);
    }

    #[test]
    #[should_panic(expected = "exceeds 40 bits")]
    fn oversized_pfn_rejected() {
        let _ = Pte {
            pfn: 1 << 40,
            ..Pte::default()
        }
        .encode();
    }

    #[test]
    fn unset_scheme_is_none() {
        assert_eq!(Pte::decode(0).scheme, None);
        assert_eq!(Pte::decode(0).group, GroupSize::One);
    }

    #[test]
    fn pa_entry_round_trip_and_width() {
        let e = PaTableEntryBits {
            vpn: 0x1FFF_FFFF_FFFF & PaTableEntryBits::MAX_VPN,
            write: true,
            fault_count: 3,
        };
        let raw = e.encode();
        assert!(raw < 1 << 48, "PA-Table entry must fit in 48 bits");
        assert_eq!(PaTableEntryBits::decode(raw), e);
        let e2 = PaTableEntryBits {
            vpn: 7,
            write: false,
            fault_count: 0,
        };
        assert_eq!(PaTableEntryBits::decode(e2.encode()), e2);
    }

    #[test]
    #[should_panic(expected = "2 bits")]
    fn pa_entry_counter_bounds() {
        let _ = PaTableEntryBits {
            vpn: 0,
            write: false,
            fault_count: 4,
        }
        .encode();
    }

    #[test]
    fn pa_table_overhead_matches_paper() {
        // 48 bits per 4 KB page = 0.146 % of the footprint (§V-F).
        let overhead: f64 = 48.0 / (4096.0 * 8.0);
        assert!((overhead - 0.00146).abs() < 1e-4);
    }
}
