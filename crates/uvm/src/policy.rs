//! The placement-policy abstraction.
//!
//! The UVM driver ([`crate::UvmDriver`]) implements the *mechanisms* —
//! migration, remote mapping, duplication, collapse, eviction — and asks a
//! [`PlacementPolicy`] which mechanism to apply on each fault. The three
//! uniform schemes of §II-B, GRIT (`grit-core`), and the comparator systems
//! (`grit-baselines`) are all policies behind this trait.

use grit_sim::{AccessKind, Cycle, GpuId, PageId, Scheme};

use crate::central::{CentralPageTable, PageState};

/// Why the fault was raised.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Translation invalid in the local page table (read or write).
    Local,
    /// Write hit a read-only replica mapping (duplication semantics).
    Protection,
}

/// One page fault delivered to the UVM driver.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultInfo {
    /// Cycle at which the driver begins servicing.
    pub now: Cycle,
    /// Faulting GPU.
    pub gpu: GpuId,
    /// Faulting page.
    pub vpn: PageId,
    /// Load or store.
    pub kind: AccessKind,
    /// Local vs protection fault.
    pub fault: FaultKind,
}

/// The mechanism the driver should apply to resolve a fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Resolution {
    /// Migrate the page into the faulting GPU's memory (on-touch, §II-B1).
    Migrate,
    /// Establish a remote mapping to the current owner (counter-based
    /// scheme, §II-B2); remote accesses then tick the access counters.
    MapRemote,
    /// Replicate the page locally for reads; a write instead collapses
    /// replicas and takes exclusive ownership (§II-B3).
    Duplicate,
    /// The unrealizable Ideal of Fig. 1: first cold touch fetches the page,
    /// every later read is local and writes incur zero NUMA cost.
    Ideal,
}

/// How the driver should treat writes to replicated pages.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum WriteMode {
    /// Invalidate all replicas and grant the writer an exclusive copy
    /// (page write-collapse, §II-B3). The UVM default.
    #[default]
    Collapse,
    /// Proactively broadcast the store to all subscribers' replicas at
    /// cache-line granularity (GPS, §VI-C2); replicas stay valid.
    Broadcast,
}

/// What a policy decided about one fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PolicyDecision {
    /// Mechanism to apply.
    pub resolution: Resolution,
    /// Additional host-side latency this decision cost (e.g. GRIT's
    /// PA-Cache/PA-Table lookups). The driver overlaps it with the
    /// centralized page-table walk and charges only the excess (§V-C).
    pub decision_latency: Cycle,
    /// Whether this fault changed the page's placement scheme (triggers a
    /// scheme-change interrupt and, in GRIT, Neighboring-Aware Prediction).
    pub scheme_changed: bool,
}

impl PolicyDecision {
    /// A zero-latency decision applying `resolution`.
    pub fn plain(resolution: Resolution) -> Self {
        PolicyDecision {
            resolution,
            decision_latency: 0,
            scheme_changed: false,
        }
    }
}

/// Post-epoch directive from interval-based policies (Griffin-DPC).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Directive {
    /// Migrate `vpn` into `to`'s memory.
    MigratePage {
        /// Page to move.
        vpn: PageId,
        /// Destination GPU.
        to: GpuId,
    },
}

/// A page-placement policy.
///
/// Implementations must be deterministic: the reproduction re-runs every
/// figure from fixed seeds.
pub trait PlacementPolicy {
    /// Human-readable policy name for reports.
    fn name(&self) -> String;

    /// Decides how to resolve one fault. `page` is the authoritative state
    /// *after* sharer/written bookkeeping for this fault; `table` allows
    /// policies (GRIT) to read and update scheme/group bits of any page.
    fn on_fault(
        &mut self,
        fault: &FaultInfo,
        page: &PageState,
        table: &mut CentralPageTable,
    ) -> PolicyDecision;

    /// Observes one remote access (post-L2-cache). Policies that track
    /// their own counters (Griffin) hook here; the builtin Volta counters
    /// are driver machinery and not routed through this method.
    fn on_remote_access(&mut self, _now: Cycle, _gpu: GpuId, _vpn: PageId) {}

    /// Observes every access (local and remote) when the policy runs
    /// epochs; interval-based classifiers (Griffin-DPC) build their
    /// per-epoch access profiles here.
    fn on_access(&mut self, _now: Cycle, _gpu: GpuId, _vpn: PageId, _kind: AccessKind) {}

    /// Interval length for [`PlacementPolicy::on_epoch`]; `None` disables
    /// epochs.
    fn epoch_len(&self) -> Option<Cycle> {
        None
    }

    /// Called at every epoch boundary when [`PlacementPolicy::epoch_len`]
    /// is set; returns migration directives for the driver to execute.
    fn on_epoch(&mut self, _now: Cycle, _table: &mut CentralPageTable) -> Vec<Directive> {
        Vec::new()
    }

    /// Write semantics for replicated pages (GPS overrides to
    /// [`WriteMode::Broadcast`]).
    fn write_mode(&self) -> WriteMode {
        WriteMode::Collapse
    }

    /// Whether the Ideal cost model applies (no capacity pressure, free
    /// writes). Only the Ideal policy returns `true`.
    fn is_ideal(&self) -> bool {
        false
    }
}

/// Uniformly applies one of the three schemes of §II-B to every page — the
/// baselines of Fig. 1/17.
///
/// ```
/// use grit_uvm::{StaticPolicy, PlacementPolicy};
/// use grit_sim::Scheme;
/// let p = StaticPolicy::new(Scheme::OnTouch);
/// assert_eq!(p.name(), "on-touch");
/// ```
#[derive(Clone, Copy, Debug)]
pub struct StaticPolicy {
    scheme: Scheme,
}

impl StaticPolicy {
    /// A policy that always applies `scheme`.
    pub fn new(scheme: Scheme) -> Self {
        StaticPolicy { scheme }
    }

    /// The configured scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }
}

impl PlacementPolicy for StaticPolicy {
    fn name(&self) -> String {
        self.scheme.to_string()
    }

    fn on_fault(
        &mut self,
        fault: &FaultInfo,
        page: &PageState,
        table: &mut CentralPageTable,
    ) -> PolicyDecision {
        // Record the uniform scheme in the PTE bits so metrics (Fig. 19)
        // and the access-counter machinery see a consistent view.
        table.set_scheme(fault.vpn, self.scheme);
        let resolution = match self.scheme {
            Scheme::OnTouch => Resolution::Migrate,
            Scheme::AccessCounter => {
                // Volta semantics: host-resident pages migrate on first
                // touch; the access counters govern migration of pages
                // resident in *peer GPU* memory (§II-B2).
                if page.owner.gpu().is_none() && !page.is_duplicated() {
                    Resolution::Migrate
                } else {
                    Resolution::MapRemote
                }
            }
            Scheme::Duplication => Resolution::Duplicate,
        };
        PolicyDecision::plain(resolution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grit_sim::MemLoc;

    fn fault(gpu: u8, vpn: u64, kind: AccessKind) -> FaultInfo {
        FaultInfo {
            now: 0,
            gpu: GpuId::new(gpu),
            vpn: PageId(vpn),
            kind,
            fault: FaultKind::Local,
        }
    }

    #[test]
    fn on_touch_always_migrates() {
        let mut p = StaticPolicy::new(Scheme::OnTouch);
        let mut t = CentralPageTable::new();
        let page = t.note_fault(GpuId::new(0), PageId(1), false);
        let d = p.on_fault(&fault(0, 1, AccessKind::Read), &page, &mut t);
        assert_eq!(d.resolution, Resolution::Migrate);
        assert_eq!(t.scheme_of(PageId(1)), Some(Scheme::OnTouch));
    }

    #[test]
    fn access_counter_first_touch_migrates_then_maps_remote() {
        let mut p = StaticPolicy::new(Scheme::AccessCounter);
        let mut t = CentralPageTable::new();
        let cold = t.note_fault(GpuId::new(0), PageId(1), false);
        assert_eq!(
            p.on_fault(&fault(0, 1, AccessKind::Read), &cold, &mut t).resolution,
            Resolution::Migrate
        );
        t.page_mut(PageId(1)).owner = MemLoc::Gpu(GpuId::new(0));
        let warm = t.note_fault(GpuId::new(1), PageId(1), false);
        assert_eq!(
            p.on_fault(&fault(1, 1, AccessKind::Read), &warm, &mut t).resolution,
            Resolution::MapRemote
        );
    }

    #[test]
    fn duplication_duplicates() {
        let mut p = StaticPolicy::new(Scheme::Duplication);
        let mut t = CentralPageTable::new();
        let page = t.note_fault(GpuId::new(2), PageId(9), false);
        let d = p.on_fault(&fault(2, 9, AccessKind::Read), &page, &mut t);
        assert_eq!(d.resolution, Resolution::Duplicate);
        assert_eq!(p.write_mode(), WriteMode::Collapse);
        assert!(!p.is_ideal());
    }

    #[test]
    fn default_hooks_are_inert() {
        let mut p = StaticPolicy::new(Scheme::OnTouch);
        assert_eq!(p.epoch_len(), None);
        let mut t = CentralPageTable::new();
        assert!(p.on_epoch(0, &mut t).is_empty());
        p.on_remote_access(0, GpuId::new(0), PageId(0));
    }
}
