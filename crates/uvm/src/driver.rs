//! The UVM driver: fault servicing and page-placement *mechanisms*.
//!
//! The driver owns the authoritative VM state of the node — the centralized
//! page table, every GPU's local page table, per-GPU memory occupancy, the
//! interconnect fabric and the Volta-style access counters — and executes
//! whatever mechanism the active [`PlacementPolicy`] selects per fault:
//! migration (§II-B1), remote mapping with counter-based migration
//! (§II-B2), duplication with write-collapse (§II-B3), GPS-style store
//! broadcast, prefetch fills, and capacity evictions.
//!
//! Latency attribution follows Fig. 3: every cycle the driver charges lands
//! in one of the six [`LatencyClass`] buckets.

use grit_interconnect::Fabric;
use grit_mem::{GpuMemory, LocalPageTable, Mapping};
use grit_metrics::{FaultCounters, LatencyBreakdown, LatencyClass, LatencyHistogram};
use grit_pagesize::{BasePageView, LargePageTable, SplinterCause};
use grit_prof::{span, Phase};
use grit_sim::{
    AccessKind, Backoff, ConfigError, Cycle, FaultPlan, GpuId, InjectedKind, MemLoc, PageId,
    ResilienceCounters, Scheme, SimConfig, CACHE_LINE_BYTES,
};
use grit_trace::{EventCategory, FaultClass, TraceEvent, Tracer};

use crate::central::CentralPageTable;
use crate::counters::AccessCounters;
use crate::policy::{
    Directive, FaultInfo, FaultKind, PlacementPolicy, PolicyDecision, Resolution, WriteMode,
};
use crate::prefetch::Prefetcher;

/// Side effects of a driver operation the runner must apply to GPU-side
/// hardware structures (TLBs, cached lines) and frontends (stalls).
#[derive(Clone, Debug, Default)]
pub struct DriverOutcome {
    /// Cycle at which the faulting GPU's access may replay.
    pub done_at: Cycle,
    /// GPUs stalled (pipeline drain / invalidation application) until the
    /// given cycle.
    pub stalls: Vec<(GpuId, Cycle)>,
    /// Translations the runner must drop from TLBs and data caches.
    pub invalidated: Vec<(GpuId, PageId)>,
    /// Coalesced 2 MB frames splintered by this operation, as `(owner,
    /// frame_base)` pairs: the runner must drop the owner's large-TLB
    /// entry for the frame. Always empty under uniform 4 KB pages.
    pub splintered: Vec<(GpuId, PageId)>,
    /// The mapping the mechanism installed for the *faulting* GPU and page,
    /// when the operation resolved a fault. Lets the runner replay the
    /// access without a second page-table lookup. Only meaningful on
    /// [`UvmDriver::handle_fault`] results; side-effect outcomes (epochs,
    /// counter trips) leave it unset or stale.
    pub mapping: Option<Mapping>,
}

impl DriverOutcome {
    fn merge(&mut self, other: DriverOutcome) {
        self.done_at = self.done_at.max(other.done_at);
        self.stalls.extend(other.stalls);
        self.invalidated.extend(other.invalidated);
        self.splintered.extend(other.splintered);
        // The first mapping recorded belongs to the faulting page; merged
        // side effects (group duplication, teardown) must not clobber it.
        if self.mapping.is_none() {
            self.mapping = other.mapping;
        }
    }
}

/// A violated cross-structure VM invariant: which GPU/page broke, at
/// which driver cycle, and why. Returned by
/// [`UvmDriver::check_invariants`]; the automatic debug-build checks
/// panic with its [`Display`](std::fmt::Display) rendering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvariantViolation {
    /// The GPU whose state is inconsistent, when attributable to one.
    pub gpu: Option<GpuId>,
    /// The page involved, when attributable to one.
    pub vpn: Option<PageId>,
    /// The latest event cycle the driver had processed when the check ran.
    pub cycle: Cycle,
    /// Human-readable description of the violated invariant.
    pub message: String,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invariant violated at cycle {}", self.cycle)?;
        if let Some(g) = self.gpu {
            write!(f, " on {g}")?;
        }
        if let Some(v) = self.vpn {
            write!(f, " ({v})")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl std::error::Error for InvariantViolation {}

/// A read-only view of the driver state a sharded round's parallel phase
/// consults, frozen at the round boundary: the per-GPU local page tables
/// (for pure translation) and the next cycle at which driver-side work —
/// a policy epoch boundary or an injected fault transition — becomes due.
///
/// Workers use it to *classify* accesses: anything whose handling would
/// mutate shared driver state (a fault, a collapse, a remote fetch, due
/// epoch work) stops the speculation for that GPU instead of executing.
pub struct DriverView<'a> {
    local_pts: &'a [LocalPageTable],
    large: &'a LargePageTable,
    pending: Option<Cycle>,
}

impl DriverView<'_> {
    /// Mirrors [`UvmDriver::translate`] against the frozen tables.
    pub fn translate(&self, gpu: GpuId, vpn: PageId) -> Option<Mapping> {
        self.local_pts[gpu.index()].lookup(vpn)
    }

    /// Mirrors [`UvmDriver::coalesced_frame`] against the frozen
    /// large-page table: the 2 MB frame base when `vpn` lies inside a
    /// coalesced frame. Coalescing and splintering happen only on serial
    /// driver paths, so the answer is stable for a whole speculation
    /// round.
    pub fn coalesced_frame(&self, vpn: PageId) -> Option<PageId> {
        self.large.coalesced_frame(vpn)
    }

    /// Mirrors [`UvmDriver::large_translation`] against the frozen
    /// large-page table.
    pub fn large_translation(&self, gpu: GpuId, vpn: PageId) -> Option<PageId> {
        self.large
            .coalesced_frame(vpn)
            .filter(|_| self.large.frame_owner(vpn) == Some(gpu))
    }

    /// Whether driver-side work (an epoch or an injection) is due at or
    /// before `now` — the serial loop would execute it inside
    /// [`UvmDriver::maybe_run_epoch`] on the pop at `now`.
    pub fn work_due(&self, now: Cycle) -> bool {
        self.pending.is_some_and(|c| c <= now)
    }
}

/// The UVM driver model.
pub struct UvmDriver {
    cfg: SimConfig,
    central: CentralPageTable,
    local_pts: Vec<LocalPageTable>,
    memories: Vec<GpuMemory>,
    fabric: Fabric,
    counters: AccessCounters,
    /// Which 2 MB frames are currently coalesced (inert under uniform
    /// 4 KB pages). Mutated only on serial driver paths so the sharded
    /// runner's speculation rounds observe frozen large-page state.
    large: LargePageTable,
    policy: Box<dyn PlacementPolicy>,
    prefetcher: Option<Box<dyn Prefetcher>>,
    footprint_pages: u64,
    breakdown: LatencyBreakdown,
    faults: FaultCounters,
    page_insertions: u64,
    next_epoch: Option<Cycle>,
    /// Local + protection faults raised by each GPU (load-imbalance view).
    faults_per_gpu: Vec<u64>,
    /// End-to-end fault-handling latency distribution (fault raise to
    /// replay release).
    fault_latency: LatencyHistogram,
    /// Fault-handler occupancy: how long each fault queued behind
    /// earlier faults' service time before the serial driver took it.
    fault_occupancy: LatencyHistogram,
    /// Per-migration latency (driver dispatch to data arrival + mapping).
    migration_latency: LatencyHistogram,
    /// The host services faults serially; the next fault starts no earlier
    /// than this cycle.
    fault_service_free: Cycle,
    /// Per-GPU earliest cycle the next peer request may issue.
    remote_port_free: Vec<Cycle>,
    /// Compiled hardware-fault schedule (empty unless `cfg.inject` has
    /// events; every query on an empty plan is a no-op).
    plan: FaultPlan,
    /// Cursor into [`FaultPlan::transitions`]: the next not-yet-applied
    /// state change.
    next_transition: usize,
    /// Per-GPU cursor into [`FaultPlan::retirements`].
    retire_cursor: Vec<usize>,
    /// Retry policy for migrations whose route is severed.
    backoff: Backoff,
    /// Fault-injection outcome counters (all zero without a plan).
    resilience: ResilienceCounters,
    /// Latest event cycle the driver has observed; stamps invariant
    /// violations.
    clock: Cycle,
    /// Event sink for placement events; disabled by default. Emission
    /// sites coincide with [`FaultCounters`] increments so per-category
    /// event counts equal the counters when unfiltered and unsampled.
    tracer: Tracer,
}

impl std::fmt::Debug for UvmDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UvmDriver")
            .field("policy", &self.policy.name())
            .field("footprint_pages", &self.footprint_pages)
            .field("faults", &self.faults)
            .finish_non_exhaustive()
    }
}

impl UvmDriver {
    /// Builds a driver for a workload of `footprint_pages` pages under the
    /// given policy. Each GPU's memory capacity follows §III-B:
    /// `capacity_ratio × footprint` (70 % of the application footprint per
    /// GPU) — enough that single-copy placements never thrash, while
    /// replication-heavy schemes (duplication, GPS) oversubscribe.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`] or the
    /// footprint is zero.
    pub fn new(cfg: SimConfig, footprint_pages: u64, policy: Box<dyn PlacementPolicy>) -> Self {
        UvmDriver::try_new(cfg, footprint_pages, policy).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`UvmDriver::new`]: validates the configuration
    /// and the footprint and returns a [`ConfigError`] instead of
    /// panicking.
    pub fn try_new(
        cfg: SimConfig,
        footprint_pages: u64,
        policy: Box<dyn PlacementPolicy>,
    ) -> Result<Self, ConfigError> {
        cfg.validate()?;
        if footprint_pages == 0 {
            return Err(ConfigError::new(
                "footprint_pages",
                "footprint must be non-zero",
            ));
        }
        let cap = ((footprint_pages as f64 * cfg.capacity_ratio).ceil() as usize).max(1);
        let next_epoch = policy.epoch_len();
        let mut fabric = Fabric::with_topology(cfg.num_gpus, cfg.links, cfg.topology);
        let plan = FaultPlan::compile(&cfg.inject, fabric.num_wire_links(), cfg.num_gpus)
            .map_err(|e| ConfigError::new("inject", e.to_string()))?;
        if !plan.is_empty() {
            fabric.set_fault_plan(plan.clone());
        }
        Ok(UvmDriver {
            central: CentralPageTable::new(),
            local_pts: (0..cfg.num_gpus).map(|_| LocalPageTable::new()).collect(),
            memories: (0..cfg.num_gpus).map(|_| GpuMemory::new(cap)).collect(),
            fabric,
            counters: AccessCounters::new(cfg.access_counter_threshold, cfg.page_size),
            large: LargePageTable::from_config(cfg.page_size_mode, cfg.page_size),
            policy,
            prefetcher: None,
            footprint_pages,
            breakdown: LatencyBreakdown::default(),
            faults: FaultCounters::default(),
            page_insertions: 0,
            next_epoch,
            faults_per_gpu: vec![0; cfg.num_gpus],
            fault_latency: LatencyHistogram::new(),
            fault_occupancy: LatencyHistogram::new(),
            migration_latency: LatencyHistogram::new(),
            fault_service_free: 0,
            remote_port_free: vec![0; cfg.num_gpus],
            plan,
            next_transition: 0,
            retire_cursor: vec![0; cfg.num_gpus],
            backoff: Backoff::default(),
            resilience: ResilienceCounters::default(),
            clock: 0,
            tracer: Tracer::disabled(),
            cfg,
        })
    }

    /// Attaches an event sink; placement events and the fabric's link
    /// transfers are recorded through it.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.fabric.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Attaches a prefetcher (Fig. 30).
    pub fn set_prefetcher(&mut self, p: Box<dyn Prefetcher>) {
        self.prefetcher = Some(p);
    }

    /// The active policy's name.
    pub fn policy_name(&self) -> String {
        self.policy.name()
    }

    /// Current local-page-table mapping of `vpn` on `gpu`.
    pub fn translate(&self, gpu: GpuId, vpn: PageId) -> Option<Mapping> {
        self.local_pts[gpu.index()].lookup(vpn)
    }

    /// The 2 MB frame base when `vpn` lies inside a coalesced frame —
    /// the key under which the large translation lives in the 2 MB TLBs.
    /// Always `None` under uniform 4 KB pages.
    pub fn coalesced_frame(&self, vpn: PageId) -> Option<PageId> {
        self.large.coalesced_frame(vpn)
    }

    /// The 2 MB frame base when `gpu` holds the frame's large
    /// translation — it owns the coalesced frame containing `vpn` — so
    /// its accesses translate through the 2 MB TLBs under this key.
    /// Peers mapping into the frame remotely keep base-page
    /// translations.
    pub fn large_translation(&self, gpu: GpuId, vpn: PageId) -> Option<PageId> {
        self.large
            .coalesced_frame(vpn)
            .filter(|_| self.large.frame_owner(vpn) == Some(gpu))
    }

    /// Whether this driver manages multi-page-size state at all (a
    /// `page_size_mode` other than `uniform4k` with base pages smaller
    /// than 2 MB).
    pub fn large_pages_active(&self) -> bool {
        self.large.enabled()
    }

    /// Read access to the large-page table (coalesced frames, counters).
    pub fn large_pages(&self) -> &LargePageTable {
        &self.large
    }

    /// The fixed-order `pagesize_counters` aux series (see
    /// `grit_pagesize::PageSizeCounters::to_series`).
    pub fn pagesize_series(&self) -> Vec<f64> {
        self.large.counter_series()
    }

    /// Effective placement scheme of a page (Fig. 19 metric); pages with
    /// unset scheme bits report the baseline on-touch scheme.
    pub fn scheme_of(&self, vpn: PageId) -> Scheme {
        self.central.scheme_of(vpn).unwrap_or(Scheme::OnTouch)
    }

    /// The earliest cycle at which driver-side work is scheduled: the next
    /// injected fault transition or the next policy epoch boundary,
    /// whichever comes first. `None` when neither is pending.
    fn pending_work_cycle(&self) -> Option<Cycle> {
        let injection = self.plan.transitions().get(self.next_transition).map(|t| t.cycle);
        let epoch = self.policy.epoch_len().and(self.next_epoch);
        match (injection, epoch) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// A read-only snapshot view for the sharded runner's parallel phase:
    /// pure translation against the frozen per-GPU page tables plus the
    /// next cycle at which driver-side work becomes due. The view borrows
    /// the driver immutably, so workers can share it across threads while
    /// the round's speculation runs.
    pub fn view(&self) -> DriverView<'_> {
        DriverView {
            local_pts: &self.local_pts,
            large: &self.large,
            pending: self.pending_work_cycle(),
        }
    }

    /// Safe lookahead for time-sharded execution: the minimum one-way
    /// fabric latency (any wire class, including host PCIe), never zero.
    /// No cross-GPU interaction initiated inside a window can complete
    /// sooner than this many cycles after it starts.
    pub fn lookahead_bound(&self) -> Cycle {
        self.fabric.min_wire_latency().max(1)
    }

    /// Applies the deferred memory side effects of one committed pure
    /// local access: exactly what the serial loop's
    /// [`UvmDriver::local_line_access`] + [`UvmDriver::mark_page_dirty`]
    /// pair does to driver state on the warm local path.
    pub fn commit_local_touch(&mut self, gpu: GpuId, vpn: PageId, write: bool) {
        self.memories[gpu.index()].touch(vpn);
        if write {
            self.memories[gpu.index()].mark_dirty(vpn);
        }
    }

    /// Write semantics of the active policy.
    pub fn write_mode(&self) -> WriteMode {
        self.policy.write_mode()
    }

    /// Whether the Ideal cost model is active (exempt from the mapping
    /// invariants: Ideal pretends every GPU holds the page locally).
    pub fn is_ideal(&self) -> bool {
        self.policy.is_ideal()
    }

    /// Whether the policy consumes the full access feed
    /// ([`PlacementPolicy::on_access`] via the runner).
    pub fn wants_access_feed(&self) -> bool {
        self.policy.epoch_len().is_some()
    }

    /// Forwards one access observation to epoch-based policies.
    pub fn feed_access(&mut self, now: Cycle, gpu: GpuId, vpn: PageId, kind: AccessKind) {
        self.policy.on_access(now, gpu, vpn, kind);
    }

    /// Charges cycles to a latency class (used by the runner for the
    /// Local/Remote classes it measures itself).
    pub fn charge(&mut self, class: LatencyClass, cycles: Cycle) {
        self.breakdown.record(class, cycles);
    }

    /// Six-way latency attribution so far.
    pub fn breakdown(&self) -> LatencyBreakdown {
        self.breakdown
    }

    /// Fault/event counters so far.
    pub fn fault_counters(&self) -> FaultCounters {
        self.faults
    }

    /// Interconnect statistics.
    pub fn fabric_stats(&self) -> grit_interconnect::FabricStats {
        self.fabric.stats()
    }

    /// Fraction of page placements that displaced a resident page.
    pub fn oversubscription_rate(&self) -> f64 {
        if self.page_insertions == 0 {
            0.0
        } else {
            self.faults.evictions as f64 / self.page_insertions as f64
        }
    }

    /// Read access to the centralized page table.
    pub fn central(&self) -> &CentralPageTable {
        &self.central
    }

    /// Resident pages per GPU.
    pub fn residency(&self) -> Vec<usize> {
        self.memories.iter().map(GpuMemory::resident).collect()
    }

    /// Faults raised by each GPU (local + protection).
    pub fn faults_per_gpu(&self) -> &[u64] {
        &self.faults_per_gpu
    }

    /// End-to-end fault-handling latency distribution.
    pub fn fault_latency(&self) -> &LatencyHistogram {
        &self.fault_latency
    }

    /// Fault-handler occupancy distribution: per-fault queue wait for
    /// the serial driver resource.
    pub fn fault_occupancy(&self) -> &LatencyHistogram {
        &self.fault_occupancy
    }

    /// Per-migration latency distribution.
    pub fn migration_latency(&self) -> &LatencyHistogram {
        &self.migration_latency
    }

    /// Per-hop fabric queue-wait distribution.
    pub fn fabric_queue_wait(&self) -> &LatencyHistogram {
        self.fabric.queue_wait_hist()
    }

    /// Whether a fault-injection plan is active on this driver.
    pub fn injection_active(&self) -> bool {
        !self.plan.is_empty()
    }

    /// Fault-injection outcome counters (all zero when no plan is active,
    /// except `invariant_checks`, which also counts debug-build epoch
    /// sweeps).
    pub fn resilience_counters(&self) -> ResilienceCounters {
        self.resilience
    }

    /// Verifies the driver's cross-structure invariants; returns the first
    /// violation found. The system runner checks this after every run, so
    /// any divergence between the local page tables, the centralized
    /// table, and DRAM occupancy fails loudly.
    ///
    /// Invariants:
    /// 1. A `Local` mapping on GPU *g* implies the centralized table names
    ///    *g* the owner, and the page is resident in *g*'s memory.
    /// 2. A `Replica` mapping implies membership in the replica set and
    ///    local residency.
    /// 3. A `Remote(o)` mapping implies the owner is exactly *o*.
    /// 4. Every recorded replica holder's memory actually holds the page.
    /// 5. No GPU exceeds its memory capacity.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant, typed with the GPU, page and
    /// driver cycle it was detected at.
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let fail = |gpu: Option<GpuId>, vpn: Option<PageId>, message: String| InvariantViolation {
            gpu,
            vpn,
            cycle: self.clock,
            message,
        };
        for g in GpuId::all(self.cfg.num_gpus) {
            let pt = &self.local_pts[g.index()];
            let mem = &self.memories[g.index()];
            if mem.resident() > mem.capacity() {
                return Err(fail(
                    Some(g),
                    None,
                    format!(
                        "{g}: residency {} exceeds capacity {}",
                        mem.resident(),
                        mem.capacity()
                    ),
                ));
            }
            for (&vpn, &mapping) in pt.iter() {
                let state = self.central.page(vpn);
                match mapping {
                    Mapping::Local => {
                        if state.owner != MemLoc::Gpu(g) {
                            return Err(fail(
                                Some(g),
                                Some(vpn),
                                format!("{g} maps {vpn} Local but owner is {}", state.owner),
                            ));
                        }
                        if !mem.contains(vpn) {
                            return Err(fail(
                                Some(g),
                                Some(vpn),
                                format!("{g} maps {vpn} Local but page not resident"),
                            ));
                        }
                    }
                    Mapping::Replica => {
                        if !state.replicas.contains(g) && state.owner != MemLoc::Gpu(g) {
                            return Err(fail(
                                Some(g),
                                Some(vpn),
                                format!("{g} maps {vpn} Replica but is not a recorded holder"),
                            ));
                        }
                        if !mem.contains(vpn) {
                            return Err(fail(
                                Some(g),
                                Some(vpn),
                                format!("{g} maps {vpn} Replica but page not resident"),
                            ));
                        }
                    }
                    Mapping::Remote(o) => {
                        if state.owner != MemLoc::Gpu(o) {
                            return Err(fail(
                                Some(g),
                                Some(vpn),
                                format!("{g} maps {vpn} Remote({o}) but owner is {}", state.owner),
                            ));
                        }
                    }
                    Mapping::RemoteHost => {
                        if state.owner != MemLoc::Host {
                            return Err(fail(
                                Some(g),
                                Some(vpn),
                                format!("{g} maps {vpn} RemoteHost but owner is {}", state.owner),
                            ));
                        }
                    }
                }
            }
        }
        // Replica holders must be resident.
        for (&vpn, state) in self.central.iter() {
            for holder in state.replicas.iter() {
                if holder.index() >= self.cfg.num_gpus {
                    return Err(fail(
                        Some(holder),
                        Some(vpn),
                        format!("{vpn}: replica holder {holder} out of range"),
                    ));
                }
                if !self.memories[holder.index()].contains(vpn) {
                    return Err(fail(
                        Some(holder),
                        Some(vpn),
                        format!("{vpn}: replica holder {holder} lost the page"),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Automatic invariant sweep: runs after every applied injection and
    /// at epoch boundaries, in debug builds always and in release builds
    /// when `check_invariants` is set. A violation is a simulator bug and
    /// fails loudly.
    fn auto_check_invariants(&mut self, now: Cycle) {
        // The Ideal upper bound deliberately fakes local mappings on every
        // GPU; its state is exempt from the consistency invariants.
        if self.is_ideal() || (!cfg!(debug_assertions) && !self.cfg.check_invariants) {
            return;
        }
        self.clock = self.clock.max(now);
        self.resilience.invariant_checks += 1;
        if let Err(v) = self.check_invariants() {
            panic!("{v}");
        }
    }

    /// Applies every scheduled fault transition with `cycle <= now`:
    /// emits `FaultInjected`/`Recovered` events, executes ECC frame
    /// retirements, and sweeps the invariants after each change. A no-op
    /// (returning `None`) without a plan or with nothing due.
    fn apply_injections(&mut self, now: Cycle) -> Option<DriverOutcome> {
        if self.next_transition >= self.plan.transitions().len() {
            return None;
        }
        let mut out = DriverOutcome {
            done_at: now,
            ..Default::default()
        };
        let mut any = false;
        while let Some(&tr) = self.plan.transitions().get(self.next_transition) {
            if tr.cycle > now {
                break;
            }
            self.next_transition += 1;
            any = true;
            if tr.starts {
                self.resilience.faults_injected += 1;
                self.tracer.emit(EventCategory::FaultInjected, || TraceEvent::FaultInjected {
                    cycle: tr.cycle,
                    kind: tr.kind,
                    wire: tr.wire,
                    gpu: tr.gpu.map(GpuId::new),
                });
                if tr.kind == InjectedKind::Retire {
                    if let Some(g) = tr.gpu {
                        let o = self.apply_retirement(GpuId::new(g), tr.cycle);
                        out.merge(o);
                    }
                }
            } else {
                self.resilience.recoveries += 1;
                self.tracer.emit(EventCategory::Recovered, || TraceEvent::Recovered {
                    cycle: tr.cycle,
                    kind: tr.kind,
                    wire: tr.wire,
                    gpu: tr.gpu.map(GpuId::new),
                });
            }
            self.auto_check_invariants(tr.cycle);
        }
        any.then_some(out)
    }

    /// Executes one scheduled ECC retirement on `gpu`: shrinks the DRAM
    /// capacity and re-places every force-evicted page (owners move back
    /// to host memory, replicas are dropped).
    fn apply_retirement(&mut self, gpu: GpuId, now: Cycle) -> DriverOutcome {
        let mut out = DriverOutcome {
            done_at: now,
            ..Default::default()
        };
        let cursor = self.retire_cursor[gpu.index()];
        let Some(&(_, count)) = self.plan.retirements(gpu.index()).get(cursor) else {
            return out;
        };
        self.retire_cursor[gpu.index()] = cursor + 1;
        let before = self.memories[gpu.index()].capacity();
        let frames = count.resolve(before as u64);
        let evicted = self.memories[gpu.index()].retire_frames(frames);
        self.resilience.frames_retired += (before - self.memories[gpu.index()].capacity()) as u64;
        self.resilience.pages_force_evicted += evicted.len() as u64;
        for (vpn, dirty) in evicted {
            let o = self.replace_retired_page(gpu, vpn, dirty, now);
            out.merge(o);
        }
        out
    }

    /// Re-places one page force-evicted by frame retirement. Mirrors
    /// [`UvmDriver::evict_page`], but the page is already gone from the
    /// retired memory, so the dirty bit is passed in rather than looked
    /// up.
    fn replace_retired_page(
        &mut self,
        gpu: GpuId,
        vpn: PageId,
        dirty: bool,
        now: Cycle,
    ) -> DriverOutcome {
        let mut out = DriverOutcome {
            done_at: now,
            ..Default::default()
        };
        let lat = self.cfg.lat;
        self.faults.evictions += 1;
        self.tracer.emit(EventCategory::Eviction, || TraceEvent::Eviction {
            cycle: now,
            gpu,
            vpn,
        });
        // Retirement force-evicts part of the frame's range.
        self.splinter_frame(vpn, SplinterCause::Retirement, now, &mut out);
        if self.central.page(vpn).owner == MemLoc::Gpu(gpu) {
            // The authoritative copy goes back to host memory; dirty pages
            // pay the full PCIe write-back, clean ones a control message.
            let bytes = if dirty { self.cfg.page_size } else { 64 };
            let t = self.fabric.gpu_to_host(gpu, now, bytes);
            self.breakdown.record(LatencyClass::Host, t - now);
            self.central.page_mut(vpn).owner = MemLoc::Host;
            for g in GpuId::all(self.cfg.num_gpus) {
                if self.local_pts[g.index()].invalidate(vpn) {
                    out.invalidated.push((g, vpn));
                    self.breakdown.record(LatencyClass::Host, lat.invalidation_per_gpu);
                }
            }
            out.done_at = t;
        } else {
            self.central.page_mut(vpn).replicas.remove(gpu);
            if self.local_pts[gpu.index()].invalidate(vpn) {
                out.invalidated.push((gpu, vpn));
                self.breakdown.record(LatencyClass::Host, lat.invalidation_per_gpu);
            }
        }
        out
    }

    /// If the policy runs epochs and `now` has passed the next boundary,
    /// executes the epoch callback and its directives. Scheduled fault
    /// injections due by `now` are applied first either way.
    pub fn maybe_run_epoch(&mut self, now: Cycle) -> Option<DriverOutcome> {
        self.clock = self.clock.max(now);
        let injected = self.apply_injections(now);
        match (injected, self.run_due_epoch(now)) {
            (Some(mut a), Some(b)) => {
                a.merge(b);
                Some(a)
            }
            (a, b) => a.or(b),
        }
    }

    fn run_due_epoch(&mut self, now: Cycle) -> Option<DriverOutcome> {
        let epoch = self.policy.epoch_len()?;
        let due = self.next_epoch?;
        if now < due {
            return None;
        }
        self.next_epoch = Some(due + epoch.max(1));
        let directives = self.policy.on_epoch(now, &mut self.central);
        let mut out = DriverOutcome {
            done_at: now,
            ..Default::default()
        };
        // Interval-based classifiers ship per-GPU access profiles to the
        // host every epoch — the CPU–GPU communication overhead §VI-C1
        // holds against Griffin-DPC. Every GPU stalls while its profile
        // drains over PCIe.
        let profile_bytes = 8 * (self.central.len() as u64 / self.cfg.num_gpus as u64).max(64);
        for g in GpuId::all(self.cfg.num_gpus) {
            let t = self.fabric.gpu_to_host(g, now, profile_bytes);
            out.stalls.push((g, t));
            out.done_at = out.done_at.max(t);
        }
        self.breakdown.record(
            LatencyClass::Host,
            profile_bytes / 8 * self.cfg.num_gpus as u64,
        );
        for d in directives {
            match d {
                Directive::MigratePage { vpn, to } => {
                    if self.central.page(vpn).owner != MemLoc::Gpu(to) {
                        let o = self.migrate_page(to, vpn, now, LatencyClass::PageMigration);
                        out.merge(o);
                        // Epoch placement settles pages too: the target
                        // frame may now be fully private on `to`.
                        self.try_coalesce(vpn, now);
                    }
                }
            }
        }
        // Epoch boundaries are a natural consistency point: sweep the
        // invariants in debug builds and under `--check-invariants`.
        self.auto_check_invariants(now);
        Some(out)
    }

    /// Services one page fault end to end: host trip, policy decision,
    /// mechanism, PTE update, replay release.
    pub fn handle_fault(&mut self, fault: FaultInfo) -> DriverOutcome {
        let _prof = span(Phase::FaultHandling);
        self.clock = self.clock.max(fault.now);
        let injected = self.apply_injections(fault.now);
        match fault.fault {
            FaultKind::Local => self.faults.local_faults += 1,
            FaultKind::Protection => self.faults.protection_faults += 1,
        }
        self.faults_per_gpu[fault.gpu.index()] += 1;
        self.tracer.emit(EventCategory::Fault, || TraceEvent::Fault {
            cycle: fault.now,
            gpu: fault.gpu,
            vpn: fault.vpn,
            kind: match fault.fault {
                FaultKind::Local => FaultClass::Local,
                FaultKind::Protection => FaultClass::Protection,
            },
            write: fault.kind.is_write(),
        });

        let was_touched = self.central.page(fault.vpn).touched;
        let page = self.central.note_fault(fault.gpu, fault.vpn, fault.kind.is_write());
        let decision: PolicyDecision = self.policy.on_fault(&fault, &page, &mut self.central);

        if decision.resolution == Resolution::Ideal {
            // The Ideal of Fig. 1 has no fault machinery at all: data is
            // magically local (first cold read pays one fetch), writes are
            // free. Skip the host trip and the serial driver service.
            let mut out =
                self.ideal_touch(fault.gpu, fault.vpn, fault.now, was_touched, fault.kind);
            if let Some(inj) = injected {
                out.merge(inj);
            }
            return out;
        }

        // Host trip: fault message + reply over PCIe, driver servicing,
        // centralized page-table walk. The driver is a serial resource —
        // a fault queues behind earlier faults' service occupancy — and
        // the policy's decision latency (PA-Cache/PA-Table) overlaps with
        // the walk; only the excess is charged, and if the walk finishes
        // first it waits (§V-C).
        let lat = self.cfg.lat;
        let t_msg = self.fabric.host_round_trip(fault.gpu, fault.now);
        let service_start = t_msg.max(self.fault_service_free);
        // An injected fault-handler stall storm occupies the serial driver
        // with background faults; this fault queues behind them. Always
        // zero without a plan.
        let storm = self.plan.storm_stall(fault.gpu.index(), service_start);
        if storm > 0 {
            self.resilience.storm_stalled_faults += 1;
        }
        self.fault_service_free = service_start + storm + lat.fault_service_time;
        let queue_wait = service_start - t_msg;
        self.fault_occupancy.record(queue_wait);
        let pcie_trip = t_msg - fault.now;
        let decision_excess = decision.decision_latency.saturating_sub(lat.central_walk);
        let host_cost = lat.host_fault_base + lat.central_walk + decision_excess + storm;
        self.breakdown.record(LatencyClass::Host, pcie_trip + queue_wait + host_cost);
        let mut t = service_start + host_cost;

        let mut out = DriverOutcome::default();
        if let Some(inj) = injected {
            out.merge(inj);
        }

        if decision.scheme_changed {
            self.faults.scheme_changes += 1;
            if let Some(scheme) = self.central.scheme_of(fault.vpn) {
                self.tracer.emit(EventCategory::SchemeChange, || TraceEvent::SchemeChange {
                    cycle: fault.now,
                    gpu: fault.gpu,
                    vpn: fault.vpn,
                    scheme,
                });
            }
            self.breakdown.record(LatencyClass::Host, lat.scheme_change);
            t += lat.scheme_change;
            // Resetting away from duplication must tear replicas down for
            // consistency (§V-F).
            let state = self.central.page(fault.vpn);
            if state.is_duplicated()
                && self.central.scheme_of(fault.vpn) != Some(Scheme::Duplication)
            {
                let o = self.teardown_replicas(fault.vpn, t);
                t = t.max(o.done_at);
                out.merge(o);
            }
        }

        let o = match decision.resolution {
            Resolution::Migrate => {
                self.migrate_page(fault.gpu, fault.vpn, t, LatencyClass::PageMigration)
            }
            Resolution::MapRemote => self.map_remote(fault.gpu, fault.vpn, t),
            Resolution::Duplicate => {
                if fault.kind.is_write() && self.policy.write_mode() == WriteMode::Collapse {
                    self.collapse_exclusive(fault.gpu, fault.vpn, t)
                } else if self.policy.write_mode() == WriteMode::Broadcast {
                    // GPS subscribes at allocation/block granularity: the
                    // faulting GPU eagerly replicates the whole touched
                    // 64 KB group, and writers subscribe too (their stores
                    // broadcast instead of collapsing).
                    let pages_per_group = (65_536 / self.cfg.page_size).max(1);
                    let base = fault.vpn.group_base(pages_per_group);
                    let mut out = self.duplicate_to(fault.gpu, fault.vpn, t);
                    for i in 0..pages_per_group {
                        let p = base.offset(i);
                        if p == fault.vpn
                            || p.vpn() >= self.footprint_pages
                            || !self.central.page(p).touched
                        {
                            continue;
                        }
                        let o = self.duplicate_to(fault.gpu, p, t);
                        out.merge(o);
                    }
                    out
                } else {
                    // Reads replicate; a write under collapse semantics was
                    // handled above.
                    self.duplicate_to(fault.gpu, fault.vpn, t)
                }
            }
            Resolution::Ideal => unreachable!("ideal handled before the host trip"),
        };
        out.merge(o);

        // Prefetch fills ride in the background after the fault resolves.
        if self.prefetcher.is_some() {
            self.run_prefetch(fault.gpu, fault.vpn, out.done_at);
        }

        // Fault resolution settles placement: the frame may just have
        // become fully private and resident on one GPU.
        self.try_coalesce(fault.vpn, fault.now);

        out.done_at += lat.fault_replay;
        self.fault_latency.record(out.done_at.saturating_sub(fault.now));
        out
    }

    /// Observes one remote (post-cache) access under the counter-based
    /// scheme; returns a migration outcome when the 64 KB-group counter
    /// trips (§II-B2 step 3–5).
    pub fn record_remote_access(
        &mut self,
        now: Cycle,
        gpu: GpuId,
        vpn: PageId,
    ) -> Option<DriverOutcome> {
        self.clock = self.clock.max(now);
        let injected = self.apply_injections(now);
        self.policy.on_remote_access(now, gpu, vpn);
        if self.scheme_of(vpn) != Scheme::AccessCounter {
            return injected;
        }
        // A coalesced 2 MB frame exposes one translation, so the hardware
        // can only count at frame granularity: all of its 64 KB counter
        // groups alias onto a single frame-keyed counter (disjoint from
        // ordinary group indices via the top bit). Uncoalesced pages use
        // the ordinary 64 KB group key — under uniform 4 KB pages `frame`
        // is always `None` and this path is byte-identical to before.
        let frame = self.large.coalesced_frame(vpn);
        let group = match frame {
            Some(base) => (1 << 63) | (base.vpn() / self.large.pages_per_frame()),
            None => self.counters.group_of(vpn),
        };
        // Cost-weighted placement under injected faults: an access that
        // crosses a sick route (degraded, detoured, or severed) counts
        // double, so the counters pull hot 64 KB groups away from sick
        // links roughly twice as fast. Zero-cost without a plan.
        let mut tripped = self.counters.record_remote_grouped(gpu, group);
        if !tripped && !self.plan.is_empty() {
            if let MemLoc::Gpu(o) = self.central.page(vpn).owner {
                if o != gpu && self.fabric.route_sick(gpu, o, now) {
                    tripped = self.counters.record_remote_grouped(gpu, group);
                }
            }
        }
        if !tripped {
            return injected;
        }
        // Counter tripped: the UVM driver broadcasts invalidations, then
        // migrates the whole tracked region to the heavy accessor — a
        // 64 KB page group normally (§II-B2), the whole 2 MB frame when
        // the trip was on a coalesced frame's aliased counter.
        self.counters.reset_group_key(group);
        if self.large.enabled() {
            let pages_per_group = (65_536 / self.cfg.page_size).max(1);
            self.large.note_counter_trip(match frame {
                Some(_) => (self.large.pages_per_frame() / pages_per_group).max(1),
                None => 0,
            });
        }
        let lat = self.cfg.lat;
        self.breakdown.record(LatencyClass::Host, lat.host_fault_base);
        let t = now + lat.host_fault_base;
        let (base, span_pages) = match frame {
            Some(fb) => (fb, self.large.pages_per_frame()),
            None => {
                let pages_per_group = (65_536 / self.cfg.page_size).max(1);
                (vpn.group_base(pages_per_group), pages_per_group)
            }
        };
        let mut out = DriverOutcome {
            done_at: t,
            ..Default::default()
        };
        for i in 0..span_pages {
            let p = base.offset(i);
            if p.vpn() >= self.footprint_pages || !self.central.page(p).touched {
                continue;
            }
            let o = self.migrate_page(gpu, p, t, LatencyClass::PageMigration);
            out.merge(o);
        }
        // The whole region now sits on the accessor: re-coalesce if the
        // frame came out fully private (frame migration end-to-end).
        self.try_coalesce(vpn, t);
        if let Some(inj) = injected {
            out.merge(inj);
        }
        Some(out)
    }

    /// One remote data fetch/store of a cache line by `gpu` from `owner`'s
    /// memory; returns the completion cycle and charges the remote class.
    /// Peer requests contend for the GPU's remote port
    /// ([`grit_sim::LatencyConfig::remote_issue_gap`]), bounding remote
    /// throughput.
    pub fn remote_line_access(&mut self, now: Cycle, gpu: GpuId, owner: MemLoc) -> Cycle {
        let port = &mut self.remote_port_free[gpu.index()];
        let start = now.max(*port);
        *port = start + self.cfg.lat.remote_issue_gap;
        let done = match owner {
            MemLoc::Gpu(o) if o != gpu => self.fabric.gpu_to_gpu(gpu, o, start, CACHE_LINE_BYTES),
            MemLoc::Gpu(_) => start + self.cfg.lat.local_dram,
            MemLoc::Host => self.fabric.gpu_to_host(gpu, start, CACHE_LINE_BYTES),
        };
        let done = done + self.cfg.lat.remote_extra;
        self.breakdown.record(LatencyClass::RemoteAccess, done - now);
        done
    }

    /// GPS-style store broadcast: pushes the written line to every other
    /// holder of the page; replicas stay valid (no protection fault).
    ///
    /// The writer's store completes locally, but every broadcast packet
    /// occupies the writer's egress port — sustained fine-grained stores to
    /// widely subscribed pages back-pressure the writer (the GPS paper's
    /// write path is proactive but not free).
    pub fn broadcast_store(&mut self, now: Cycle, gpu: GpuId, vpn: PageId) -> Cycle {
        let state = self.central.page(vpn);
        let targets = state.holders().without(gpu);
        let port = &mut self.remote_port_free[gpu.index()];
        let start = now.max(*port);
        let packets = targets.len() as Cycle + u64::from(matches!(state.owner, MemLoc::Host));
        // Each packet occupies one egress slot here, one ingest slot at
        // its subscriber, and an ordering slot in the publication stream;
        // all three sides of that occupancy are folded into the writer's
        // port (3x) since subscribers mirror the stream.
        *port = start + 3 * packets * self.cfg.lat.remote_issue_gap;
        let done = start + self.cfg.lat.local_dram;
        if let MemLoc::Host = state.owner {
            self.fabric.gpu_to_host(gpu, start, CACHE_LINE_BYTES);
        }
        let mut occupancy_end = start;
        for g in targets.iter() {
            occupancy_end =
                occupancy_end.max(self.fabric.gpu_to_gpu(gpu, g, start, CACHE_LINE_BYTES));
        }
        // Background traffic time lands in the remote class.
        if occupancy_end > start {
            self.breakdown.record(LatencyClass::RemoteAccess, (occupancy_end - start) / 4);
        }
        done
    }

    /// Makes a page resident locally after a demand fetch miss (touch the
    /// LRU, mark writes dirty, charge DRAM latency).
    pub fn local_line_access(&mut self, now: Cycle, gpu: GpuId, vpn: PageId) -> Cycle {
        self.memories[gpu.index()].touch(vpn);
        now + self.cfg.lat.local_dram
    }

    /// Records that a local write modified the page (eviction write-back
    /// policy depends on it).
    pub fn mark_page_dirty(&mut self, gpu: GpuId, vpn: PageId) {
        self.memories[gpu.index()].mark_dirty(vpn);
    }

    // ------------------------------------------------------------------
    // Multi-page-size management (coalescing / splintering).
    // ------------------------------------------------------------------

    /// Splinters the coalesced frame containing `vpn`, if any: records
    /// the cause, emits the trace event, charges the owner's large-TLB
    /// shootdown and queues it on the outcome. A no-op under uniform
    /// 4 KB pages or when the frame was not coalesced, so every
    /// sharing/eviction path hooks this unconditionally.
    fn splinter_frame(
        &mut self,
        vpn: PageId,
        cause: SplinterCause,
        now: Cycle,
        out: &mut DriverOutcome,
    ) {
        if let Some((base, owner)) = self.large.splinter(vpn, cause) {
            self.tracer.emit(EventCategory::PageSplintered, || {
                TraceEvent::PageSplintered {
                    cycle: now,
                    gpu: owner,
                    vpn: base,
                    cause,
                }
            });
            // The demotion rewrites the frame's PTEs and shoots down the
            // owner's large translation.
            self.breakdown.record(
                LatencyClass::Host,
                self.cfg.lat.scheme_change + self.cfg.lat.invalidation_per_gpu,
            );
            out.splintered.push((owner, base));
        }
    }

    /// Re-scans the frame containing `vpn` against the central table and
    /// coalesces it when it became fully private and resident on one
    /// GPU. Called at the end of serial driver operations that settle
    /// page placement (fault resolution, counter-trip migration, epoch
    /// migration); a no-op under uniform 4 KB pages.
    fn try_coalesce(&mut self, vpn: PageId, now: Cycle) {
        if !self.large.enabled() {
            return;
        }
        let central = &self.central;
        let candidate = self.large.coalesce_candidate(vpn, self.footprint_pages, |p| {
            let st = central.page(p);
            Some(BasePageView {
                owner: match st.owner {
                    MemLoc::Gpu(g) => Some(g),
                    MemLoc::Host => None,
                },
                replicated: !st.replicas.is_empty(),
                touched: st.touched,
            })
        });
        if let Some((base, owner)) = candidate {
            self.large.coalesce(base, owner);
            self.tracer.emit(EventCategory::PageCoalesced, || TraceEvent::PageCoalesced {
                cycle: now,
                gpu: owner,
                vpn: base,
            });
            // The promotion rewrites the frame's PTEs host-side.
            self.breakdown.record(LatencyClass::Host, self.cfg.lat.scheme_change);
        }
    }

    // ------------------------------------------------------------------
    // Mechanisms.
    // ------------------------------------------------------------------

    fn insert_resident(
        &mut self,
        gpu: GpuId,
        vpn: PageId,
        now: Cycle,
        class: LatencyClass,
        out: &mut DriverOutcome,
    ) {
        self.page_insertions += 1;
        if let Some(victim) = self.memories[gpu.index()].insert(vpn) {
            self.faults.evictions += 1;
            self.tracer.emit(EventCategory::Eviction, || TraceEvent::Eviction {
                cycle: now,
                gpu,
                vpn: victim,
            });
            let o = self.evict_page(gpu, victim, now, class);
            out.merge(o);
        }
    }

    /// Removes a victim page from `gpu`: local pages are written back to
    /// the host, replicas are simply dropped. Charged to `class` because
    /// eviction cost belongs to whichever scheme caused the pressure
    /// (Fig. 3 folds duplication-driven eviction into "page-duplication").
    fn evict_page(
        &mut self,
        gpu: GpuId,
        vpn: PageId,
        now: Cycle,
        class: LatencyClass,
    ) -> DriverOutcome {
        let mut out = DriverOutcome {
            done_at: now,
            ..Default::default()
        };
        let state = *self.central.page_mut(vpn);
        let lat = self.cfg.lat;
        // Evicting any base page leaves the frame partially resident.
        self.splinter_frame(vpn, SplinterCause::Eviction, now, &mut out);
        if state.owner == MemLoc::Gpu(gpu) {
            // The authoritative copy moves back to host memory; only dirty
            // pages pay the PCIe write-back, clean ones are dropped.
            let dirty = self.memories[gpu.index()].is_dirty(vpn);
            let bytes = if dirty { self.cfg.page_size } else { 64 };
            let t = self.fabric.gpu_to_host(gpu, now, bytes);
            self.breakdown.record(class, t - now);
            self.central.page_mut(vpn).owner = MemLoc::Host;
            for g in GpuId::all(self.cfg.num_gpus) {
                if self.local_pts[g.index()].invalidate(vpn) {
                    out.invalidated.push((g, vpn));
                    self.breakdown.record(class, lat.invalidation_per_gpu);
                }
            }
            out.done_at = t;
            let _ = dirty;
        } else {
            // A replica (or stale residency): drop it locally.
            self.central.page_mut(vpn).replicas.remove(gpu);
            if self.local_pts[gpu.index()].invalidate(vpn) {
                out.invalidated.push((gpu, vpn));
                self.breakdown.record(class, lat.invalidation_per_gpu);
            }
        }
        out
    }

    fn migrate_page(
        &mut self,
        dst: GpuId,
        vpn: PageId,
        now: Cycle,
        class: LatencyClass,
    ) -> DriverOutcome {
        let _prof = span(Phase::Migration);
        let mut out = DriverOutcome {
            done_at: now,
            ..Default::default()
        };
        let state = self.central.page(vpn);
        let lat = self.cfg.lat;

        if state.owner == MemLoc::Gpu(dst) && !state.is_duplicated() {
            // Already local and exclusive: just (re)establish the mapping.
            self.local_pts[dst.index()].map(vpn, Mapping::Local);
            self.memories[dst.index()].touch(vpn);
            out.mapping = Some(Mapping::Local);
            return out;
        }

        // Graceful degradation: a migration whose source route is fully
        // severed by an injected outage retries with capped exponential
        // backoff, then falls back to remote access or host staging
        // rather than panicking or losing the page.
        if !self.plan.is_empty() {
            if let MemLoc::Gpu(src) = state.owner {
                if src != dst && self.fabric.route_blocked(src, dst, now) {
                    return self.blocked_migration(dst, src, vpn, now, class);
                }
            }
        }

        self.faults.migrations += 1;
        self.tracer.emit(EventCategory::Migration, || TraceEvent::Migration {
            cycle: now,
            gpu: dst,
            vpn,
            from: state.owner,
        });
        // A base page leaving its frame's owner breaks the frame's
        // privacy; a no-op when the frame was not coalesced.
        self.splinter_frame(vpn, SplinterCause::FalseSharing, now, &mut out);
        let mut t = now;

        // 1. Flush/drain the source GPU that owns the page.
        if let MemLoc::Gpu(src) = state.owner {
            if src != dst {
                self.breakdown.record(class, lat.flush_drain);
                out.stalls.push((src, t + lat.flush_drain));
                t += lat.flush_drain;
            }
        }

        // 2. Invalidate every other GPU's translation (and replicas).
        let mut teardown = self.teardown_mappings_except(vpn, dst, t, class);
        out.stalls.append(&mut teardown.stalls);
        out.invalidated.append(&mut teardown.invalidated);
        t = t.max(teardown.done_at);

        // 3. Move the data.
        let arrive = match state.owner {
            MemLoc::Gpu(src) if src != dst => {
                self.fabric.gpu_to_gpu(src, dst, t, self.cfg.page_size)
            }
            MemLoc::Gpu(_) => t, // dst already holds the bytes (was owner with replicas)
            MemLoc::Host => self.fabric.gpu_to_host(dst, t, self.cfg.page_size),
        };
        self.breakdown.record(class, arrive - now);

        // 4. Update authoritative and local state.
        if let MemLoc::Gpu(src) = state.owner {
            if src != dst {
                self.memories[src.index()].remove(vpn);
            }
        }
        {
            let p = self.central.page_mut(vpn);
            p.owner = MemLoc::Gpu(dst);
            p.replicas.clear();
        }
        self.insert_resident(dst, vpn, arrive, class, &mut out);
        self.local_pts[dst.index()].map(vpn, Mapping::Local);
        out.mapping = Some(Mapping::Local);
        out.done_at = out.done_at.max(arrive);
        self.migration_latency.record(out.done_at.saturating_sub(now));
        out
    }

    /// Handles a migration whose `src -> dst` route is severed: retries
    /// with capped exponential backoff in case the outage window ends,
    /// then degrades gracefully. A clean source copy stays where it is
    /// and `dst` maps it remotely (the fabric stages remote reads through
    /// the host while the outage lasts); a dirty copy is staged to host
    /// memory over the source's always-available PCIe link so it stays
    /// reachable. Never panics, never drops the page.
    fn blocked_migration(
        &mut self,
        dst: GpuId,
        src: GpuId,
        vpn: PageId,
        now: Cycle,
        class: LatencyClass,
    ) -> DriverOutcome {
        self.resilience.migrations_blocked += 1;
        let mut t = now;
        for attempt in 0..self.backoff.max_attempts {
            t += self.backoff.delay(attempt);
            self.resilience.migration_retries += 1;
            let cycle = t;
            self.tracer.emit(EventCategory::MigrationRetried, || {
                TraceEvent::MigrationRetried {
                    cycle,
                    gpu: dst,
                    vpn,
                    attempt: (attempt + 1).min(u8::MAX as u32) as u8,
                }
            });
            if !self.fabric.route_blocked(src, dst, t) {
                // The route recovered within the backoff budget: the wait
                // is part of the migration's latency, then the normal
                // path proceeds from the retry time.
                self.resilience.retry_successes += 1;
                self.breakdown.record(class, t - now);
                let mut out = self.migrate_page(dst, vpn, t, class);
                out.done_at = out.done_at.max(t);
                return out;
            }
        }
        // Retries exhausted; fall back.
        self.breakdown.record(class, t - now);
        let mut out = DriverOutcome {
            done_at: t,
            ..Default::default()
        };
        let dirty = self.memories[src.index()].is_dirty(vpn);
        let staged = dirty;
        self.tracer.emit(EventCategory::FallbackRemote, || {
            TraceEvent::FallbackRemote {
                cycle: t,
                gpu: dst,
                vpn,
                staged,
            }
        });
        if dirty {
            // The only up-to-date copy sits behind the dead route; park
            // it in host memory so every GPU can still reach it.
            self.resilience.host_staged += 1;
            // Host staging pulls a page out of the frame's residency.
            self.splinter_frame(vpn, SplinterCause::Eviction, t, &mut out);
            let mut teardown = self.teardown_mappings_except(vpn, dst, t, class);
            out.stalls.append(&mut teardown.stalls);
            out.invalidated.append(&mut teardown.invalidated);
            let t2 = self.fabric.gpu_to_host(src, teardown.done_at.max(t), self.cfg.page_size);
            self.breakdown.record(class, t2 - t);
            self.memories[src.index()].remove(vpn);
            {
                let p = self.central.page_mut(vpn);
                p.owner = MemLoc::Host;
                p.replicas.clear();
            }
            if self.local_pts[src.index()].invalidate(vpn) {
                out.invalidated.push((src, vpn));
            }
            self.local_pts[dst.index()].map(vpn, Mapping::RemoteHost);
            out.mapping = Some(Mapping::RemoteHost);
            out.done_at = out.done_at.max(t2);
        } else {
            // The source copy is clean and authoritative: leave it owned
            // by `src` and access it remotely until placement re-places
            // the group.
            self.resilience.fallback_remote += 1;
            self.local_pts[dst.index()].map(vpn, Mapping::Remote(src));
            out.mapping = Some(Mapping::Remote(src));
        }
        out
    }

    /// Invalidates every GPU mapping of `vpn` except `keep`'s, dropping
    /// replicas from memory; returns the teardown outcome.
    fn teardown_mappings_except(
        &mut self,
        vpn: PageId,
        keep: GpuId,
        now: Cycle,
        class: LatencyClass,
    ) -> DriverOutcome {
        let mut out = DriverOutcome {
            done_at: now,
            ..Default::default()
        };
        let lat = self.cfg.lat;
        let mut replicas = self.central.page(vpn).replicas;
        for g in GpuId::all(self.cfg.num_gpus) {
            if g == keep {
                continue;
            }
            if self.local_pts[g.index()].invalidate(vpn) {
                out.invalidated.push((g, vpn));
                self.breakdown.record(class, lat.invalidation_per_gpu);
                out.stalls.push((g, now + lat.invalidation_per_gpu));
                out.done_at = out.done_at.max(now + lat.invalidation_per_gpu);
            }
            if replicas.remove(g) {
                self.memories[g.index()].remove(vpn);
            }
        }
        let keep_replica = replicas.contains(keep);
        let p = self.central.page_mut(vpn);
        p.replicas.clear();
        if keep_replica {
            p.replicas.insert(keep);
        }
        out
    }

    /// Tears down every replica of a page (scheme reset away from
    /// duplication, §V-F): PTE/TLB invalidations in each holder.
    fn teardown_replicas(&mut self, vpn: PageId, now: Cycle) -> DriverOutcome {
        let mut out = DriverOutcome {
            done_at: now,
            ..Default::default()
        };
        let lat = self.cfg.lat;
        let replicas = self.central.page(vpn).replicas;
        for g in replicas.iter() {
            self.memories[g.index()].remove(vpn);
            if self.local_pts[g.index()].invalidate(vpn) {
                out.invalidated.push((g, vpn));
            }
            self.breakdown.record(LatencyClass::WriteCollapse, lat.invalidation_per_gpu);
            out.stalls.push((g, now + lat.invalidation_per_gpu));
            out.done_at = out.done_at.max(now + lat.invalidation_per_gpu);
        }
        self.central.page_mut(vpn).replicas.clear();
        out
    }

    fn map_remote(&mut self, gpu: GpuId, vpn: PageId, now: Cycle) -> DriverOutcome {
        let state = self.central.page(vpn);
        match state.owner {
            MemLoc::Gpu(owner) if owner != gpu => {
                self.local_pts[gpu.index()].map(vpn, Mapping::Remote(owner));
                DriverOutcome {
                    done_at: now,
                    mapping: Some(Mapping::Remote(owner)),
                    ..Default::default()
                }
            }
            MemLoc::Gpu(_) => {
                // Owner faulted on its own page (stale PTE): remap local.
                self.local_pts[gpu.index()].map(vpn, Mapping::Local);
                self.memories[gpu.index()].touch(vpn);
                DriverOutcome {
                    done_at: now,
                    mapping: Some(Mapping::Local),
                    ..Default::default()
                }
            }
            MemLoc::Host => {
                // The page stays in host memory; the GPU reads it over
                // PCIe while the access counters tick (§II-B2).
                self.local_pts[gpu.index()].map(vpn, Mapping::RemoteHost);
                DriverOutcome {
                    done_at: now,
                    mapping: Some(Mapping::RemoteHost),
                    ..Default::default()
                }
            }
        }
    }

    fn duplicate_to(&mut self, gpu: GpuId, vpn: PageId, now: Cycle) -> DriverOutcome {
        let mut out = DriverOutcome {
            done_at: now,
            ..Default::default()
        };
        let state = self.central.page(vpn);

        if state.owner == MemLoc::Gpu(gpu) || state.replicas.contains(gpu) {
            // Already holding a copy (e.g. stale TLB after flush).
            let m = if state.owner == MemLoc::Gpu(gpu) {
                Mapping::Local
            } else {
                Mapping::Replica
            };
            self.local_pts[gpu.index()].map(vpn, m);
            self.memories[gpu.index()].touch(vpn);
            out.mapping = Some(m);
            return out;
        }

        self.faults.duplications += 1;
        self.tracer.emit(EventCategory::Duplication, || TraceEvent::Duplication {
            cycle: now,
            gpu,
            vpn,
            from: state.owner,
        });
        // A replica on a peer ends the frame's single-owner privacy.
        self.splinter_frame(vpn, SplinterCause::FalseSharing, now, &mut out);
        // Copy from the authoritative owner; the driver mediates the
        // replica creation (dup_overhead).
        let now = now + self.cfg.lat.dup_overhead;
        let arrive = match state.owner {
            MemLoc::Gpu(src) => self.fabric.gpu_to_gpu(src, gpu, now, self.cfg.page_size),
            MemLoc::Host => self.fabric.gpu_to_host(gpu, now, self.cfg.page_size),
        };
        self.breakdown.record(
            LatencyClass::PageDuplication,
            arrive - now + self.cfg.lat.dup_overhead,
        );
        self.central.page_mut(vpn).replicas.insert(gpu);
        self.insert_resident(gpu, vpn, arrive, LatencyClass::PageDuplication, &mut out);
        self.local_pts[gpu.index()].map(vpn, Mapping::Replica);
        out.mapping = Some(Mapping::Replica);
        out.done_at = out.done_at.max(arrive);
        out
    }

    fn collapse_exclusive(&mut self, writer: GpuId, vpn: PageId, now: Cycle) -> DriverOutcome {
        let state = self.central.page(vpn);
        let others = state.holders().without(writer);
        let had_copy = state.holders().contains(writer);
        let lat = self.cfg.lat;

        if others.is_empty() && state.owner == MemLoc::Host && !had_copy {
            // Cold write: plain on-touch style pull from host.
            return self.migrate_page(writer, vpn, now, LatencyClass::PageMigration);
        }

        let mut out = DriverOutcome {
            done_at: now,
            ..Default::default()
        };
        let mut t = now;
        // The writer takes exclusive ownership away from the current
        // holders: any coalesced frame over this range is falsely shared.
        self.splinter_frame(vpn, SplinterCause::FalseSharing, now, &mut out);
        if !others.is_empty() {
            self.faults.collapses += 1;
            self.tracer.emit(EventCategory::Collapse, || TraceEvent::Collapse {
                cycle: now,
                gpu: writer,
                vpn,
                holders: others.len() as u8,
            });
            // Two-step handling: the driver walks the centralized table
            // for the replica set and the writer waits for every
            // invalidation acknowledgement.
            self.breakdown.record(LatencyClass::WriteCollapse, lat.collapse_extra);
            t += lat.collapse_extra;
        }
        // Each holder flushes in-flight work, caches/TLBs and its PTE
        // (§II-B3); the flushes proceed in parallel across GPUs.
        let mut flush_end = t;
        for g in others.iter() {
            self.breakdown.record(
                LatencyClass::WriteCollapse,
                lat.flush_drain + lat.invalidation_per_gpu,
            );
            out.stalls.push((g, t + lat.flush_drain));
            flush_end = flush_end.max(t + lat.flush_drain + lat.invalidation_per_gpu);
            self.local_pts[g.index()].invalidate(vpn);
            out.invalidated.push((g, vpn));
            self.memories[g.index()].remove(vpn);
        }
        // Ownership moves to the writer: every other translation of this
        // page — including remote mappings held by non-holders — is stale
        // and must be shot down.
        let mut teardown =
            self.teardown_mappings_except(vpn, writer, flush_end, LatencyClass::WriteCollapse);
        out.stalls.append(&mut teardown.stalls);
        out.invalidated.append(&mut teardown.invalidated);
        flush_end = flush_end.max(teardown.done_at);
        t = flush_end;

        // Data: the writer reuses its replica if it has one, otherwise
        // pulls the authoritative copy.
        if !had_copy {
            let arrive = match state.owner {
                MemLoc::Gpu(src) if src != writer => {
                    self.fabric.gpu_to_gpu(src, writer, t, self.cfg.page_size)
                }
                MemLoc::Gpu(_) => t,
                MemLoc::Host => self.fabric.gpu_to_host(writer, t, self.cfg.page_size),
            };
            self.breakdown.record(LatencyClass::WriteCollapse, arrive - t);
            t = arrive;
            self.insert_resident(writer, vpn, t, LatencyClass::WriteCollapse, &mut out);
        } else {
            self.memories[writer.index()].touch(vpn);
        }

        {
            let p = self.central.page_mut(vpn);
            p.owner = MemLoc::Gpu(writer);
            p.replicas.clear();
        }
        self.local_pts[writer.index()].map(vpn, Mapping::Local);
        out.mapping = Some(Mapping::Local);
        out.done_at = out.done_at.max(t);
        out
    }

    fn ideal_touch(
        &mut self,
        gpu: GpuId,
        vpn: PageId,
        now: Cycle,
        was_touched: bool,
        kind: AccessKind,
    ) -> DriverOutcome {
        let mut done = now;
        if !was_touched && !kind.is_write() {
            // The one cost Ideal pays: the first cold *read* fetch. Writes
            // complete with zero NUMA latency even when cold (Fig. 1's
            // definition).
            done = self.fabric.gpu_to_host(gpu, now, self.cfg.page_size);
            self.breakdown.record(LatencyClass::Host, done - now);
        }
        if !was_touched {
            self.central.page_mut(vpn).owner = MemLoc::Gpu(gpu);
        }
        // Every GPU sees the page as local; no capacity pressure is
        // modelled for the unrealizable upper bound.
        self.local_pts[gpu.index()].map(vpn, Mapping::Local);
        DriverOutcome {
            done_at: done,
            mapping: Some(Mapping::Local),
            ..Default::default()
        }
    }

    fn run_prefetch(&mut self, gpu: GpuId, vpn: PageId, now: Cycle) {
        let Some(pf) = self.prefetcher.as_mut() else {
            return;
        };
        let candidates = pf.on_fill(gpu, vpn, self.footprint_pages);
        for cand in candidates {
            let state = self.central.page(cand);
            if state.touched || state.owner != MemLoc::Host {
                continue;
            }
            // Background fill: consumes PCIe bandwidth but does not stall
            // the GPU; future touches then hit locally without faulting.
            let arrive = self.fabric.gpu_to_host(gpu, now, self.cfg.page_size);
            let _ = arrive;
            {
                let p = self.central.page_mut(cand);
                p.owner = MemLoc::Gpu(gpu);
                p.touched = true;
                p.sharers.insert(gpu);
            }
            let mut scratch = DriverOutcome::default();
            self.insert_resident(gpu, cand, now, LatencyClass::Host, &mut scratch);
            self.local_pts[gpu.index()].map(cand, Mapping::Local);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::StaticPolicy;

    fn driver(scheme: Scheme) -> UvmDriver {
        let cfg = SimConfig::default();
        UvmDriver::new(cfg, 1000, Box::new(StaticPolicy::new(scheme)))
    }

    fn fault(gpu: u8, vpn: u64, kind: AccessKind, fk: FaultKind, now: Cycle) -> FaultInfo {
        FaultInfo {
            now,
            gpu: GpuId::new(gpu),
            vpn: PageId(vpn),
            kind,
            fault: fk,
        }
    }

    #[test]
    fn capacity_follows_70_percent_rule() {
        let d = driver(Scheme::OnTouch);
        // 1000 pages * 0.7 = 700 pages per GPU (§III-B).
        assert_eq!(d.memories[0].capacity(), 700);
    }

    #[test]
    fn on_touch_fault_migrates_to_requester() {
        let mut d = driver(Scheme::OnTouch);
        let out = d.handle_fault(fault(1, 5, AccessKind::Read, FaultKind::Local, 0));
        assert!(out.done_at > 0);
        assert_eq!(d.central.page(PageId(5)).owner, MemLoc::Gpu(GpuId::new(1)));
        assert_eq!(d.translate(GpuId::new(1), PageId(5)), Some(Mapping::Local));
        assert_eq!(d.fault_counters().local_faults, 1);
        assert_eq!(d.fault_counters().migrations, 1);
        assert!(d.breakdown().get(LatencyClass::Host) > 0);
        assert!(d.breakdown().get(LatencyClass::PageMigration) > 0);
    }

    #[test]
    fn on_touch_ping_pong_invalidates_previous_owner() {
        let mut d = driver(Scheme::OnTouch);
        d.handle_fault(fault(0, 5, AccessKind::Read, FaultKind::Local, 0));
        let out = d.handle_fault(fault(1, 5, AccessKind::Read, FaultKind::Local, 100_000));
        assert_eq!(d.central.page(PageId(5)).owner, MemLoc::Gpu(GpuId::new(1)));
        assert_eq!(d.translate(GpuId::new(0), PageId(5)), None);
        assert!(out.invalidated.contains(&(GpuId::new(0), PageId(5))));
        // Source GPU got flushed: a stall was issued.
        assert!(!out.stalls.is_empty());
        assert_eq!(d.fault_counters().migrations, 2);
    }

    #[test]
    fn access_counter_first_touch_then_peer_mapping() {
        let mut d = driver(Scheme::AccessCounter);
        d.handle_fault(fault(0, 7, AccessKind::Read, FaultKind::Local, 0));
        // Volta semantics: the cold page migrates to the first toucher.
        assert_eq!(d.translate(GpuId::new(0), PageId(7)), Some(Mapping::Local));
        d.handle_fault(fault(1, 7, AccessKind::Read, FaultKind::Local, 100_000));
        // A later GPU maps it remotely and the counters take over.
        assert_eq!(
            d.translate(GpuId::new(1), PageId(7)),
            Some(Mapping::Remote(GpuId::new(0)))
        );
        assert_eq!(d.fault_counters().migrations, 1);
    }

    #[test]
    fn counter_threshold_triggers_migration() {
        let mut d = driver(Scheme::AccessCounter);
        d.handle_fault(fault(0, 7, AccessKind::Read, FaultKind::Local, 0));
        d.handle_fault(fault(1, 7, AccessKind::Read, FaultKind::Local, 100_000));
        let mut migrated = false;
        for i in 0..256 {
            if let Some(out) = d.record_remote_access(200_000 + i, GpuId::new(1), PageId(7)) {
                migrated = true;
                assert!(out.invalidated.contains(&(GpuId::new(0), PageId(7))));
            }
        }
        assert!(migrated, "256 remote accesses must trip the counter");
        assert_eq!(d.central.page(PageId(7)).owner, MemLoc::Gpu(GpuId::new(1)));
        // The migrated page is now local to its heavy accessor.
        assert_eq!(d.translate(GpuId::new(1), PageId(7)), Some(Mapping::Local));
    }

    #[test]
    fn duplication_creates_replicas_and_collapse_on_write() {
        let mut d = driver(Scheme::Duplication);
        d.handle_fault(fault(0, 9, AccessKind::Read, FaultKind::Local, 0));
        d.handle_fault(fault(1, 9, AccessKind::Read, FaultKind::Local, 100_000));
        d.handle_fault(fault(2, 9, AccessKind::Read, FaultKind::Local, 200_000));
        let st = d.central.page(PageId(9));
        assert_eq!(st.holders().len(), 3);
        assert_eq!(d.fault_counters().duplications, 3);
        assert_eq!(
            d.translate(GpuId::new(2), PageId(9)),
            Some(Mapping::Replica)
        );

        // GPU1 writes: everyone else collapses.
        let out = d.handle_fault(fault(
            1,
            9,
            AccessKind::Write,
            FaultKind::Protection,
            300_000,
        ));
        let st = d.central.page(PageId(9));
        assert_eq!(st.owner, MemLoc::Gpu(GpuId::new(1)));
        assert!(st.replicas.is_empty());
        assert_eq!(d.fault_counters().collapses, 1);
        assert_eq!(d.translate(GpuId::new(0), PageId(9)), None);
        assert_eq!(d.translate(GpuId::new(1), PageId(9)), Some(Mapping::Local));
        assert!(out.invalidated.len() >= 2);
        assert!(d.breakdown().get(LatencyClass::WriteCollapse) > 0);
    }

    #[test]
    fn cold_write_under_duplication_is_a_plain_migration() {
        let mut d = driver(Scheme::Duplication);
        d.handle_fault(fault(0, 11, AccessKind::Write, FaultKind::Local, 0));
        assert_eq!(d.central.page(PageId(11)).owner, MemLoc::Gpu(GpuId::new(0)));
        assert_eq!(d.fault_counters().collapses, 0);
        assert_eq!(d.fault_counters().migrations, 1);
    }

    #[test]
    fn eviction_on_capacity_pressure() {
        let cfg = SimConfig::default();
        // Footprint 8 pages -> capacity ceil(8*0.7)=6 pages per GPU.
        let mut d = UvmDriver::new(cfg, 8, Box::new(StaticPolicy::new(Scheme::OnTouch)));
        assert_eq!(d.memories[0].capacity(), 6);
        for p in 0..7 {
            d.handle_fault(fault(0, p, AccessKind::Read, FaultKind::Local, p * 100_000));
        }
        assert_eq!(d.fault_counters().evictions, 1);
        // Page 0 went back to host and its mapping died.
        assert_eq!(d.central.page(PageId(0)).owner, MemLoc::Host);
        assert_eq!(d.translate(GpuId::new(0), PageId(0)), None);
        assert!(d.oversubscription_rate() > 0.0);
    }

    /// 512 KB base pages -> 4 base pages per 2 MB frame, so whole frames
    /// coalesce after a handful of faults.
    fn large_cfg() -> SimConfig {
        SimConfig {
            page_size: 512 * 1024,
            page_size_mode: grit_sim::PageSizeMode::Uniform2m,
            ..SimConfig::default()
        }
    }

    #[test]
    fn private_frame_coalesces_and_false_sharing_splinters_it() {
        let mut d = UvmDriver::new(large_cfg(), 8, Box::new(StaticPolicy::new(Scheme::OnTouch)));
        assert!(d.large_pages_active());
        for p in 0..4 {
            d.handle_fault(fault(0, p, AccessKind::Read, FaultKind::Local, p * 100_000));
        }
        // Frame 0 (pages 0..4) is fully private on GPU0: coalesced.
        assert_eq!(d.coalesced_frame(PageId(2)), Some(PageId(0)));
        assert_eq!(d.large_pages().frame_owner(PageId(0)), Some(GpuId::new(0)));
        assert_eq!(d.large_pages().counters().coalesces, 1);

        // GPU1 pulls one base page out of the frame: false sharing.
        let out = d.handle_fault(fault(1, 2, AccessKind::Read, FaultKind::Local, 500_000));
        assert_eq!(d.coalesced_frame(PageId(0)), None);
        assert!(out.splintered.contains(&(GpuId::new(0), PageId(0))));
        assert_eq!(d.large_pages().counters().splinters_false_sharing, 1);
    }

    #[test]
    fn partial_eviction_splinters_the_frame() {
        // Footprint 8 pages -> capacity ceil(8*0.7)=6: the 7th resident
        // page evicts the LRU page out of the coalesced first frame.
        let mut d = UvmDriver::new(large_cfg(), 8, Box::new(StaticPolicy::new(Scheme::OnTouch)));
        for p in 0..7 {
            d.handle_fault(fault(0, p, AccessKind::Read, FaultKind::Local, p * 100_000));
        }
        assert_eq!(d.fault_counters().evictions, 1);
        assert_eq!(d.coalesced_frame(PageId(0)), None);
        assert!(d.large_pages().counters().splinters_eviction >= 1);
    }

    #[test]
    fn frame_counter_trip_migrates_whole_frame_and_recoalesces() {
        let mut d = UvmDriver::new(
            large_cfg(),
            8,
            Box::new(StaticPolicy::new(Scheme::AccessCounter)),
        );
        for p in 0..4 {
            d.handle_fault(fault(0, p, AccessKind::Read, FaultKind::Local, p * 100_000));
        }
        assert_eq!(d.coalesced_frame(PageId(0)), Some(PageId(0)));
        // A clean remote mapping by a peer does NOT splinter: the owner's
        // large translation stays valid.
        d.handle_fault(fault(1, 0, AccessKind::Read, FaultKind::Local, 500_000));
        assert_eq!(d.coalesced_frame(PageId(0)), Some(PageId(0)));

        // Remote accesses count against the frame-granularity alias; the
        // trip migrates the whole 2 MB frame and re-coalesces on GPU1.
        let mut migrated = false;
        for i in 0..256 {
            if d.record_remote_access(600_000 + i, GpuId::new(1), PageId(0)).is_some() {
                migrated = true;
            }
        }
        assert!(migrated, "256 remote accesses must trip the frame counter");
        for p in 0..4 {
            assert_eq!(d.central.page(PageId(p)).owner, MemLoc::Gpu(GpuId::new(1)));
        }
        let c = d.large_pages().counters();
        assert_eq!(c.counter_trips_large, 1);
        assert_eq!(c.counter_groups_aliased, 4);
        assert_eq!(c.splinters_false_sharing, 1);
        assert_eq!(c.coalesces, 2);
        assert_eq!(d.large_pages().frame_owner(PageId(0)), Some(GpuId::new(1)));
        // The series mirrors the counters (fixed order, 9 slots).
        let series = d.pagesize_series();
        assert_eq!(series.len(), 9);
        assert_eq!(series[0], 2.0);
    }

    #[test]
    fn uniform4k_drivers_never_touch_large_page_state() {
        let mut d = driver(Scheme::AccessCounter);
        assert!(!d.large_pages_active());
        d.handle_fault(fault(0, 7, AccessKind::Read, FaultKind::Local, 0));
        d.handle_fault(fault(1, 7, AccessKind::Read, FaultKind::Local, 100_000));
        for i in 0..256 {
            d.record_remote_access(200_000 + i, GpuId::new(1), PageId(7));
        }
        assert_eq!(d.coalesced_frame(PageId(7)), None);
        assert_eq!(d.pagesize_series(), vec![0.0; 9]);
    }

    #[test]
    fn ideal_pays_only_cold_cost() {
        struct Ideal;
        impl PlacementPolicy for Ideal {
            fn name(&self) -> String {
                "ideal".into()
            }
            fn on_fault(
                &mut self,
                _f: &FaultInfo,
                _p: &crate::central::PageState,
                _t: &mut CentralPageTable,
            ) -> PolicyDecision {
                PolicyDecision::plain(Resolution::Ideal)
            }
            fn is_ideal(&self) -> bool {
                true
            }
        }
        let mut d = UvmDriver::new(SimConfig::default(), 100, Box::new(Ideal));
        let first = d.handle_fault(fault(0, 1, AccessKind::Read, FaultKind::Local, 0));
        let second = d.handle_fault(fault(1, 1, AccessKind::Read, FaultKind::Local, 1_000_000));
        assert!(first.done_at > 0);
        // Second toucher pays only host trip + replay, no transfer.
        assert!(second.done_at - 1_000_000 < first.done_at);
        assert_eq!(d.translate(GpuId::new(1), PageId(1)), Some(Mapping::Local));
        assert_eq!(d.fault_counters().migrations, 0);
    }

    #[test]
    fn remote_line_access_charges_remote_class() {
        let mut d = driver(Scheme::AccessCounter);
        let done = d.remote_line_access(0, GpuId::new(0), MemLoc::Gpu(GpuId::new(1)));
        assert!(done > 400); // at least NVLink latency
        assert!(d.breakdown().get(LatencyClass::RemoteAccess) > 0);
    }

    #[test]
    fn scheme_of_defaults_to_on_touch() {
        let d = driver(Scheme::OnTouch);
        assert_eq!(d.scheme_of(PageId(42)), Scheme::OnTouch);
    }

    #[test]
    fn fault_latency_histogram_records_every_fault() {
        let mut d = driver(Scheme::OnTouch);
        for p in 0..5 {
            d.handle_fault(fault(0, p, AccessKind::Read, FaultKind::Local, p * 100_000));
        }
        let h = d.fault_latency();
        assert_eq!(h.samples(), 5);
        assert!(h.mean() > 0.0);
        assert!(h.percentile(1.0) >= h.percentile(0.5));
    }

    #[test]
    fn group_migration_moves_whole_64kb_group() {
        let mut d = driver(Scheme::AccessCounter);
        // Touch pages 0..4 (same 64 KB group) from GPU0, then hammer them
        // remotely from GPU1 until the counter trips.
        for p in 0..4u64 {
            d.handle_fault(fault(0, p, AccessKind::Read, FaultKind::Local, p * 50_000));
            d.handle_fault(fault(1, p, AccessKind::Read, FaultKind::Local, 400_000 + p));
        }
        let mut tripped = false;
        for i in 0..300u64 {
            let p = PageId(i % 4);
            if d.record_remote_access(500_000 + i, GpuId::new(1), p).is_some() {
                tripped = true;
                break;
            }
        }
        assert!(tripped);
        // Every touched page of the group now lives on GPU1.
        for p in 0..4u64 {
            assert_eq!(
                d.central.page(PageId(p)).owner,
                MemLoc::Gpu(GpuId::new(1)),
                "page {p} must migrate with its group"
            );
        }
    }

    #[test]
    fn collapse_tears_down_remote_mappings_too() {
        let mut d = driver(Scheme::Duplication);
        // GPU0 owns, GPU1 and GPU2 hold replicas.
        d.handle_fault(fault(0, 5, AccessKind::Read, FaultKind::Local, 0));
        d.handle_fault(fault(1, 5, AccessKind::Read, FaultKind::Local, 100_000));
        d.handle_fault(fault(2, 5, AccessKind::Read, FaultKind::Local, 200_000));
        // GPU3 writes: everyone else must lose their translations.
        d.handle_fault(fault(3, 5, AccessKind::Write, FaultKind::Local, 300_000));
        for g in 0..3u8 {
            assert_eq!(d.translate(GpuId::new(g), PageId(5)), None, "GPU{g}");
        }
        assert_eq!(d.translate(GpuId::new(3), PageId(5)), Some(Mapping::Local));
        assert!(d.check_invariants().is_ok());
    }

    #[test]
    fn eviction_cascade_preserves_invariants() {
        let cfg = SimConfig::default();
        // Footprint 10 pages -> capacity 7 per GPU.
        let mut d = UvmDriver::new(cfg, 10, Box::new(StaticPolicy::new(Scheme::Duplication)));
        // Two GPUs replicate everything: each holds 10 > 7 pages of demand.
        for round in 0..3u64 {
            for p in 0..10u64 {
                for g in 0..2u8 {
                    d.handle_fault(fault(
                        g,
                        p,
                        AccessKind::Read,
                        FaultKind::Local,
                        round * 1_000_000 + p * 10_000,
                    ));
                }
            }
        }
        assert!(d.fault_counters().evictions > 0, "demand exceeds capacity");
        assert!(d.check_invariants().is_ok());
        assert!(d.oversubscription_rate() > 0.0);
    }

    #[test]
    fn dirty_pages_pay_full_writeback_clean_pages_do_not() {
        let cfg = SimConfig::default();
        let mut clean_driver =
            UvmDriver::new(cfg.clone(), 8, Box::new(StaticPolicy::new(Scheme::OnTouch)));
        let mut dirty_driver = UvmDriver::new(cfg, 8, Box::new(StaticPolicy::new(Scheme::OnTouch)));
        // Fill GPU0's 6-page capacity (8 * 0.7 -> 6), dirtying pages only
        // in one driver, then overflow to force an eviction.
        for p in 0..6u64 {
            clean_driver.handle_fault(fault(0, p, AccessKind::Read, FaultKind::Local, p * 50_000));
            dirty_driver.handle_fault(fault(0, p, AccessKind::Read, FaultKind::Local, p * 50_000));
            dirty_driver.mark_page_dirty(GpuId::new(0), PageId(p));
        }
        clean_driver.handle_fault(fault(0, 7, AccessKind::Read, FaultKind::Local, 900_000));
        dirty_driver.handle_fault(fault(0, 7, AccessKind::Read, FaultKind::Local, 900_000));
        assert_eq!(clean_driver.fault_counters().evictions, 1);
        assert_eq!(dirty_driver.fault_counters().evictions, 1);
        // The dirty eviction shipped a full page over PCIe; the clean one
        // only a control message.
        assert!(dirty_driver.fabric_stats().pcie_bytes > clean_driver.fabric_stats().pcie_bytes);
    }

    #[test]
    fn gps_broadcast_backpressures_the_writer_port() {
        use crate::policy::WriteMode;
        use grit_baselines_shim::GpsLike;
        // A minimal broadcast-mode policy (the real GPS lives in
        // grit-baselines; the driver only consults write_mode()).
        mod grit_baselines_shim {
            use super::super::super::central::{CentralPageTable, PageState};
            use super::super::super::policy::{
                FaultInfo, PlacementPolicy, PolicyDecision, Resolution, WriteMode,
            };
            pub struct GpsLike;
            impl PlacementPolicy for GpsLike {
                fn name(&self) -> String {
                    "gps-like".into()
                }
                fn on_fault(
                    &mut self,
                    _f: &FaultInfo,
                    page: &PageState,
                    _t: &mut CentralPageTable,
                ) -> PolicyDecision {
                    PolicyDecision::plain(if page.owner.gpu().is_none() {
                        Resolution::Migrate
                    } else {
                        Resolution::Duplicate
                    })
                }
                fn write_mode(&self) -> WriteMode {
                    WriteMode::Broadcast
                }
            }
        }
        let cfg = SimConfig::default();
        let gap = cfg.lat.remote_issue_gap;
        let mut d = UvmDriver::new(cfg, 100, Box::new(GpsLike));
        assert_eq!(d.write_mode(), WriteMode::Broadcast);
        // Subscribe three GPUs to page 1.
        d.handle_fault(fault(0, 1, AccessKind::Read, FaultKind::Local, 0));
        d.handle_fault(fault(1, 1, AccessKind::Read, FaultKind::Local, 100_000));
        d.handle_fault(fault(2, 1, AccessKind::Read, FaultKind::Local, 200_000));
        // Back-to-back broadcasts from GPU1: the second queues on the port.
        let t1 = d.broadcast_store(300_000, GpuId::new(1), PageId(1));
        let t2 = d.broadcast_store(300_000, GpuId::new(1), PageId(1));
        assert!(
            t2 >= t1 + gap,
            "second store must wait for port slots: {t1} vs {t2}"
        );
    }

    #[test]
    fn epoch_profile_overhead_stalls_every_gpu() {
        struct EpochOnly;
        impl PlacementPolicy for EpochOnly {
            fn name(&self) -> String {
                "epoch-only".into()
            }
            fn on_fault(
                &mut self,
                _f: &FaultInfo,
                _p: &crate::central::PageState,
                _t: &mut CentralPageTable,
            ) -> PolicyDecision {
                PolicyDecision::plain(Resolution::Migrate)
            }
            fn epoch_len(&self) -> Option<Cycle> {
                Some(1_000)
            }
        }
        let mut d = UvmDriver::new(SimConfig::default(), 64, Box::new(EpochOnly));
        d.handle_fault(fault(0, 1, AccessKind::Read, FaultKind::Local, 0));
        let out = d.maybe_run_epoch(5_000).expect("epoch due");
        // Every GPU pays the profile-drain stall.
        assert_eq!(out.stalls.len(), 4);
        assert!(out.stalls.iter().all(|&(_, t)| t > 5_000));
        // Epochs run on a fixed grid: the next boundary is at 2_000, so a
        // query before it stays quiet.
        assert!(d.maybe_run_epoch(1_999).is_none());
    }

    fn injected_driver(spec: &str, footprint: u64, scheme: Scheme) -> UvmDriver {
        let cfg = SimConfig {
            inject: grit_sim::InjectConfig::parse(spec).unwrap(),
            ..SimConfig::default()
        };
        UvmDriver::new(cfg, footprint, Box::new(StaticPolicy::new(scheme)))
    }

    #[test]
    fn storm_delays_fault_service_inside_the_window_only() {
        let mut calm = driver(Scheme::OnTouch);
        let mut stormy = injected_driver(
            "storm@0:gpu=0:for=1000000:stall=5000",
            1000,
            Scheme::OnTouch,
        );
        let a = calm.handle_fault(fault(0, 5, AccessKind::Read, FaultKind::Local, 0));
        let b = stormy.handle_fault(fault(0, 5, AccessKind::Read, FaultKind::Local, 0));
        assert_eq!(b.done_at, a.done_at + 5_000, "storm adds its stall");
        assert_eq!(stormy.resilience_counters().storm_stalled_faults, 1);
        // After the window the storm is gone.
        let a2 = calm.handle_fault(fault(1, 6, AccessKind::Read, FaultKind::Local, 2_000_000));
        let b2 = stormy.handle_fault(fault(1, 6, AccessKind::Read, FaultKind::Local, 2_000_000));
        assert_eq!(b2.done_at, a2.done_at);
        assert!(stormy.check_invariants().is_ok());
    }

    #[test]
    fn retirement_shrinks_capacity_and_replaces_pages_on_host() {
        // Footprint 8 -> 6 frames per GPU; retire 4 at cycle 500_000.
        let mut d = injected_driver("retire@500000:gpu=0:frames=4", 8, Scheme::OnTouch);
        for p in 0..6u64 {
            d.handle_fault(fault(0, p, AccessKind::Read, FaultKind::Local, p * 50_000));
        }
        d.mark_page_dirty(GpuId::new(0), PageId(0));
        assert_eq!(d.memories[0].capacity(), 6);
        // The next driver entry past the schedule applies the retirement.
        let out = d.handle_fault(fault(1, 7, AccessKind::Read, FaultKind::Local, 600_000));
        assert_eq!(d.memories[0].capacity(), 2);
        let r = d.resilience_counters();
        assert_eq!(r.faults_injected, 1);
        assert_eq!(r.frames_retired, 4);
        assert_eq!(r.pages_force_evicted, 4);
        // Force-evicted owners moved back to host and lost their
        // translations (the runner hears about it via `invalidated`).
        assert_eq!(d.central.page(PageId(0)).owner, MemLoc::Host);
        assert!(out.invalidated.iter().any(|&(g, _)| g == GpuId::new(0)));
        assert!(d.check_invariants().is_ok());
    }

    #[test]
    fn blocked_migration_falls_back_to_remote_for_clean_pages() {
        // All wires dead for far longer than the backoff budget.
        let mut d = injected_driver("outage@0:wire=*:for=100000000", 1000, Scheme::OnTouch);
        d.handle_fault(fault(0, 3, AccessKind::Read, FaultKind::Local, 1_000));
        // GPU1 touches the same (clean) page: migration is blocked, so the
        // page stays put and GPU1 maps it remotely.
        let out = d.handle_fault(fault(1, 3, AccessKind::Read, FaultKind::Local, 50_000));
        assert_eq!(out.mapping, Some(Mapping::Remote(GpuId::new(0))));
        assert_eq!(d.central.page(PageId(3)).owner, MemLoc::Gpu(GpuId::new(0)));
        let r = d.resilience_counters();
        assert_eq!(r.migrations_blocked, 1);
        assert_eq!(r.migration_retries, 4);
        assert_eq!(r.retry_successes, 0);
        assert_eq!(r.fallback_remote, 1);
        assert_eq!(r.host_staged, 0);
        assert_eq!(
            d.fault_counters().migrations,
            1,
            "only the cold touch migrated"
        );
        assert!(d.check_invariants().is_ok());
    }

    #[test]
    fn blocked_migration_stages_dirty_pages_through_the_host() {
        let mut d = injected_driver("outage@0:wire=*:for=100000000", 1000, Scheme::OnTouch);
        d.handle_fault(fault(0, 3, AccessKind::Write, FaultKind::Local, 1_000));
        d.mark_page_dirty(GpuId::new(0), PageId(3));
        let pcie_before = d.fabric_stats().pcie_bytes;
        let out = d.handle_fault(fault(1, 3, AccessKind::Read, FaultKind::Local, 50_000));
        // The dirty authoritative copy parks in host memory; both GPUs can
        // still reach it and nothing is lost.
        assert_eq!(out.mapping, Some(Mapping::RemoteHost));
        assert_eq!(d.central.page(PageId(3)).owner, MemLoc::Host);
        assert_eq!(d.translate(GpuId::new(0), PageId(3)), None);
        assert!(d.fabric_stats().pcie_bytes >= pcie_before + d.cfg.page_size);
        let r = d.resilience_counters();
        assert_eq!(r.host_staged, 1);
        assert_eq!(r.fallback_remote, 0);
        assert!(d.check_invariants().is_ok());
    }

    #[test]
    fn blocked_migration_retry_succeeds_when_the_outage_ends() {
        // Outage ends at cycle 52_000; the backoff schedule from 50_000
        // (2_000 + 4_000 + ...) finds the route open on a retry.
        let mut d = injected_driver("outage@0:wire=*:for=52000", 1000, Scheme::OnTouch);
        d.handle_fault(fault(0, 3, AccessKind::Read, FaultKind::Local, 1_000));
        let out = d.handle_fault(fault(1, 3, AccessKind::Read, FaultKind::Local, 50_000));
        assert_eq!(out.mapping, Some(Mapping::Local));
        assert_eq!(d.central.page(PageId(3)).owner, MemLoc::Gpu(GpuId::new(1)));
        let r = d.resilience_counters();
        assert_eq!(r.migrations_blocked, 1);
        assert_eq!(r.retry_successes, 1);
        assert!(r.migration_retries >= 1);
        assert_eq!(r.fallback_remote + r.host_staged, 0);
        assert!(d.check_invariants().is_ok());
    }

    #[test]
    fn every_blocked_migration_resolves_without_loss() {
        // Hammer ping-pong migrations across an outage that covers part of
        // the run; every blocked one must resolve to a retry success, a
        // remote fallback, or host staging.
        let mut d = injected_driver("outage@100000:wire=*:for=400000", 64, Scheme::OnTouch);
        for i in 0..40u64 {
            // Each round of 8 pages is touched by the next GPU, so every
            // page ping-pongs across the outage window.
            let gpu = ((i / 8) % 4) as u8;
            let page = i % 8;
            let kind = if i % 3 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let out = d.handle_fault(fault(gpu, page, kind, FaultKind::Local, i * 25_000));
            if kind.is_write() {
                d.mark_page_dirty(GpuId::new(gpu), PageId(page));
            }
            assert!(out.done_at >= i * 25_000);
            assert!(d.check_invariants().is_ok(), "fault {i} broke an invariant");
        }
        let r = d.resilience_counters();
        assert!(r.migrations_blocked > 0, "the outage must block something");
        assert!(
            r.migrations_blocked <= r.retry_successes + r.fallback_remote + r.host_staged,
            "every blocked migration must resolve: {r:?}"
        );
        // Outage start and end both surfaced as transitions.
        assert_eq!(r.faults_injected, 1);
        assert_eq!(r.recoveries, 1);
    }

    #[test]
    fn sick_routes_double_count_remote_accesses() {
        // Degrade every wire for the whole run: counter trips take about
        // half as many remote accesses as on a healthy fabric.
        let healthy = {
            let mut d = driver(Scheme::AccessCounter);
            d.handle_fault(fault(0, 7, AccessKind::Read, FaultKind::Local, 0));
            d.handle_fault(fault(1, 7, AccessKind::Read, FaultKind::Local, 100_000));
            let mut n = 0u64;
            while d.record_remote_access(200_000 + n, GpuId::new(1), PageId(7)).is_none() {
                n += 1;
                assert!(n < 1_000);
            }
            n
        };
        let sick = {
            let mut d = injected_driver(
                "degrade@0:wire=*:frac=0.5:for=100000000",
                1000,
                Scheme::AccessCounter,
            );
            d.handle_fault(fault(0, 7, AccessKind::Read, FaultKind::Local, 0));
            d.handle_fault(fault(1, 7, AccessKind::Read, FaultKind::Local, 100_000));
            let mut n = 0u64;
            while d.record_remote_access(200_000 + n, GpuId::new(1), PageId(7)).is_none() {
                n += 1;
                assert!(n < 1_000);
            }
            n
        };
        assert!(
            sick <= healthy / 2 + 1,
            "sick-route accesses must trip ~2x sooner: {sick} vs {healthy}"
        );
    }

    #[test]
    fn invariant_violations_carry_gpu_page_and_cycle() {
        let mut d = driver(Scheme::OnTouch);
        d.handle_fault(fault(0, 5, AccessKind::Read, FaultKind::Local, 7_777));
        // Corrupt the state behind the driver's back: steal the page from
        // GPU0's memory while its Local mapping stands.
        d.memories[0].remove(PageId(5));
        let v = d.check_invariants().expect_err("corruption must be caught");
        assert_eq!(v.gpu, Some(GpuId::new(0)));
        assert_eq!(v.vpn, Some(PageId(5)));
        assert!(v.cycle >= 7_777, "stamped with the driver clock");
        let msg = v.to_string();
        assert!(msg.contains("invariant violated"), "{msg}");
        assert!(msg.contains("not resident"), "{msg}");
    }

    #[test]
    fn bad_inject_spec_is_a_config_error() {
        // Wire 99 does not exist on a 4-GPU all-to-all (6 wires).
        let cfg = SimConfig {
            inject: grit_sim::InjectConfig::parse("outage@0:wire=99:for=100").unwrap(),
            ..SimConfig::default()
        };
        let err = UvmDriver::try_new(cfg, 100, Box::new(StaticPolicy::new(Scheme::OnTouch)))
            .expect_err("out-of-range wire must be rejected");
        assert!(err.to_string().contains("inject"), "{err}");
    }
}
