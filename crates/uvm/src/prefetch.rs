//! Prefetcher abstraction (Fig. 30 combines placement policies with the
//! CUDA-driver tree-based neighborhood prefetcher of Ganguly et al.).
//!
//! The concrete tree prefetcher lives in `grit-baselines::prefetch`; the
//! driver only needs this hook: after a page lands on a GPU, the prefetcher
//! nominates cold neighbor pages to pull in alongside it.

use grit_sim::{GpuId, PageId};

/// A page prefetcher attached to the UVM driver.
pub trait Prefetcher {
    /// Human-readable name for reports.
    fn name(&self) -> String;

    /// Called after `vpn` became resident on `gpu`; returns candidate pages
    /// to prefetch onto the same GPU. `footprint_pages` bounds the valid
    /// VPN range. The driver skips candidates that are already placed.
    fn on_fill(&mut self, gpu: GpuId, vpn: PageId, footprint_pages: u64) -> Vec<PageId>;
}

/// A prefetcher that never prefetches (useful in tests).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullPrefetcher;

impl Prefetcher for NullPrefetcher {
    fn name(&self) -> String {
        "null".into()
    }

    fn on_fill(&mut self, _gpu: GpuId, _vpn: PageId, _footprint: u64) -> Vec<PageId> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_prefetcher_is_inert() {
        let mut p = NullPrefetcher;
        assert_eq!(p.name(), "null");
        assert!(p.on_fill(GpuId::new(0), PageId(0), 100).is_empty());
    }
}
