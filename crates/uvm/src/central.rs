//! The UVM driver's centralized page table (§II-A): authoritative per-page
//! state for every GPU in the node, including GRIT's scheme and group bits.

use grit_sim::{FxHashMap, GpuId, GpuSet, GroupSize, MemLoc, PageId, Scheme};

/// Authoritative state of one virtual page.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PageState {
    /// Where the authoritative (writable) copy lives.
    pub owner: MemLoc,
    /// GPUs holding read-only replicas (excluding the owner's copy).
    pub replicas: GpuSet,
    /// Placement-scheme bits from the centralized PTE (Table IV); `None`
    /// until a scheme is explicitly recorded.
    pub scheme: Option<Scheme>,
    /// Group-size bits (Table V), meaningful on the group's base page.
    pub group: GroupSize,
    /// Every GPU that has ever faulted on this page.
    pub sharers: GpuSet,
    /// Whether any write has ever been performed.
    pub written: bool,
    /// Whether the page has been touched at all (cold-state tracking for
    /// the Ideal upper bound).
    pub touched: bool,
}

impl Default for PageState {
    fn default() -> Self {
        PageState {
            owner: MemLoc::Host,
            replicas: GpuSet::new(),
            scheme: None,
            group: GroupSize::One,
            sharers: GpuSet::new(),
            written: false,
            touched: false,
        }
    }
}

impl PageState {
    /// All GPUs holding any physical copy (owner + replicas).
    pub fn holders(&self) -> GpuSet {
        let mut s = self.replicas;
        if let MemLoc::Gpu(g) = self.owner {
            s.insert(g);
        }
        s
    }

    /// Whether the page is currently replicated beyond its owner.
    pub fn is_duplicated(&self) -> bool {
        !self.replicas.is_empty()
    }
}

/// The centralized page table maintained by the UVM driver on the CPU.
///
/// ```
/// use grit_uvm::CentralPageTable;
/// use grit_sim::{GpuId, MemLoc, PageId, Scheme};
///
/// let mut t = CentralPageTable::new();
/// t.page_mut(PageId(4)).owner = MemLoc::Gpu(GpuId::new(1));
/// t.set_scheme(PageId(4), Scheme::Duplication);
/// assert_eq!(t.scheme_of(PageId(4)), Some(Scheme::Duplication));
/// ```
#[derive(Clone, Debug, Default)]
pub struct CentralPageTable {
    pages: FxHashMap<PageId, PageState>,
}

impl CentralPageTable {
    /// An empty table (all pages implicitly host-resident and cold).
    pub fn new() -> Self {
        CentralPageTable::default()
    }

    /// Read-only state of a page (default state if never touched).
    pub fn page(&self, vpn: PageId) -> PageState {
        self.pages.get(&vpn).copied().unwrap_or_default()
    }

    /// Mutable state of a page, creating the default entry on first use.
    pub fn page_mut(&mut self, vpn: PageId) -> &mut PageState {
        self.pages.entry(vpn).or_default()
    }

    /// Whether the page has an explicit entry.
    pub fn contains(&self, vpn: PageId) -> bool {
        self.pages.contains_key(&vpn)
    }

    /// Scheme bits of a page (`None` = unset `00`).
    pub fn scheme_of(&self, vpn: PageId) -> Option<Scheme> {
        self.pages.get(&vpn).and_then(|p| p.scheme)
    }

    /// Sets the scheme bits of a page.
    pub fn set_scheme(&mut self, vpn: PageId, scheme: Scheme) {
        self.page_mut(vpn).scheme = Some(scheme);
    }

    /// Group bits of a page (meaningful on base pages).
    pub fn group_of(&self, vpn: PageId) -> GroupSize {
        self.pages.get(&vpn).map_or(GroupSize::One, |p| p.group)
    }

    /// Sets the group bits of a page.
    pub fn set_group(&mut self, vpn: PageId, group: GroupSize) {
        self.page_mut(vpn).group = group;
    }

    /// Number of pages with explicit entries.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether no page has been touched.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Iterates `(page, state)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&PageId, &PageState)> {
        self.pages.iter()
    }

    /// Marks a fault by `gpu` on `vpn`, updating sharer/written/touched
    /// bookkeeping, and returns the updated state.
    pub fn note_fault(&mut self, gpu: GpuId, vpn: PageId, is_write: bool) -> PageState {
        let p = self.page_mut(vpn);
        p.sharers.insert(gpu);
        p.written |= is_write;
        p.touched = true;
        *p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_page_is_cold_host_resident() {
        let t = CentralPageTable::new();
        let p = t.page(PageId(1));
        assert_eq!(p.owner, MemLoc::Host);
        assert!(!p.touched);
        assert!(p.replicas.is_empty());
        assert_eq!(p.scheme, None);
        assert!(t.is_empty());
    }

    #[test]
    fn note_fault_tracks_sharers_and_writes() {
        let mut t = CentralPageTable::new();
        let s1 = t.note_fault(GpuId::new(0), PageId(7), false);
        assert_eq!(s1.sharers.len(), 1);
        assert!(!s1.written);
        let s2 = t.note_fault(GpuId::new(2), PageId(7), true);
        assert_eq!(s2.sharers.len(), 2);
        assert!(s2.written);
        assert!(s2.touched);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn holders_includes_owner_and_replicas() {
        let mut t = CentralPageTable::new();
        {
            let p = t.page_mut(PageId(3));
            p.owner = MemLoc::Gpu(GpuId::new(0));
            p.replicas.insert(GpuId::new(2));
        }
        let h = t.page(PageId(3)).holders();
        assert!(h.contains(GpuId::new(0)));
        assert!(h.contains(GpuId::new(2)));
        assert_eq!(h.len(), 2);
        assert!(t.page(PageId(3)).is_duplicated());
    }

    #[test]
    fn host_owner_not_in_holders() {
        let t = CentralPageTable::new();
        assert!(t.page(PageId(1)).holders().is_empty());
    }

    #[test]
    fn scheme_and_group_round_trip() {
        let mut t = CentralPageTable::new();
        t.set_scheme(PageId(8), Scheme::AccessCounter);
        t.set_group(PageId(8), GroupSize::Eight);
        assert_eq!(t.scheme_of(PageId(8)), Some(Scheme::AccessCounter));
        assert_eq!(t.group_of(PageId(8)), GroupSize::Eight);
        assert_eq!(t.scheme_of(PageId(9)), None);
        assert_eq!(t.group_of(PageId(9)), GroupSize::One);
    }
}
