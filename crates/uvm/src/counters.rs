//! Hardware access counters for counter-based migration (§II-B2).
//!
//! Volta-class GPUs track remote accesses per 64 KB page group; when a
//! group's counter reaches the threshold (256 by default, Table I), a
//! migration request is generated for the faulting page and the group's
//! counter resets.

use grit_sim::{FxHashMap, GpuId, PageId};

/// Per-GPU, per-64 KB-group remote-access counters.
///
/// ```
/// use grit_uvm::AccessCounters;
/// use grit_sim::{GpuId, PageId};
///
/// let mut c = AccessCounters::new(4, 4096);
/// let g = GpuId::new(0);
/// for _ in 0..3 {
///     assert!(!c.record_remote(g, PageId(5)));
/// }
/// assert!(c.record_remote(g, PageId(5))); // threshold 4 reached
/// ```
#[derive(Clone, Debug)]
pub struct AccessCounters {
    threshold: u32,
    page_size: u64,
    counts: FxHashMap<(GpuId, u64), u32>,
    triggers: u64,
}

impl AccessCounters {
    /// Counters with the given migration threshold and page size.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn new(threshold: u32, page_size: u64) -> Self {
        assert!(threshold > 0, "access-counter threshold must be non-zero");
        AccessCounters {
            threshold,
            page_size,
            counts: FxHashMap::default(),
            triggers: 0,
        }
    }

    /// The 64 KB counter group `vpn` falls into at this page size.
    pub fn group_of(&self, vpn: PageId) -> u64 {
        vpn.counter_group(self.page_size)
    }

    /// Records one remote access by `gpu` to `vpn`. Returns `true` when the
    /// group counter reaches the threshold; the counter then resets.
    pub fn record_remote(&mut self, gpu: GpuId, vpn: PageId) -> bool {
        self.record_remote_grouped(gpu, vpn.counter_group(self.page_size))
    }

    /// Records one remote access under an explicit group key. Coalesced
    /// 2 MB frames track remote traffic under a single frame-granularity
    /// key rather than per 64 KB group, so the driver supplies the key
    /// itself (disjoint from ordinary group indices).
    pub fn record_remote_grouped(&mut self, gpu: GpuId, group: u64) -> bool {
        let c = self.counts.entry((gpu, group)).or_insert(0);
        *c += 1;
        if *c >= self.threshold {
            *c = 0;
            self.triggers += 1;
            true
        } else {
            false
        }
    }

    /// Current counter value for a GPU/page's group.
    pub fn value(&self, gpu: GpuId, vpn: PageId) -> u32 {
        self.counts.get(&(gpu, vpn.counter_group(self.page_size))).copied().unwrap_or(0)
    }

    /// Current counter value under an explicit group key.
    pub fn value_grouped(&self, gpu: GpuId, group: u64) -> u32 {
        self.counts.get(&(gpu, group)).copied().unwrap_or(0)
    }

    /// Clears all counters for the group containing `vpn` (after the page
    /// migrates, stale remote counts are meaningless).
    pub fn reset_group(&mut self, vpn: PageId) {
        self.reset_group_key(vpn.counter_group(self.page_size));
    }

    /// Clears all counters under an explicit group key.
    pub fn reset_group_key(&mut self, group: u64) {
        self.counts.retain(|&(_, g), _| g != group);
    }

    /// Total threshold crossings so far.
    pub fn triggers(&self) -> u64 {
        self.triggers
    }

    /// Configured threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_per_gpu_and_group() {
        let mut c = AccessCounters::new(2, 4096);
        let g0 = GpuId::new(0);
        let g1 = GpuId::new(1);
        assert!(!c.record_remote(g0, PageId(0)));
        // Different GPU: separate counter.
        assert!(!c.record_remote(g1, PageId(0)));
        // Same GPU, same 64 KB group (pages 0..16): second hit triggers.
        assert!(c.record_remote(g0, PageId(15)));
        // Counter reset after trigger.
        assert_eq!(c.value(g0, PageId(0)), 0);
        assert_eq!(c.triggers(), 1);
    }

    #[test]
    fn different_groups_do_not_share_counters() {
        let mut c = AccessCounters::new(2, 4096);
        let g = GpuId::new(0);
        assert!(!c.record_remote(g, PageId(0)));
        assert!(!c.record_remote(g, PageId(16))); // next 64 KB group
        assert_eq!(c.value(g, PageId(0)), 1);
        assert_eq!(c.value(g, PageId(16)), 1);
    }

    #[test]
    fn reset_group_clears_all_gpus() {
        let mut c = AccessCounters::new(10, 4096);
        c.record_remote(GpuId::new(0), PageId(3));
        c.record_remote(GpuId::new(1), PageId(4));
        c.record_remote(GpuId::new(1), PageId(20));
        c.reset_group(PageId(0));
        assert_eq!(c.value(GpuId::new(0), PageId(3)), 0);
        assert_eq!(c.value(GpuId::new(1), PageId(4)), 0);
        assert_eq!(c.value(GpuId::new(1), PageId(20)), 1);
    }

    #[test]
    fn large_pages_use_page_granularity() {
        let mut c = AccessCounters::new(2, 2 * 1024 * 1024);
        let g = GpuId::new(0);
        assert!(!c.record_remote(g, PageId(1)));
        assert!(!c.record_remote(g, PageId(2))); // different "group"
        assert!(c.record_remote(g, PageId(1)));
    }

    #[test]
    fn explicit_group_keys_are_independent() {
        let mut c = AccessCounters::new(2, 4096);
        let g = GpuId::new(0);
        let frame_key = (1u64 << 63) | 7;
        assert!(!c.record_remote_grouped(g, frame_key));
        // The same pages under their natural group stay untouched.
        assert_eq!(c.value(g, PageId(7 * 512)), 0);
        assert_eq!(c.value_grouped(g, frame_key), 1);
        assert!(c.record_remote_grouped(g, frame_key));
        assert_eq!(c.triggers(), 1);
        c.record_remote_grouped(g, frame_key);
        c.reset_group_key(frame_key);
        assert_eq!(c.value_grouped(g, frame_key), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_threshold_panics() {
        let _ = AccessCounters::new(0, 4096);
    }
}
