//! Interval-based time series for the temporal figures (Figs. 5, 6–8, 10).
//!
//! The paper samples behaviour "at intervals of one million cycles"
//! (Figs. 5/10) and divides the execution into 50 intervals for the
//! attribute grids (Figs. 6–8).

use grit_sim::Cycle;

/// Per-interval bucket counters: one row per elapsed interval, `buckets`
/// counters per row (e.g. one per GPU for Fig. 5, read/write for Fig. 10).
///
/// ```
/// use grit_metrics::IntervalSeries;
/// let mut s = IntervalSeries::new(1_000_000, 4);
/// s.record(10, 0);            // interval 0, bucket 0 (e.g. GPU0)
/// s.record(1_500_000, 2);     // interval 1, bucket 2
/// assert_eq!(s.intervals(), 2);
/// assert_eq!(s.row(0)[0], 1);
/// assert_eq!(s.row(1)[2], 1);
/// ```
#[derive(Clone, Debug)]
pub struct IntervalSeries {
    interval_cycles: Cycle,
    buckets: usize,
    rows: Vec<Vec<u64>>,
}

impl IntervalSeries {
    /// A series with the given interval length and bucket count.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(interval_cycles: Cycle, buckets: usize) -> Self {
        assert!(
            interval_cycles > 0 && buckets > 0,
            "series dims must be non-zero"
        );
        IntervalSeries {
            interval_cycles,
            buckets,
            rows: Vec::new(),
        }
    }

    /// Rebuilds a series from previously exported rows (see
    /// [`IntervalSeries::iter`]); used by on-disk result stores. Rows
    /// shorter or longer than `buckets` are truncated / zero-padded.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn from_rows(interval_cycles: Cycle, buckets: usize, rows: Vec<Vec<u64>>) -> Self {
        let mut s = IntervalSeries::new(interval_cycles, buckets);
        s.rows = rows
            .into_iter()
            .map(|mut r| {
                r.resize(buckets, 0);
                r
            })
            .collect();
        s
    }

    /// Number of counters per interval row.
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Increments `bucket` in the interval containing cycle `now`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket >= buckets`.
    pub fn record(&mut self, now: Cycle, bucket: usize) {
        assert!(bucket < self.buckets, "bucket {bucket} out of range");
        let idx = (now / self.interval_cycles) as usize;
        while self.rows.len() <= idx {
            self.rows.push(vec![0; self.buckets]);
        }
        self.rows[idx][bucket] += 1;
    }

    /// Number of intervals with any data (including interior empty ones).
    pub fn intervals(&self) -> usize {
        self.rows.len()
    }

    /// The interval length in cycles this series was created with.
    pub fn interval_cycles(&self) -> Cycle {
        self.interval_cycles
    }

    /// Counters of one interval.
    ///
    /// # Panics
    ///
    /// Panics if the interval has not been reached.
    pub fn row(&self, interval: usize) -> &[u64] {
        &self.rows[interval]
    }

    /// Iterates `(interval, counters)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[u64])> {
        self.rows.iter().enumerate().map(|(i, r)| (i, r.as_slice()))
    }

    /// For each interval, the fraction of events in each bucket (rows with
    /// no events yield all-zero rows).
    pub fn fractions(&self) -> Vec<Vec<f64>> {
        self.rows
            .iter()
            .map(|r| {
                let t: u64 = r.iter().sum();
                r.iter().map(|&v| if t == 0 { 0.0 } else { v as f64 / t as f64 }).collect()
            })
            .collect()
    }

    /// Index of the dominant bucket per interval (`None` for empty rows).
    pub fn dominant(&self) -> Vec<Option<usize>> {
        self.rows
            .iter()
            .map(|r| {
                let (idx, &max) =
                    r.iter().enumerate().max_by_key(|&(_, v)| *v).expect("buckets > 0");
                if max == 0 {
                    None
                } else {
                    Some(idx)
                }
            })
            .collect()
    }
}

/// A pages × intervals attribute grid (Figs. 6–8): the execution is divided
/// into a fixed number of intervals and, per interval, every page bin is
/// assigned an attribute code (e.g. 0 = untouched, 1 = private, 2 = shared).
#[derive(Clone, Debug)]
pub struct AttrGrid {
    page_bins: usize,
    intervals: usize,
    /// `cells[interval][bin]` = attribute code.
    cells: Vec<Vec<u8>>,
}

impl AttrGrid {
    /// A grid of `intervals` rows × `page_bins` columns, all zero.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(intervals: usize, page_bins: usize) -> Self {
        assert!(intervals > 0 && page_bins > 0, "grid dims must be non-zero");
        AttrGrid {
            page_bins,
            intervals,
            cells: vec![vec![0; page_bins]; intervals],
        }
    }

    /// Sets the attribute of `bin` during `interval`, keeping the maximum
    /// code seen (so "shared" (2) dominates "private" (1) dominates
    /// "untouched" (0) within an interval).
    pub fn mark(&mut self, interval: usize, bin: usize, code: u8) {
        if interval < self.intervals && bin < self.page_bins {
            let c = &mut self.cells[interval][bin];
            *c = (*c).max(code);
        }
    }

    /// Attribute code at a cell.
    pub fn get(&self, interval: usize, bin: usize) -> u8 {
        self.cells[interval][bin]
    }

    /// Number of intervals (rows).
    pub fn intervals(&self) -> usize {
        self.intervals
    }

    /// Number of page bins (columns).
    pub fn page_bins(&self) -> usize {
        self.page_bins
    }

    /// Fraction of non-zero cells whose code equals `code`.
    pub fn frac_of_touched(&self, code: u8) -> f64 {
        let mut matching = 0u64;
        let mut touched = 0u64;
        for row in &self.cells {
            for &c in row {
                if c != 0 {
                    touched += 1;
                    if c == code {
                        matching += 1;
                    }
                }
            }
        }
        if touched == 0 {
            0.0
        } else {
            matching as f64 / touched as f64
        }
    }

    /// For how many (interval, bin) cells do this grid's codes agree with
    /// the horizontally adjacent bin? Measures the "neighboring pages show
    /// the same attributes" observation of §IV-C; returns agreement in
    /// `[0, 1]` over touched cell pairs.
    pub fn neighbor_agreement(&self) -> f64 {
        let mut agree = 0u64;
        let mut pairs = 0u64;
        for row in &self.cells {
            for w in row.windows(2) {
                if w[0] != 0 && w[1] != 0 {
                    pairs += 1;
                    if w[0] == w[1] {
                        agree += 1;
                    }
                }
            }
        }
        if pairs == 0 {
            0.0
        } else {
            agree as f64 / pairs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_records_into_correct_interval() {
        let mut s = IntervalSeries::new(100, 2);
        s.record(0, 0);
        s.record(99, 0);
        s.record(100, 1);
        s.record(350, 1);
        assert_eq!(s.intervals(), 4);
        assert_eq!(s.row(0), &[2, 0]);
        assert_eq!(s.row(1), &[0, 1]);
        assert_eq!(s.row(2), &[0, 0]);
        assert_eq!(s.row(3), &[0, 1]);
    }

    #[test]
    fn fractions_and_dominant() {
        let mut s = IntervalSeries::new(10, 2);
        s.record(0, 0);
        s.record(1, 0);
        s.record(2, 1);
        s.record(15, 1);
        let f = s.fractions();
        assert!((f[0][0] - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.dominant(), vec![Some(0), Some(1)]);
    }

    #[test]
    fn dominant_empty_row_is_none() {
        let mut s = IntervalSeries::new(10, 2);
        s.record(25, 0); // intervals 0 and 1 empty
        assert_eq!(s.dominant()[0], None);
        assert_eq!(s.dominant()[2], Some(0));
    }

    #[test]
    fn grid_mark_takes_max() {
        let mut g = AttrGrid::new(2, 3);
        g.mark(0, 1, 1);
        g.mark(0, 1, 2);
        g.mark(0, 1, 1); // cannot downgrade
        assert_eq!(g.get(0, 1), 2);
        // Out-of-range marks are ignored.
        g.mark(9, 9, 3);
    }

    #[test]
    fn grid_fractions() {
        let mut g = AttrGrid::new(1, 4);
        g.mark(0, 0, 1);
        g.mark(0, 1, 1);
        g.mark(0, 2, 2);
        assert!((g.frac_of_touched(1) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn neighbor_agreement_detects_runs() {
        let mut g = AttrGrid::new(1, 6);
        for b in 0..3 {
            g.mark(0, b, 1);
        }
        for b in 3..6 {
            g.mark(0, b, 2);
        }
        // Pairs: (0,1)(1,2) agree, (2,3) disagree, (3,4)(4,5) agree => 4/5.
        assert!((g.neighbor_agreement() - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn series_bucket_bounds() {
        let mut s = IntervalSeries::new(10, 2);
        s.record(0, 2);
    }
}
