//! Six-way page-handling latency attribution (paper Fig. 3).

use std::fmt;
use std::ops::{Add, AddAssign};

/// The six categories the paper breaks page-handling latency into (Fig. 3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LatencyClass {
    /// Local page-table walk latency after L2 TLB misses.
    Local,
    /// UVM page-fault handling latency on the host.
    Host,
    /// Migrating pages between memories (flush, transfer, invalidations).
    PageMigration,
    /// Remote (peer) accesses under counter-based placement.
    RemoteAccess,
    /// Duplicating pages, evicting under oversubscription, re-duplicating.
    PageDuplication,
    /// Collapsing replicas when a shared page is written.
    WriteCollapse,
}

impl LatencyClass {
    /// All six classes in Fig. 3 legend order.
    pub const ALL: [LatencyClass; 6] = [
        LatencyClass::Local,
        LatencyClass::Host,
        LatencyClass::PageMigration,
        LatencyClass::RemoteAccess,
        LatencyClass::PageDuplication,
        LatencyClass::WriteCollapse,
    ];

    /// Label as printed in reports.
    pub fn label(self) -> &'static str {
        match self {
            LatencyClass::Local => "local",
            LatencyClass::Host => "host",
            LatencyClass::PageMigration => "page-migration",
            LatencyClass::RemoteAccess => "remote-access",
            LatencyClass::PageDuplication => "page-duplication",
            LatencyClass::WriteCollapse => "write-collapse",
        }
    }

    fn slot(self) -> usize {
        match self {
            LatencyClass::Local => 0,
            LatencyClass::Host => 1,
            LatencyClass::PageMigration => 2,
            LatencyClass::RemoteAccess => 3,
            LatencyClass::PageDuplication => 4,
            LatencyClass::WriteCollapse => 5,
        }
    }
}

impl fmt::Display for LatencyClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Accumulated page-handling cycles per [`LatencyClass`].
///
/// ```
/// use grit_metrics::{LatencyBreakdown, LatencyClass};
/// let mut b = LatencyBreakdown::default();
/// b.record(LatencyClass::Host, 100);
/// b.record(LatencyClass::Host, 50);
/// assert_eq!(b.get(LatencyClass::Host), 150);
/// assert_eq!(b.total(), 150);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LatencyBreakdown {
    cycles: [u64; 6],
}

impl LatencyBreakdown {
    /// Charges `cycles` to `class`.
    ///
    /// Named `record` rather than `add` so it can never be shadowed by the
    /// by-value [`Add`] implementation during method resolution.
    pub fn record(&mut self, class: LatencyClass, cycles: u64) {
        self.cycles[class.slot()] += cycles;
    }

    /// Cycles accumulated in one class.
    pub fn get(&self, class: LatencyClass) -> u64 {
        self.cycles[class.slot()]
    }

    /// Total page-handling cycles.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Per-class fractions of the total (all zeros when the total is zero).
    pub fn fractions(&self) -> [f64; 6] {
        let t = self.total();
        if t == 0 {
            return [0.0; 6];
        }
        let mut f = [0.0; 6];
        for (i, &c) in self.cycles.iter().enumerate() {
            f[i] = c as f64 / t as f64;
        }
        f
    }
}

impl Add for LatencyBreakdown {
    type Output = LatencyBreakdown;

    fn add(self, rhs: LatencyBreakdown) -> LatencyBreakdown {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for LatencyBreakdown {
    fn add_assign(&mut self, rhs: LatencyBreakdown) {
        for (a, b) in self.cycles.iter_mut().zip(rhs.cycles) {
            *a += b;
        }
    }
}

impl fmt::Display for LatencyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for c in LatencyClass::ALL {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{}={}", c.label(), self.get(c))?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_distinct() {
        let mut b = LatencyBreakdown::default();
        for (i, c) in LatencyClass::ALL.iter().enumerate() {
            b.record(*c, (i + 1) as u64);
        }
        for (i, c) in LatencyClass::ALL.iter().enumerate() {
            assert_eq!(b.get(*c), (i + 1) as u64);
        }
        assert_eq!(b.total(), 21);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut b = LatencyBreakdown::default();
        b.record(LatencyClass::Local, 25);
        b.record(LatencyClass::RemoteAccess, 75);
        let f = b.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((f[3] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_fractions_are_zero() {
        assert_eq!(LatencyBreakdown::default().fractions(), [0.0; 6]);
    }

    #[test]
    fn addition_combines_classwise() {
        let mut a = LatencyBreakdown::default();
        a.record(LatencyClass::Host, 10);
        let mut b = LatencyBreakdown::default();
        b.record(LatencyClass::Host, 5);
        b.record(LatencyClass::WriteCollapse, 7);
        let c = a + b;
        assert_eq!(c.get(LatencyClass::Host), 15);
        assert_eq!(c.get(LatencyClass::WriteCollapse), 7);
    }

    #[test]
    fn display_shows_all_classes() {
        let s = format!("{}", LatencyBreakdown::default());
        for c in LatencyClass::ALL {
            assert!(s.contains(c.label()));
        }
    }
}
