//! Logarithmic latency histogram: distribution of per-event costs
//! (fault-handling latencies, remote-access latencies) beyond the mean.

use std::fmt;

/// A power-of-two-bucketed histogram of cycle counts.
///
/// Bucket `k` holds samples in `[2^k, 2^(k+1))`; bucket 0 also absorbs
/// zero-cycle samples. 48 buckets cover any `u64` latency the simulator
/// can produce.
///
/// ```
/// use grit_metrics::LatencyHistogram;
/// let mut h = LatencyHistogram::new();
/// h.record(100);
/// h.record(120);
/// h.record(4000);
/// assert_eq!(h.samples(), 3);
/// assert!(h.percentile(0.5) >= 64 && h.percentile(0.5) < 256);
/// assert!(h.percentile(1.0) >= 2048);
/// ```
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    buckets: [u64; 48],
    samples: u64,
    total: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; 48],
            samples: 0,
            total: 0,
            max: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    fn bucket_of(cycles: u64) -> usize {
        if cycles == 0 {
            0
        } else {
            (63 - cycles.leading_zeros() as usize).min(47)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, cycles: u64) {
        self.buckets[Self::bucket_of(cycles)] += 1;
        self.samples += 1;
        self.total += cycles;
        self.max = self.max.max(cycles);
    }

    /// Number of samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Arithmetic mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.total as f64 / self.samples as f64
        }
    }

    /// Largest sample seen.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Lower bound of the bucket containing quantile `q` in `[0, 1]`
    /// (0 when empty).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.samples == 0 {
            return 0;
        }
        let target = ((self.samples as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (k, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= target {
                return if k == 0 { 0 } else { 1u64 << k };
            }
        }
        self.max
    }

    /// Iterates the non-empty buckets as `(lower_bound, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| (if k == 0 { 0 } else { 1u64 << k }, c))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets) {
            *a += b;
        }
        self.samples += other.samples;
        self.total += other.total;
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.0} p50={} p99={} max={}",
            self.samples,
            self.mean(),
            self.percentile(0.5),
            self.percentile(0.99),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.samples(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.iter().count(), 0);
    }

    #[test]
    fn bucketing_is_power_of_two() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        let buckets: Vec<(u64, u64)> = h.iter().collect();
        assert_eq!(buckets, vec![(0, 2), (2, 2), (1024, 1)]);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        for i in 0..1000u64 {
            h.record(i * 17);
        }
        let mut last = 0;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let p = h.percentile(q);
            assert!(p >= last, "p({q}) = {p} < {last}");
            last = p;
        }
        assert!(h.mean() > 0.0);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(10);
        b.record(10_000);
        a.merge(&b);
        assert_eq!(a.samples(), 2);
        assert_eq!(a.max(), 10_000);
        assert!((a.mean() - 5005.0).abs() < 1e-9);
    }

    #[test]
    fn display_summarizes() {
        let mut h = LatencyHistogram::new();
        h.record(500);
        let s = format!("{h}");
        assert!(s.contains("n=1") && s.contains("max=500"), "{s}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantile_bounds_checked() {
        let _ = LatencyHistogram::new().percentile(1.5);
    }
}
