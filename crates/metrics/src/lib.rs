//! # grit-metrics
//!
//! Measurement infrastructure for the GRIT reproduction: the six-way
//! page-handling latency breakdown of Fig. 3, fault counters (Fig. 18),
//! per-page attribute tracking (Figs. 4, 6–9), interval time series
//! (Figs. 5, 10), the scheme-usage mix (Fig. 19), and plain-text report
//! formatting used by the `repro` binary and EXPERIMENTS.md.

#![warn(missing_docs)]

pub mod breakdown;
pub mod histogram;
pub mod page_attr;
pub mod report;
pub mod run;
pub mod timeseries;

pub use breakdown::{LatencyBreakdown, LatencyClass};
pub use histogram::LatencyHistogram;
pub use page_attr::{PageAttrSummary, PageAttrTracker};
pub use report::{geomean, normalize_to, Table};
pub use run::{FaultCounters, RunMetrics, SchemeMix};
pub use timeseries::{AttrGrid, IntervalSeries};
